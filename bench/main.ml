(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation on the machine model and prints the measured
   series next to the paper's expectation, then runs one Bechamel
   micro-benchmark per experiment over that experiment's core
   simulation primitive.

     dune exec bench/main.exe            full reproduction + bechamel
     dune exec bench/main.exe -- --quick reduced sizes (CI smoke)
     dune exec bench/main.exe -- --no-bechamel
     dune exec bench/main.exe -- fig11 tab02   (subset)
     dune exec bench/main.exe -- --jobs 4      (parallel tables)
     dune exec bench/main.exe -- --cache-dir d --no-cache (result cache)
     dune exec bench/main.exe -- --adaptive-experiments --rciw-target 0.02 \
       --max-experiments 64   (quality-driven experiment counts)

   All run-shaping flags (--jobs, caching, adaptive measurement, the
   resilience policy, --inject-fault, --trace-out, ...) are the shared
   Mt_cli set. *)

open Mt_machine
open Mt_creator
open Mt_launcher

(* ------------------------------------------------------------------ *)
(* Part 1: figure/table reproduction                                   *)
(* ------------------------------------------------------------------ *)

(* Figures get drawn, not just tabulated: series selection per id. *)
let chart_of (t : Microtools.Exp_table.t) =
  let plot ?log_y ~x_label ~y_label spec =
    Some
      (Microtools.Ascii_plot.render ?log_y ~x_label ~y_label
         (Microtools.Ascii_plot.of_table ~x_column:0 ~y_columns:spec t))
  in
  let levels = [ (1, "L1"); (2, "L2"); (3, "L3"); (4, "RAM") ] in
  match t.Microtools.Exp_table.id with
  | "fig03" -> plot ~x_label:"matrix size" ~y_label:"cycles/iter" [ (1, "matmul") ]
  | "fig05" ->
    plot ~x_label:"unroll" ~y_label:"cycles/iter"
      [ (1, "original"); (2, "microbench") ]
  | "fig11" | "fig12" -> plot ~x_label:"unroll" ~y_label:"cycles/insn" levels
  | "fig13" -> plot ~x_label:"GHz" ~y_label:"tsc-cycles/load" levels
  | "fig14" -> plot ~log_y:true ~x_label:"cores" ~y_label:"cycles/iter" [ (1, "fork") ]
  | "fig15" | "fig16" ->
    plot ~x_label:"alignment config" ~y_label:"cycles/iter" [ (2, "traversal") ]
  | "fig17" | "fig18" ->
    plot ~log_y:true ~x_label:"unroll" ~y_label:"cycles/element"
      [ (2, "sequential"); (5, "openmp") ]
  | "tiling" -> plot ~x_label:"tile" ~y_label:"cycles/iter" [ (1, "tiled matmul") ]
  | _ -> None

let run_experiments ~quick ~config ids =
  let fmt = Format.std_formatter in
  Format.fprintf fmt
    "MicroTools reproduction: paper figures/tables vs the machine model@.@.";
  (* Compute all tables first — in parallel when --jobs allows — then
     print in paper order, so the transcript is stable under -j.  Each
     experiment runs supervised: a crashing figure becomes a quarantine
     note instead of aborting the whole reproduction. *)
  let computed = Microtools.Experiments.run_tables ~quick ~config ids in
  let tables =
    List.filter_map
      (fun (id, outcome) ->
        match outcome with
        | Microtools.Experiments.Table t ->
          Microtools.Exp_table.print fmt t;
          (match chart_of t with
          | Some chart -> Format.fprintf fmt "%s@." chart
          | None -> ());
          Some t
        | Microtools.Experiments.Quarantined q ->
          Format.fprintf fmt "experiment %s: %s@." id
            (Mt_resilience.Supervisor.quarantine_to_string q);
          None
        | Microtools.Experiments.Unknown ->
          Format.fprintf fmt "unknown experiment %s@." id;
          None)
      computed
  in
  (* Compact recap: one line per experiment. *)
  Format.fprintf fmt "=== summary (paper expectation vs measured) ===@.";
  List.iter
    (fun t ->
      Format.fprintf fmt "%-10s %s@." t.Microtools.Exp_table.id
        (match t.Microtools.Exp_table.observations with
        | o :: _ -> o
        | [] -> "see table above"))
    tables;
  Format.fprintf fmt "@.";
  tables

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel                                                    *)
(* ------------------------------------------------------------------ *)

(* Each experiment's core simulation primitive, small enough that
   Bechamel can sample it repeatedly. *)

let x5650 = Config.nehalem_x5650_2s

let sandy = Config.sandy_bridge_e31240

let x7550 = Config.nehalem_x7550_4s

let matmul_primitive n () =
  let driver =
    match Mt_kernels.Matmul.make_driver ~machine:x5650 ~n (`Original 1) with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  match Mt_kernels.Matmul.sample_run ~rows:1 ~cols:2 driver with
  | Ok s -> s.Mt_kernels.Matmul.cycles_per_iteration
  | Error msg -> failwith msg

let stream_variant opcode unroll =
  match
    Creator.generate
      (Mt_kernels.Streams.loadstore_spec ~opcode ~unroll:(unroll, unroll)
         ~swap_after:false ())
  with
  | [ v ] -> v
  | _ -> failwith "expected one variant"

let launch_primitive ?(machine = x5650) ?(cores = 1) ?(openmp = 0) ?(freq = None)
    variant () =
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes = 16 * 1024;
      repetitions = 1;
      experiments = 1;
      cores;
      openmp_threads = openmp;
      frequency_ghz = freq;
    }
  in
  match Launcher.launch opts (Source.From_variant variant) with
  | Ok r -> r.Report.value
  | Error msg -> failwith msg

let alignment_primitive ~arrays ~cores () =
  let spec = Mt_kernels.Streams.multi_array_spec ~arrays () in
  let variant = List.hd (Creator.generate spec) in
  let opts =
    {
      (Options.default x7550) with
      Options.array_bytes = 16 * 1024;
      warmup = false;
      repetitions = 1;
      experiments = 1;
      cores;
      alignments = [ 0; 512; 1024; 1536 ];
    }
  in
  match Launcher.launch opts (Source.From_variant variant) with
  | Ok r -> r.Report.value
  | Error msg -> failwith msg

let generation_primitive () =
  List.length (Creator.generate (Mt_kernels.Streams.loadstore_spec ()))

let preset_primitive () =
  List.for_all
    (fun (_, cfg) -> Result.is_ok (Config.validate cfg))
    Config.presets

let bechamel_tests () =
  let open Bechamel in
  let movaps8 = stream_variant Mt_isa.Insn.MOVAPS 8 in
  let movss4 = stream_variant Mt_isa.Insn.MOVSS 4 in
  [
    Test.make ~name:"fig03:matmul-size" (Staged.stage (matmul_primitive 64));
    Test.make ~name:"fig04:matmul-align" (Staged.stage (matmul_primitive 48));
    Test.make ~name:"fig05:matmul-unroll" (Staged.stage (matmul_primitive 96));
    Test.make ~name:"fig11:movaps-stream" (Staged.stage (launch_primitive movaps8));
    Test.make ~name:"fig12:movss-stream" (Staged.stage (launch_primitive movss4));
    Test.make ~name:"fig13:freq-sweep"
      (Staged.stage (launch_primitive ~freq:(Some 1.6) movaps8));
    Test.make ~name:"fig14:fork-contention"
      (Staged.stage (launch_primitive ~cores:6 movaps8));
    Test.make ~name:"fig15:align-8core"
      (Staged.stage (alignment_primitive ~arrays:4 ~cores:8));
    Test.make ~name:"fig16:align-32core"
      (Staged.stage (alignment_primitive ~arrays:4 ~cores:32));
    Test.make ~name:"fig17:openmp-cached"
      (Staged.stage (launch_primitive ~machine:sandy ~openmp:4 movss4));
    Test.make ~name:"fig18:openmp-ram"
      (Staged.stage (launch_primitive ~machine:sandy ~openmp:4 movaps8));
    Test.make ~name:"tab01:preset-validate" (Staged.stage preset_primitive);
    Test.make ~name:"tab02:openmp-vs-seq"
      (Staged.stage (launch_primitive ~machine:sandy movss4));
    Test.make ~name:"gen_counts:generate-510" (Staged.stage generation_primitive);
    Test.make ~name:"ablation:feature-toggle"
      (Staged.stage (fun () ->
           let no_prefetch =
             Config.with_features x5650
               { x5650.Config.features with Config.prefetcher = false }
           in
           Result.is_ok (Config.validate no_prefetch)));
    Test.make ~name:"parmodes:mode-dispatch"
      (Staged.stage (fun () ->
           let opts =
             { (Options.default sandy) with
               Options.array_bytes = 16 * 1024; repetitions = 1; experiments = 1;
               mpi_ranks = 4 }
           in
           match Launcher.launch opts (Source.From_variant movss4) with
           | Ok r -> r.Report.value
           | Error msg -> failwith msg));
    Test.make ~name:"energy:accounting"
      (Staged.stage (fun () ->
           let opts =
             { (Options.default sandy) with
               Options.array_bytes = 16 * 1024; repetitions = 1; experiments = 1 }
           in
           let variant = movss4 in
           match
             Mt_launcher.Protocol.prepare opts
               (Mt_creator.Variant.concrete_body variant)
               (Option.get variant.Mt_creator.Variant.abi)
           with
           | Error msg -> failwith msg
           | Ok p -> (
             match Mt_launcher.Protocol.run_once p with
             | Ok o -> Mt_machine.Energy.joules sandy o
             | Error msg -> failwith msg)));
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  print_endline "=== bechamel: harness-primitive timings (one per experiment) ===";
  Printf.printf "%-28s %16s %10s\n" "experiment" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns = Analyze.OLS.estimates est in
          let r2 = Analyze.OLS.r_square est in
          match ns with
          | Some [ per_run ] ->
            Printf.printf "%-28s %16.0f %10s\n" name per_run
              (match r2 with Some r -> Printf.sprintf "%.3f" r | None -> "-")
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    (bechamel_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 3: simspeed — simulated instructions per second                *)
(* ------------------------------------------------------------------ *)

(* A fixed kernel set exercising the three steady states the fast path
   optimizes: a dependent-load ring, a triad instruction pattern, and a
   pure scoreboard ALU mix.  The memory kernels run over L1-resident
   working sets (a one-line pointer ring, one-line vectors at
   set-distinct offsets) so the lane isolates interpreter overhead —
   the memory *model*'s cost is shared by both engines and would only
   dilute the ratio.  Each row times a full [Core.run] against
   [Core.run_reference] on the same compiled program, so the ratio is
   exactly the fast-path win. *)

let simspeed_kernels =
  let module I = Mt_isa.Insn in
  let module O = Mt_isa.Operand in
  let module R = Mt_isa.Reg in
  let i op ops = I.Insn (I.make op ops) in
  let rsi = R.gpr64 R.RSI and rdi = R.gpr64 R.RDI in
  let rbx = R.gpr64 R.RBX and rcx = R.gpr64 R.RCX in
  let loop body =
    (I.Label "L" :: body)
    @ [
        i I.ADD [ O.imm 1; O.reg (R.gpr32 R.RAX) ];
        i I.SUB [ O.imm 1; O.reg rdi ];
        i (I.Jcc I.GE) [ O.label "L" ];
        i I.RET [];
      ]
  in
  [
    ( "pointer_chase",
      (* Dependent-load ring: the load feeds the next address (through
         %rbx), chasing an 8-node cycle inside one cache line — the
         lat_mem_rd pattern at its L1 plateau. *)
      loop
        [
          i I.MOV [ O.mem ~base:rsi (); O.reg rbx ];
          i I.ADD [ O.reg rbx; O.reg rsi ];
          i I.ADD [ O.imm 8; O.reg rsi ];
          i I.AND [ O.imm 0x3F; O.reg rsi ];
        ],
      30_000 );
    ( "triad",
      (* a[i] = b[i] + s * c[i] over one-line vectors.  The offsets are
         deliberately not multiples of 64 KiB: page-aligned bases would
         put all three vectors in the same dTLB set and the same L1
         sets (64 L1 sets span exactly one page). *)
      loop
        [
          i I.MOVSD [ O.mem ~base:rsi (); O.reg (R.xmm 0) ];
          i I.MOVSD [ O.mem ~base:rsi ~disp:((76 * 1024) + 256) (); O.reg (R.xmm 1) ];
          i I.MULSD [ O.reg (R.xmm 2); O.reg (R.xmm 1) ];
          i I.ADDSD [ O.reg (R.xmm 1); O.reg (R.xmm 0) ];
          i I.MOVSD [ O.reg (R.xmm 0); O.mem ~base:rsi ~disp:((152 * 1024) + 512) () ];
          i I.ADD [ O.imm 8; O.reg rsi ];
          i I.AND [ O.imm 0x3F; O.reg rsi ];
        ],
      30_000 );
    ( "alu_mix",
      loop
        [
          i I.ADD [ O.imm 3; O.reg rbx ];
          i I.IMUL [ O.reg rbx; O.reg rcx ];
          i I.XOR [ O.reg rcx; O.reg rbx ];
          i I.SHL [ O.imm 1; O.reg rcx ];
        ],
      60_000 );
  ]

(* Best-of-N wall times of two runners, interleaved A-B-A-B so host
   noise (frequency drift, sibling load) lands on both engines rather
   than biasing whichever ran second. *)
let best_of_interleaved ~reps f g =
  let bf = ref infinity and bg = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let t1 = Unix.gettimeofday () in
    g ();
    let t2 = Unix.gettimeofday () in
    if t1 -. t0 < !bf then bf := t1 -. t0;
    if t2 -. t1 < !bg then bg := t2 -. t1
  done;
  (!bf, !bg)

let simspeed_measure ~quick =
  let module R = Mt_isa.Reg in
  List.map
    (fun (name, program, trips) ->
      let trips = if quick then trips / 10 else trips in
      let compiled =
        match Core.compile program with
        | Ok c -> c
        | Error e -> failwith (Core.error_to_string e)
      in
      let memory = Memory.create x5650 in
      let init = [ (R.gpr64 R.RDI, trips); (R.gpr64 R.RSI, 0) ] in
      let insns = ref 0 in
      let once run () =
        match run ~init x5650 memory compiled with
        | Ok o -> insns := o.Core.instructions
        | Error e -> failwith (Core.error_to_string e)
      in
      let fast = once (fun ~init cfg mem c -> Core.run ~init cfg mem c) in
      let reference =
        once (fun ~init cfg mem c -> Core.run_reference ~init cfg mem c)
      in
      (* Warm run for each engine: caches filled, block replay built. *)
      fast ();
      reference ();
      let t_fast, t_ref =
        best_of_interleaved ~reps:(if quick then 3 else 7) fast reference
      in
      (name, !insns, t_fast, t_ref))
    simspeed_kernels

let run_simspeed ~quick out =
  let rows = simspeed_measure ~quick in
  print_endline
    "=== simspeed: simulated instructions/second (fast path vs reference) ===";
  Printf.printf "%-16s %10s %12s %12s %10s\n" "kernel" "insns" "fast Mi/s"
    "ref Mi/s" "rel_cost";
  let variants =
    List.map
      (fun (name, insns, t_fast, t_ref) ->
        let mi t = float_of_int insns /. t /. 1e6 in
        let rel = t_fast /. t_ref in
        Printf.printf "%-16s %10d %12.2f %12.2f %10.3f\n" name insns (mi t_fast)
          (mi t_ref) rel;
        (* Only the machine-independent ratio goes into the snapshot:
           absolute Mi/s depends on the host, the ratio only on the
           engines.  Lower is better; the committed baseline holds the
           acceptance ceiling, not a measurement. *)
        Mt_obsv.Snapshot.point_stat
          ~key:(Printf.sprintf "simspeed:%s:rel_cost" name)
          rel)
      rows
  in
  print_newline ();
  match out with
  | None -> ()
  | Some path ->
    let names = List.map (fun (n, _, _, _) -> n) rows in
    let snap =
      Mt_obsv.Snapshot.make ~tool:"simspeed"
        ~kernel:(String.concat "+" names, Mt_parallel.Cache.digest_key names)
        ~machine:
          ("nehalem_x5650_2s", Mt_parallel.Cache.digest_key [ "nehalem_x5650_2s" ])
        variants
    in
    Mt_obsv.Snapshot.save snap path;
    Printf.printf "simspeed snapshot written to %s (compare with mt_report)\n"
      path

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let main quick no_bechamel simspeed_out simspeed_only ids (config : Mt_cli.t) =
  if simspeed_only then begin
    run_simspeed ~quick simspeed_out;
    0
  end
  else begin
  let tel = Mt_cli.setup config in
  Microtools.Experiments.set_run_config config;
  let ids = match ids with [] -> Microtools.Experiments.ids | ids -> ids in
  let tables = run_experiments ~quick ~config ids in
  Mt_cli.print_cache_stats config;
  print_newline ();
  if not no_bechamel then run_bechamel ();
  (match
     ( config.Microtools.Study.Run_config.snapshot_out,
       config.Microtools.Study.Run_config.history_append )
   with
  | None, None -> ()
  | snapshot_out, _ ->
    (* The committed BENCH_study.json baseline: one single-observation
       stat per numeric table cell, diffable against a fresh run with
       mt_report. *)
    let variants =
      List.concat_map
        (fun t ->
          List.map
            (fun (key, v) -> Mt_obsv.Snapshot.point_stat ~key v)
            (Microtools.Exp_table.stat_entries t))
        tables
    in
    let snap =
      Mt_obsv.Snapshot.make ~tool:"bench"
        ~kernel:(String.concat "+" ids, Mt_parallel.Cache.digest_key ids)
        ~machine:
          ( "table1-presets",
            Mt_parallel.Cache.digest_key
              [ Marshal.to_string Config.presets [] ] )
        ~counters:(Mt_telemetry.counters tel) variants
    in
    Option.iter
      (fun path ->
        Mt_obsv.Snapshot.save snap path;
        Printf.printf "run snapshot written to %s (compare with mt_report)\n"
          path)
      snapshot_out;
    Mt_cli.append_history ~label:"bench" config snap);
  (match simspeed_out with
  | Some _ -> run_simspeed ~quick simspeed_out
  | None -> ());
  Mt_cli.finish tel config;
  0
  end

let () =
  let open Cmdliner in
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"Shrink sizes and sweeps for a fast smoke run.")
  in
  let no_bechamel_arg =
    Arg.(value & flag
         & info [ "no-bechamel" ] ~doc:"Skip the Bechamel primitive timings.")
  in
  let simspeed_out_arg =
    Arg.(value & opt (some string) None
         & info [ "simspeed-out" ] ~docv:"FILE"
             ~doc:"Also run the simspeed lane (simulated instructions/second, \
                   fast path vs reference interpreter) and write its snapshot \
                   to $(docv) for mt_report.")
  in
  let simspeed_only_arg =
    Arg.(value & flag
         & info [ "simspeed-only" ]
             ~doc:"Run only the simspeed lane and exit (CI smoke job).")
  in
  let ids_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"EXPERIMENT"
             ~doc:"Experiment ids to reproduce (default: all, in paper order).")
  in
  let doc = "reproduce the paper's evaluation and time its primitives" in
  let cmd =
    Cmd.v (Cmd.info "bench" ~doc)
      Term.(
        const main $ quick_arg $ no_bechamel_arg $ simspeed_out_arg
        $ simspeed_only_arg $ ids_arg $ Mt_cli.term)
  in
  exit (Cmd.eval' cmd)
