(* Developer tool: prints raw simulator behaviour (cycles per load for
   stream kernels across hierarchy levels and unroll factors) so the
   machine-model calibration can be checked against the paper's
   figures without going through MicroCreator/MicroLauncher. *)

open Mt_isa
open Mt_machine

let make_stream_kernel ~unroll ~stride ~opcode =
  let body = ref [] in
  for i = unroll - 1 downto 0 do
    body :=
      Insn.Insn
        (Insn.make opcode
           [ Operand.mem ~base:(Reg.gpr64 Reg.RSI) ~disp:(i * stride) ();
             Operand.reg (Reg.xmm (i mod 8)) ])
      :: !body
  done;
  [ Insn.Label "L6" ]
  @ !body
  @ [
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm (unroll * stride); Operand.reg (Reg.gpr64 Reg.RSI) ]);
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm unroll; Operand.reg (Reg.gpr32 Reg.RAX) ]);
      Insn.Insn (Insn.make Insn.SUB [ Operand.imm unroll; Operand.reg (Reg.gpr64 Reg.RDI) ]);
      Insn.Insn (Insn.make (Insn.Jcc Insn.G) [ Operand.label "L6" ]);
      Insn.Insn (Insn.make Insn.RET []);
    ]

let run_case cfg ~unroll ~array_bytes ~opcode ~stride =
  let prog = make_stream_kernel ~unroll ~stride ~opcode in
  let mem = Memory.create cfg in
  let mm = Memmap.create () in
  let region = Memmap.alloc mm ~size:array_bytes ~align:4096 ~offset:0 in
  let iters = array_bytes / (stride * unroll) in
  let init = [ (Reg.gpr64 Reg.RSI, region.base); (Reg.gpr64 Reg.RDI, iters * unroll) ] in
  let compiled = match Core.compile prog with Ok c -> c | Error e -> failwith (Core.error_to_string e) in
  (* Warm run, then measure. *)
  (match Core.run ~init cfg mem compiled with Ok _ -> () | Error e -> failwith (Core.error_to_string e));
  match Core.run ~init cfg mem compiled with
  | Ok r -> r.cycles /. float_of_int (iters * unroll)
  | Error e -> failwith (Core.error_to_string e)

let () =
  let cfg = Config.nehalem_x5650_2s in
  let levels =
    [ ("L1", 16 * 1024); ("L2", 64 * 1024); ("L3", 512 * 1024); ("RAM", 32 * 1024 * 1024) ]
  in
  List.iter
    (fun (opcode, name, stride) ->
      Printf.printf "\n== %s loads: cycles per load ==\n" name;
      Printf.printf "%-6s" "unroll";
      List.iter (fun (lname, _) -> Printf.printf "%8s" lname) levels;
      print_newline ();
      for unroll = 1 to 8 do
        Printf.printf "%-6d" unroll;
        List.iter
          (fun (_, bytes) ->
            let c = run_case cfg ~unroll ~array_bytes:bytes ~opcode ~stride in
            Printf.printf "%8.2f" c)
          levels;
        print_newline ()
      done)
    [ (Insn.MOVAPS, "movaps", 16); (Insn.MOVSS, "movss", 4) ];
  (* Multi-core RAM contention: cycles/load for the 8-unrolled movaps
     kernel when n cores stream concurrently. *)
  Printf.printf "\n== movaps x8 from RAM, cycles/load vs streaming cores ==\n";
  for n = 1 to 12 do
    let mem = Memory.create ~ram_sharers:n cfg in
    let mm = Memmap.create () in
    let region = Memmap.alloc mm ~size:(32 * 1024 * 1024) ~align:4096 ~offset:0 in
    let prog = make_stream_kernel ~unroll:8 ~stride:16 ~opcode:Insn.MOVAPS in
    let iters = 32 * 1024 * 1024 / (16 * 8) in
    let init = [ (Reg.gpr64 Reg.RSI, region.base); (Reg.gpr64 Reg.RDI, iters * 8) ] in
    let compiled = match Core.compile prog with Ok c -> c | Error e -> failwith (Core.error_to_string e) in
    (match Core.run ~init cfg mem compiled with Ok _ -> () | Error e -> failwith (Core.error_to_string e));
    (match Core.run ~init cfg mem compiled with
    | Ok r -> Printf.printf "cores=%2d  %6.2f cycles/load\n" n (r.cycles /. float_of_int (iters * 8))
    | Error e -> failwith (Core.error_to_string e))
  done
