(* MicroCreator command line: XML kernel description in, one benchmark
   program per variant out. *)

open Cmdliner

let generate input out_dir language max_variants random_selection seed list_passes check =
  if list_passes then begin
    List.iter
      (fun name ->
        let pass = Mt_creator.Passes.find_pass name in
        Printf.printf "%-24s %s\n" name pass.Mt_creator.Pass.description)
      Mt_creator.Passes.pass_names;
    0
  end
  else if check then begin
    match input with
    | None ->
      prerr_endline "microcreator: --check needs a DESCRIPTION file";
      2
    | Some input -> (
      match Mt_creator.Description.of_file input with
      | Ok spec ->
        Printf.printf "%s: valid kernel description (%d instructions, unroll %d..%d)\n"
          input
          (Mt_creator.Spec.instruction_count spec)
          spec.Mt_creator.Spec.unroll_min spec.Mt_creator.Spec.unroll_max;
        0
      | Error msg ->
        Printf.eprintf "%s: %s\n" input msg;
        1)
  end
  else
    match input with
    | None ->
      prerr_endline "microcreator: a DESCRIPTION file is required (see --help)";
      2
    | Some input -> (
      let ctx =
        {
          Mt_creator.Pass.max_variants;
          random_selection;
          seed;
        }
      in
      if language = "obj" then begin
        match Mt_creator.Creator.generate_from_file ~ctx input with
        | Ok variants ->
          if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
          let path = Filename.concat out_dir (Filename.remove_extension (Filename.basename input) ^ ".mto") in
          Mt_creator.Emit.write_object ~path variants;
          Printf.printf "bundled %d functions into %s\n" (List.length variants) path;
          0
        | Error msg ->
          Printf.eprintf "microcreator: %s\n" msg;
          1
      end
      else begin
        let language = if language = "c" then `C else `Assembly in
        match Mt_creator.Creator.generate_to_dir ~ctx ~language ~dir:out_dir input with
        | Ok paths ->
          Printf.printf "generated %d programs in %s\n" (List.length paths) out_dir;
          0
        | Error msg ->
          Printf.eprintf "microcreator: %s\n" msg;
          1
      end)

let input_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"DESCRIPTION" ~doc:"XML kernel description file.")

let out_arg =
  Arg.(value & opt string "generated" & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")

let lang_arg =
  Arg.(value & opt (enum [ ("asm", "asm"); ("c", "c"); ("obj", "obj") ]) "asm"
       & info [ "language" ] ~doc:"Output: asm or c files, or one obj container (.mto).")

let max_arg =
  Arg.(value & opt int 100_000 & info [ "max-variants" ] ~doc:"Cap the generated population after each pass.")

let random_arg =
  Arg.(value & opt (some int) None & info [ "random-selection" ] ~docv:"K" ~doc:"Sample at most $(docv) choices per choice point instead of enumerating.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random-selection seed.")

let list_passes_arg =
  Arg.(value & flag & info [ "list-passes" ] ~doc:"Print the pass pipeline and exit.")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Validate the description and exit without generating.")

let cmd =
  let doc = "generate micro-benchmark program variants from an XML description" in
  Cmd.v (Cmd.info "microcreator" ~doc)
    Term.(
      const generate $ input_arg $ out_arg $ lang_arg $ max_arg $ random_arg
      $ seed_arg $ list_passes_arg $ check_arg)

let () = exit (Cmd.eval' cmd)
