(* MicroLauncher command line: run one benchmark kernel (a MicroCreator
   .s file, or a plain C kernel) in the stable measurement environment.

   Run-shaping flags (--cache-dir, --retries, --timeout, --inject-fault,
   --trace-out, ...) are the shared Mt_cli set; the single launch runs
   under the same supervisor as a study variant, so a crashing or hung
   kernel is retried and finally reported as quarantined instead of
   taking the process down with a backtrace.  --journal/--resume,
   --jobs and the result cache have nothing to checkpoint, parallelise
   or memoise over a single ad-hoc launch and are accepted but inert. *)

open Cmdliner
open Mt_launcher

let analyze_kernel opts source =
  match Source.load source with
  | Error msg -> Printf.eprintf "microlauncher: %s\n" msg
  | Ok (program, abi) -> (
    match Protocol.prepare opts program abi with
    | Error msg -> Printf.eprintf "microlauncher: %s\n" msg
    | Ok prepared -> (
      ignore (Protocol.run_once prepared);
      match Protocol.run_once prepared with
      | Error msg -> Printf.eprintf "microlauncher: %s\n" msg
      | Ok outcome ->
        let machine = Options.effective_machine opts in
        Printf.printf "analysis: %s\n" (Microtools.Analysis.describe machine outcome);
        Printf.printf "energy:   %.2f nJ/pass, %.2f W average\n"
          (Mt_machine.Energy.energy_per_iteration_nj machine outcome)
          (Mt_machine.Energy.average_power_w machine outcome)))

let run input function_name machine machine_file freq array_kb alignments repetitions experiments
    cores openmp schedule chunk mpi halo per csv no_warmup no_pin seed
    analyze verbose config =
  let tel = Mt_cli.setup config in
  let resolved =
    match machine_file with
    | Some path -> (
      match Mt_machine.Config_io.of_file path with
      | Ok cfg -> Some cfg
      | Error msg ->
        Printf.eprintf "microlauncher: %s: %s\n" path msg;
        None)
    | None -> (
      match Mt_machine.Config.find_preset machine with
      | Some cfg -> Some cfg
      | None ->
        Printf.eprintf "microlauncher: unknown machine %s (known: %s)\n" machine
          (String.concat ", " (List.map fst Mt_machine.Config.presets));
        None)
  in
  match resolved with
  | None -> 2
  | Some cfg -> (
    let per =
      match per with
      | "pass" -> Options.Per_pass
      | "instruction" -> Options.Per_instruction
      | "element" -> Options.Per_element
      | _ -> Options.Per_call
    in
    let openmp_schedule =
      match schedule with
      | "dynamic" -> Options.Omp_dynamic
      | "guided" -> Options.Omp_guided
      | _ -> Options.Omp_static
    in
    let opts =
      {
        (Options.default cfg) with
        Options.frequency_ghz = freq;
        array_bytes = array_kb * 1024;
        alignments;
        repetitions;
        experiments;
        cores;
        openmp_threads = openmp;
        openmp_schedule;
        openmp_chunk = chunk;
        mpi_ranks = mpi;
        mpi_halo_bytes = halo;
        per;
        csv_path = csv;
        warmup = not no_warmup;
        pinned = not no_pin;
        noise_seed = seed;
        verbose;
      }
    in
    let opts = Microtools.Study.Run_config.apply_options config opts in
    let source =
      if Filename.check_suffix input ".mto" || function_name <> None then
        Source.From_object (input, function_name)
      else Source.From_file input
    in
    let fault =
      match Mt_resilience.Fault.find config.Microtools.Study.Run_config.faults ~index:0 with
      | Some { Mt_resilience.Fault.kind = Corrupt_cache_entry; _ } -> None
      | f -> f
    in
    let code =
      match
        Mt_resilience.Supervisor.supervise ?fault
          ~policy:config.Microtools.Study.Run_config.policy ~key:input
          (fun () -> Launcher.launch opts source)
      with
      | Mt_resilience.Supervisor.Quarantined q ->
        Printf.eprintf "microlauncher: %s\n"
          (Mt_resilience.Supervisor.quarantine_to_string q);
        1
      | Mt_resilience.Supervisor.Done (Error msg, _) ->
        Printf.eprintf "microlauncher: %s\n" msg;
        1
      | Mt_resilience.Supervisor.Done (Ok report, _) ->
        Format.printf "%a@." Report.pp report;
        Mt_cli.report_profiles config
          (match report.Report.profile with
          | Some b -> [ (Filename.basename input, b) ]
          | None -> []);
        if analyze then analyze_kernel opts source;
        0
    in
    Mt_cli.finish tel config;
    code)

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"KERNEL" ~doc:"Kernel file: MicroCreator .s output or a plain C kernel (.c).")

let function_arg =
  Arg.(value & opt (some string) None & info [ "function" ] ~docv:"NAME" ~doc:"Entry point inside a .mto object container.")

let machine_arg =
  Arg.(value & opt string "nehalem_x5650_2s" & info [ "machine" ] ~doc:"Machine preset.")

let machine_file_arg =
  Arg.(value & opt (some file) None & info [ "machine-file" ] ~docv:"XML" ~doc:"Load the machine description from an XML file (see machines/).")

let freq_arg =
  Arg.(value & opt (some float) None & info [ "frequency" ] ~docv:"GHZ" ~doc:"Core clock override.")

let array_arg =
  Arg.(value & opt int 64 & info [ "array-kb" ] ~doc:"Size of each kernel array in KiB.")

let align_arg =
  Arg.(value & opt_all int [] & info [ "align" ] ~docv:"OFFSET" ~doc:"Per-array alignment offset (repeatable).")

let reps_arg = Arg.(value & opt int 4 & info [ "repetitions" ] ~doc:"Kernel calls per experiment.")

let exps_arg = Arg.(value & opt int 10 & info [ "experiments" ] ~doc:"Measured experiments.")

let cores_arg = Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Fork-mode process count.")

let openmp_arg = Arg.(value & opt int 0 & info [ "openmp" ] ~docv:"THREADS" ~doc:"OpenMP thread count (0 = off).")

let schedule_arg =
  Arg.(value & opt (enum [ ("static", "static"); ("dynamic", "dynamic"); ("guided", "guided") ]) "static"
       & info [ "schedule" ] ~doc:"OpenMP loop schedule.")

let chunk_arg =
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"SIZE" ~doc:"OpenMP chunk size.")

let mpi_arg = Arg.(value & opt int 0 & info [ "mpi" ] ~docv:"RANKS" ~doc:"SPMD/MPI rank count (0 = off).")

let halo_arg =
  Arg.(value & opt (some int) None & info [ "halo" ] ~docv:"BYTES" ~doc:"MPI halo-exchange bytes per phase (default: barrier only).")

let per_arg =
  Arg.(value & opt (enum [ ("pass", "pass"); ("instruction", "instruction"); ("element", "element"); ("call", "call") ]) "pass"
       & info [ "per" ] ~doc:"Report cycles per pass, instruction, element or call.")

let csv_arg = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the result CSV to $(docv).")

let no_warmup_arg = Arg.(value & flag & info [ "no-warmup" ] ~doc:"Skip the cache-heating call.")

let no_pin_arg = Arg.(value & flag & info [ "no-pin" ] ~doc:"Disable core pinning (noisier).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Environment noise seed.")

let analyze_arg =
  Arg.(value & flag & info [ "analyze" ] ~doc:"Also print the bottleneck diagnosis and energy estimate.")

let verbose_arg = Arg.(value & flag & info [ "verbose" ] ~doc:"Chatty progress.")

let cmd =
  let doc = "execute a micro-benchmark program in a stable environment" in
  Cmd.v (Cmd.info "microlauncher" ~doc)
    Term.(
      const run $ input_arg $ function_arg $ machine_arg $ machine_file_arg $ freq_arg $ array_arg $ align_arg
      $ reps_arg $ exps_arg $ cores_arg $ openmp_arg $ schedule_arg $ chunk_arg
      $ mpi_arg $ halo_arg $ per_arg $ csv_arg $ no_warmup_arg $ no_pin_arg
      $ seed_arg $ analyze_arg $ verbose_arg $ Mt_cli.term)

let () = exit (Cmd.eval' cmd)
