(* Reproduce the paper's figures and tables on the machine model:
   `mt_experiments fig11`, `mt_experiments --all`, etc.

   Run-shaping flags (--jobs, --cache-dir, --retries, --inject-fault,
   --trace-out, ...) are the shared Mt_cli set.  Exit 4 = partial
   success: some experiments completed, some were quarantined. *)

open Cmdliner

let run_ids ids quick csv_dir config =
  let fmt = Format.std_formatter in
  (* Tables are computed in parallel (each experiment is an independent
     batch of simulator runs) but printed strictly in request order.
     A crashing figure degrades to a quarantine note, not an abort. *)
  let outcomes = Microtools.Experiments.run_tables ~quick ~config ids in
  let tables = ref [] in
  let quarantined = ref 0 in
  List.iter
    (fun (id, outcome) ->
      match outcome with
      | Microtools.Experiments.Unknown ->
        Format.fprintf fmt "unknown experiment %s (known: %s)@." id
          (String.concat ", " Microtools.Experiments.ids)
      | Microtools.Experiments.Quarantined q ->
        incr quarantined;
        Format.fprintf fmt "experiment %s: %s@." id
          (Mt_resilience.Supervisor.quarantine_to_string q)
      | Microtools.Experiments.Table table ->
        tables := table :: !tables;
        Microtools.Exp_table.print fmt table;
        (match csv_dir with
        | None -> ()
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Mt_stats.Csv.save
            (Microtools.Exp_table.to_csv table)
            (Filename.concat dir (id ^ ".csv"))))
    outcomes;
  Mt_cli.print_cache_stats config;
  let code =
    if !quarantined = 0 then 0 else if !tables = [] then 1 else 4
  in
  (code, List.rev !tables)

(* One snapshot for the whole batch: every numeric table cell becomes a
   single-observation variant stat keyed "id/row/column", so two runs of
   the same experiments diff cell-by-cell in mt_report. *)
let snapshot_of_tables ids tables =
  let variants =
    List.concat_map
      (fun t ->
        List.map
          (fun (key, v) -> Mt_obsv.Snapshot.point_stat ~key v)
          (Microtools.Exp_table.stat_entries t))
      tables
  in
  Mt_obsv.Snapshot.make ~tool:"mt_experiments"
    ~kernel:(String.concat "+" ids, Mt_parallel.Cache.digest_key ids)
    ~machine:
      ( "table1-presets",
        Mt_parallel.Cache.digest_key
          [ Marshal.to_string Mt_machine.Config.presets [] ] )
    ~counters:(Mt_telemetry.counters (Mt_telemetry.global ()))
    variants

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (fig03..fig18, tab01, tab02, gen_counts).")

let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment in paper order.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sizes and sweeps for a fast smoke run.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~doc:"Also write one CSV per experiment into $(docv).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let descriptions =
  [
    ("fig03", "matmul cycles/iter vs matrix size (the hierarchy staircase)");
    ("fig04", "matmul alignment sweep at 200x200 (<3% variation)");
    ("fig05", "matmul unroll factors, original vs micro-benchmark");
    ("fig11", "movaps streams: cycles/instruction across unroll and hierarchy");
    ("fig12", "movss streams: same, 4x less data per instruction");
    ("fig13", "frequency sweep: on-core scales, off-core does not (rdtsc)");
    ("fig14", "fork mode contention: the 6-core knee");
    ("fig15", "alignment sweep, 8 arrays on 8 of 32 cores");
    ("fig16", "alignment sweep, 4 arrays on all 32 cores");
    ("fig17", "sequential vs OpenMP, cache-resident array");
    ("fig18", "sequential vs OpenMP, RAM-resident array");
    ("tab01", "the three Table 1 machines");
    ("tab02", "OpenMP flat vs sequential improving (wall time)");
    ("gen_counts", "510/2040 variants, 19 passes, >30 options");
    ("ablation", "[ext] each model mechanism on/off");
    ("energy", "[ext] power utilization across clocks and unrolls");
    ("parmodes", "[ext] seq vs fork vs OpenMP vs MPI");
    ("tiling", "[ext] tiling removes the Fig. 3 cliff");
    ("portability", "[ext] one description on every machine");
    ("stability", "[ext] run-to-run spread per stability feature");
  ]

let list_experiments () =
  List.iter
    (fun id ->
      let doc = Option.value ~default:"" (List.assoc_opt id descriptions) in
      Printf.printf "%-12s %s\n" id doc)
    Microtools.Experiments.ids;
  0

let main ids all quick csv_dir list config =
  if list then list_experiments ()
  else begin
    let tel = Mt_cli.setup config in
    let ids = if all || ids = [] then Microtools.Experiments.ids else ids in
    Microtools.Experiments.set_run_config config;
    let code, tables = run_ids ids quick csv_dir config in
    Mt_cli.report_profiles config (Microtools.Experiments.profiles ());
    (match
       ( config.Microtools.Study.Run_config.snapshot_out,
         config.Microtools.Study.Run_config.history_append )
     with
    | None, None -> ()
    | snapshot_out, _ ->
      let snap = snapshot_of_tables ids tables in
      Option.iter
        (fun path ->
          Mt_obsv.Snapshot.save snap path;
          Printf.printf "run snapshot written to %s (compare with mt_report)\n"
            path)
        snapshot_out;
      Mt_cli.append_history ~label:(String.concat "+" ids) config snap);
    Mt_cli.finish tel config;
    code
  end

let cmd =
  let doc = "reproduce the MicroTools paper's figures and tables" in
  Cmd.v (Cmd.info "mt_experiments" ~doc ~exits:(Cmd.Exit.info 4 ~doc:"partial success: some experiments were quarantined." :: Cmd.Exit.defaults))
    Term.(
      const main $ ids_arg $ all_arg $ quick_arg $ csv_arg $ list_arg
      $ Mt_cli.term)

let () = exit (Cmd.eval' cmd)
