(* Reproduce the paper's figures and tables on the machine model:
   `mt_experiments fig11`, `mt_experiments --all`, etc. *)

open Cmdliner

let run_ids ids quick csv_dir jobs cache =
  let fmt = Format.std_formatter in
  let domains =
    if jobs = 0 then Mt_parallel.Pool.available_domains () else max 1 jobs
  in
  (* Tables are computed in parallel (each experiment is an independent
     batch of simulator runs) but printed strictly in request order. *)
  let tables =
    Mt_parallel.Pool.map_list ~domains
      (fun id -> (id, Option.map (fun f -> f ?quick:(Some quick) ()) (Microtools.Experiments.by_id id)))
      ids
  in
  List.iter
    (fun (id, table) ->
      match table with
      | None ->
        Format.fprintf fmt "unknown experiment %s (known: %s)@." id
          (String.concat ", " Microtools.Experiments.ids)
      | Some table ->
        Microtools.Exp_table.print fmt table;
        (match csv_dir with
        | None -> ()
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          Mt_stats.Csv.save
            (Microtools.Exp_table.to_csv table)
            (Filename.concat dir (id ^ ".csv"))))
    tables;
  (match cache with
  | Some c ->
    Format.fprintf fmt "cache: %d hits, %d misses, %.1f%% hit rate@."
      (Mt_parallel.Cache.hits c) (Mt_parallel.Cache.misses c)
      (100. *. Mt_parallel.Cache.hit_rate c)
  | None -> ());
  (0, List.filter_map snd tables)

(* One snapshot for the whole batch: every numeric table cell becomes a
   single-observation variant stat keyed "id/row/column", so two runs of
   the same experiments diff cell-by-cell in mt_report. *)
let snapshot_of_tables ids tables =
  let variants =
    List.concat_map
      (fun t ->
        List.map
          (fun (key, v) -> Mt_obsv.Snapshot.point_stat ~key v)
          (Microtools.Exp_table.stat_entries t))
      tables
  in
  Mt_obsv.Snapshot.make ~tool:"mt_experiments"
    ~kernel:(String.concat "+" ids, Mt_parallel.Cache.digest_key ids)
    ~machine:
      ( "table1-presets",
        Mt_parallel.Cache.digest_key
          [ Marshal.to_string Mt_machine.Config.presets [] ] )
    ~counters:(Mt_telemetry.counters (Mt_telemetry.global ()))
    variants

let ids_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiment ids (fig03..fig18, tab01, tab02, gen_counts).")

let all_arg = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment in paper order.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sizes and sweeps for a fast smoke run.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~doc:"Also write one CSV per experiment into $(docv).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let descriptions =
  [
    ("fig03", "matmul cycles/iter vs matrix size (the hierarchy staircase)");
    ("fig04", "matmul alignment sweep at 200x200 (<3% variation)");
    ("fig05", "matmul unroll factors, original vs micro-benchmark");
    ("fig11", "movaps streams: cycles/instruction across unroll and hierarchy");
    ("fig12", "movss streams: same, 4x less data per instruction");
    ("fig13", "frequency sweep: on-core scales, off-core does not (rdtsc)");
    ("fig14", "fork mode contention: the 6-core knee");
    ("fig15", "alignment sweep, 8 arrays on 8 of 32 cores");
    ("fig16", "alignment sweep, 4 arrays on all 32 cores");
    ("fig17", "sequential vs OpenMP, cache-resident array");
    ("fig18", "sequential vs OpenMP, RAM-resident array");
    ("tab01", "the three Table 1 machines");
    ("tab02", "OpenMP flat vs sequential improving (wall time)");
    ("gen_counts", "510/2040 variants, 19 passes, >30 options");
    ("ablation", "[ext] each model mechanism on/off");
    ("energy", "[ext] power utilization across clocks and unrolls");
    ("parmodes", "[ext] seq vs fork vs OpenMP vs MPI");
    ("tiling", "[ext] tiling removes the Fig. 3 cliff");
    ("portability", "[ext] one description on every machine");
    ("stability", "[ext] run-to-run spread per stability feature");
  ]

let list_experiments () =
  List.iter
    (fun id ->
      let doc = Option.value ~default:"" (List.assoc_opt id descriptions) in
      Printf.printf "%-12s %s\n" id doc)
    Microtools.Experiments.ids;
  0

let main ids all quick csv_dir list jobs cache_dir no_cache adaptive
    rciw_target max_experiments trace_out metrics_out snapshot_out
    trace_detail =
  if list then list_experiments ()
  else begin
    Mt_telemetry.set_detail trace_detail;
    let ids =
      if all || ids = [] then Microtools.Experiments.ids else ids
    in
    let cache =
      if no_cache then None
      else
        Some
          (Mt_parallel.Cache.create
             ~dir:(Option.value ~default:(Mt_parallel.Cache.default_dir ()) cache_dir)
             ())
    in
    Microtools.Experiments.set_cache cache;
    Microtools.Experiments.set_adaptive
      (if adaptive then Some (rciw_target, max_experiments) else None);
    let tel =
      if trace_out <> None || metrics_out <> None then begin
        let t = Mt_telemetry.create () in
        Mt_telemetry.set_global t;
        t
      end
      else Mt_telemetry.disabled
    in
    let code, tables = run_ids ids quick csv_dir jobs cache in
    Option.iter
      (fun path ->
        Mt_obsv.Snapshot.save (snapshot_of_tables ids tables) path;
        Printf.printf "run snapshot written to %s (compare with mt_report)\n" path)
      snapshot_out;
    Option.iter
      (fun path ->
        Mt_telemetry.write_chrome_trace tel path;
        Printf.printf "trace written to %s\n" path)
      trace_out;
    Option.iter
      (fun path ->
        Mt_telemetry.write_metrics_csv tel path;
        Printf.printf "metrics written to %s\n" path)
      metrics_out;
    code
  end

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Compute experiments on $(docv) domains (0 = one per available \
                 core); output stays in request order.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"On-disk result cache location (default: \\$XDG_CACHE_HOME/microtools \
                 or ~/.cache/microtools).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ] ~doc:"Disable the result cache; re-simulate everything.")

let adaptive_arg =
  Arg.(value & flag
       & info [ "adaptive-experiments" ]
           ~doc:"Let the quality controller extend each measurement past its \
                 configured experiment count until the bootstrap confidence \
                 interval reaches $(b,--rciw-target) or $(b,--max-experiments) \
                 is spent.")

let rciw_target_arg =
  Arg.(value & opt float 0.02
       & info [ "rciw-target" ] ~docv:"FRAC"
           ~doc:"Adaptive stop rule: relative confidence-interval width of \
                 the median to reach before stopping early.")

let max_exps_arg =
  Arg.(value & opt int 64
       & info [ "max-experiments" ] ~docv:"N"
           ~doc:"Adaptive budget ceiling per measurement.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run to $(docv).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a key,value metrics CSV to $(docv).")

let snapshot_arg =
  Arg.(value & opt (some string) None
       & info [ "snapshot-out" ] ~docv:"FILE"
           ~doc:"Write a run-provenance snapshot (one entry per numeric table \
                 cell) as JSON to $(docv); compare runs with mt_report.")

let trace_detail_arg =
  Arg.(value
       & opt (enum [ ("off", Mt_telemetry.Off); ("sampled", Mt_telemetry.Sampled); ("full", Mt_telemetry.Full) ])
           Mt_telemetry.Off
       & info [ "trace-detail" ]
           ~doc:"Instruction/cache lane detail in the Chrome trace: off, \
                 sampled, or full.  Takes effect when $(b,--trace-out) is \
                 given.")

let cmd =
  let doc = "reproduce the MicroTools paper's figures and tables" in
  Cmd.v (Cmd.info "mt_experiments" ~doc)
    Term.(
      const main $ ids_arg $ all_arg $ quick_arg $ csv_arg $ list_arg
      $ jobs_arg $ cache_dir_arg $ no_cache_arg $ adaptive_arg
      $ rciw_target_arg $ max_exps_arg $ trace_arg $ metrics_arg
      $ snapshot_arg $ trace_detail_arg)

let () = exit (Cmd.eval' cmd)
