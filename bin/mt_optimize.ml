(* Derive a pruned study plan from a history archive — the μOpTime
   move, turned into a tool:

     mt_optimize --history runs/ --out plan.json
     mt_optimize --history runs/ --kernel-hash H --machine-hash M
     mt_optimize --history runs/ --min-experiments 3 --corr-threshold 0.99

   Reads the archive's newest lineage (or the one selected by
   --kernel-hash/--machine-hash), scores every variant's median series
   for stability (pooled CoV, worst-run RCIW, trend classification) and
   redundancy (Spearman against already-kept variants), and writes a
   plan that mt_study / mt_experiments / mt_serve replay with --plan
   and mt_report verifies with --plan.

   Exit 0 on a written plan, 2 on an unusable archive or lineage. *)

open Cmdliner

let select_lineage hist kernel_hash machine_hash =
  match (kernel_hash, machine_hash) with
  | None, None -> Mt_obsv.History.latest_lineage hist
  | _ ->
    List.find_opt
      (fun (l : Mt_obsv.History.lineage) ->
        (match kernel_hash with
        | Some h -> l.Mt_obsv.History.l_kernel_hash = h
        | None -> true)
        &&
        match machine_hash with
        | Some h -> l.Mt_obsv.History.l_machine_hash = h
        | None -> true)
      (Mt_obsv.History.lineages hist)

let run dir out kernel_hash machine_hash min_runs corr_threshold cov_stable
    rciw_stable min_experiments quiet =
  match Mt_obsv.History.load dir with
  | Error msg ->
    Printf.eprintf "mt_optimize: %s\n" msg;
    2
  | Ok hist -> (
    match select_lineage hist kernel_hash machine_hash with
    | None ->
      Printf.eprintf
        "mt_optimize: %s: no matching lineage (%d runs archived)\n" dir
        (Mt_obsv.History.length hist);
      2
    | Some lineage -> (
      let knobs =
        {
          Mt_optimize.Plan.min_runs;
          corr_threshold;
          cov_stable;
          rciw_stable;
          min_experiments;
        }
      in
      match Mt_optimize.Optimizer.optimize ~knobs hist lineage with
      | Error msg ->
        Printf.eprintf "mt_optimize: %s\n" msg;
        2
      | Ok plan ->
        if not quiet then begin
          Printf.printf
            "optimizing %s — %d runs of %s on %s\n\n"
            dir plan.Mt_optimize.Plan.runs
            plan.Mt_optimize.Plan.kernel_name
            plan.Mt_optimize.Plan.machine_name;
          print_string (Mt_optimize.Optimizer.render plan)
        end;
        (match out with
        | None -> ()
        | Some path ->
          Mt_optimize.Plan.save plan path;
          Printf.printf "plan written to %s (replay with --plan)\n" path);
        0))

let history_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "history" ] ~docv:"DIR"
        ~doc:
          "Snapshot archive written by $(b,--history-append) or mt_serve \
           $(b,--history-dir); the plan is derived from one of its \
           lineages.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Write the study plan as JSON to $(docv).")

let kernel_hash_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "kernel-hash" ] ~docv:"HASH"
        ~doc:
          "Select the lineage with this kernel content hash (default: the \
           archive's newest lineage).")

let machine_hash_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "machine-hash" ] ~docv:"HASH"
        ~doc:"Select the lineage with this machine content hash.")

let min_runs_arg =
  Arg.(
    value
    & opt int Mt_optimize.Optimizer.default_knobs.Mt_optimize.Plan.min_runs
    & info [ "min-runs" ] ~docv:"N"
        ~doc:
          "Lineage length below which nothing is pruned or floored — too \
           little history to judge stability.")

let corr_arg =
  Arg.(
    value
    & opt float
        Mt_optimize.Optimizer.default_knobs.Mt_optimize.Plan.corr_threshold
    & info [ "corr-threshold" ] ~docv:"RHO"
        ~doc:
          "Absolute Spearman rank correlation at or above which two stable \
           median series are redundant (one canaries the other).")

let cov_arg =
  Arg.(
    value
    & opt float Mt_optimize.Optimizer.default_knobs.Mt_optimize.Plan.cov_stable
    & info [ "cov-stable" ] ~docv:"FRAC"
        ~doc:"Pooled within-run CoV at or below which a series is stable.")

let rciw_arg =
  Arg.(
    value
    & opt float
        Mt_optimize.Optimizer.default_knobs.Mt_optimize.Plan.rciw_stable
    & info [ "rciw-stable" ] ~docv:"FRAC"
        ~doc:
          "Worst per-run RCIW at or below which a series stays stable \
           (snapshot schema 2+).")

let min_exps_arg =
  Arg.(
    value
    & opt int
        Mt_optimize.Optimizer.default_knobs.Mt_optimize.Plan.min_experiments
    & info [ "min-experiments" ] ~docv:"N"
        ~doc:
          "The floor experiment count stable variants drop to (noisy ones \
           keep their full adaptive budget).")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the table; write the plan only.")

let cmd =
  let doc = "derive a pruned study plan from a snapshot history archive" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Extracts each variant's median time series along one kernel + \
         machine lineage of the archive and scores it for stability \
         (pooled coefficient of variation, worst-run bootstrap RCIW, \
         noise-gated trend classification) and redundancy (Spearman rank \
         correlation against already-kept variants).  Stable variants \
         drop to a floor experiment count; stable variants that co-move \
         with a kept canary are dropped entirely and inherit the \
         canary's verdict in mt_report $(b,--plan).  Noisy, drifting or \
         partially-missing variants always keep their full budget — \
         pruning never touches a series the archive cannot vouch for.";
      `P
        "The written plan is replayed with mt_study/mt_experiments \
         $(b,--plan) (locally or through an mt_serve submission) and \
         verified with mt_report $(b,--plan).";
      `S Manpage.s_exit_status;
      `P "0 on a written plan, 2 on an unusable archive or lineage.";
    ]
  in
  Cmd.v (Cmd.info "mt_optimize" ~doc ~man)
    Term.(
      const run $ history_arg $ out_arg $ kernel_hash_arg $ machine_hash_arg
      $ min_runs_arg $ corr_arg $ cov_arg $ rciw_arg $ min_exps_arg
      $ quiet_arg)

let () = exit (Cmd.eval' cmd)
