(* Compare two run snapshots with a CoV noise gate — the CI regression
   check:

     mt_report baseline.json current.json
     mt_report --threshold 4 --json report.json old.json new.json

   Exit 0 when every matched variant's median delta sits inside the
   pooled noise band, 1 when at least one regression escapes it, 3 when
   the medians held but a variant's measurement-quality verdict
   regressed (e.g. stable -> unstable). *)

open Cmdliner

let run baseline current threshold min_band json_out quiet =
  match Mt_obsv.Snapshot.load baseline, Mt_obsv.Snapshot.load current with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "mt_report: %s\n" msg;
    2
  | Ok base, Ok cur ->
    let diff = Mt_obsv.Diff.compare ~threshold ~min_band ~baseline:base cur in
    if not quiet then print_string (Mt_obsv.Diff.render diff);
    Option.iter
      (fun path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc
              (Mt_obsv.Json.to_string ~indent:true (Mt_obsv.Diff.to_json diff))))
      json_out;
    (* Perf regressions dominate the exit code; a quality-only failure
       gets its own value so CI can distinguish "the code got slower"
       from "the measurement got untrustworthy". *)
    if Mt_obsv.Diff.has_regressions diff then 1
    else if Mt_obsv.Diff.has_quality_regressions diff then 3
    else 0

(* Plain strings, not Arg.file: a missing file must be our documented
   exit 2, not cmdliner's usage error. *)
let baseline_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"BASELINE" ~doc:"Baseline snapshot (JSON).")

let current_arg =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"CURRENT" ~doc:"Current snapshot (JSON).")

let threshold_arg =
  Arg.(value & opt float Mt_obsv.Diff.default_threshold
       & info [ "threshold" ] ~docv:"K"
           ~doc:"Noise-gate multiplier: a median delta must exceed $(docv) \
                 times the pooled coefficient of variation of the two runs \
                 to be flagged.")

let min_band_arg =
  Arg.(value & opt float Mt_obsv.Diff.default_min_band
       & info [ "min-band" ] ~docv:"FRAC"
           ~doc:"Floor under the noise band as a fraction of the baseline \
                 median (the simulator can measure with zero variance).")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the full comparison as machine-readable JSON.")

let quiet_arg =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Suppress the table; exit code only.")

let cmd =
  let doc = "compare two run snapshots and flag perf and quality regressions" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads two snapshots written by mt_study/mt_experiments/bench \
         $(b,--snapshot-out), matches variants by key, and judges each \
         median delta against a noise band pooled from both runs' own \
         variance.  Deltas inside the band are reported as unchanged, so a \
         CI gate built on the exit code does not flap on measurement noise. \
         Each variant's measurement-quality verdict (stable/noisy/unstable, \
         snapshot schema 2+) is compared independently: a verdict that \
         worsened is a quality regression with its own note and exit code, \
         even when the median held.  Variants quarantined by the resilience \
         supervisor (schema 3) are called out in the notes so their missing \
         stats are not mistaken for deleted variants.";
      `S Manpage.s_exit_status;
      `P "0 on no regressions, 1 when a median regression escapes the noise \
          band, 2 on unreadable snapshots, 3 when only measurement quality \
          regressed (verdict worsened, medians inside the band).";
    ]
  in
  Cmd.v (Cmd.info "mt_report" ~doc ~man)
    Term.(
      const run $ baseline_arg $ current_arg $ threshold_arg $ min_band_arg
      $ json_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
