(* Compare run snapshots with a CoV noise gate — the CI regression
   check:

     mt_report baseline.json current.json
     mt_report --threshold 4 --json report.json old.json new.json
     mt_report --history runs/                 # classify the archive
     mt_report --history runs/ current.json    # gate vs windowed baseline
     mt_report --plan plan.json full.json pruned.json

   With --plan (a study plan from mt_optimize), both sides are first
   restricted to the variants the plan selects — so a full-suite
   baseline diffs cleanly against a pruned run — and every dropped
   variant whose canary's verdict is a believed move gains a
   synthesized entry inheriting that verdict, so the flagged-variant
   set matches what the full suite would have flagged.

   Two-file mode diffs exactly two snapshots.  With --history the
   baseline side comes from a snapshot archive (written by
   --history-append / mt_serve --history-dir): alone, the archive's
   newest lineage is trend-classified per variant (sparkline, drift,
   changepoint); with a CURRENT snapshot, it is gated against the
   median of the last K stationary-regime archived runs instead of a
   single baseline file — so one lucky or unlucky baseline run cannot
   flip the gate.

   Exit 0 when every matched variant's median delta sits inside the
   pooled noise band (and no timeline worsened), 1 when a regression or
   worsening trend escapes it, 3 when the medians held but a variant's
   measurement-quality verdict regressed (e.g. stable -> unstable). *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Timeline analysis (--history without CURRENT)                       *)
(* ------------------------------------------------------------------ *)

let trend_row hist entries key =
  let points = Mt_obsv.History.series ~entries hist ~variant:key in
  let medians =
    Array.of_list
      (List.map (fun (_, v) -> v.Mt_obsv.Snapshot.median) points)
  in
  (key, points, medians, Mt_obsv.History.trend points)

(* A timeline "fails" when the latest regime is worse than the previous
   one: a step regression, or an upward drift that escaped the band.
   Step improvements and downward drift are good news, not gate
   failures. *)
let trend_worsened (tr : Mt_stats.Trend.result) =
  match tr.Mt_stats.Trend.classification with
  | Mt_stats.Trend.Step_regression -> true
  | Mt_stats.Trend.Drifting -> tr.Mt_stats.Trend.drift > 0.
  | Mt_stats.Trend.Stationary | Mt_stats.Trend.Step_improvement -> false

let render_timeline hist entries rows =
  let buf = Buffer.create 1024 in
  (match entries with
  | [] -> ()
  | e :: _ ->
    Buffer.add_string buf
      (Printf.sprintf
         "history: %s — %d comparable runs of %s on %s (%d archived)\n\n"
         (Mt_obsv.History.dir hist) (List.length entries)
         e.Mt_obsv.History.kernel_name e.Mt_obsv.History.machine_name
         (Mt_obsv.History.length hist)));
  let key_w =
    List.fold_left (fun acc (k, _, _, _) -> max acc (String.length k)) 7 rows
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %-16s %9s %9s  %s\n" key_w "variant"
       "classification" "shift" "drift" "timeline");
  List.iter
    (fun (key, points, medians, (tr : Mt_stats.Trend.result)) ->
      let mark =
        match tr.Mt_stats.Trend.classification with
        | Mt_stats.Trend.Step_regression -> " <-- regression"
        | Mt_stats.Trend.Drifting when tr.Mt_stats.Trend.drift > 0. ->
          " <-- worsening"
        | _ -> ""
      in
      let changepoint =
        match tr.Mt_stats.Trend.changepoint with
        | Some k -> (
          match List.nth_opt points k with
          | Some (e, _) ->
            Printf.sprintf " (step at %s)" e.Mt_obsv.History.label
          | None -> "")
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %-16s %+8.1f%% %+8.1f%%  %s%s%s\n" key_w key
           (Mt_stats.Trend.classification_to_string
              tr.Mt_stats.Trend.classification)
           (100. *. tr.Mt_stats.Trend.shift)
           (100. *. tr.Mt_stats.Trend.drift)
           (Microtools.Ascii_plot.sparkline medians)
           changepoint mark))
    rows;
  Buffer.contents buf

let timeline_json rows =
  Mt_obsv.Json.List
    (List.map
       (fun (key, _, medians, (tr : Mt_stats.Trend.result)) ->
         Mt_obsv.Json.Obj
           [
             ("key", Mt_obsv.Json.Str key);
             ( "classification",
               Mt_obsv.Json.Str
                 (Mt_stats.Trend.classification_to_string
                    tr.Mt_stats.Trend.classification) );
             ( "changepoint",
               match tr.Mt_stats.Trend.changepoint with
               | Some k -> Mt_obsv.Json.Num (float_of_int k)
               | None -> Mt_obsv.Json.Null );
             ("shift", Mt_obsv.Json.Num tr.Mt_stats.Trend.shift);
             ("drift", Mt_obsv.Json.Num tr.Mt_stats.Trend.drift);
             ("band", Mt_obsv.Json.Num tr.Mt_stats.Trend.band);
             ( "medians",
               Mt_obsv.Json.List
                 (List.map (fun m -> Mt_obsv.Json.Num m) (Array.to_list medians))
             );
           ])
       rows)

let write_json path json =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Mt_obsv.Json.to_string ~indent:true json))

(* Comparable lineage = the archive filtered to the newest entry's
   kernel and machine hashes (or, when gating a CURRENT snapshot, to
   that snapshot's hashes). *)
let lineage hist ~kernel_hash ~machine_hash =
  Mt_obsv.History.matching ~kernel_hash ~machine_hash hist

let plan_keys plan keys =
  match plan with
  | None -> keys
  | Some p -> List.filter (Mt_optimize.Plan.selects p) keys

let plan_diff plan ~baseline current ~threshold ~min_band =
  match plan with
  | None -> Mt_obsv.Diff.compare ~threshold ~min_band ~baseline current
  | Some p ->
    let diff =
      Mt_obsv.Diff.compare ~threshold ~min_band
        ~baseline:(Mt_optimize.Plan.filter_snapshot p baseline)
        (Mt_optimize.Plan.filter_snapshot p current)
    in
    Mt_optimize.Plan.expand_diff p diff

let run_timeline dir plan threshold min_band json_out quiet =
  match Mt_obsv.History.load dir with
  | Error msg ->
    Printf.eprintf "mt_report: %s\n" msg;
    2
  | Ok hist -> (
    match Mt_obsv.History.latest hist with
    | None ->
      Printf.eprintf "mt_report: %s: empty history archive\n" dir;
      2
    | Some newest ->
      let entries =
        lineage hist ~kernel_hash:newest.Mt_obsv.History.kernel_hash
          ~machine_hash:newest.Mt_obsv.History.machine_hash
      in
      let rows =
        List.map
          (fun key -> trend_row hist entries key)
          (plan_keys plan (Mt_obsv.History.keys ~entries hist))
      in
      let rows =
        List.map
          (fun (key, points, medians, _) ->
            ( key,
              points,
              medians,
              Mt_obsv.History.trend ~threshold ~min_band points ))
          rows
      in
      if not quiet then print_string (render_timeline hist entries rows);
      Option.iter (fun path -> write_json path (timeline_json rows)) json_out;
      if List.exists (fun (_, _, _, tr) -> trend_worsened tr) rows then 1
      else 0)

let run_gate dir window current plan threshold min_band json_out quiet =
  match (Mt_obsv.History.load dir, Mt_obsv.Snapshot.load current) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "mt_report: %s\n" msg;
    2
  | Ok hist, Ok cur -> (
    let entries =
      lineage hist ~kernel_hash:cur.Mt_obsv.Snapshot.kernel_hash
        ~machine_hash:cur.Mt_obsv.Snapshot.machine_hash
    in
    if entries = [] then begin
      Printf.eprintf
        "mt_report: %s: no archived runs match %s on %s (archive has %d \
         runs of other lineages)\n"
        dir cur.Mt_obsv.Snapshot.kernel_name cur.Mt_obsv.Snapshot.machine_name
        (match Mt_obsv.History.load dir with
        | Ok h -> Mt_obsv.History.length h
        | Error _ -> 0);
      2
    end
    else
      match Mt_obsv.History.baseline ~window ~threshold ~min_band hist entries with
      | Error msg ->
        Printf.eprintf "mt_report: %s\n" msg;
        2
      | Ok base ->
        let diff = plan_diff plan ~baseline:base cur ~threshold ~min_band in
        if not quiet then begin
          Printf.printf
            "baseline: median of last %d stationary-regime runs (%d archived \
             in %s)\n\n"
            (min window (List.length entries))
            (List.length entries) dir;
          print_string (Mt_obsv.Diff.render diff);
          (* The longitudinal view alongside the verdict: each gated
             variant's archived medians plus the incoming run. *)
          let rows =
            List.map
              (fun key ->
                let _, points, medians, tr =
                  trend_row hist entries key
                in
                let with_cur =
                  match
                    List.find_opt
                      (fun (v : Mt_obsv.Snapshot.variant_stat) ->
                        v.Mt_obsv.Snapshot.key = key)
                      cur.Mt_obsv.Snapshot.variants
                  with
                  | Some v ->
                    Array.append medians [| v.Mt_obsv.Snapshot.median |]
                  | None -> medians
                in
                (key, points, with_cur, tr))
              (plan_keys plan (Mt_obsv.History.keys ~entries hist))
          in
          print_newline ();
          print_string (render_timeline hist entries rows)
        end;
        Option.iter
          (fun path -> write_json path (Mt_obsv.Diff.to_json diff))
          json_out;
        if Mt_obsv.Diff.has_regressions diff then 1
        else if Mt_obsv.Diff.has_quality_regressions diff then 3
        else 0)

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)
(* ------------------------------------------------------------------ *)

let run history window first second plan threshold min_band json_out quiet =
  match (history, first, second) with
  | None, Some baseline, Some current -> (
    match (Mt_obsv.Snapshot.load baseline, Mt_obsv.Snapshot.load current) with
    | Error msg, _ | _, Error msg ->
      Printf.eprintf "mt_report: %s\n" msg;
      2
    | Ok base, Ok cur ->
      let diff = plan_diff plan ~baseline:base cur ~threshold ~min_band in
      if not quiet then print_string (Mt_obsv.Diff.render diff);
      Option.iter
        (fun path -> write_json path (Mt_obsv.Diff.to_json diff))
        json_out;
      (* Perf regressions dominate the exit code; a quality-only failure
         gets its own value so CI can distinguish "the code got slower"
         from "the measurement got untrustworthy". *)
      if Mt_obsv.Diff.has_regressions diff then 1
      else if Mt_obsv.Diff.has_quality_regressions diff then 3
      else 0
    )
  | None, _, _ ->
    Printf.eprintf
      "mt_report: need BASELINE and CURRENT snapshots (or --history DIR)\n";
    2
  | Some dir, None, None ->
    run_timeline dir plan threshold min_band json_out quiet
  | Some dir, Some current, None ->
    run_gate dir window current plan threshold min_band json_out quiet
  | Some _, _, Some _ ->
    Printf.eprintf
      "mt_report: --history takes at most one snapshot (the current run)\n";
    2

(* Plain strings, not Arg.file: a missing file must be our documented
   exit 2, not cmdliner's usage error.  Both positionals are optional at
   the parser level so the --history modes can omit them; the mode
   dispatch above enforces the real arity. *)
let first_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"BASELINE"
           ~doc:"Baseline snapshot (JSON).  With $(b,--history), this is \
                 the $(i,current) snapshot gated against the archive.")

let second_arg =
  Arg.(value & pos 1 (some string) None
       & info [] ~docv:"CURRENT" ~doc:"Current snapshot (JSON).")

let history_arg =
  Arg.(value & opt (some string) None
       & info [ "history" ] ~docv:"DIR"
           ~doc:"Snapshot archive written by $(b,--history-append) or \
                 mt_serve $(b,--history-dir).  Alone: classify each \
                 variant's timeline (stationary / drifting / step).  With \
                 a snapshot argument: gate it against the median of the \
                 last $(b,--history-window) stationary-regime runs.")

let window_arg =
  Arg.(value & opt int Mt_obsv.History.default_window
       & info [ "history-window" ] ~docv:"K"
           ~doc:"Archived runs per windowed baseline.")

let threshold_arg =
  Arg.(value & opt float Mt_obsv.Diff.default_threshold
       & info [ "threshold" ] ~docv:"K"
           ~doc:"Noise-gate multiplier: a median delta must exceed $(docv) \
                 times the pooled coefficient of variation of the two runs \
                 to be flagged.")

let min_band_arg =
  Arg.(value & opt float Mt_obsv.Diff.default_min_band
       & info [ "min-band" ] ~docv:"FRAC"
           ~doc:"Floor under the noise band as a fraction of the baseline \
                 median (the simulator can measure with zero variance).")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the full comparison as machine-readable JSON.")

let quiet_arg =
  Arg.(value & flag
       & info [ "quiet"; "q" ] ~doc:"Suppress the table; exit code only.")

let cmd =
  let doc = "compare run snapshots and flag perf and quality regressions" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads two snapshots written by mt_study/mt_experiments/bench \
         $(b,--snapshot-out), matches variants by key, and judges each \
         median delta against a noise band pooled from both runs' own \
         variance.  Deltas inside the band are reported as unchanged, so a \
         CI gate built on the exit code does not flap on measurement noise. \
         Each variant's measurement-quality verdict (stable/noisy/unstable, \
         snapshot schema 2+) is compared independently: a verdict that \
         worsened is a quality regression with its own note and exit code, \
         even when the median held.  Variants quarantined by the resilience \
         supervisor (schema 3) are called out in the notes so their missing \
         stats are not mistaken for deleted variants.";
      `P
        "With $(b,--history), the baseline side is a longitudinal snapshot \
         archive instead of a single file.  The archive is filtered to the \
         comparable lineage (same kernel and machine content hashes as the \
         newest entry, or as the snapshot being gated), each variant's \
         median timeline is classified by a noise-gated changepoint \
         detector, and gating uses the median of the last K \
         stationary-regime runs — so one lucky baseline run cannot flip \
         the gate, and a step that already landed does not poison it.";
      `S Manpage.s_exit_status;
      `P "0 on no regressions, 1 when a median regression (or, with \
          $(b,--history), a step regression or worsening drift) escapes \
          the noise band, 2 on unreadable snapshots or an unusable \
          archive, 3 when only measurement quality regressed (verdict \
          worsened, medians inside the band).";
    ]
  in
  Cmd.v (Cmd.info "mt_report" ~doc ~man)
    Term.(
      const run $ history_arg $ window_arg $ first_arg $ second_arg
      $ Mt_cli.plan_arg $ threshold_arg $ min_band_arg $ json_arg
      $ quiet_arg)

let () = exit (Cmd.eval' cmd)
