(* mt_serve: the benchmark-as-a-service daemon — a long-lived process
   accepting study submissions from many concurrent clients over a
   Unix-domain socket and executing them through the same
   Run_config/Supervisor/Journal engine as one-shot mt_study, with one
   shared result cache in front of all of them.

     mt_serve /tmp/mt.sock --workers 2 --jobs 2 --cache-dir /var/cache/mt

   Clients: mt_study DESC --submit /tmp/mt.sock, or any program
   speaking the line-delimited JSON protocol (docs/SERVING.md).

   Exit codes: 0 clean shutdown, 2 cannot bind. *)

open Cmdliner

let run socket queue_capacity workers state_dir history_dir log_json config =
  let tel = Mt_cli.setup config in
  (* A daemon always keeps telemetry on, even without --trace-out /
     --metrics-out: the metrics endpoint and the job-latency quantiles
     in the stats reply and exit banner are its whole observability
     surface, and a handle that only exists when a trace file was
     requested would leave a live daemon blind. *)
  let tel =
    if Mt_telemetry.enabled tel then tel
    else begin
      let t = Mt_telemetry.create () in
      Mt_telemetry.set_global t;
      t
    end
  in
  let daemon_config =
    {
      Mt_serve.Daemon.socket_path = socket;
      queue_capacity;
      workers;
      state_dir;
      history_dir;
      log_json;
      base = config;
    }
  in
  match Mt_serve.Daemon.create daemon_config with
  | exception Failure msg ->
    Printf.eprintf "mt_serve: %s\n" msg;
    2
  | exception Unix.Unix_error (err, _, _) ->
    Printf.eprintf "mt_serve: cannot bind %s: %s\n" socket
      (Unix.error_message err);
    2
  | daemon ->
    Printf.printf "mt_serve: listening on %s (%s; queue %d, %d worker%s)\n%!"
      socket (Mt_cli.run_summary config) queue_capacity workers
      (if workers = 1 then "" else "s");
    let stop _ = Mt_serve.Daemon.stop daemon in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Mt_serve.Daemon.serve daemon;
    List.iter
      (fun (k, v) -> Printf.printf "%s: %d\n" k v)
      (Mt_serve.Daemon.stats daemon);
    Mt_cli.print_cache_stats config;
    Mt_cli.finish tel config;
    0

let socket_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOCKET"
        ~doc:"Unix-domain socket path to listen on (created; removed on \
              clean shutdown).")

let queue_arg =
  Arg.(
    value
    & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Submissions held waiting beyond the running ones; further \
           submissions are rejected with a typed queue-full error \
           (back-pressure, never a silent drop).")

let workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker threads executing jobs concurrently; each job \
           additionally parallelises its variants across $(b,--jobs) \
           domains.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Keep a crash journal per running job under $(docv) \
           (job-N.journal, removed on completion), so a killed daemon \
           leaves resumable checkpoints.")

let history_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history-dir" ] ~docv:"DIR"
        ~doc:
          "Archive every completed job's run snapshot into the history \
           directory $(docv) (append-only, safe to share with \
           $(b,--history-append) CLI runs); analyse the accumulated \
           timeline with $(b,mt_report --history).")

let log_json_arg =
  Arg.(
    value
    & flag
    & info [ "log-json" ]
        ~doc:
          "Emit one structured JSON log line per job event on stdout \
           (job.accepted, job.done, job.failed, with queue-wait and \
           execution latency in microseconds) instead of relying on the \
           human banner alone.")

let cmd =
  let doc = "serve study submissions from a persistent daemon" in
  Cmd.v
    (Cmd.info "mt_serve" ~doc
       ~exits:(Cmd.Exit.info 2 ~doc:"cannot bind the socket." :: Cmd.Exit.defaults))
    Term.(
      const run $ socket_arg $ queue_arg $ workers_arg $ state_dir_arg
      $ history_dir_arg $ log_json_arg $ Mt_cli.term)

let () = exit (Cmd.eval' cmd)
