(* The whole MicroTools workflow as one command (Section 2's tuning
   loop): an XML kernel description in, every generated variant
   measured, the ranking and the winner out.

     mt_study descriptions/loadstore.xml --array-kb 32 --per element

   Run-shaping flags (--jobs, --cache-dir, --retries, --inject-fault,
   --journal/--resume, --trace-out, ...) are the shared Mt_cli set.

   Exit codes: 0 success, 1 nothing succeeded, 2 bad machine, 4 partial
   success (some variants succeeded, some were quarantined). *)

open Cmdliner
open Mt_launcher

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* Client mode: the same flags, round-tripped into an mt_serve
   submission.  The daemon streams back the header and per-variant CSV
   rows; rebuilding the document with the same Mt_stats.Csv renderer
   makes --csv output byte-identical to a local run's. *)
let submit_run ~socket input machine machine_file array_kb per repetitions
    experiments csv config =
  let machine =
    match machine_file with
    | Some path -> Mt_serve.Protocol.Inline_xml (read_file path)
    | None -> Mt_serve.Protocol.Preset machine
  in
  let submission =
    {
      Mt_serve.Protocol.kernel_xml = read_file input;
      machine;
      array_kb;
      per;
      repetitions;
      experiments;
      run = Mt_serve.Protocol.run_options_of_config config;
    }
  in
  let on_response = function
    | Mt_serve.Protocol.Accepted { job; queue_depth } ->
      Printf.printf "submitted to %s: job %d (queue depth %d)\n%!" socket job
        queue_depth
    | _ -> ()
  in
  match Mt_serve.Client.submit ~socket ~on_response submission with
  | Error msg ->
    Printf.eprintf "mt_study: submit: %s\n" msg;
    1
  | Ok summary ->
    (match (csv, summary.Mt_serve.Client.csv) with
    | Some path, Some doc ->
      Mt_stats.Csv.save doc path;
      Printf.printf "full results written to %s\n" path
    | Some _, None ->
      Printf.eprintf "mt_study: daemon streamed no result rows\n"
    | None, _ -> ());
    (match
       (config.Microtools.Study.Run_config.snapshot_out,
        summary.Mt_serve.Client.snapshot)
     with
    | Some path, Some doc ->
      let oc = open_out path in
      output_string oc (Mt_obsv.Json.to_string ~indent:true doc);
      close_out oc;
      Printf.printf "run snapshot written to %s (compare with mt_report)\n" path
    | _ -> ());
    (* The daemon streams the snapshot back as JSON; --history-append in
       client mode archives it locally (the daemon may additionally keep
       its own archive via mt_serve --history-dir). *)
    (match
       (config.Microtools.Study.Run_config.history_append,
        summary.Mt_serve.Client.snapshot)
     with
    | Some _, Some doc -> (
      match Mt_obsv.Snapshot.of_json doc with
      | Ok snap ->
        Mt_cli.append_history ~label:(Filename.basename input) config snap
      | Error msg -> Printf.eprintf "mt_study: history: %s\n" msg)
    | Some _, None ->
      Printf.eprintf "mt_study: history: daemon streamed no snapshot\n"
    | None, _ -> ());
    Printf.printf "job %d done: %d quarantined, daemon cache hit rate %.1f%%\n"
      summary.Mt_serve.Client.job summary.Mt_serve.Client.quarantined
      (100. *. summary.Mt_serve.Client.cache_hit_rate);
    if summary.Mt_serve.Client.quarantined > 0 then 4 else 0

let run input machine machine_file array_kb per repetitions experiments top
    csv submit config =
  match submit with
  | Some socket ->
    submit_run ~socket input machine machine_file array_kb per repetitions
      experiments csv config
  | None ->
  let tel = Mt_cli.setup config in
  let resolved =
    match machine_file with
    | Some path -> Mt_machine.Config_io.of_file path
    | None -> (
      match Mt_machine.Config.find_preset machine with
      | Some cfg -> Ok cfg
      | None ->
        Error
          (Printf.sprintf "unknown machine %s (known: %s)" machine
             (String.concat ", " (List.map fst Mt_machine.Config.presets))))
  in
  match resolved with
  | Error msg ->
    Printf.eprintf "mt_study: %s\n" msg;
    2
  | Ok cfg -> (
    let per =
      match per with
      | "pass" -> Options.Per_pass
      | "instruction" -> Options.Per_instruction
      | "element" -> Options.Per_element
      | _ -> Options.Per_call
    in
    let opts =
      {
        (Options.default cfg) with
        Options.array_bytes = array_kb * 1024;
        per;
        repetitions;
        experiments;
      }
    in
    let ic = open_in_bin input in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Microtools.Study.of_description text opts with
    | Error msg ->
      Printf.eprintf "mt_study: %s: %s\n" input msg;
      1
    | Ok study -> (
      let variants = Microtools.Study.variants study in
      Printf.printf "generated %d variants; measuring on %s (%s)...\n"
        (List.length variants) cfg.Mt_machine.Config.name
        (Mt_cli.run_summary config);
      Option.iter
        (fun plan -> print_endline (Mt_optimize.Plan.summary plan))
        config.Microtools.Study.Run_config.plan;
      print_newline ();
      match Microtools.Study.run ~config study with
      | exception Failure msg ->
        Printf.eprintf "mt_study: %s\n" msg;
        1
      | outcomes ->
        let ok = Microtools.Study.successes outcomes in
        let ranked =
          List.sort
            (fun (_, a) (_, b) -> Float.compare a.Report.value b.Report.value)
            ok
        in
        let shown = if top > 0 then top else List.length ranked in
        List.iteri
          (fun i (v, r) ->
            if i < shown then
              Printf.printf "%3d. %-44s %10.3f %s/%s\n" (i + 1)
                (Mt_creator.Variant.id v) r.Report.value r.Report.unit_label
                r.Report.per_label)
          ranked;
        if List.length ranked > shown then
          Printf.printf "     ... and %d more (use --top 0 for all)\n"
            (List.length ranked - shown);
        Printf.printf "\nper-unroll minima:\n";
        List.iter
          (fun (u, v) -> Printf.printf "  unroll %d: %.3f\n" u v)
          (Microtools.Study.min_per_unroll outcomes);
        let stable, noisy, unstable =
          Microtools.Study.quality_summary outcomes
        in
        Printf.printf "measurement quality: %d stable, %d noisy, %d unstable\n"
          stable noisy unstable;
        (match
           Microtools.Analysis.recommend_unroll
             (Microtools.Study.min_per_unroll outcomes)
         with
        | Some u -> Printf.printf "recommended unroll factor: %d\n" u
        | None -> ());
        (match config.Microtools.Study.Run_config.resume_from with
        | Some path ->
          Printf.printf "journal: resumed %d of %d variants from %s\n"
            (Microtools.Study.resumed_count outcomes)
            (List.length outcomes) path
        | None -> ());
        Mt_cli.report_profiles config
          (List.filter_map
             (fun (v, r) ->
               Option.map
                 (fun b -> (Mt_creator.Variant.id v, b))
                 r.Mt_launcher.Report.profile)
             ranked);
        let quarantined = Microtools.Study.quarantined outcomes in
        List.iter
          (fun (v, q) ->
            Printf.printf "quarantined: %s: %s\n" (Mt_creator.Variant.id v)
              (Mt_resilience.Supervisor.quarantine_to_string q))
          quarantined;
        (match csv with
        | Some path ->
          Mt_stats.Csv.save (Microtools.Study.csv outcomes) path;
          Printf.printf "full results written to %s\n" path
        | None -> ());
        Mt_cli.print_cache_stats config;
        (match
           ( config.Microtools.Study.Run_config.snapshot_out,
             config.Microtools.Study.Run_config.history_append )
         with
        | None, None -> ()
        | snapshot_out, _ ->
          let snap = Microtools.Study.snapshot study outcomes in
          (match snapshot_out with
          | Some path ->
            Mt_obsv.Snapshot.save snap path;
            Printf.printf
              "run snapshot written to %s (compare with mt_report)\n" path
          | None -> ());
          Mt_cli.append_history ~label:(Filename.basename input) config snap);
        let code =
          match Microtools.Study.best outcomes with
          | Some (v, r) ->
            Printf.printf "\nbest variant: %s at %.3f %s/%s\n"
              (Mt_creator.Variant.id v) r.Report.value r.Report.unit_label
              r.Report.per_label;
            if quarantined = [] then 0 else 4
          | None ->
            prerr_endline "mt_study: no variant succeeded";
            1
        in
        Mt_cli.finish tel config;
        code))

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESCRIPTION" ~doc:"XML kernel description.")

let machine_arg =
  Arg.(value & opt string "nehalem_x5650_2s" & info [ "machine" ] ~doc:"Machine preset.")

let machine_file_arg =
  Arg.(value & opt (some file) None & info [ "machine-file" ] ~docv:"XML" ~doc:"Machine description file.")

let array_arg = Arg.(value & opt int 64 & info [ "array-kb" ] ~doc:"Array size in KiB.")

let per_arg =
  Arg.(value & opt (enum [ ("pass", "pass"); ("instruction", "instruction"); ("element", "element"); ("call", "call") ]) "element"
       & info [ "per" ] ~doc:"Normalisation unit.")

let reps_arg = Arg.(value & opt int 2 & info [ "repetitions" ] ~doc:"Calls per experiment.")

let exps_arg = Arg.(value & opt int 5 & info [ "experiments" ] ~doc:"Experiments per variant.")

let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Ranked variants to print (0 = all).")

let csv_arg = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write all results as CSV.")

let cmd =
  let doc = "generate a kernel's variation space and rank every variant" in
  Cmd.v (Cmd.info "mt_study" ~doc ~exits:(Cmd.Exit.info 4 ~doc:"partial success: some variants were quarantined." :: Cmd.Exit.defaults))
    Term.(
      const run $ input_arg $ machine_arg $ machine_file_arg $ array_arg
      $ per_arg $ reps_arg $ exps_arg $ top_arg $ csv_arg $ Mt_cli.submit_arg
      $ Mt_cli.term)

let () = exit (Cmd.eval' cmd)
