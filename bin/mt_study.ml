(* The whole MicroTools workflow as one command (Section 2's tuning
   loop): an XML kernel description in, every generated variant
   measured, the ranking and the winner out.

     mt_study descriptions/loadstore.xml --array-kb 32 --per element *)

open Cmdliner
open Mt_launcher

let run input machine machine_file array_kb per repetitions experiments
    adaptive rciw_target max_experiments top csv jobs cache_dir no_cache
    trace_out metrics_out snapshot_out trace_detail =
  Mt_telemetry.set_detail trace_detail;
  let tel =
    if trace_out <> None || metrics_out <> None then begin
      let t = Mt_telemetry.create () in
      Mt_telemetry.set_global t;
      t
    end
    else Mt_telemetry.disabled
  in
  let write_telemetry () =
    Option.iter
      (fun path ->
        Mt_telemetry.write_chrome_trace tel path;
        Printf.printf "trace written to %s (open in chrome://tracing or Perfetto)\n"
          path)
      trace_out;
    Option.iter
      (fun path ->
        Mt_telemetry.write_metrics_csv tel path;
        Printf.printf "metrics written to %s\n" path)
      metrics_out
  in
  let resolved =
    match machine_file with
    | Some path -> Mt_machine.Config_io.of_file path
    | None -> (
      match Mt_machine.Config.find_preset machine with
      | Some cfg -> Ok cfg
      | None ->
        Error
          (Printf.sprintf "unknown machine %s (known: %s)" machine
             (String.concat ", " (List.map fst Mt_machine.Config.presets))))
  in
  match resolved with
  | Error msg ->
    Printf.eprintf "mt_study: %s\n" msg;
    2
  | Ok cfg -> (
    let per =
      match per with
      | "pass" -> Options.Per_pass
      | "instruction" -> Options.Per_instruction
      | "element" -> Options.Per_element
      | _ -> Options.Per_call
    in
    let opts =
      {
        (Options.default cfg) with
        Options.array_bytes = array_kb * 1024;
        per;
        repetitions;
        experiments;
        adaptive_experiments = adaptive;
        rciw_target;
        max_experiments = max max_experiments experiments;
      }
    in
    let ic = open_in_bin input in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Microtools.Study.of_description text opts with
    | Error msg ->
      Printf.eprintf "mt_study: %s: %s\n" input msg;
      1
    | Ok study -> (
      let domains =
        if jobs = 0 then Mt_parallel.Pool.available_domains () else max 1 jobs
      in
      let cache =
        if no_cache then None
        else
          Some
            (Mt_parallel.Cache.create
               ~dir:(Option.value ~default:(Mt_parallel.Cache.default_dir ()) cache_dir)
               ())
      in
      let variants = Microtools.Study.variants study in
      Printf.printf "generated %d variants; measuring on %s (%d domain%s%s)...\n\n"
        (List.length variants) cfg.Mt_machine.Config.name domains
        (if domains = 1 then "" else "s")
        (match cache with
        | Some c -> ", cache " ^ Option.value ~default:"memory" (Mt_parallel.Cache.dir c)
        | None -> ", cache off");
      let outcomes = Microtools.Study.run ~domains ?cache study in
      let ok = Microtools.Study.successes outcomes in
      let ranked =
        List.sort
          (fun (_, a) (_, b) -> Float.compare a.Report.value b.Report.value)
          ok
      in
      let shown = if top > 0 then top else List.length ranked in
      List.iteri
        (fun i (v, r) ->
          if i < shown then
            Printf.printf "%3d. %-44s %10.3f %s/%s\n" (i + 1)
              (Mt_creator.Variant.id v) r.Report.value r.Report.unit_label
              r.Report.per_label)
        ranked;
      if List.length ranked > shown then
        Printf.printf "     ... and %d more (use --top 0 for all)\n"
          (List.length ranked - shown);
      Printf.printf "\nper-unroll minima:\n";
      List.iter
        (fun (u, v) -> Printf.printf "  unroll %d: %.3f\n" u v)
        (Microtools.Study.min_per_unroll outcomes);
      let stable, noisy, unstable = Microtools.Study.quality_summary outcomes in
      Printf.printf "measurement quality: %d stable, %d noisy, %d unstable\n"
        stable noisy unstable;
      (match
         Microtools.Analysis.recommend_unroll
           (Microtools.Study.min_per_unroll outcomes)
       with
      | Some u -> Printf.printf "recommended unroll factor: %d\n" u
      | None -> ());
      (match csv with
      | Some path ->
        Mt_stats.Csv.save (Microtools.Study.csv outcomes) path;
        Printf.printf "full results written to %s\n" path
      | None -> ());
      (match cache with
      | Some c ->
        Printf.printf "cache: %d hits, %d misses, %.1f%% hit rate\n"
          (Mt_parallel.Cache.hits c) (Mt_parallel.Cache.misses c)
          (100. *. Mt_parallel.Cache.hit_rate c)
      | None -> ());
      (match snapshot_out with
      | Some path ->
        Mt_obsv.Snapshot.save (Microtools.Study.snapshot study outcomes) path;
        Printf.printf "run snapshot written to %s (compare with mt_report)\n" path
      | None -> ());
      let code =
        match Microtools.Study.best outcomes with
        | Some (v, r) ->
          Printf.printf "\nbest variant: %s at %.3f %s/%s\n"
            (Mt_creator.Variant.id v) r.Report.value r.Report.unit_label
            r.Report.per_label;
          0
        | None ->
          prerr_endline "mt_study: no variant succeeded";
          1
      in
      write_telemetry ();
      code))

let input_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESCRIPTION" ~doc:"XML kernel description.")

let machine_arg =
  Arg.(value & opt string "nehalem_x5650_2s" & info [ "machine" ] ~doc:"Machine preset.")

let machine_file_arg =
  Arg.(value & opt (some file) None & info [ "machine-file" ] ~docv:"XML" ~doc:"Machine description file.")

let array_arg = Arg.(value & opt int 64 & info [ "array-kb" ] ~doc:"Array size in KiB.")

let per_arg =
  Arg.(value & opt (enum [ ("pass", "pass"); ("instruction", "instruction"); ("element", "element"); ("call", "call") ]) "element"
       & info [ "per" ] ~doc:"Normalisation unit.")

let reps_arg = Arg.(value & opt int 2 & info [ "repetitions" ] ~doc:"Calls per experiment.")

let exps_arg = Arg.(value & opt int 5 & info [ "experiments" ] ~doc:"Experiments per variant.")

let adaptive_arg =
  Arg.(value & flag
       & info [ "adaptive-experiments" ]
           ~doc:"Keep measuring past $(b,--experiments) until each variant's \
                 bootstrap confidence interval is tight enough \
                 ($(b,--rciw-target)) or $(b,--max-experiments) is spent.")

let rciw_target_arg =
  Arg.(value & opt float 0.02
       & info [ "rciw-target" ] ~docv:"FRAC"
           ~doc:"Adaptive stop rule: relative confidence-interval width of \
                 the median to reach before stopping early.")

let max_exps_arg =
  Arg.(value & opt int 64
       & info [ "max-experiments" ] ~docv:"N"
           ~doc:"Adaptive budget ceiling per variant.")

let top_arg = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Ranked variants to print (0 = all).")

let csv_arg = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write all results as CSV.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Evaluate variants on $(docv) domains (0 = one per available core). \
                 Results are merged in variant order, so the output is identical \
                 to a sequential run.")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"On-disk result cache location (default: \\$XDG_CACHE_HOME/microtools \
                 or ~/.cache/microtools).")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the result cache; re-simulate every variant.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run (per-pass, \
                 per-variant and per-phase spans) to $(docv); open it in \
                 chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a key,value metrics CSV (pool, cache, simulator and \
                 memory counters) to $(docv).")

let snapshot_arg =
  Arg.(value & opt (some string) None
       & info [ "snapshot-out" ] ~docv:"FILE"
           ~doc:"Write a run-provenance snapshot (kernel/machine hashes, \
                 options, per-variant statistics) as JSON to $(docv); two \
                 snapshots are compared with mt_report.")

let trace_detail_arg =
  Arg.(value
       & opt (enum [ ("off", Mt_telemetry.Off); ("sampled", Mt_telemetry.Sampled); ("full", Mt_telemetry.Full) ])
           Mt_telemetry.Off
       & info [ "trace-detail" ]
           ~doc:"Instruction/cache lane detail in the Chrome trace: off (no \
                 lane bookkeeping on the simulate path), sampled (every 64th \
                 dynamic instruction), or full.  Takes effect when \
                 $(b,--trace-out) is given.")

let cmd =
  let doc = "generate a kernel's variation space and rank every variant" in
  Cmd.v (Cmd.info "mt_study" ~doc)
    Term.(
      const run $ input_arg $ machine_arg $ machine_file_arg $ array_arg
      $ per_arg $ reps_arg $ exps_arg $ adaptive_arg $ rciw_target_arg
      $ max_exps_arg $ top_arg $ csv_arg $ jobs_arg $ cache_dir_arg
      $ no_cache_arg $ trace_arg $ metrics_arg $ snapshot_arg
      $ trace_detail_arg)

let () = exit (Cmd.eval' cmd)
