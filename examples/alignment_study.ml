(* Alignment sweeps under multi-core pressure — the Section 5.2.2
   study: a multi-array traversal whose cost swings with the arrays'
   relative page offsets once several cores saturate memory.

   Run with: dune exec examples/alignment_study.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher

let machine = Config.nehalem_x7550_4s

let () =
  let spec = Mt_kernels.Streams.multi_array_spec ~arrays:4 () in
  let variant =
    match Creator.generate spec with
    | v :: _ -> v
    | [] -> failwith "no variant"
  in
  let program = Variant.concrete_body variant in
  let abi = Option.get variant.Variant.abi in
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes = 128 * 1024;
      per = Options.Per_pass;
      warmup = false;
      repetitions = 1;
      experiments = 1;
      cores = 8;
    }
  in
  let configs = Alignment.stride_configs ~arrays:4 ~step:256 ~modulus:4096 in
  Printf.printf "sweeping %d alignment configurations of 4 arrays on 8 cores...\n\n"
    (List.length configs);
  match Alignment.sweep opts program abi ~configs with
  | Error msg -> failwith msg
  | Ok points ->
    List.iter
      (fun (p : Alignment.point) ->
        Printf.printf "  offsets %-22s %8.2f cycles/iteration\n"
          (String.concat "/" (List.map string_of_int p.Alignment.offsets))
          p.Alignment.report.Report.value)
      points;
    let best = Alignment.best points and worst = Alignment.worst points in
    Printf.printf "\nbest  %s at %.2f\n"
      (String.concat "/" (List.map string_of_int best.Alignment.offsets))
      best.Alignment.report.Report.value;
    Printf.printf "worst %s at %.2f (%.0f%% slower)\n"
      (String.concat "/" (List.map string_of_int worst.Alignment.offsets))
      worst.Alignment.report.Report.value
      (Alignment.spread points *. 100.);
    print_endline "\nMicroLauncher sweeps these configurations automatically; the";
    print_endline "spread is why it re-checks alignment for every kernel it runs."
