(* Automated analysis of MicroTools data (the paper's Section 7 future
   work): classify what bounds each kernel, find the knee of a size
   sweep, pick an unroll factor, and compare the energy of regular vs
   streaming stores.

   Run with: dune exec examples/bottleneck_analysis.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher
open Microtools

let machine = Config.nehalem_x5650_2s

let one_variant spec =
  match Creator.generate spec with
  | [ v ] -> v
  | vs -> failwith (Printf.sprintf "expected 1 variant, got %d" (List.length vs))

let outcome_of ?(array_kb = 16) variant =
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes = array_kb * 1024;
      repetitions = 1;
      experiments = 1;
    }
  in
  let prepared =
    match
      Protocol.prepare opts (Variant.concrete_body variant)
        (Option.get variant.Variant.abi)
    with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  ignore (Protocol.run_once prepared);
  match Protocol.run_once prepared with
  | Ok o -> o
  | Error msg -> failwith msg

let () =
  (* 1. Bottleneck classification across kernel flavours. *)
  print_endline "== what bounds each kernel? ==";
  List.iter
    (fun (label, spec, array_kb) ->
      let o = outcome_of ~array_kb (one_variant spec) in
      Printf.printf "  %-22s %s\n" label (Analysis.describe machine o))
    [
      ("movss x8 in L1", Mt_kernels.Streams.movss_unrolled_spec ~unroll:8 (), 16);
      ("movss x8, 4 MiB (L3)", Mt_kernels.Streams.movss_unrolled_spec ~unroll:8 (), 4096);
      ( "stride-1024 walk",
        Mt_kernels.Streams.strided_spec ~strides:[ 1024 ] (),
        2048 );
      ( "stencil (3-point)",
        Mt_kernels.Streams.stencil_spec ~unroll:(1, 1) (),
        16 );
    ];
  (* 2. Knee detection on the Fig. 3 size sweep. *)
  print_endline "\n== knee of the matmul size sweep ==";
  let series =
    List.map
      (fun n ->
        let d =
          match Mt_kernels.Matmul.make_driver ~machine ~n (`Original 1) with
          | Ok d -> d
          | Error m -> failwith m
        in
        match Mt_kernels.Matmul.sample_run ~rows:1 ~cols:8 ~warm_cols:8 d with
        | Ok s -> (float_of_int n, s.Mt_kernels.Matmul.cycles_per_iteration)
        | Error m -> failwith m)
      [ 100; 200; 300; 400; 500; 600; 700 ]
  in
  (match Analysis.find_knee series with
  | Some k ->
    Printf.printf "  performance cliff after n = %.0f: %.1f -> %.1f cycles/iter (%.1fx)\n"
      k.Analysis.at k.Analysis.before k.Analysis.after k.Analysis.ratio
  | None -> print_endline "  no knee found");
  (* 3. Unroll recommendation from a generated study. *)
  print_endline "\n== recommended unroll factor (movss, L1-resident) ==";
  let study =
    Study.create
      (Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
         ~swap_after:false ())
      {
        (Options.default machine) with
        Options.array_bytes = 16 * 1024;
        per = Options.Per_element;
        repetitions = 1;
        experiments = 2;
      }
  in
  let mins = Study.min_per_unroll (Study.run study) in
  List.iter (fun (u, v) -> Printf.printf "  unroll %d: %.3f cycles/element\n" u v) mins;
  (match Analysis.recommend_unroll mins with
  | Some u -> Printf.printf "  -> use unroll %d (smallest within 2%% of the best)\n" u
  | None -> print_endline "  -> no recommendation");
  (* 4. Energy: regular vs streaming stores on a RAM-resident buffer. *)
  print_endline "\n== energy: movaps stores vs movntps streaming stores (1 MiB, cold) ==";
  List.iter
    (fun streaming ->
      let v =
        one_variant (Mt_kernels.Streams.store_stream_spec ~streaming ~unroll:(8, 8) ())
      in
      let opts =
        {
          (Options.default machine) with
          Options.array_bytes = 1024 * 1024;
          warmup = false;
          repetitions = 1;
          experiments = 1;
        }
      in
      let prepared =
        match
          Protocol.prepare opts (Variant.concrete_body v) (Option.get v.Variant.abi)
        with
        | Ok p -> p
        | Error m -> failwith m
      in
      match Protocol.run_once prepared with
      | Error m -> failwith m
      | Ok o ->
        let elements = float_of_int (o.Core.rax * 8) in
        Printf.printf "  %-8s %6.2f cycles/pass, %6.2f nJ/store, %s\n"
          (if streaming then "movntps" else "movaps")
          (o.Core.cycles /. float_of_int o.Core.rax)
          (Energy.joules machine o *. 1e9 /. elements)
          (Analysis.bottleneck_to_string (Analysis.classify machine o)))
    [ false; true ];
  print_endline "\nStreaming stores skip the read-for-ownership: half the DRAM";
  print_endline "traffic, visibly fewer cycles and nanojoules per element."
