(* MicroLauncher accepts C sources (Section 4.1): write the paper's
   Figure 1 matrix multiply as plain C, let the built-in C-subset
   compiler turn it into a kernel, and measure it — then compare with
   a simple streaming kernel written the same way.

   Run with: dune exec examples/c_kernels.exe *)

open Mt_machine
open Mt_launcher

let machine = Config.nehalem_x5650_2s

(* The paper's Figure 1, in array-subscript form. *)
let matmul_source =
  {|
int matmul(int n, double *A, double *B, double *C) {
  int i;
  int j;
  int k;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      double acc = 0.0;
      for (k = 0; k < n; k++) {
        acc += B[i * n + k] * C[k * n + j];
      }
      A[i * n + j] = acc;
    }
  }
  return n;
}
|}

let dot_source =
  {|
int dot(int n, double *a, double *b) {
  int i;
  double acc = 0.0;
  for (i = 0; i < n; i++) {
    acc += a[i] * b[i];
  }
  return n;
}
|}

let () =
  (* 1. Show the compilation: Figure 1 in, assembly out. *)
  let program, abi =
    match Mt_cc.Codegen.compile matmul_source with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  print_endline "== the built-in C compiler's output for Figure 1 ==";
  print_string (Mt_isa.Insn.program_to_string program);
  Format.printf "@.%a@." Mt_creator.Abi.pp abi;
  (* 2. Run the compiled multiply for a few sizes (cycles per inner
     iteration = cycles / n^3). *)
  print_endline "== compiled matmul, cycles per inner iteration ==";
  List.iter
    (fun n ->
      let memory = Memory.create machine in
      let mm = Memmap.create () in
      let alloc () = (Memmap.alloc mm ~size:(n * n * 8) ~align:4096 ~offset:0).Memmap.base in
      let open Mt_isa in
      let init =
        [
          (Reg.gpr64 Reg.RDI, n);
          (Reg.gpr64 Reg.RSI, alloc ());
          (Reg.gpr64 Reg.RDX, alloc ());
          (Reg.gpr64 Reg.RCX, alloc ());
        ]
      in
      match Core.run_program ~init machine memory program with
      | Ok r ->
        Printf.printf "  n = %3d: %6.2f cycles/iter   (%s)\n" n
          (r.Core.cycles /. float_of_int (n * n * n))
          (Microtools.Analysis.bottleneck_to_string
             (Microtools.Analysis.classify machine r))
      | Error e -> failwith (Core.error_to_string e))
    [ 32; 64; 96 ];
  print_endline "\n(The naive compiler recomputes i*n+k every iteration, so this";
  print_endline " runs a little hotter than the hand-scheduled Figure 2 kernel.)";
  (* 3. A .c file straight through MicroLauncher. *)
  print_endline "\n== a dot-product kernel measured straight from its .c file ==";
  let path = Filename.temp_file "dot" ".c" in
  let oc = open_out path in
  output_string oc dot_source;
  close_out oc;
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes = 32 * 1024;
      repetitions = 2;
      experiments = 5;
    }
  in
  (match Launcher.launch opts (Source.From_file path) with
  | Ok report -> Format.printf "  %a@." Report.pp report
  | Error msg -> failwith msg);
  Sys.remove path
