(* The Section 2 motivation study: take the naive matrix-multiply
   kernel, find where the working set falls out of the caches, check
   whether alignment matters, and pick an unroll factor — comparing the
   real kernel against its MicroCreator abstraction.

   Run with: dune exec examples/matmul_tuning.exe *)

open Mt_machine
open Mt_creator
open Mt_kernels

let machine = Config.nehalem_x5650_2s

let cycles ?alignments ~n source =
  let driver =
    match Matmul.make_driver ?alignments ~machine ~n source with
    | Ok d -> d
    | Error msg -> failwith msg
  in
  match Matmul.sample_run ~rows:1 ~cols:12 ~warm_cols:12 driver with
  | Ok s -> s.Matmul.cycles_per_iteration
  | Error msg -> failwith msg

let () =
  (* Step 1 (Fig. 3): sweep the matrix size to find the performance
     cliff — the point past which tiling would be mandatory. *)
  print_endline "== matrix size sweep (cycles per inner iteration) ==";
  List.iter
    (fun n -> Printf.printf "  %4d x %-4d  %8.2f\n" n n (cycles ~n (`Original 1)))
    [ 100; 200; 300; 400; 500; 600; 700 ];
  (* Step 2 (Fig. 4): does the matrices' alignment matter at 200x200? *)
  print_endline "\n== alignment check at 200x200 ==";
  let values =
    List.map
      (fun (a, b, c) ->
        let v = cycles ~alignments:(a, b, c) ~n:200 (`Original 1) in
        Printf.printf "  offsets %4d/%4d/%4d  %8.2f\n" a b c v;
        v)
      [ (0, 0, 0); (0, 1024, 2048); (16, 16, 16); (512, 0, 1024); (2048, 2048, 0) ]
  in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max 0. values in
  Printf.printf "  spread: %.2f%% (the paper found < 3%%)\n" ((hi -. lo) /. lo *. 100.);
  (* Step 3 (Fig. 5): unroll factors, real kernel vs its MicroCreator
     abstraction. *)
  print_endline "\n== unroll factors at 200x200 (original vs micro-benchmark) ==";
  List.iter
    (fun u ->
      let original = cycles ~n:200 (`Original u) in
      let micro =
        match Creator.generate (Matmul.micro_spec ~n:200 ~unroll:(u, u)) with
        | [ v ] -> cycles ~n:200 (`Micro v)
        | _ -> failwith "expected one variant"
      in
      Printf.printf "  unroll %d: original %6.2f   micro %6.2f\n" u original micro)
    [ 1; 2; 4; 8 ];
  print_endline "\nThe micro-benchmark tracks the real kernel, so the unroll";
  print_endline "factor can be chosen from generated programs alone.";
  (* Step 4 (Section 2's conclusion): past the cut-off, tile. *)
  print_endline "\n== tiling at n = 600 (past the Fig. 3 cut-off) ==";
  List.iter
    (fun tile ->
      match Matmul.tiled_cycles ~machine ~n:600 ~tile () with
      | Ok c ->
        Printf.printf "  tile %4s: %6.2f cycles/iter\n"
          (if tile = 600 then "none" else string_of_int tile)
          c
      | Error m -> failwith m)
    [ 600; 200; 100; 50 ];
  print_endline "\nTiling keeps each block cache- and TLB-resident: the cliff is gone."
