(* Characterise the memory hierarchy with generated stream kernels —
   the Figures 11/12 methodology: one description, hundreds of
   programs, cycles per instruction across array sizes.

   Run with: dune exec examples/memory_hierarchy.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher

let machine = Config.nehalem_x5650_2s

let () =
  let spec = Mt_kernels.Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVAPS () in
  let variants = Creator.generate spec in
  Printf.printf "generated %d variants from one description\n\n" (List.length variants);
  (* Keep the pure-load variants, one per unroll factor. *)
  let loads =
    List.filter
      (fun v ->
        match List.assoc_opt "swB" v.Variant.decisions with
        | Some pattern -> String.for_all (fun c -> c = 'L') pattern
        | None -> true)
      variants
  in
  let levels =
    [
      ("L1 ", machine.Config.l1.Config.size_bytes / 2, true);
      ("L2 ", 2 * machine.Config.l1.Config.size_bytes, true);
      ("L3 ", 2 * machine.Config.l2.Config.size_bytes, true);
      ("RAM", 4 * 1024 * 1024, false);
    ]
  in
  Printf.printf "%-7s" "unroll";
  List.iter (fun (name, _, _) -> Printf.printf "%8s" name) levels;
  print_newline ();
  List.iter
    (fun u ->
      let v = List.find (fun v -> v.Variant.unroll = u) loads in
      Printf.printf "%-7d" u;
      List.iter
        (fun (_, bytes, warm) ->
          let opts =
            {
              (Options.default machine) with
              Options.array_bytes = bytes;
              per = Options.Per_instruction;
              warmup = warm;
              repetitions = (if warm then 2 else 1);
              experiments = (if warm then 3 else 1);
            }
          in
          match Launcher.launch opts (Source.From_variant v) with
          | Ok r -> Printf.printf "%8.2f" r.Report.value
          | Error msg -> failwith msg)
        levels;
      print_newline ())
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  print_endline "\ncycles per movaps load: unrolling amortises the loop overhead,";
  print_endline "L3 is bandwidth-bound and RAM sits far above the cache levels."
