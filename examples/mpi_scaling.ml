(* SPMD (MPI-style) execution of a generated kernel — the "typical HPC
   profile" of Section 5.2.1 with the MPI support of Section 7: one
   process per core, bulk-synchronous phases, halo exchanges.  Compares
   rank scaling on cache-resident vs RAM-resident data and shows the
   cost model's collectives.

   Run with: dune exec examples/mpi_scaling.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher

let machine = Config.nehalem_x5650_2s

let variant =
  match Creator.generate (Mt_kernels.Streams.movss_unrolled_spec ~unroll:8 ()) with
  | [ v ] -> v
  | _ -> failwith "variant"

let value ~array_bytes ~ranks ~halo =
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes;
      repetitions = 2;
      experiments = 2;
      mpi_ranks = ranks;
      mpi_halo_bytes = halo;
    }
  in
  match Launcher.launch opts (Source.From_variant variant) with
  | Ok r -> r.Report.value
  | Error msg -> failwith msg

let () =
  print_endline "== rank scaling of the movss kernel (cycles per pass, whole job) ==";
  Printf.printf "%-7s%16s%16s\n" "ranks" "256 KiB (cached)" "8 MiB (RAM)";
  List.iter
    (fun ranks ->
      let cached = value ~array_bytes:(256 * 1024) ~ranks ~halo:None in
      let ram = value ~array_bytes:(8 * 1024 * 1024) ~ranks ~halo:None in
      Printf.printf "%-7d%16.3f%16.3f\n" ranks cached ram)
    [ 1; 2; 4; 6; 8; 12 ];
  print_endline "\nCache-resident work scales with ranks; RAM-resident work hits the";
  print_endline "socket bandwidth wall just like the fork experiment of Fig. 14.";
  (* Halo exchange costs. *)
  print_endline "\n== halo exchange cost per phase (4 ranks, 256 KiB) ==";
  List.iter
    (fun halo ->
      let v = value ~array_bytes:(256 * 1024) ~ranks:4 ~halo:(Some halo) in
      Printf.printf "  halo %8d bytes: %8.3f cycles/pass\n" halo v)
    [ 0; 4096; 65536; 1048576 ];
  (* The raw collective cost model. *)
  print_endline "\n== collective costs on 8 ranks (core cycles) ==";
  let c = Mt_mpi.create machine ~ranks:8 in
  Printf.printf "  barrier            %10.0f\n" (Mt_mpi.barrier_cost c);
  Printf.printf "  bcast 64 KiB       %10.0f\n" (Mt_mpi.bcast_cost c ~bytes:65536);
  Printf.printf "  allreduce 64 KiB   %10.0f\n" (Mt_mpi.allreduce_cost c ~bytes:65536);
  Printf.printf "  alltoall 64 KiB    %10.0f\n" (Mt_mpi.alltoall_cost c ~bytes:65536);
  (* Efficiency of a deliberately imbalanced job. *)
  print_endline "\n== parallel efficiency, balanced vs imbalanced (4 ranks) ==";
  let balanced ~rank:_ ~phase:_ ~sharers:_ = 100_000. in
  let skewed ~rank ~phase:_ ~sharers:_ =
    if rank = 0 then 180_000. else 100_000.
  in
  let comm4 = Mt_mpi.create machine ~ranks:4 in
  let eff compute =
    Mt_mpi.efficiency comm4 ~phases:4 ~compute
      ~communication:(fun ~phase:_ -> Mt_mpi.Barrier)
  in
  Printf.printf "  balanced:   %.2f\n" (eff balanced);
  Printf.printf "  rank 0 1.8x slower: %.2f\n" (eff skewed)
