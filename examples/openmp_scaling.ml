(* Sequential vs OpenMP execution of the same generated kernel — the
   Figures 17/18 methodology on the Sandy Bridge model: unrolling helps
   the sequential version, while the OpenMP version is limited by the
   parallel setup overhead and memory bandwidth.

   Run with: dune exec examples/openmp_scaling.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher

let machine = Config.sandy_bridge_e31240

let measure ~elements ~threads ~unroll =
  let spec = Mt_kernels.Streams.movss_unrolled_spec ~unroll () in
  let variant =
    match Creator.generate spec with
    | [ v ] -> v
    | _ -> failwith "expected one variant"
  in
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes = elements * 4;
      per = Options.Per_element;
      openmp_threads = threads;
      repetitions = 1;
      experiments = 4;
    }
  in
  match Launcher.launch opts (Source.From_variant variant) with
  | Ok r -> r
  | Error msg -> failwith msg

let table elements =
  Printf.printf "%-7s%14s%14s%10s\n" "unroll" "sequential" "openmp(4)" "speedup";
  List.iter
    (fun u ->
      let seq = measure ~elements ~threads:0 ~unroll:u in
      let omp = measure ~elements ~threads:4 ~unroll:u in
      Printf.printf "%-7d%11.3f c/e%11.3f c/e%9.2fx\n" u seq.Report.value
        omp.Report.value
        (seq.Report.value /. omp.Report.value))
    [ 1; 2; 4; 8 ]

let () =
  print_endline "== 128k elements (cache-resident, Fig. 17) ==";
  table (128 * 1024);
  print_endline "\n== 3M elements (RAM-resident, Fig. 18) ==";
  table 3_000_000;
  print_endline
    "\nThe OpenMP gain is much larger on the cache-resident array; on the";
  print_endline
    "RAM-resident one all four threads fight for the same memory controller."
