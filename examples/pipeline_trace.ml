(* Visualise how the scoreboard core executes a kernel: an ASCII
   pipeline timeline of issue-to-completion bars.  Dependency chains
   show as staircases, cache misses as long bars.

   Run with: dune exec examples/pipeline_trace.exe *)

open Mt_machine
open Mt_isa

let cfg = Config.nehalem_x5650_2s

let trace_program ~title ~skip ~keep ~init program =
  let compiled =
    match Core.compile program with
    | Ok c -> c
    | Error e -> failwith (Core.error_to_string e)
  in
  let memory = Memory.create cfg in
  (* Warm run, then trace a steady-state window. *)
  ignore (Core.run ~init cfg memory compiled);
  let view = Traceview.create ~limit:keep () in
  let seen = ref 0 in
  let trace pc insn ~issue ~completion =
    incr seen;
    if !seen > skip then Traceview.hook view pc insn ~issue ~completion
  in
  ignore (Core.run ~init ~trace cfg memory compiled);
  Printf.printf "== %s ==\n%s\n" title (Traceview.render ~width:56 view)

let i op ops = Insn.Insn (Insn.make op ops)

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let loop body =
  [ Insn.Label "L" ] @ body
  @ [
      i Insn.ADD [ Operand.imm 1; Operand.reg (Reg.gpr32 Reg.RAX) ];
      i Insn.SUB [ Operand.imm 1; Operand.reg rdi ];
      i (Insn.Jcc Insn.GE) [ Operand.label "L" ];
      i Insn.RET [];
    ]

let () =
  let init = [ (rdi, 63); (rsi, 1 lsl 22) ] in
  (* 1. Independent loads: bars overlap, the load port paces them. *)
  trace_program ~title:"independent movss loads (port-paced)" ~skip:120 ~keep:16 ~init
    (loop
       (List.init 4 (fun k ->
            i Insn.MOVSS
              [ Operand.mem ~base:rsi ~disp:(k * 4) (); Operand.reg (Reg.xmm k) ])));
  (* 2. A serial addsd chain: a clean 3-cycle staircase. *)
  trace_program ~title:"addsd accumulator chain (staircase)" ~skip:120 ~keep:12 ~init
    (loop [ i Insn.ADDSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ] ]);
  (* 3. A TLB-hostile pointer walk: long memory bars. *)
  trace_program ~title:"page-stride walk (long memory stalls)" ~skip:40 ~keep:10 ~init
    (loop
       [
         i Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ];
         i Insn.ADD [ Operand.imm 4096; Operand.reg rsi ];
       ])
