(* The plugin system (Section 3.3): rewrite MicroCreator's pipeline
   without touching the tool — here a plugin gates off the post-unroll
   operand swap and injects its own pass that appends a software
   prefetch hint comment to every kernel.

   Run with: dune exec examples/plugin_custom_pass.exe *)

open Mt_isa
open Mt_creator

module Lean_generation : Plugin.PLUGIN = struct
  let name = "lean-generation"

  (* A user-written pass: tag every finished kernel. *)
  let tag_pass =
    Pass.make ~name:"tag-kernel" ~description:"append a provenance comment"
      (fun _ctx v ->
        match v.Variant.body with
        | Variant.Concrete body ->
          let tagged = body @ [ Insn.Comment "generated under the lean-generation plugin" ] in
          [ { v with Variant.body = Variant.Concrete tagged } ]
        | Variant.Abstract _ -> [ v ])

  let plugin_init pipeline =
    (* Redefine a gate (don't explode into 2^u swap interleavings)... *)
    let pipeline = Pass.set_gate pipeline "operand-swap-post" (fun _ _ -> false) in
    (* ...and add a brand-new pass after the ABI is finalised. *)
    Pass.insert_after pipeline "finalize-abi" tag_pass
end

let () =
  let spec = Mt_kernels.Streams.loadstore_spec () in
  let without = Creator.generate ~use_plugins:false spec in
  Printf.printf "without the plugin: %d variants\n" (List.length without);
  Plugin.register (module Lean_generation);
  Printf.printf "registered plugins: %s\n" (String.concat ", " (Plugin.registered ()));
  let with_plugin = Creator.generate spec in
  Printf.printf "with the plugin:    %d variants (one per unroll factor)\n\n"
    (List.length with_plugin);
  print_string (Emit.assembly (List.nth with_plugin 2));
  Plugin.clear ()
