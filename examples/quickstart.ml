(* Quickstart: describe a kernel in the XML input language, generate
   its variation space with MicroCreator, run every variant with
   MicroLauncher, and print the winner.

   Run with: dune exec examples/quickstart.exe *)

open Mt_machine
open Mt_creator
open Mt_launcher

(* The paper's Figure 6 example: one 16-byte SSE move per loop pass,
   swappable to a store after unrolling, unroll factors 1..4. *)
let description =
  {|
<kernel name="quickstart">
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register><name>r1</name></register>
      <offset>0</offset>
    </memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
    <swap_after_unroll/>
  </instruction>
  <unrolling><min>1</min><max>4</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>L6</label><test>jge</test></branch_information>
</kernel>
|}

let () =
  (* 1. Generate the benchmark-program set. *)
  let variants =
    match Creator.generate_from_string description with
    | Ok vs -> vs
    | Error msg -> failwith msg
  in
  Printf.printf "MicroCreator generated %d benchmark programs\n" (List.length variants);
  (* Show one of them as the assembly MicroLauncher would load. *)
  let sample = List.find (fun v -> v.Variant.unroll = 3) variants in
  print_newline ();
  print_string (Emit.assembly sample);
  print_newline ();
  (* 2. Run them all on the dual-socket Nehalem model, reporting rdtsc
     cycles per moved element. *)
  let opts =
    {
      (Options.default Config.nehalem_x5650_2s) with
      Options.array_bytes = 32 * 1024;
      per = Options.Per_element;
      repetitions = 2;
      experiments = 5;
    }
  in
  let outcomes = Launcher.run_variants opts variants in
  List.iter
    (fun (v, result) ->
      match result with
      | Ok report ->
        Printf.printf "%-40s %8.3f cycles/element\n" (Variant.id v) report.Report.value
      | Error msg -> Printf.printf "%-40s failed: %s\n" (Variant.id v) msg)
    outcomes;
  (* 3. The tuning answer. *)
  match Launcher.best_variant opts variants with
  | Ok (Some (v, report)) ->
    Printf.printf "\nbest variant: %s at %.3f cycles/element\n" (Variant.id v)
      report.Report.value
  | Ok None -> print_endline "no variant succeeded"
  | Error msg -> failwith msg
