(* STREAM-style bandwidth measurement: the classic copy/scale/add/triad
   kernels (the micro-benchmark lineage the paper builds on, Jalby et
   al. [14]), written as plain C, compiled by the built-in compiler and
   measured by MicroLauncher — cache-resident vs RAM-resident, single
   core vs all cores of a socket.

   Run with: dune exec examples/stream_bandwidth.exe *)

open Mt_machine
open Mt_launcher
open Mt_kernels

let machine = Config.nehalem_x5650_2s

let compiled kernel =
  match Mt_cc.Codegen.compile (Streams.stream_kernel_source kernel) with
  | Ok r -> r
  | Error msg -> failwith msg

let gbps kernel ~array_bytes ~cold ~cores =
  let program, abi = compiled kernel in
  let opts =
    {
      (Options.default machine) with
      Options.array_bytes;
      warmup = not cold;
      repetitions = 1;
      experiments = (if cold then 1 else 3);
      cores;
    }
  in
  match Launcher.launch opts (Source.From_program (program, abi)) with
  | Ok report ->
    (* report.value is TSC cycles per pass; a pass moves a known number
       of bytes, and the TSC ticks at the nominal clock (GHz = bytes/ns
       conversion). *)
    let bytes = float_of_int (Streams.stream_kernel_bytes_per_pass kernel) in
    bytes /. report.Report.value *. machine.Config.nominal_ghz
  | Error msg -> failwith msg

let () =
  print_endline "== single-core bandwidth (GB/s) ==";
  Printf.printf "%-8s%14s%14s\n" "kernel" "L2-resident" "RAM (cold)";
  List.iter
    (fun kernel ->
      Printf.printf "%-8s%14.1f%14.1f\n"
        (Streams.stream_kernel_name kernel)
        (gbps kernel ~array_bytes:(48 * 1024) ~cold:false ~cores:1)
        (gbps kernel ~array_bytes:(4 * 1024 * 1024) ~cold:true ~cores:1))
    Streams.[ Copy; Scale; Add; Triad ];
  print_endline "\n== triad from RAM as cores fill the machine ==";
  List.iter
    (fun cores ->
      let per_core =
        gbps Streams.Triad ~array_bytes:(2 * 1024 * 1024) ~cold:true ~cores
      in
      Printf.printf "  %2d cores: %6.1f GB/s per core, %7.1f aggregate\n" cores
        per_core
        (per_core *. float_of_int cores))
    [ 1; 2; 4; 6; 8; 12 ];
  print_endline "\nThe aggregate saturates at the interleaved two-socket budget —";
  print_endline "the same wall the fork experiment (Fig. 14) runs into."
