type ctype = Tint | Tdouble | Tfloat | Tptr of ctype

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr
  | Bin of binop * expr * expr

type cond = Lt of string * expr | Le of string * expr

type stmt =
  | Decl of ctype * string * expr option
  | Assign of string * expr
  | Assign_op of string * binop * expr
  | Store of string * expr * expr
  | Store_op of string * expr * binop * expr
  | For of {
      var : string;
      init : expr;
      cond : cond;
      step : int;
      body : stmt list;
    }
  | Return of expr

type func = {
  fname : string;
  params : (ctype * string) list;
  body : stmt list;
}

let rec string_of_ctype = function
  | Tint -> "int"
  | Tdouble -> "double"
  | Tfloat -> "float"
  | Tptr t -> string_of_ctype t ^ " *"

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr fmt = function
  | Int_lit n -> Format.pp_print_int fmt n
  | Float_lit f -> Format.pp_print_float fmt f
  | Var v -> Format.pp_print_string fmt v
  | Index (a, e) -> Format.fprintf fmt "%s[%a]" a pp_expr e
  | Bin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let rec pp_stmt fmt = function
  | Decl (t, name, None) -> Format.fprintf fmt "%s %s;" (string_of_ctype t) name
  | Decl (t, name, Some e) ->
    Format.fprintf fmt "%s %s = %a;" (string_of_ctype t) name pp_expr e
  | Assign (v, e) -> Format.fprintf fmt "%s = %a;" v pp_expr e
  | Assign_op (v, op, e) ->
    Format.fprintf fmt "%s %s= %a;" v (binop_symbol op) pp_expr e
  | Store (a, i, e) -> Format.fprintf fmt "%s[%a] = %a;" a pp_expr i pp_expr e
  | Store_op (a, i, op, e) ->
    Format.fprintf fmt "%s[%a] %s= %a;" a pp_expr i (binop_symbol op) pp_expr e
  | For { var; init; cond; step; body } ->
    let cond_str =
      match cond with
      | Lt (v, b) -> Format.asprintf "%s < %a" v pp_expr b
      | Le (v, b) -> Format.asprintf "%s <= %a" v pp_expr b
    in
    Format.fprintf fmt "@[<v 2>for (%s = %a; %s; %s += %d) {@,%a@]@,}" var
      pp_expr init cond_str var step
      (Format.pp_print_list pp_stmt)
      body
  | Return e -> Format.fprintf fmt "return %a;" pp_expr e

let pp_func fmt f =
  let params =
    String.concat ", "
      (List.map (fun (t, n) -> string_of_ctype t ^ " " ^ n) f.params)
  in
  Format.fprintf fmt "@[<v 2>int %s(%s) {@,%a@]@,}@." f.fname params
    (Format.pp_print_list pp_stmt)
    f.body
