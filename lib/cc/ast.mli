(** Abstract syntax of the C subset MicroLauncher compiles
    (Section 4.1: "As input, the launcher accepts any assembly, source
    code (C or Fortran)...").  The subset covers the paper's kernel
    style — Figure 1's matrix multiply compiles unmodified once written
    with array subscripts: one function, [int]/[double]/[float]
    scalars, pointer parameters, canonical counted [for] loops, array
    subscripts with affine index expressions, and compound
    assignments. *)

type ctype = Tint | Tdouble | Tfloat | Tptr of ctype

type binop = Add | Sub | Mul | Div

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr  (** [a\[e\]] *)
  | Bin of binop * expr * expr

(** Loop-continuation tests, canonical form [var OP bound]. *)
type cond = Lt of string * expr | Le of string * expr

type stmt =
  | Decl of ctype * string * expr option  (** [double acc = 0.0;] *)
  | Assign of string * expr  (** [x = e;] *)
  | Assign_op of string * binop * expr  (** [x += e;] *)
  | Store of string * expr * expr  (** [a\[e1\] = e2;] *)
  | Store_op of string * expr * binop * expr  (** [a\[e1\] += e2;] *)
  | For of {
      var : string;
      init : expr;
      cond : cond;
      step : int;
      body : stmt list;
    }
  | Return of expr

type func = {
  fname : string;
  params : (ctype * string) list;
  body : stmt list;
}

val string_of_ctype : ctype -> string

val pp_expr : Format.formatter -> expr -> unit

val pp_func : Format.formatter -> func -> unit
