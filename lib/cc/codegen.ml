open Mt_isa
open Mt_creator

exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* Element kinds for floating-point data. *)
type fp_kind = F32 | F64

let elt_bytes = function F32 -> 4 | F64 -> 8

type binding =
  | Bint of Reg.t
  | Bfp of Reg.t * fp_kind
  | Bptr of Reg.t * fp_kind

type state = {
  env : (string, binding) Hashtbl.t;
  mutable code : Insn.item list;  (* reversed *)
  mutable labels : int;
  mutable int_pool : Reg.t list;
  mutable fp_pool : Reg.t list;
  mutable outer_loop : (string * int) option;  (* outermost loop var, step *)
}

let param_regs = Reg.[ RDI; RSI; RDX; RCX; R8; R9 ]

let int_local_regs = Reg.[ RBX; R10; R11; R12; R13 ]

let addr_scratch = (Reg.gpr64 Reg.R14, Reg.gpr64 Reg.R15)

let fp_local_regs = List.init 8 (fun i -> Reg.xmm (8 + i))

let fp_temp_regs = List.init 8 (fun i -> Reg.xmm i)

let emit st insn = st.code <- Insn.Insn insn :: st.code

let emit_label st label = st.code <- Insn.Label label :: st.code

let fresh_label st =
  let l = Printf.sprintf "Lc%d" st.labels in
  st.labels <- st.labels + 1;
  l

let lookup st name =
  match Hashtbl.find_opt st.env name with
  | Some b -> b
  | None -> fail "undeclared identifier %s" name

let int_reg st name =
  match lookup st name with
  | Bint r -> r
  | Bfp _ -> fail "%s is floating-point, expected int" name
  | Bptr _ -> fail "%s is a pointer, expected int" name

let fp_binding st name =
  match lookup st name with
  | Bfp (r, k) -> (r, k)
  | Bint _ -> fail "%s is an int, expected floating-point" name
  | Bptr _ -> fail "%s is a pointer, expected a scalar" name

let ptr_binding st name =
  match lookup st name with
  | Bptr (r, k) -> (r, k)
  | Bint _ | Bfp _ -> fail "%s is not an array" name

let alloc_int st name =
  match st.int_pool with
  | r :: rest ->
    st.int_pool <- rest;
    Hashtbl.replace st.env name (Bint r);
    r
  | [] -> fail "too many int locals (at %s)" name

let alloc_fp st name kind =
  match st.fp_pool with
  | r :: rest ->
    st.fp_pool <- rest;
    Hashtbl.replace st.env name (Bfp (r, kind));
    r
  | [] -> fail "too many floating-point locals (at %s)" name

(* ------------------------------------------------------------------ *)
(* Integer expressions                                                 *)
(* ------------------------------------------------------------------ *)

(* Materialise an int expression into [dst]. *)
let rec eval_int_into st dst (e : Ast.expr) =
  match e with
  | Ast.Int_lit n -> emit st (Insn.make Insn.MOV [ Operand.imm n; Operand.reg dst ])
  | Ast.Var v ->
    let r = int_reg st v in
    if not (Reg.equal r dst) then
      emit st (Insn.make Insn.MOV [ Operand.reg r; Operand.reg dst ])
  | Ast.Bin (op, lhs, rhs) -> (
    eval_int_into st dst lhs;
    let apply opc src = emit st (Insn.make opc [ src; Operand.reg dst ]) in
    let opc =
      match op with
      | Ast.Add -> Insn.ADD
      | Ast.Sub -> Insn.SUB
      | Ast.Mul -> Insn.IMUL
      | Ast.Div -> fail "integer division is not supported"
    in
    match rhs with
    | Ast.Int_lit n -> apply opc (Operand.imm n)
    | Ast.Var v -> apply opc (Operand.reg (int_reg st v))
    | rhs ->
      (* Evaluate the right side into the second scratch register. *)
      let _, scratch2 = addr_scratch in
      if Reg.equal dst scratch2 then
        fail "integer expression too deep (nested products of sums)";
      eval_int_into st scratch2 rhs;
      apply opc (Operand.reg scratch2))
  | Ast.Float_lit _ -> fail "floating-point value in an integer context"
  | Ast.Index _ -> fail "loaded array values cannot be used as integers"

(* The address operand for [array[idx]]. *)
let address_of st array (idx : Ast.expr) =
  let base, kind = ptr_binding st array in
  let elt = elt_bytes kind in
  let scale = if elt = 4 then 4 else 8 in
  match idx with
  | Ast.Int_lit n -> (Operand.mem ~base ~disp:(n * elt) (), kind)
  | Ast.Var v -> (Operand.mem ~base ~index:(int_reg st v) ~scale (), kind)
  | Ast.Bin (Ast.Add, Ast.Var v, Ast.Int_lit k)
  | Ast.Bin (Ast.Add, Ast.Int_lit k, Ast.Var v) ->
    (Operand.mem ~base ~index:(int_reg st v) ~scale ~disp:(k * elt) (), kind)
  | idx ->
    let scratch1, _ = addr_scratch in
    eval_int_into st scratch1 idx;
    (Operand.mem ~base ~index:scratch1 ~scale (), kind)

(* ------------------------------------------------------------------ *)
(* Floating-point expressions                                          *)
(* ------------------------------------------------------------------ *)

let mov_op = function F32 -> Insn.MOVSS | F64 -> Insn.MOVSD

let arith_op kind (op : Ast.binop) =
  match kind, op with
  | F64, Ast.Add -> Insn.ADDSD
  | F64, Ast.Sub -> Insn.SUBSD
  | F64, Ast.Mul -> Insn.MULSD
  | F64, Ast.Div -> Insn.DIVSD
  | F32, Ast.Add -> Insn.ADDSS
  | F32, Ast.Sub -> Insn.SUBSS
  | F32, Ast.Mul -> Insn.MULSS
  | F32, Ast.Div -> Insn.DIVSS

(* Temp pool for expression evaluation is a simple free list. *)
type fp_temps = { mutable free : Reg.t list }

let new_temps () = { free = fp_temp_regs }

let temp_take temps =
  match temps.free with
  | r :: rest ->
    temps.free <- rest;
    r
  | [] -> fail "floating-point expression too deep"

let temp_release temps r =
  if List.exists (fun t -> Reg.equal t r) fp_temp_regs then
    temps.free <- r :: temps.free

let unify_kind a b =
  match a, b with
  | Some ka, Some kb when ka <> kb -> fail "mixing float and double in one expression"
  | Some k, _ | _, Some k -> Some k
  | None, None -> None

(* Infer the element kind of an fp expression. *)
let rec infer_kind st (e : Ast.expr) =
  match e with
  | Ast.Float_lit _ | Ast.Int_lit _ -> None
  | Ast.Var v -> (
    match lookup st v with
    | Bfp (_, k) -> Some k
    | Bint _ -> fail "%s is an int inside a floating-point expression" v
    | Bptr _ -> fail "%s is an array; subscript it" v)
  | Ast.Index (a, _) ->
    let _, k = ptr_binding st a in
    Some k
  | Ast.Bin (_, lhs, rhs) -> unify_kind (infer_kind st lhs) (infer_kind st rhs)

(* Evaluate an fp expression into a register from [temps]; the caller
   releases it. *)
let rec eval_fp st temps kind (e : Ast.expr) =
  match e with
  | Ast.Float_lit 0. ->
    let t = temp_take temps in
    emit st (Insn.make Insn.PXOR [ Operand.reg t; Operand.reg t ]);
    t
  | Ast.Float_lit f ->
    fail "only the literal 0.0 is supported (%g needs a memory constant)" f
  | Ast.Int_lit 0 ->
    let t = temp_take temps in
    emit st (Insn.make Insn.PXOR [ Operand.reg t; Operand.reg t ]);
    t
  | Ast.Int_lit n -> fail "integer literal %d in a floating-point context" n
  | Ast.Var v ->
    let r, k = fp_binding st v in
    if k <> kind then fail "%s has the wrong element width" v;
    let t = temp_take temps in
    emit st (Insn.make (mov_op kind) [ Operand.reg r; Operand.reg t ]);
    t
  | Ast.Index (a, idx) ->
    let mem, k = address_of st a idx in
    if k <> kind then fail "%s has the wrong element width" a;
    let t = temp_take temps in
    emit st (Insn.make (mov_op kind) [ mem; Operand.reg t ]);
    t
  | Ast.Bin (op, lhs, rhs) -> (
    let t = eval_fp st temps kind lhs in
    match rhs with
    | Ast.Index (a, idx) ->
      (* Fold the load into the arithmetic instruction, as compilers
         do: [mulsd (mem), %xmm]. *)
      let mem, k = address_of st a idx in
      if k <> kind then fail "%s has the wrong element width" a;
      emit st (Insn.make (arith_op kind op) [ mem; Operand.reg t ]);
      t
    | rhs ->
      let u = eval_fp st temps kind rhs in
      emit st (Insn.make (arith_op kind op) [ Operand.reg u; Operand.reg t ]);
      temp_release temps u;
      t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec gen_stmt st (s : Ast.stmt) =
  match s with
  | Ast.Decl (Ast.Tint, name, init) -> (
    let r = alloc_int st name in
    match init with
    | None -> ()
    | Some e -> eval_int_into st r e)
  | Ast.Decl (((Ast.Tdouble | Ast.Tfloat) as t), name, init) -> (
    let kind = if t = Ast.Tfloat then F32 else F64 in
    let r = alloc_fp st name kind in
    match init with
    | None -> ()
    | Some (Ast.Float_lit 0.) | Some (Ast.Int_lit 0) ->
      emit st (Insn.make Insn.PXOR [ Operand.reg r; Operand.reg r ])
    | Some e ->
      let temps = new_temps () in
      let t = eval_fp st temps kind e in
      emit st (Insn.make (mov_op kind) [ Operand.reg t; Operand.reg r ]))
  | Ast.Decl (Ast.Tptr _, name, _) ->
    fail "pointer locals are not supported (%s); use array subscripts" name
  | Ast.Assign (v, e) -> (
    match lookup st v with
    | Bint r -> eval_int_into st r e
    | Bfp (r, kind) -> (
      (match infer_kind st e with
      | Some k when k <> kind -> fail "assignment to %s mixes element widths" v
      | Some _ | None -> ());
      match e with
      | Ast.Float_lit 0. | Ast.Int_lit 0 ->
        emit st (Insn.make Insn.PXOR [ Operand.reg r; Operand.reg r ])
      | e ->
        let temps = new_temps () in
        let t = eval_fp st temps kind e in
        emit st (Insn.make (mov_op kind) [ Operand.reg t; Operand.reg r ]))
    | Bptr _ -> fail "cannot assign to array %s" v)
  | Ast.Assign_op (v, op, e) -> (
    match lookup st v with
    | Bint r -> (
      let opc =
        match op with
        | Ast.Add -> Insn.ADD
        | Ast.Sub -> Insn.SUB
        | Ast.Mul -> Insn.IMUL
        | Ast.Div -> fail "integer division is not supported"
      in
      match e with
      | Ast.Int_lit n -> emit st (Insn.make opc [ Operand.imm n; Operand.reg r ])
      | Ast.Var u -> emit st (Insn.make opc [ Operand.reg (int_reg st u); Operand.reg r ])
      | e ->
        let scratch1, _ = addr_scratch in
        eval_int_into st scratch1 e;
        emit st (Insn.make opc [ Operand.reg scratch1; Operand.reg r ]))
    | Bfp (r, kind) -> (
      match e with
      | Ast.Index (a, idx) ->
        let mem, k = address_of st a idx in
        if k <> kind then fail "%s has the wrong element width" a;
        emit st (Insn.make (arith_op kind op) [ mem; Operand.reg r ])
      | Ast.Bin _ | Ast.Var _ | Ast.Float_lit _ | Ast.Int_lit _ ->
        let temps = new_temps () in
        let t = eval_fp st temps kind e in
        emit st (Insn.make (arith_op kind op) [ Operand.reg t; Operand.reg r ]))
    | Bptr _ -> fail "cannot assign to array %s" v)
  | Ast.Store (a, idx, e) ->
    let mem, kind = address_of st a idx in
    let temps = new_temps () in
    let t = eval_fp st temps kind e in
    emit st (Insn.make (mov_op kind) [ Operand.reg t; mem ])
  | Ast.Store_op (a, idx, op, e) ->
    (* a[i] op= e  ==>  t = a[i]; t = t op e; a[i] = t *)
    let mem, kind = address_of st a idx in
    let temps = new_temps () in
    let t = temp_take temps in
    emit st (Insn.make (mov_op kind) [ mem; Operand.reg t ]);
    (match e with
    | Ast.Index (a2, idx2) ->
      let mem2, k2 = address_of st a2 idx2 in
      if k2 <> kind then fail "%s has the wrong element width" a2;
      emit st (Insn.make (arith_op kind op) [ mem2; Operand.reg t ])
    | e ->
      let u = eval_fp st temps kind e in
      emit st (Insn.make (arith_op kind op) [ Operand.reg u; Operand.reg t ]);
      temp_release temps u);
    (* Recompute the address: index scratch may have been clobbered. *)
    let mem, _ = address_of st a idx in
    emit st (Insn.make (mov_op kind) [ Operand.reg t; mem ])
  | Ast.For { var; init; cond; step; body } ->
    if step <= 0 then fail "for-loop step must be positive";
    let var_reg =
      match Hashtbl.find_opt st.env var with
      | Some (Bint r) -> r
      | Some _ -> fail "loop variable %s is not an int" var
      | None -> alloc_int st var
    in
    if st.outer_loop = None then st.outer_loop <- Some (var, step);
    eval_int_into st var_reg init;
    let label = fresh_label st in
    emit_label st label;
    List.iter (gen_stmt st) body;
    emit st (Insn.make Insn.ADD [ Operand.imm step; Operand.reg var_reg ]);
    let bound_operand =
      match cond with
      | Ast.Lt (_, Ast.Int_lit n) | Ast.Le (_, Ast.Int_lit n) -> Operand.imm n
      | Ast.Lt (_, Ast.Var b) | Ast.Le (_, Ast.Var b) -> Operand.reg (int_reg st b)
      | Ast.Lt (_, e) | Ast.Le (_, e) ->
        fail "loop bounds must be a variable or constant, not %s"
          (Format.asprintf "%a" Ast.pp_expr e)
    in
    (* cmp bound, var  sets flags from var - bound. *)
    emit st (Insn.make Insn.CMP [ bound_operand; Operand.reg var_reg ]);
    let jcc =
      match cond with Ast.Lt _ -> Insn.Jcc Insn.L | Ast.Le _ -> Insn.Jcc Insn.LE
    in
    emit st (Insn.make jcc [ Operand.label label ])
  | Ast.Return (Ast.Var v) ->
    let r = int_reg st v in
    emit st (Insn.make Insn.MOV [ Operand.reg r; Operand.reg (Reg.gpr64 Reg.RAX) ])
  | Ast.Return e ->
    fail "return must name an int variable, not %s"
      (Format.asprintf "%a" Ast.pp_expr e)

(* ------------------------------------------------------------------ *)
(* Function compilation and ABI derivation                             *)
(* ------------------------------------------------------------------ *)

let c_identifier s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    s

let bind_params st (params : (Ast.ctype * string) list) =
  if List.length params > List.length param_regs then
    fail "more than %d parameters" (List.length param_regs);
  List.iteri
    (fun i (t, name) ->
      let reg = Reg.gpr64 (List.nth param_regs i) in
      let binding =
        match t with
        | Ast.Tint -> Bint reg
        | Ast.Tptr Ast.Tdouble -> Bptr (reg, F64)
        | Ast.Tptr Ast.Tfloat -> Bptr (reg, F32)
        | Ast.Tptr t -> fail "unsupported pointer element type %s" (Ast.string_of_ctype t)
        | Ast.Tdouble | Ast.Tfloat ->
          fail "floating-point parameters are not supported (%s)" name
      in
      Hashtbl.replace st.env name binding)
    params

(* Bytes an array advances per pass of the outermost loop: elt * step
   when it is subscripted by (an affine function of) the outer loop
   variable, else one element. *)
let rec index_uses_var (e : Ast.expr) var =
  match e with
  | Ast.Var v -> v = var
  | Ast.Bin (_, a, b) -> index_uses_var a var || index_uses_var b var
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Index _ -> false

let rec array_strides (body : Ast.stmt list) outer acc =
  List.fold_left
    (fun acc s ->
      match (s : Ast.stmt) with
      | Ast.Store (a, idx, e) | Ast.Store_op (a, idx, _, e) ->
        let acc = note_expr e outer acc in
        note_index a idx outer acc
      | Ast.Assign (_, e) | Ast.Assign_op (_, _, e) | Ast.Return e ->
        note_expr e outer acc
      | Ast.Decl (_, _, Some e) -> note_expr e outer acc
      | Ast.Decl (_, _, None) -> acc
      | Ast.For { body; _ } -> array_strides body outer acc)
    acc body

and note_expr (e : Ast.expr) outer acc =
  match e with
  | Ast.Index (a, idx) -> note_index a idx outer acc
  | Ast.Bin (_, x, y) -> note_expr y outer (note_expr x outer acc)
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> acc

and note_index a idx outer acc =
  match outer with
  | Some (var, step) when index_uses_var idx var ->
    (a, step) :: acc
  | _ -> acc

let compile_function (f : Ast.func) =
  try
    let st =
      {
        env = Hashtbl.create 16;
        code = [];
        labels = 0;
        int_pool = List.map Reg.gpr64 int_local_regs;
        fp_pool = fp_local_regs;
        outer_loop = None;
      }
    in
    bind_params st f.Ast.params;
    List.iter (gen_stmt st) f.Ast.body;
    emit st (Insn.make Insn.RET []);
    let program = List.rev st.code in
    (* Validate everything we emitted. *)
    List.iter
      (fun item ->
        match item with
        | Insn.Insn i -> (
          match Semantics.validate i with
          | Ok () -> ()
          | Error msg -> fail "internal: emitted invalid instruction: %s" msg)
        | Insn.Label _ | Insn.Comment _ | Insn.Directive _ -> ())
      program;
    (* Launcher contract. *)
    let counter =
      match f.Ast.params with
      | (Ast.Tint, name) :: _ -> (
        match Hashtbl.find_opt st.env name with
        | Some (Bint r) -> r
        | _ -> Reg.gpr64 Reg.RDI)
      | _ -> fail "the first parameter must be the int trip count"
    in
    let strides = array_strides f.Ast.body st.outer_loop [] in
    let pointers =
      List.filteri (fun i _ -> i > 0) f.Ast.params
      |> List.filter_map (fun (t, name) ->
             match t, Hashtbl.find_opt st.env name with
             | Ast.Tptr _, Some (Bptr (r, kind)) ->
               let elt = elt_bytes kind in
               let stride =
                 match List.assoc_opt name strides with
                 | Some step -> elt * step
                 | None -> elt
               in
               Some (r, stride)
             | _ -> None)
    in
    let insns = Insn.insns program in
    let loads = List.length (List.filter Semantics.is_load insns) in
    let stores = List.length (List.filter Semantics.is_store insns) in
    let bytes =
      List.fold_left
        (fun acc i ->
          if Semantics.memory_access i <> Semantics.No_access then
            acc + Semantics.data_bytes i
          else acc)
        0 insns
    in
    let returns_trip_count =
      match f.Ast.params, List.rev f.Ast.body with
      | (Ast.Tint, n) :: _, Ast.Return (Ast.Var v) :: _ -> v = n
      | _ -> false
    in
    let abi =
      {
        Abi.function_name = c_identifier f.Ast.fname;
        counter;
        (* Up-counting loops: a trip count of n executes n passes. *)
        counter_step = 0;
        pointers;
        pass_counter =
          (if returns_trip_count then Some (Reg.gpr64 Reg.RAX) else None);
        unroll = 1;
        loads_per_pass = loads;
        stores_per_pass = stores;
        bytes_per_pass = bytes;
      }
    in
    Ok (program, abi)
  with Codegen_error msg -> Error ("cc: " ^ msg)

let compile source =
  match Parse.func_of_string source with
  | Error msg -> Error ("cc: " ^ msg)
  | Ok f -> compile_function f
