(** Naive code generation from the C kernel subset to the ISA: every
    value lives in a fixed register, index expressions are recomputed
    at each use, loops become label/add/cmp/jcc skeletons.  This is the
    fidelity point of Section 4.1 — MicroLauncher "compiles the kernel
    code" — with a deliberately simple -O0-style compiler.

    Register convention (SysV-flavoured):
    - parameters take [%rdi %rsi %rdx %rcx %r8 %r9] in order;
    - [int] locals take [%rbx %r10 %r11 %r12 %r13];
    - [%r14 %r15] are address-computation scratch;
    - [double]/[float] locals take [%xmm8..%xmm15], expression
      temporaries [%xmm0..%xmm7];
    - the return value goes to [%rax].

    Restrictions (reported as [Error _]): the only floating-point
    literal is [0.0] (there is no fp-immediate instruction; real
    kernels load other constants from memory), expressions must not mix
    [float] and [double], [return] must name an [int] variable, and the
    register pools above bound the number of live locals. *)

val compile_function :
  Ast.func -> (Mt_isa.Insn.program * Mt_creator.Abi.t, string) result
(** Compile one kernel and derive its launcher contract: the first
    [int] parameter is the trip count (with [counter_step = 0]:
    up-counting loops execute exactly [n] passes), pointer parameters
    become launcher-allocated arrays, and [%rax] carries the return
    value (the pass count when the kernel returns [n]). *)

val compile : string -> (Mt_isa.Insn.program * Mt_creator.Abi.t, string) result
(** Parse ({!Parse.func_of_string}) and compile. *)
