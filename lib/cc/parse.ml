exception Syntax_error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string  (* int double float for return *)
  | PUNCT of string  (* ( ) { } [ ] ; , = += -= *= /= ++ < <= * + - / *)
  | EOF

type lexer = { src : string; mutable pos : int; mutable line : int }

let fail lx fmt =
  Printf.ksprintf (fun s -> raise (Syntax_error (Printf.sprintf "line %d: %s" lx.line s))) fmt

let keywords = [ "int"; "double"; "float"; "for"; "return" ]

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  let n = String.length lx.src in
  if lx.pos < n then begin
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      skip_ws lx
    | '/' when lx.pos + 1 < n && lx.src.[lx.pos + 1] = '/' ->
      while lx.pos < n && lx.src.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | '/' when lx.pos + 1 < n && lx.src.[lx.pos + 1] = '*' ->
      lx.pos <- lx.pos + 2;
      let rec close () =
        if lx.pos + 1 >= n then fail lx "unterminated comment"
        else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then
          lx.pos <- lx.pos + 2
        else begin
          if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
          lx.pos <- lx.pos + 1;
          close ()
        end
      in
      close ();
      skip_ws lx
    | _ -> ()
  end

let next_token lx =
  skip_ws lx;
  let n = String.length lx.src in
  if lx.pos >= n then EOF
  else begin
    let c = lx.src.[lx.pos] in
    if is_digit c then begin
      let start = lx.pos in
      while lx.pos < n && is_digit lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      if lx.pos < n && lx.src.[lx.pos] = '.' then begin
        lx.pos <- lx.pos + 1;
        while lx.pos < n && is_digit lx.src.[lx.pos] do
          lx.pos <- lx.pos + 1
        done;
        FLOAT (float_of_string (String.sub lx.src start (lx.pos - start)))
      end
      else INT (int_of_string (String.sub lx.src start (lx.pos - start)))
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = lx.pos in
      while lx.pos < n && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      if List.mem word keywords then KW word else IDENT word
    end
    else begin
      let two =
        if lx.pos + 1 < n then String.sub lx.src lx.pos 2 else ""
      in
      match two with
      | "+=" | "-=" | "*=" | "/=" | "++" | "<=" ->
        lx.pos <- lx.pos + 2;
        PUNCT two
      | _ -> (
        lx.pos <- lx.pos + 1;
        match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '=' | '<' | '*' | '+'
        | '-' | '/' ->
          PUNCT (String.make 1 c)
        | c -> fail lx "unexpected character %C" c)
    end
  end

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type parser_state = { lx : lexer; mutable tok : token }

let advance p = p.tok <- next_token p.lx

let perror p fmt =
  Printf.ksprintf
    (fun s -> raise (Syntax_error (Printf.sprintf "line %d: %s" p.lx.line s)))
    fmt

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "%S" s
  | EOF -> "end of input"

let expect p punct =
  match p.tok with
  | PUNCT s when s = punct -> advance p
  | t -> perror p "expected %S, got %s" punct (token_to_string t)

let expect_kw p kw =
  match p.tok with
  | KW s when s = kw -> advance p
  | t -> perror p "expected %S, got %s" kw (token_to_string t)

let ident p =
  match p.tok with
  | IDENT s ->
    advance p;
    s
  | t -> perror p "expected an identifier, got %s" (token_to_string t)

let parse_type p =
  let base =
    match p.tok with
    | KW "int" -> Ast.Tint
    | KW "double" -> Ast.Tdouble
    | KW "float" -> Ast.Tfloat
    | t -> perror p "expected a type, got %s" (token_to_string t)
  in
  advance p;
  let rec stars t =
    match p.tok with
    | PUNCT "*" ->
      advance p;
      stars (Ast.Tptr t)
    | _ -> t
  in
  stars base

let rec parse_expr p =
  let lhs = parse_term p in
  let rec tail lhs =
    match p.tok with
    | PUNCT "+" ->
      advance p;
      tail (Ast.Bin (Ast.Add, lhs, parse_term p))
    | PUNCT "-" ->
      advance p;
      tail (Ast.Bin (Ast.Sub, lhs, parse_term p))
    | _ -> lhs
  in
  tail lhs

and parse_term p =
  let lhs = parse_factor p in
  let rec tail lhs =
    match p.tok with
    | PUNCT "*" ->
      advance p;
      tail (Ast.Bin (Ast.Mul, lhs, parse_factor p))
    | PUNCT "/" ->
      advance p;
      tail (Ast.Bin (Ast.Div, lhs, parse_factor p))
    | _ -> lhs
  in
  tail lhs

and parse_factor p =
  match p.tok with
  | INT n ->
    advance p;
    Ast.Int_lit n
  | FLOAT f ->
    advance p;
    Ast.Float_lit f
  | PUNCT "-" -> (
    advance p;
    match p.tok with
    | INT n ->
      advance p;
      Ast.Int_lit (-n)
    | FLOAT f ->
      advance p;
      Ast.Float_lit (-.f)
    | _ -> Ast.Bin (Ast.Sub, Ast.Int_lit 0, parse_factor p))
  | PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect p ")";
    e
  | IDENT name -> (
    advance p;
    match p.tok with
    | PUNCT "[" ->
      advance p;
      let idx = parse_expr p in
      expect p "]";
      Ast.Index (name, idx)
    | _ -> Ast.Var name)
  | t -> perror p "expected an expression, got %s" (token_to_string t)

let binop_of_compound = function
  | "+=" -> Ast.Add
  | "-=" -> Ast.Sub
  | "*=" -> Ast.Mul
  | "/=" -> Ast.Div
  | s -> invalid_arg ("binop_of_compound: " ^ s)

let rec parse_stmt p =
  match p.tok with
  | KW ("int" | "double" | "float") ->
    let t = parse_type p in
    let name = ident p in
    let init =
      match p.tok with
      | PUNCT "=" ->
        advance p;
        Some (parse_expr p)
      | _ -> None
    in
    expect p ";";
    Ast.Decl (t, name, init)
  | KW "return" ->
    advance p;
    let e = parse_expr p in
    expect p ";";
    Ast.Return e
  | KW "for" ->
    advance p;
    expect p "(";
    let var = ident p in
    expect p "=";
    let init = parse_expr p in
    expect p ";";
    let cond_var = ident p in
    if cond_var <> var then
      perror p "for-loop test must use the loop variable %s" var;
    let cond =
      match p.tok with
      | PUNCT "<" ->
        advance p;
        Ast.Lt (var, parse_expr p)
      | PUNCT "<=" ->
        advance p;
        Ast.Le (var, parse_expr p)
      | t -> perror p "expected < or <=, got %s" (token_to_string t)
    in
    expect p ";";
    let step_var = ident p in
    if step_var <> var then
      perror p "for-loop increment must use the loop variable %s" var;
    let step =
      match p.tok with
      | PUNCT "++" ->
        advance p;
        1
      | PUNCT "+=" -> (
        advance p;
        match p.tok with
        | INT n ->
          advance p;
          n
        | t -> perror p "expected a constant step, got %s" (token_to_string t))
      | t -> perror p "expected ++ or +=, got %s" (token_to_string t)
    in
    expect p ")";
    expect p "{";
    let body = parse_block p in
    Ast.For { var; init; cond; step; body }
  | IDENT name -> (
    advance p;
    match p.tok with
    | PUNCT "[" -> (
      advance p;
      let idx = parse_expr p in
      expect p "]";
      match p.tok with
      | PUNCT "=" ->
        advance p;
        let e = parse_expr p in
        expect p ";";
        Ast.Store (name, idx, e)
      | PUNCT (("+=" | "-=" | "*=" | "/=") as op) ->
        advance p;
        let e = parse_expr p in
        expect p ";";
        Ast.Store_op (name, idx, binop_of_compound op, e)
      | t -> perror p "expected an assignment, got %s" (token_to_string t))
    | PUNCT "=" ->
      advance p;
      let e = parse_expr p in
      expect p ";";
      Ast.Assign (name, e)
    | PUNCT (("+=" | "-=" | "*=" | "/=") as op) ->
      advance p;
      let e = parse_expr p in
      expect p ";";
      Ast.Assign_op (name, binop_of_compound op, e)
    | t -> perror p "expected an assignment to %s, got %s" name (token_to_string t))
  | t -> perror p "expected a statement, got %s" (token_to_string t)

and parse_block p =
  let rec go acc =
    match p.tok with
    | PUNCT "}" ->
      advance p;
      List.rev acc
    | EOF -> perror p "unterminated block"
    | _ -> go (parse_stmt p :: acc)
  in
  go []

let parse_func p =
  expect_kw p "int";
  let fname = ident p in
  expect p "(";
  let rec params acc =
    match p.tok with
    | PUNCT ")" ->
      advance p;
      List.rev acc
    | _ ->
      let t = parse_type p in
      let name = ident p in
      let acc = (t, name) :: acc in
      (match p.tok with
      | PUNCT "," ->
        advance p;
        params acc
      | PUNCT ")" ->
        advance p;
        List.rev acc
      | t -> perror p "expected , or ), got %s" (token_to_string t))
  in
  let params = params [] in
  expect p "{";
  let body = parse_block p in
  { Ast.fname; params; body }

let make_parser src =
  let lx = { src; pos = 0; line = 1 } in
  let p = { lx; tok = EOF } in
  advance p;
  p

let func_of_string src =
  match
    let p = make_parser src in
    let f = parse_func p in
    (match p.tok with EOF -> () | t -> perror p "trailing input: %s" (token_to_string t));
    f
  with
  | f -> Ok f
  | exception Syntax_error msg -> Error msg

let expr_of_string src =
  match
    let p = make_parser src in
    let e = parse_expr p in
    (match p.tok with EOF -> () | t -> perror p "trailing input: %s" (token_to_string t));
    e
  with
  | e -> Ok e
  | exception Syntax_error msg -> Error msg
