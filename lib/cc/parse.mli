(** Recursive-descent parser for the C kernel subset (see {!Ast}).

    Grammar sketch:
    {v
    func   := "int" ident "(" params ")" "{" stmt* "}"
    params := type ident ("," type ident)*
    type   := ("int" | "double" | "float") "*"*
    stmt   := type ident ("=" expr)? ";"
            | ident ("=" | "+=" | "-=" | "*=" | "/=") expr ";"
            | ident "[" expr "]" ("=" | "+=" | "-=" | "*=" | "/=") expr ";"
            | "for" "(" ident "=" expr ";" ident ("<"|"<=") expr ";" incr ")"
              "{" stmt* "}"
            | "return" expr ";"
    incr   := ident "++" | ident "+=" int
    expr   := term (("+"|"-") term)*
    term   := factor (("*"|"/") factor)*
    factor := int | float | ident | ident "[" expr "]" | "(" expr ")"
    v}

    Comments ([/* ... */] and [// ...]) are skipped. *)

exception Syntax_error of string
(** Raised with a message carrying the 1-based line number. *)

val func_of_string : string -> (Ast.func, string) result
(** Parse one kernel function. *)

val expr_of_string : string -> (Ast.expr, string) result
(** Parse a standalone expression (tests). *)
