(* The run-shaping command line every MicroTools binary shares:
   parallelism, caching, adaptive measurement, the resilience policy,
   fault injection, checkpoint/resume and the observability outputs all
   parse here, into one Study.Run_config.t.  Binaries keep only their
   kernel-specific flags (input file, machine, array sizes, ...). *)

open Cmdliner

type t = Microtools.Study.Run_config.t

let default_policy = Mt_resilience.Policy.default

(* ------------------------------------------------------------------ *)
(* Flag definitions                                                    *)
(* ------------------------------------------------------------------ *)

let docs_run = "RUN OPTIONS"

let docs_resilience = "RESILIENCE OPTIONS"

let docs_obsv = "OBSERVABILITY OPTIONS"

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N" ~docs:docs_run
        ~doc:
          "Run independent units of work on $(docv) domains (0 = one per \
           available core).  Results merge back in request order, so the \
           output is identical to a sequential run.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR" ~docs:docs_run
        ~doc:
          "On-disk result cache location (default: \\$XDG_CACHE_HOME/microtools \
           or ~/.cache/microtools).")

let cache_max_mb_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-max-mb" ] ~docv:"MiB" ~docs:docs_run
        ~doc:
          "Bound the on-disk result cache to $(docv); once a store pushes \
           the directory over budget the least-recently-used entries are \
           evicted (safe across concurrent processes sharing the \
           directory).  Unbounded by default.")

let no_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-cache" ] ~docs:docs_run
        ~doc:"Disable the result cache; re-simulate everything.")

let adaptive_arg =
  Arg.(
    value
    & flag
    & info [ "adaptive-experiments" ] ~docs:docs_run
        ~doc:
          "Treat each configured experiment count as a minimum and keep \
           measuring until the median's bootstrap confidence interval \
           reaches $(b,--rciw-target) or $(b,--max-experiments) is spent.")

let rciw_target_arg =
  Arg.(
    value
    & opt float 0.02
    & info [ "rciw-target" ] ~docv:"FRAC" ~docs:docs_run
        ~doc:
          "Adaptive stop rule: relative confidence-interval width of the \
           median to reach before stopping early.")

let max_exps_arg =
  Arg.(
    value
    & opt int 64
    & info [ "max-experiments" ] ~docv:"N" ~docs:docs_run
        ~doc:"Adaptive budget ceiling per measurement.")

let retries_arg =
  Arg.(
    value
    & opt int default_policy.Mt_resilience.Policy.retries
    & info [ "retries" ] ~docv:"N" ~docs:docs_resilience
        ~doc:
          "Retry a crashing or over-budget unit of work $(docv) times \
           (with deterministic exponential backoff) before quarantining \
           it.")

let backoff_ms_arg =
  Arg.(
    value
    & opt float (default_policy.Mt_resilience.Policy.backoff_base_s *. 1000.)
    & info [ "retry-backoff-ms" ] ~docv:"MS" ~docs:docs_resilience
        ~doc:
          "Base backoff delay before the first retry, in milliseconds; \
           doubles per retry, with deterministic seeded jitter.")

let resilience_seed_arg =
  Arg.(
    value
    & opt int default_policy.Mt_resilience.Policy.backoff_seed
    & info [ "resilience-seed" ] ~docv:"SEED" ~docs:docs_resilience
        ~doc:"Seed of the deterministic backoff-jitter stream.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS" ~docs:docs_resilience
        ~doc:
          "Wall-clock budget per attempt; an attempt that runs longer is \
           treated as hung and retried/quarantined.")

let sim_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sim-budget" ] ~docv:"INSNS" ~docs:docs_resilience
        ~doc:
          "Simulated-instruction budget per attempt, clamped onto the \
           launcher's max_instructions fuel.")

let fault_conv =
  let parse s =
    match Mt_resilience.Fault.of_spec s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  let print ppf f =
    Format.pp_print_string ppf (Mt_resilience.Fault.to_spec f)
  in
  Arg.conv ~docv:"SPEC" (parse, print)

let faults_arg =
  Arg.(
    value
    & opt_all fault_conv []
    & info [ "inject-fault" ] ~docv:"SPEC" ~docs:docs_resilience
        ~doc:
          "Deterministically break the K-th unit of work (repeatable): \
           $(i,variant=K:kind) with kind one of $(b,raise), $(b,timeout) \
           or $(b,corrupt-cache-entry), optionally $(i,@N) to fault only \
           the first N attempts (so a retry succeeds).  Used by tests and \
           the CI chaos-smoke job.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE" ~docs:docs_resilience
        ~doc:
          "Append every completed unit of work to a crash-safe checkpoint \
           journal at $(docv), resumable with $(b,--resume).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE" ~docs:docs_resilience
        ~doc:
          "Replay work already recorded in this checkpoint journal and \
           measure only the rest.  Pass the same file to $(b,--journal) \
           to keep extending it across interruptions.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE" ~docs:docs_obsv
        ~doc:
          "Write a Chrome trace_event JSON of the run (per-pass, \
           per-variant, per-attempt and per-phase spans) to $(docv); open \
           it in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~docs:docs_obsv
        ~doc:
          "Write a key,value metrics CSV (pool, cache, resilience, \
           simulator and memory counters) to $(docv).")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"FILE" ~docs:docs_obsv
        ~doc:
          "Write a run-provenance snapshot (kernel/machine hashes, options, \
           per-variant statistics, quarantined variants) as JSON to \
           $(docv); two snapshots are compared with mt_report.")

let history_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history-append" ] ~docv:"DIR" ~docs:docs_obsv
        ~doc:
          "Also archive the run snapshot into the history directory \
           $(docv) (an append-only, digest-indexed snapshot archive; \
           safe to share between concurrent runs and an mt_serve \
           daemon).  Analyse the archive with $(b,mt_report --history).")

let profile_arg =
  Arg.(
    value
    & flag
    & info [ "profile" ] ~docs:docs_obsv
        ~doc:
          "Record per-instruction bottleneck attribution during the \
           measured calls and print a top-down cycle-accounting \
           breakdown (frontend / ports / dependency / window / memory \
           level) plus the critical dependency path per variant.  The \
           measured numbers are unchanged; profiles also travel in \
           $(b,--snapshot-out) documents, where mt_report uses them to \
           explain regressions.")

let profile_folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-folded" ] ~docv:"FILE" ~docs:docs_obsv
        ~doc:
          "Also write the attribution as collapsed-stack lines to \
           $(docv) (one stack per category plus the critical path), \
           ready for flamegraph.pl or speedscope.  Implies \
           $(b,--profile).")

let trace_detail_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("off", Mt_telemetry.Off);
             ("sampled", Mt_telemetry.Sampled);
             ("full", Mt_telemetry.Full);
           ])
        Mt_telemetry.Off
    & info [ "trace-detail" ] ~docs:docs_obsv
        ~doc:
          "Instruction/cache lane detail in the Chrome trace: off (no lane \
           bookkeeping on the simulate path), sampled (every 64th dynamic \
           instruction), or full.  Takes effect when $(b,--trace-out) is \
           given.")

(* Loading happens inside the conv so a bad --plan is a cmdliner usage
   error before anything runs, in every binary, with one definition. *)
let plan_conv =
  let parse path =
    match Mt_optimize.Plan.load path with
    | Ok plan -> Ok plan
    | Error msg -> Error (`Msg msg)
  in
  let print ppf (plan : Mt_optimize.Plan.t) =
    Format.pp_print_string ppf (Mt_optimize.Plan.summary plan)
  in
  Arg.conv ~docv:"FILE" (parse, print)

let plan_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "plan" ] ~docv:"FILE" ~docs:docs_run
        ~doc:
          "Shape the run by a study plan written by $(b,mt_optimize): \
           only the variants the plan keeps are measured, and variants \
           the optimizer judged stable run at the plan's floored \
           experiment count.  Variants the plan has never seen still \
           run at the default budget.")

(* Not part of {!term}: client-mode routing, composed only by binaries
   that can submit to an mt_serve daemon (currently mt_study). *)
let submit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "submit" ] ~docv:"SOCKET" ~docs:docs_run
        ~doc:
          "Instead of measuring locally, submit the study to the mt_serve \
           daemon listening on this Unix-domain socket and stream the \
           results back.  The run-shaping flags (seed, adaptive knobs, \
           resilience policy, fault injection) travel with the \
           submission; $(b,--jobs), $(b,--cache-dir) and the output \
           flags stay local to the daemon/client respectively.")

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let build jobs cache_dir cache_max_mb no_cache adaptive rciw_target
    max_experiments retries backoff_ms resilience_seed timeout sim_budget
    faults journal resume trace_out metrics_out snapshot_out history_append
    trace_detail profile profile_folded plan =
  let cache =
    if no_cache then None
    else
      Some
        (Mt_parallel.Cache.create
           ~dir:
             (Option.value ~default:(Mt_parallel.Cache.default_dir ())
                cache_dir)
           ?max_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_max_mb)
           ())
  in
  let policy =
    Mt_resilience.Policy.make ~retries
      ~backoff_base_s:(backoff_ms /. 1000.)
      ~backoff_seed:resilience_seed ?wall_budget_s:timeout ?sim_budget ()
  in
  Microtools.Study.Run_config.make ~domains:jobs ?cache
    ?adaptive:(if adaptive then Some (rciw_target, max_experiments) else None)
    ~policy ~faults ?journal_out:journal ?resume_from:resume ?trace_out
    ?metrics_out ?snapshot_out ?history_append ~trace_detail
    ~profile:(profile || profile_folded <> None)
    ?profile_folded ?plan ()

let term =
  Term.(
    const build $ jobs_arg $ cache_dir_arg $ cache_max_mb_arg $ no_cache_arg
    $ adaptive_arg
    $ rciw_target_arg $ max_exps_arg $ retries_arg $ backoff_ms_arg
    $ resilience_seed_arg $ timeout_arg $ sim_budget_arg $ faults_arg
    $ journal_arg $ resume_arg $ trace_arg $ metrics_arg $ snapshot_arg
    $ history_arg $ trace_detail_arg $ profile_arg $ profile_folded_arg
    $ plan_arg)

(* ------------------------------------------------------------------ *)
(* Shared runtime plumbing                                             *)
(* ------------------------------------------------------------------ *)

module Run_config = Microtools.Study.Run_config

let setup (config : t) =
  Mt_telemetry.set_detail config.Run_config.trace_detail;
  if
    config.Run_config.trace_out <> None
    || config.Run_config.metrics_out <> None
  then begin
    let tel = Mt_telemetry.create () in
    Mt_telemetry.set_global tel;
    tel
  end
  else Mt_telemetry.disabled

let finish tel (config : t) =
  Option.iter
    (fun path ->
      Mt_telemetry.write_chrome_trace tel path;
      Printf.printf
        "trace written to %s (open in chrome://tracing or Perfetto)\n" path)
    config.Run_config.trace_out;
  (* The output format follows the extension: FILE.prom gets Prometheus
     text exposition (same encoder as the mt_serve metrics endpoint),
     anything else the key,value CSV. *)
  Option.iter
    (fun path ->
      if Filename.check_suffix path ".prom" then begin
        Mt_telemetry.write_metrics_prometheus tel path;
        Printf.printf "metrics written to %s (Prometheus text format)\n" path
      end
      else begin
        Mt_telemetry.write_metrics_csv tel path;
        Printf.printf "metrics written to %s\n" path
      end)
    config.Run_config.metrics_out

(* The profile outputs every profiling binary shares: a breakdown
   table per profiled report on stdout and, with --profile-folded, one
   collapsed-stack file covering all of them (each variant a separate
   root frame).  A no-op unless the run was profiled. *)
let report_profiles (config : t) profiled =
  if profiled <> [] then begin
    List.iter
      (fun (key, b) -> print_string (Mt_profile.render ~label:key b))
      profiled;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            List.iter
              (fun (key, b) -> output_string oc (Mt_profile.folded ~root:key b))
              profiled);
        Printf.printf
          "folded profile written to %s (feed to flamegraph.pl or speedscope)\n"
          path)
      config.Run_config.profile_folded
  end

(* Archiving is best-effort by design: a full disk or unwritable
   archive must not fail the measurement that just completed — the
   numbers still print and any --snapshot-out file is already saved. *)
let append_history ?label (config : t) snap =
  Option.iter
    (fun dir ->
      match Mt_obsv.History.append ?label ~dir snap with
      | Ok entry ->
        Printf.printf "history: archived as %s (seq %d) in %s\n"
          entry.Mt_obsv.History.label entry.Mt_obsv.History.seq dir
      | Error msg -> Printf.eprintf "%s\n" msg)
    config.Run_config.history_append

let print_cache_stats (config : t) =
  match config.Run_config.cache with
  | Some c ->
    Printf.printf "cache: %d hits, %d misses, %.1f%% hit rate\n"
      (Mt_parallel.Cache.hits c) (Mt_parallel.Cache.misses c)
      (100. *. Mt_parallel.Cache.hit_rate c)
  | None -> ()

let run_summary (config : t) =
  let domains = Run_config.effective_domains config in
  Printf.sprintf "%d domain%s%s" domains
    (if domains = 1 then "" else "s")
    (match config.Run_config.cache with
    | Some c ->
      ", cache " ^ Option.value ~default:"memory" (Mt_parallel.Cache.dir c)
    | None -> ", cache off")
