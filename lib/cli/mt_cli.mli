(** The run-shaping command line shared by mt_study, mt_experiments,
    microlauncher and the bench harness.

    One Cmdliner {!term} parses every flag that shapes $(i,how) a run
    executes — [--jobs], [--cache-dir]/[--cache-max-mb]/[--no-cache],
    the adaptive
    measurement knobs, the resilience policy ([--retries],
    [--retry-backoff-ms], [--timeout], [--sim-budget],
    [--resilience-seed]), fault injection ([--inject-fault]),
    checkpoint/resume ([--journal], [--resume]) and the observability
    outputs ([--trace-out], [--metrics-out], [--snapshot-out],
    [--history-append], [--trace-detail], [--profile],
    [--profile-folded]) plus the study plan ([--plan]) — into one
    {!Microtools.Study.Run_config.t}.
    Binaries compose it with their kernel-specific arguments and must
    not re-declare any of these flags themselves. *)

type t = Microtools.Study.Run_config.t

val term : t Cmdliner.Term.t
(** The shared flag set as a Cmdliner term.  Builds the cache eagerly
    (unless [--no-cache]) and folds the resilience flags into
    [config.policy]. *)

val plan_arg : Mt_optimize.Plan.t option Cmdliner.Term.t
(** The [--plan FILE] flag on its own — the single definition, already
    composed into {!term} (where it lands in [config.plan]); exposed
    separately for binaries that consume a plan without the full
    run-shaping set (mt_report).  The file is loaded and validated at
    parse time, so a bad plan is a usage error, not a mid-run
    failure. *)

val submit_arg : string option Cmdliner.Term.t
(** The [--submit SOCKET] flag routing a run to an mt_serve daemon
    instead of measuring locally.  Kept out of {!term} so only binaries
    with a client mode (mt_study) declare it; they turn the parsed
    {!t} into wire options with [Mt_serve.Protocol.run_options_of_config]. *)

val setup : t -> Mt_telemetry.t
(** Apply [config.trace_detail] and, when [--trace-out] or
    [--metrics-out] was given, install and return a fresh global
    telemetry handle ({!Mt_telemetry.disabled} otherwise).  Call once,
    before any measurement. *)

val finish : Mt_telemetry.t -> t -> unit
(** Write the Chrome trace and metrics file requested by [config],
    announcing each path on stdout.  A [--metrics-out] path ending in
    [.prom] is written as Prometheus text exposition instead of the
    key,value CSV.  Call once, after the run. *)

val report_profiles : t -> (string * Mt_profile.breakdown) list -> unit
(** Print the bottleneck-attribution breakdown table of every
    [(label, breakdown)] pair and, when [--profile-folded] was given,
    write one collapsed-stack file covering all of them (each label a
    separate root frame).  A no-op on an empty list (the run was not
    profiled). *)

val append_history : ?label:string -> t -> Mt_obsv.Snapshot.t -> unit
(** Archive the run snapshot into [config.history_append]'s directory
    (a no-op when the flag was not given).  Best-effort: an archive
    failure is reported on stderr but never fails the run. *)

val print_cache_stats : t -> unit
(** The one-line [cache: H hits, M misses, R% hit rate] digest every
    binary prints (a no-op with [--no-cache]). *)

val run_summary : t -> string
(** ["N domains, cache DIR"] — the run-shape fragment the binaries
    embed in their banner lines. *)
