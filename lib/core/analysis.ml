open Mt_machine

type bottleneck =
  | Front_end
  | Load_port
  | Store_port
  | Fp_ports
  | Memory_bandwidth
  | Memory_latency
  | Tlb
  | Dependency_chain

let bottleneck_to_string = function
  | Front_end -> "front-end (issue width)"
  | Load_port -> "load port"
  | Store_port -> "store port"
  | Fp_ports -> "floating-point ports"
  | Memory_bandwidth -> "memory bandwidth"
  | Memory_latency -> "memory latency"
  | Tlb -> "TLB page walks"
  | Dependency_chain -> "dependency chains"

type utilization = (bottleneck * float) list

let utilizations (cfg : Config.t) (o : Core.outcome) =
  let cycles = Float.max 1. o.Core.cycles in
  let per count ports = float_of_int count /. float_of_int ports /. cycles in
  let m = o.Core.mem in
  let line = float_of_int cfg.Config.l1.Config.line_bytes in
  let ram_bytes = float_of_int m.Memory.ram_accesses *. line in
  let ram_share = Config.ram_stream_bytes_per_cycle cfg ~sharers:1 in
  let demand_misses = max 0 (m.Memory.ram_accesses - m.Memory.prefetched_fills) in
  let ram_latency = Config.cycles_of_ns cfg cfg.Config.ram_latency_ns in
  [
    (Front_end, per o.Core.instructions cfg.Config.issue_width);
    (* Prefetch hints never stall but do occupy a load-port slot, so
       they belong in port pressure (and only there — energy and the
       demand-load counters keep them separate). *)
    (Load_port, per (o.Core.loads + o.Core.prefetches) cfg.Config.load_ports);
    (Store_port, per o.Core.stores cfg.Config.store_ports);
    (Fp_ports, per o.Core.fp_ops (cfg.Config.fp_add_ports + cfg.Config.fp_mul_ports));
    (Memory_bandwidth, ram_bytes /. ram_share /. cycles);
    ( Memory_latency,
      float_of_int demand_misses *. ram_latency
      /. float_of_int cfg.Config.miss_parallelism /. cycles );
    (Tlb, float_of_int m.Memory.page_walks *. 30. /. cycles);
  ]

let classify ?(threshold = 0.55) cfg o =
  let utils = utilizations cfg o in
  let busiest, busy =
    List.fold_left
      (fun (bb, bu) (b, u) -> if u > bu then (b, u) else (bb, bu))
      (Dependency_chain, 0.) utils
  in
  if busy >= threshold then busiest else Dependency_chain

type knee = { at : float; before : float; after : float; ratio : float }

let find_knee ?(min_ratio = 1.5) series =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) series in
  let rec scan best = function
    | (x1, y1) :: ((_, y2) :: _ as rest) when y1 > 0. ->
      let ratio = y2 /. y1 in
      let best =
        match best with
        | Some k when k.ratio >= ratio -> best
        | _ when ratio >= min_ratio -> Some { at = x1; before = y1; after = y2; ratio }
        | best -> best
      in
      scan best rest
    | _ :: rest -> scan best rest
    | [] -> best
  in
  scan None sorted

let recommend_unroll ?(tolerance = 0.02) points =
  match points with
  | [] -> None
  | points ->
    let best = List.fold_left (fun acc (_, v) -> Float.min acc v) infinity points in
    let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) points in
    List.find_map
      (fun (u, v) -> if v <= best *. (1. +. tolerance) then Some u else None)
      sorted

let describe cfg o =
  let utils = utilizations cfg o in
  let busiest = classify cfg o in
  let details =
    utils
    |> List.filter (fun (_, u) -> u >= 0.10)
    |> List.map (fun (b, u) -> Printf.sprintf "%s %.0f%%" (bottleneck_to_string b) (u *. 100.))
    |> String.concat ", "
  in
  let ipc = float_of_int o.Core.instructions /. Float.max 1. o.Core.cycles in
  Printf.sprintf
    "%d instructions in %.0f cycles (IPC %.2f); bound by %s%s"
    o.Core.instructions o.Core.cycles ipc
    (bottleneck_to_string busiest)
    (if details = "" then "" else " [busy: " ^ details ^ "]")

type roofline = {
  intensity : float;
  achieved_gflops : float;
  compute_roof_gflops : float;
  memory_roof_gflops : float;
  bound : [ `Compute | `Memory ];
}

let roofline (cfg : Config.t) (o : Core.outcome) =
  let seconds = o.Core.cycles /. (cfg.Config.core_ghz *. 1e9) in
  let flops = float_of_int o.Core.fp_ops in
  let dram_bytes =
    float_of_int o.Core.mem.Memory.ram_accesses
    *. float_of_int cfg.Config.l1.Config.line_bytes
  in
  let intensity = if dram_bytes = 0. then infinity else flops /. dram_bytes in
  let achieved_gflops = if seconds = 0. then 0. else flops /. seconds /. 1e9 in
  let compute_roof_gflops =
    float_of_int (cfg.Config.fp_add_ports + cfg.Config.fp_mul_ports)
    *. cfg.Config.core_ghz
  in
  let bw_gbps =
    Config.ram_stream_bytes_per_cycle cfg ~sharers:1 *. cfg.Config.core_ghz
  in
  let memory_roof_gflops =
    if intensity = infinity then compute_roof_gflops else intensity *. bw_gbps
  in
  let bound =
    if memory_roof_gflops < compute_roof_gflops then `Memory else `Compute
  in
  { intensity; achieved_gflops; compute_roof_gflops; memory_roof_gflops; bound }

let roofline_to_string r =
  Printf.sprintf
    "%.3g flop/byte, %.2f GF/s achieved; roofs: compute %.2f, memory %.2f -> %s-bound"
    r.intensity r.achieved_gflops r.compute_roof_gflops r.memory_roof_gflops
    (match r.bound with `Compute -> "compute" | `Memory -> "memory")
