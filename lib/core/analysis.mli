(** Automated interpretation of MicroTools data — the paper's Section 7
    future work ("data-mining techniques allow to process the
    MicroTools data in order to automate the analysis").

    Three analyses: classify what resource bounds a run, find the knee
    of a measured series (where a size sweep leaves a cache level), and
    recommend an unroll factor from a study's results. *)

open Mt_machine

(** What a kernel run spent its time on. *)
type bottleneck =
  | Front_end  (** Decode/issue width. *)
  | Load_port
  | Store_port
  | Fp_ports
  | Memory_bandwidth  (** DRAM fill-path saturation. *)
  | Memory_latency  (** Un-prefetched miss latency. *)
  | Tlb  (** Page-walk serialization. *)
  | Dependency_chain  (** Nothing saturated: latency chains dominate. *)

val bottleneck_to_string : bottleneck -> string

(** Estimated utilisation of each resource over a run: the fraction of
    the run's cycles the resource was busy (can exceed 1 slightly when
    the estimate is coarse). *)
type utilization = (bottleneck * float) list

val utilizations : Config.t -> Core.outcome -> utilization
(** Per-resource busy fractions computed from the run's counters. *)

val classify : ?threshold:float -> Config.t -> Core.outcome -> bottleneck
(** The most-utilised resource, or {!Dependency_chain} when nothing
    reaches [threshold] (default 0.55) of the run's cycles. *)

(** A detected discontinuity in a measured series. *)
type knee = {
  at : float;  (** The x value where the jump begins. *)
  before : float;  (** y just before the jump. *)
  after : float;  (** y just after. *)
  ratio : float;  (** after / before. *)
}

val find_knee : ?min_ratio:float -> (float * float) list -> knee option
(** The largest consecutive jump in the series (sorted by x), when its
    ratio is at least [min_ratio] (default 1.5) — e.g. the Fig. 3 cliff
    between sizes 500 and 600. *)

val recommend_unroll : ?tolerance:float -> (int * float) list -> int option
(** Given per-unroll measured values, the smallest unroll factor within
    [tolerance] (default 2 %) of the best — the "compiler hint" answer
    of Section 2. *)

val describe : Config.t -> Core.outcome -> string
(** A one-paragraph human-readable diagnosis of a run. *)

(** A roofline-model placement of a run: arithmetic intensity from the
    counters, achieved floating-point rate vs the compute and memory
    roofs. *)
type roofline = {
  intensity : float;  (** FP operations per DRAM byte. *)
  achieved_gflops : float;
  compute_roof_gflops : float;  (** Scalar-SSE issue limit of the FP ports. *)
  memory_roof_gflops : float;  (** intensity × DRAM stream bandwidth. *)
  bound : [ `Compute | `Memory ];
}

val roofline : Config.t -> Core.outcome -> roofline
(** Place a run on the machine's roofline.  With no DRAM traffic the
    intensity is infinite and the run is compute-bound by definition. *)

val roofline_to_string : roofline -> string
