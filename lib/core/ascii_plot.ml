type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; '#'; 'x'; '@'; '%'; '&' |]

let render ?(width = 56) ?(height = 16) ?(log_y = false) ?(x_label = "x")
    ?(y_label = "y") series_list =
  let all_points = List.concat_map (fun s -> s.points) series_list in
  if all_points = [] then "(no data to plot)\n"
  else begin
    let xs = List.map fst all_points in
    let ys = List.map snd all_points in
    let x0 = List.fold_left Float.min infinity xs in
    let x1 = List.fold_left Float.max neg_infinity xs in
    let min_pos =
      List.fold_left
        (fun acc y -> if y > 0. then Float.min acc y else acc)
        infinity ys
    in
    let transform y =
      if log_y then log10 (Float.max y (if min_pos = infinity then 1e-9 else min_pos))
      else y
    in
    let ty = List.map transform ys in
    let y0 = List.fold_left Float.min infinity ty in
    let y1 = List.fold_left Float.max neg_infinity ty in
    let xspan = if x1 > x0 then x1 -. x0 else 1. in
    let yspan = if y1 > y0 then y1 -. y0 else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si s ->
        let marker = markers.(si mod Array.length markers) in
        List.iter
          (fun (x, y) ->
            let cx =
              int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1))
            in
            let cy =
              int_of_float
                ((transform y -. y0) /. yspan *. float_of_int (height - 1))
            in
            let row = height - 1 - max 0 (min (height - 1) cy) in
            let col = max 0 (min (width - 1) cx) in
            if grid.(row).(col) = ' ' then grid.(row).(col) <- marker)
          s.points)
      series_list;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    let untransform v = if log_y then 10. ** v else v in
    Buffer.add_string buf
      (Printf.sprintf "%s%s\n" y_label (if log_y then " (log scale)" else ""));
    Array.iteri
      (fun row line ->
        let frac = 1. -. (float_of_int row /. float_of_int (height - 1)) in
        let yv = untransform (y0 +. (frac *. yspan)) in
        (* Label the top, middle and bottom rows. *)
        let label =
          if row = 0 || row = height - 1 || row = height / 2 then
            Printf.sprintf "%8.3g" yv
          else String.make 8 ' '
        in
        Buffer.add_string buf
          (Printf.sprintf "%s |%s|\n" label (String.init width (Array.get line))))
      grid;
    Buffer.add_string buf
      (Printf.sprintf "%8s +%s+\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  %-8.4g%s%8.4g  (%s)\n" "" x0
         (String.make (max 1 (width - 16)) ' ')
         x1 x_label);
    Buffer.add_string buf "          ";
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "%c %s   " markers.(si mod Array.length markers) s.label))
      series_list;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end

let of_table ~x_column ~y_columns (t : Exp_table.t) =
  List.map
    (fun (col, label) ->
      let points =
        List.filter_map
          (fun row ->
            match
              ( float_of_string_opt (List.nth_opt row x_column |> Option.value ~default:""),
                float_of_string_opt (List.nth_opt row col |> Option.value ~default:"") )
            with
            | Some x, Some y -> Some (x, y)
            | _ -> None)
          t.Exp_table.rows
      in
      { label; points })
    y_columns

(* One-line trend glyph for history timelines: eight block heights
   spanning [min, max] of the series.  Pure ASCII fallbacks would lose
   too much resolution, and the repo's tables already assume a UTF-8
   terminal for nothing — so the sparkline is the one place that does;
   a flat series renders as all-low so a constant history looks calm. *)
let sparkline values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    (* The scale comes from the finite samples only: one stray NaN or
       infinity (a corrupt history cell, a division by a zero count)
       must not blank the whole line.  Non-finite samples render as
       fixed placeholders instead — '?' for NaN, the extreme glyphs for
       the infinities. *)
    let lo = ref infinity and hi = ref neg_infinity in
    Array.iter
      (fun v ->
        if Float.is_finite v then begin
          if v < !lo then lo := v;
          if v > !hi then hi := v
        end)
      values;
    let lo = !lo in
    let span = !hi -. lo in
    let top = Array.length glyphs - 1 in
    let buf = Buffer.create (n * 3) in
    Array.iter
      (fun v ->
        if Float.is_nan v then Buffer.add_char buf '?'
        else if v = infinity then Buffer.add_string buf glyphs.(top)
        else if v = neg_infinity then Buffer.add_string buf glyphs.(0)
        else
          let level =
            if span <= 0. then 0
            else
              min top
                (int_of_float ((v -. lo) /. span *. float_of_int top +. 0.5))
          in
          Buffer.add_string buf glyphs.(max 0 level))
      values;
    Buffer.contents buf
  end
