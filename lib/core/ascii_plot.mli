(** ASCII charts for reproduced figures: the paper's evaluation is
    figures, so the bench harness draws them, not just tabulates them.
    Multi-series scatter/line charts with optional logarithmic y axes
    (Figures 14, 17 and 18 are log-scale in the paper). *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), any order. *)
}

val render :
  ?width:int ->
  ?height:int ->
  ?log_y:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Render up to 8 series (markers [*+o#x@%&] in order) on one chart,
    [width] × [height] characters of plot area (defaults 56 × 16).
    Points sharing a cell show the earliest series' marker.  Returns a
    note for empty input.  With [log_y], the y axis is log-10 (zero or
    negative values are clamped to the smallest positive point). *)

val of_table :
  x_column:int -> y_columns:(int * string) list -> Exp_table.t -> series list
(** Lift numeric columns of an experiment table into series ([x_column]
    and [y_columns] are 0-based column indices with labels).  Rows
    whose cells do not parse as numbers are skipped. *)

val sparkline : float array -> string
(** One-line trend glyph (UTF-8 block characters, one per value, eight
    levels spanning the series' own [min, max]) — how [mt_report
    --history] compresses each variant's timeline into a table cell.
    A constant (or single-sample) series renders all-low; empty input
    renders empty.  Non-finite samples never blank the line: the scale
    spans the finite samples only, NaN renders as [?], and the
    infinities render as the extreme glyphs. *)
