type t = {
  id : string;
  title : string;
  columns : string list;
  rows : string list list;
  expectation : string;
  observations : string list;
}

let make ~id ~title ~columns ~expectation ?(observations = []) ?verdicts rows =
  (* A verdicts list rides along as a trailing "quality" column: the
     cells are non-numeric, so [stat_entries] skips them and snapshot
     keys are untouched. *)
  let columns, rows =
    match verdicts with
    | None -> (columns, rows)
    | Some vs ->
      if List.length vs <> List.length rows then
        invalid_arg
          (Printf.sprintf "Exp_table.make %s: %d verdicts vs %d rows" id
             (List.length vs) (List.length rows));
      (columns @ [ "quality" ], List.map2 (fun row v -> row @ [ v ]) rows vs)
  in
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg
          (Printf.sprintf "Exp_table.make %s: row width %d vs %d columns" id
             (List.length row) (List.length columns)))
    rows;
  { id; title; columns; rows; expectation; observations }

let cell_f x = Printf.sprintf "%.3f" x

let print fmt t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length col) t.rows)
      t.columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let print_row cells =
    Format.fprintf fmt "  %s@."
      (String.concat "  " (List.map2 pad cells widths))
  in
  (* Multi-line OCaml string literals leave runs of spaces behind;
     collapse them for display. *)
  let normalize s =
    String.split_on_char ' ' s
    |> List.filter (fun w -> w <> "")
    |> String.concat " "
  in
  Format.fprintf fmt "=== %s: %s ===@." t.id (normalize t.title);
  print_row t.columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row t.rows;
  Format.fprintf fmt "  paper: %s@." (normalize t.expectation);
  List.iter (fun o -> Format.fprintf fmt "  measured: %s@." (normalize o)) t.observations;
  Format.fprintf fmt "@."

let stat_entries t =
  match t.columns with
  | [] | [ _ ] -> []
  | _label_col :: value_cols ->
    (* Row labels can repeat (e.g. one row per clock setting with the
       same frequency label); suffix repeats so keys stay unique —
       mt_report matches snapshot variants by key. *)
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun row ->
        match row with
        | [] -> []
        | label :: cells ->
          let occurrence =
            let k = try Hashtbl.find seen label with Not_found -> 0 in
            Hashtbl.replace seen label (k + 1);
            k
          in
          let label =
            if occurrence = 0 then label
            else Printf.sprintf "%s#%d" label (occurrence + 1)
          in
          List.concat
            (List.map2
               (fun col cell ->
                 match float_of_string_opt cell with
                 | Some v -> [ (Printf.sprintf "%s/%s/%s" t.id label col, v) ]
                 | None -> [])
               value_cols cells))
      t.rows

let to_csv t =
  let doc = Mt_stats.Csv.create ~header:t.columns in
  List.iter (Mt_stats.Csv.add_row doc) t.rows;
  doc
