(** Result tables for experiment reproductions: a uniform printable
    shape for every figure and table of the paper, carrying the paper's
    expectation next to the measured outcome. *)

type t = {
  id : string;  (** "fig11", "tab02", ... *)
  title : string;
  columns : string list;
  rows : string list list;
  expectation : string;  (** What the paper reports for this experiment. *)
  observations : string list;
      (** Measured take-aways, filled by the experiment code. *)
}

val make :
  id:string ->
  title:string ->
  columns:string list ->
  expectation:string ->
  ?observations:string list ->
  string list list ->
  t

val cell_f : float -> string
(** Numeric cell with 3 significant decimals. *)

val print : Format.formatter -> t -> unit
(** Render as an aligned text table with the expectation and
    observations underneath. *)

val stat_entries : t -> (string * float) list
(** Every numeric cell as [("id/rowlabel/column", value)] — stable keys
    for snapshotting experiment tables (the first column is the row
    label; non-numeric cells are skipped). *)

val to_csv : t -> Mt_stats.Csv.t
