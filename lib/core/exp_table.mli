(** Result tables for experiment reproductions: a uniform printable
    shape for every figure and table of the paper, carrying the paper's
    expectation next to the measured outcome. *)

type t = {
  id : string;  (** "fig11", "tab02", ... *)
  title : string;
  columns : string list;
  rows : string list list;
  expectation : string;  (** What the paper reports for this experiment. *)
  observations : string list;
      (** Measured take-aways, filled by the experiment code. *)
}

val make :
  id:string ->
  title:string ->
  columns:string list ->
  expectation:string ->
  ?observations:string list ->
  ?verdicts:string list ->
  string list list ->
  t
(** [verdicts] (one per row, e.g. {!Mt_quality.verdict_to_string})
    appends a "quality" column so tables show each row's measurement
    verdict; its cells are non-numeric and therefore invisible to
    {!stat_entries}.
    @raise Invalid_argument on a row/column or verdict/row width
    mismatch. *)

val cell_f : float -> string
(** Numeric cell with 3 significant decimals. *)

val print : Format.formatter -> t -> unit
(** Render as an aligned text table with the expectation and
    observations underneath. *)

val stat_entries : t -> (string * float) list
(** Every numeric cell as [("id/rowlabel/column", value)] — stable keys
    for snapshotting experiment tables (the first column is the row
    label; non-numeric cells are skipped). *)

val to_csv : t -> Mt_stats.Csv.t
