open Mt_machine
open Mt_creator
open Mt_launcher
open Mt_kernels

let x5650 = Config.nehalem_x5650_2s

let x7550 = Config.nehalem_x7550_4s

let sandy = Config.sandy_bridge_e31240

let cell = Exp_table.cell_f

let fail fmt = Printf.ksprintf failwith fmt

let ok_or_fail where = function
  | Ok v -> v
  | Error msg -> fail "%s: %s" where msg

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

(* One process-wide cache for every variant launch the suite performs,
   configured once by the binaries (--cache-dir / --no-cache).  A full
   figure regeneration measures the same (variant, options, machine)
   triples over and over across figures — and identically across
   invocations — so replaying stored reports is the paper-scale lever. *)
let cache : Mt_parallel.Cache.t option ref = ref None

let set_cache c = cache := c

(* Process-wide adaptive-measurement override, configured like the
   cache (--adaptive-experiments / --rciw-target / --max-experiments):
   every figure's hand-tuned experiment count becomes the minimum and
   the quality controller decides the rest.  The ceiling is clamped up
   to each launch's own experiment count so [Options.validate] never
   rejects a figure that asks for more than the global budget. *)
let adaptive : (float * int) option ref = ref None

let set_adaptive a = adaptive := a

(* Bottleneck profiling, configured the same way (--profile): every
   launch records attribution, and the breakdowns are collected here
   for the binary to render after the tables.  Figures measure from
   parallel domains, so collection is a lock-free push. *)
let profile = ref false

let set_profile p = profile := p

let collected_profiles : (string * Mt_profile.breakdown) list Atomic.t =
  Atomic.make []

let rec push_profile entry =
  let old = Atomic.get collected_profiles in
  if not (Atomic.compare_and_set collected_profiles old (entry :: old)) then
    push_profile entry

(* Sorted, not collection-ordered: domain interleaving must not make
   two identical runs print their profiles differently. *)
let profiles () =
  List.sort_uniq Stdlib.compare (Atomic.get collected_profiles)

let launch_variant opts variant =
  let opts =
    match !adaptive with
    | None -> opts
    | Some (rciw_target, max_experiments) ->
      {
        opts with
        Options.adaptive_experiments = true;
        rciw_target;
        max_experiments = max max_experiments opts.Options.experiments;
      }
  in
  let opts =
    if !profile then { opts with Options.profile = true } else opts
  in
  let result = Study.cached_launch ?cache:!cache opts variant in
  (match result with
  | Ok r ->
    Option.iter
      (fun b ->
        (* One launch per (variant, array size): the same variant is
           measured at every hierarchy level, so the id alone would
           collide. *)
        push_profile
          ( Printf.sprintf "%s@%dKB" (Variant.id variant)
              (opts.Options.array_bytes / 1024),
            b ))
      r.Report.profile
  | Error _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* Shared measurement helpers                                          *)
(* ------------------------------------------------------------------ *)

type level_spec = { level : string; bytes : int; cold : bool }

(* The paper's sizing rule (Section 5.1): a level's array is twice the
   size of the level below it; "L1" is half the L1 cache.  "RAM" data
   is measured on a cold traversal, which streams from memory no matter
   the array size — that keeps simulation costs bounded. *)
let hierarchy_levels ~quick (cfg : Config.t) =
  [
    { level = "L1"; bytes = cfg.Config.l1.Config.size_bytes / 2; cold = false };
    { level = "L2"; bytes = 2 * cfg.Config.l1.Config.size_bytes; cold = false };
    { level = "L3"; bytes = 2 * cfg.Config.l2.Config.size_bytes; cold = false };
    { level = "RAM"; bytes = (if quick then 1 else 4) * 1024 * 1024; cold = true };
  ]

let opts_for_level ~quick base (lvl : level_spec) =
  let base = { base with Options.array_bytes = lvl.bytes } in
  if lvl.cold then
    { base with Options.warmup = false; repetitions = 1; experiments = 1 }
  else if quick then { base with Options.repetitions = 1; experiments = 2 }
  else { base with Options.repetitions = 2; experiments = 3 }

let measure_value opts variant =
  (launch_variant opts variant |> ok_or_fail (Variant.id variant)).Report.value

(* Variants of the (Load|Store)+ description whose after-unroll swap
   pattern is uniform: all loads or all stores. *)
let pure_variants spec =
  let variants = Creator.generate spec in
  let uniform ch v =
    match List.assoc_opt "swB" v.Variant.decisions with
    | None -> ch = 'L' (* no swap decision: the kernel kept its load form *)
    | Some pattern -> String.for_all (fun c -> c = ch) pattern
  in
  let loads = List.filter (uniform 'L') variants in
  let stores = List.filter (uniform 'S') variants in
  (loads, stores)

let variant_with_unroll variants u =
  match List.find_opt (fun v -> v.Variant.unroll = u) variants with
  | Some v -> v
  | None -> fail "no variant with unroll %d" u

(* ------------------------------------------------------------------ *)
(* Figure 3: matmul size sweep                                         *)
(* ------------------------------------------------------------------ *)

let matmul_cycles ?alignments ?(warm_cols = 0) ~machine ~n ~unroll ~source ~rows ~cols () =
  let driver =
    match source with
    | `Original -> Matmul.make_driver ?alignments ~machine ~n (`Original unroll)
    | `Micro ->
      let variants = Creator.generate (Matmul.micro_spec ~n ~unroll:(unroll, unroll)) in
      (match variants with
      | [ v ] -> Matmul.make_driver ?alignments ~machine ~n (`Micro v)
      | vs -> fail "matmul micro: expected 1 variant, got %d" (List.length vs))
  in
  let driver = ok_or_fail "matmul driver" driver in
  (ok_or_fail "matmul sample" (Matmul.sample_run ~rows ~cols ~warm_cols driver))
    .Matmul.cycles_per_iteration

let fig03 ?(quick = false) () =
  let sizes =
    if quick then [ 50; 200; 500; 700 ]
    else [ 50; 100; 150; 200; 250; 300; 400; 500; 600; 700; 800 ]
  in
  let rows_n = if quick then 1 else 2 in
  let cols_n = if quick then 8 else 16 in
  let points =
    List.map
      (fun n ->
        ( n,
          matmul_cycles ~warm_cols:cols_n ~machine:x5650 ~n ~unroll:1
            ~source:`Original ~rows:rows_n ~cols:cols_n () ))
      sizes
  in
  let small =
    List.filter_map (fun (n, c) -> if n <= 200 then Some c else None) points
  in
  let large =
    List.filter_map (fun (n, c) -> if n >= 600 then Some c else None) points
  in
  let ratio =
    match small, large with
    | s :: _, l :: _ -> l /. s
    | _ -> 0.
  in
  Exp_table.make ~id:"fig03"
    ~title:"Matmul cycles/iteration vs matrix size (X5650)"
    ~columns:[ "size"; "cycles/iter" ]
    ~expectation:
      "cycles/iteration climbs as the working set leaves each cache level; \
       a clear cut-off around size 500"
    ~observations:
      [
        Printf.sprintf "size>=600 runs %.2fx slower per iteration than size<=200" ratio;
      ]
    (List.map (fun (n, c) -> [ string_of_int n; cell c ]) points)

(* ------------------------------------------------------------------ *)
(* Figure 4: matmul alignment sweep at 200x200                         *)
(* ------------------------------------------------------------------ *)

let fig04 ?(quick = false) () =
  let n = if quick then 100 else 200 in
  let candidates = if quick then [ 0; 1024 ] else [ 0; 16; 512; 1024; 2048 ] in
  let configs =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b -> List.map (fun c -> (a, b, c)) candidates)
          candidates)
      candidates
  in
  let configs =
    (* Keep the sweep representative but bounded. *)
    List.filteri (fun i _ -> i mod (if quick then 1 else 4) = 0) configs
  in
  let points =
    List.map
      (fun (a, b, c) ->
        ( (a, b, c),
          matmul_cycles ~alignments:(a, b, c) ~warm_cols:16 ~machine:x5650 ~n
            ~unroll:1 ~source:`Original ~rows:1 ~cols:(if quick then 8 else 16) () ))
      configs
  in
  let values = List.map snd points in
  let lo = List.fold_left Float.min infinity values in
  let hi = List.fold_left Float.max 0. values in
  let spread = if lo > 0. then (hi -. lo) /. lo *. 100. else 0. in
  Exp_table.make ~id:"fig04"
    ~title:(Printf.sprintf "Matmul %dx%d cycles/iteration vs matrix alignments" n n)
    ~columns:[ "align(res,B,C)"; "cycles/iter" ]
    ~expectation:"alignment does not matter at this size: variation below 3%"
    ~observations:[ Printf.sprintf "spread (max-min)/min = %.2f%%" spread ]
    (List.map
       (fun ((a, b, c), v) ->
         [ Printf.sprintf "%d/%d/%d" a b c; cell v ])
       points)

(* ------------------------------------------------------------------ *)
(* Figure 5: matmul unroll factors, original vs micro-benchmark        *)
(* ------------------------------------------------------------------ *)

let fig05 ?(quick = false) () =
  let n = if quick then 100 else 200 in
  let unrolls = if quick then [ 1; 2; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let rows_n = if quick then 1 else 2 in
  let cols_n = if quick then 8 else 16 in
  let run source u =
    matmul_cycles ~warm_cols:cols_n ~machine:x5650 ~n ~unroll:u ~source
      ~rows:rows_n ~cols:cols_n ()
  in
  let points =
    List.map (fun u -> (u, run `Original u, run `Micro u)) unrolls
  in
  let improvement series =
    match series with
    | (_, first) :: _ ->
      let last = snd (List.nth series (List.length series - 1)) in
      (first -. last) /. first *. 100.
    | [] -> 0.
  in
  let orig_imp = improvement (List.map (fun (u, o, _) -> (u, o)) points) in
  let micro_imp = improvement (List.map (fun (u, _, m) -> (u, m)) points) in
  Exp_table.make ~id:"fig05"
    ~title:
      (Printf.sprintf
         "Matmul %dx%d cycles/iteration vs unroll factor, original code vs \
          MicroCreator kernel" n n)
    ~columns:[ "unroll"; "original"; "microbench" ]
    ~expectation:
      "unrolling 8x improves the original code by ~9% and the micro-benchmark \
       predicts a similar gain (8.2%); the two series track each other"
    ~observations:
      [
        Printf.sprintf "original improves %.1f%% from unroll 1 to %d" orig_imp
          (List.nth unrolls (List.length unrolls - 1));
        Printf.sprintf "micro-benchmark improves %.1f%%" micro_imp;
      ]
    (List.map (fun (u, o, m) -> [ string_of_int u; cell o; cell m ]) points)

(* ------------------------------------------------------------------ *)
(* Figures 11/12: stream kernels across the hierarchy                  *)
(* ------------------------------------------------------------------ *)

let stream_figure ~id ~quick ~opcode ~stride =
  let unrolls = if quick then [ 1; 2; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let spec = Streams.loadstore_spec ~opcode ~stride () in
  let loads, stores = pure_variants spec in
  let base =
    {
      (Options.default x5650) with
      Options.per = Options.Per_instruction;
      element_bytes = stride;
    }
  in
  let levels = hierarchy_levels ~quick x5650 in
  let value_for lvl u =
    let opts = opts_for_level ~quick base lvl in
    let vload = measure_value opts (variant_with_unroll loads u) in
    let vstore = measure_value opts (variant_with_unroll stores u) in
    (* "For each unroll group, the minimum value was taken." *)
    Float.min vload vstore
  in
  let rows =
    List.map
      (fun u ->
        string_of_int u :: List.map (fun lvl -> cell (value_for lvl u)) levels)
      unrolls
  in
  let first_row = List.nth rows 0 in
  let last_row = List.nth rows (List.length rows - 1) in
  let nth_f row i = float_of_string (List.nth row i) in
  Exp_table.make ~id
    ~title:
      (Printf.sprintf
         "Cycles per load/store (%s) vs unroll factor and hierarchy level (X5650)"
         (Mt_isa.Insn.mnemonic opcode))
    ~columns:("unroll" :: List.map (fun l -> l.level) levels)
    ~expectation:
      (if opcode = Mt_isa.Insn.MOVAPS then
         "unrolling reduces cycles/instruction at every level; RAM stays \
          bandwidth-bound well above the cache levels; L3 under 2 cycles per \
          load at unroll 8"
       else
         "unrolling reduces cycles/instruction; movss moves 4x less data so \
          even RAM approaches ~1 cycle per load; L3 reaches one cycle per \
          load at unroll 8")
    ~observations:
      [
        Printf.sprintf "L1 improves from %.2f to %.2f cycles/instruction"
          (nth_f first_row 1) (nth_f last_row 1);
        Printf.sprintf "RAM at max unroll: %.2f cycles/instruction"
          (nth_f last_row 4);
        Printf.sprintf "L3 at max unroll: %.2f cycles/instruction"
          (nth_f last_row 3);
      ]
    rows

let fig11 ?(quick = false) () =
  stream_figure ~id:"fig11" ~quick ~opcode:Mt_isa.Insn.MOVAPS ~stride:16

let fig12 ?(quick = false) () =
  stream_figure ~id:"fig12" ~quick ~opcode:Mt_isa.Insn.MOVSS ~stride:4

(* ------------------------------------------------------------------ *)
(* Figure 13: frequency sweep                                          *)
(* ------------------------------------------------------------------ *)

let fig13 ?(quick = false) () =
  let freqs = if quick then [ 1.60; 2.67 ] else [ 1.60; 2.00; 2.27; 2.67 ] in
  let spec =
    Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVAPS ~unroll:(8, 8)
      ~swap_after:false ()
  in
  let variant =
    match Creator.generate spec with
    | [ v ] -> v
    | vs -> fail "fig13: expected 1 variant, got %d" (List.length vs)
  in
  let levels = hierarchy_levels ~quick x5650 in
  let value_for lvl freq =
    let base =
      {
        (Options.default x5650) with
        Options.per = Options.Per_instruction;
        frequency_ghz = Some freq;
        eval_method = Options.Rdtsc;
      }
    in
    measure_value (opts_for_level ~quick base lvl) variant
  in
  let rows =
    List.map
      (fun freq ->
        Printf.sprintf "%.2f" freq
        :: List.map (fun lvl -> cell (value_for lvl freq)) levels)
      freqs
  in
  let col_ratio i =
    let first = float_of_string (List.nth (List.nth rows 0) i) in
    let last =
      float_of_string (List.nth (List.nth rows (List.length rows - 1)) i)
    in
    first /. last
  in
  Exp_table.make ~id:"fig13"
    ~title:
      "rdtsc cycles per load (movaps x8) vs core frequency and hierarchy level"
    ~columns:("GHz" :: List.map (fun l -> l.level) levels)
    ~expectation:
      "in rdtsc (frequency-independent) cycles, L1/L2 latencies scale with \
       the core clock while L3/RAM stay constant: on-core frequency does not \
       affect the off-core side"
    ~observations:
      [
        Printf.sprintf "L1 rdtsc-cycles ratio lowest/highest frequency: %.2fx (clock ratio %.2fx)"
          (col_ratio 1)
          (List.nth freqs (List.length freqs - 1) /. List.nth freqs 0);
        Printf.sprintf "RAM rdtsc-cycles ratio lowest/highest frequency: %.2fx" (col_ratio 4);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 14: fork-mode core sweep                                     *)
(* ------------------------------------------------------------------ *)

let fig14 ?(quick = false) () =
  let core_counts =
    if quick then [ 1; 4; 6; 8; 12 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
  in
  let spec =
    Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVAPS ~unroll:(8, 8)
      ~swap_after:false ()
  in
  let variant =
    match Creator.generate spec with
    | [ v ] -> v
    | vs -> fail "fig14: expected 1 variant, got %d" (List.length vs)
  in
  let value_for cores =
    let opts =
      {
        (Options.default x5650) with
        Options.per = Options.Per_pass;
        array_bytes = (if quick then 1 else 4) * 1024 * 1024;
        warmup = false;
        repetitions = 1;
        experiments = 1;
        cores;
      }
    in
    measure_value opts variant
  in
  let points = List.map (fun c -> (c, value_for c)) core_counts in
  let at n = List.assoc_opt n points in
  let obs =
    match at 1, at 6, at 12 with
    | Some one, Some six, Some twelve ->
      [
        Printf.sprintf "1->6 cores: %.2f -> %.2f cycles/iteration (%.0f%% change)"
          one six ((six -. one) /. one *. 100.);
        Printf.sprintf "6->12 cores: %.2f -> %.2f (%.2fx)" six twelve (twelve /. six);
      ]
    | _ -> []
  in
  Exp_table.make ~id:"fig14"
    ~title:
      "Fork mode: cycles/iteration of an 8-load movaps RAM kernel vs core \
       count (dual-socket X5650)"
    ~columns:[ "cores"; "cycles/iter" ]
    ~expectation:
      "the breaking point is six cores: below it latency is barely affected, \
       beyond it every added core degrades everyone (memory saturation)"
    ~observations:obs
    (List.map (fun (c, v) -> [ string_of_int c; cell v ]) points)

(* ------------------------------------------------------------------ *)
(* Figures 15/16: alignment sweeps under multi-core pressure           *)
(* ------------------------------------------------------------------ *)

let alignment_figure ~id ~quick ~arrays ~cores ~expectation ~title =
  let spec = Streams.multi_array_spec ~arrays () in
  let variants = Creator.generate spec in
  let variant =
    match variants with v :: _ -> v | [] -> fail "%s: no variants" id
  in
  let program = Variant.concrete_body variant in
  let abi = Option.get variant.Variant.abi in
  let opts =
    {
      (Options.default x7550) with
      Options.per = Options.Per_pass;
      array_bytes = (if quick then 64 else 256) * 1024;
      warmup = false;
      repetitions = 1;
      experiments = 1;
      cores;
      keep_failures = true;
    }
  in
  let configs =
    Alignment.stride_configs ~arrays ~step:(if quick then 512 else 128)
      ~modulus:4096
  in
  let points = ok_or_fail id (Alignment.sweep opts program abi ~configs) in
  let lo = (Alignment.best points).Alignment.report.Report.value in
  let hi = (Alignment.worst points).Alignment.report.Report.value in
  Exp_table.make ~id ~title
    ~columns:[ "config"; "offsets"; "cycles/iter" ]
    ~expectation
    ~observations:
      [
        Printf.sprintf "band: %.1f to %.1f cycles/iteration (%.2fx)" lo hi
          (if lo > 0. then hi /. lo else 0.);
      ]
    (List.mapi
       (fun i (p : Alignment.point) ->
         [
           string_of_int i;
           String.concat "/" (List.map string_of_int p.Alignment.offsets);
           cell p.Alignment.report.Report.value;
         ])
       points)

let fig15 ?(quick = false) () =
  alignment_figure ~id:"fig15" ~quick ~arrays:8 ~cores:8
    ~title:
      "Alignment sweep: 8-array movss traversal on 8 of 32 cores (X7550)"
    ~expectation:
      "cycles/iteration varies from 20 to 33 across alignment configurations"

let fig16 ?(quick = false) () =
  alignment_figure ~id:"fig16" ~quick ~arrays:4 ~cores:32
    ~title:"Alignment sweep: 4-array movss traversal on 32 cores (X7550)"
    ~expectation:
      "with full 32-core memory saturation the band moves to 60-90 \
       cycles/iteration"

(* ------------------------------------------------------------------ *)
(* Figures 17/18 + Table 2: sequential vs OpenMP                       *)
(* ------------------------------------------------------------------ *)

let seq_vs_openmp ~quick ~elements ~unrolls ~experiments =
  let array_bytes = elements * 4 in
  let base =
    {
      (Options.default sandy) with
      Options.per = Options.Per_element;
      array_bytes;
      repetitions = 1;
      experiments = (if quick then max 2 (experiments / 2) else experiments);
    }
  in
  List.map
    (fun u ->
      let spec = Streams.movss_unrolled_spec ~unroll:u () in
      let variant =
        match Creator.generate spec with
        | [ v ] -> v
        | vs -> fail "seq_vs_openmp: %d variants" (List.length vs)
      in
      let seq = launch_variant base variant |> ok_or_fail "sequential" in
      let omp =
        launch_variant { base with Options.openmp_threads = 4 } variant
        |> ok_or_fail "openmp"
      in
      (u, seq, omp))
    unrolls

let openmp_figure ~id ~quick ~elements ~title ~expectation =
  let unrolls = if quick then [ 1; 2; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let points = seq_vs_openmp ~quick ~elements ~unrolls ~experiments:10 in
  let stability =
    List.fold_left
      (fun acc (_, seq, _) ->
        Float.max acc (Mt_stats.relative_spread seq.Report.experiments))
      0. points
  in
  let speedup_at u =
    List.find_map
      (fun (u', seq, omp) ->
        if u' = u then Some (seq.Report.value /. omp.Report.value) else None)
      points
  in
  Exp_table.make ~id ~title
    ~columns:
      [ "unroll"; "seq min"; "seq med"; "seq max"; "omp min"; "omp med"; "omp max" ]
    ~expectation
    ~observations:
      ([
         Printf.sprintf "max run-to-run spread across 10 sequential runs: %.2f%%"
           (stability *. 100.);
       ]
      @
      match speedup_at 1 with
      | Some s -> [ Printf.sprintf "OpenMP speedup at unroll 1: %.2fx" s ]
      | None -> [])
    (List.map
       (fun (u, seq, omp) ->
         let s = seq.Report.summary and o = omp.Report.summary in
         [
           string_of_int u;
           cell s.Mt_stats.minimum; cell s.Mt_stats.median; cell s.Mt_stats.maximum;
           cell o.Mt_stats.minimum; cell o.Mt_stats.median; cell o.Mt_stats.maximum;
         ])
       points)

let fig17 ?(quick = false) () =
  openmp_figure ~id:"fig17" ~quick ~elements:(128 * 1024)
    ~title:
      "movss loads, sequential vs OpenMP(4), 128k-element array (Sandy \
       Bridge): cycles per element"
    ~expectation:
      "OpenMP wins by a large factor on the cache-resident array; min/max of \
       ten runs are close together (stable measurements)"

let fig18 ?(quick = false) () =
  let elements = if quick then 2_500_000 else 3_000_000 in
  openmp_figure ~id:"fig18" ~quick ~elements
    ~title:
      "movss loads, sequential vs OpenMP(4), RAM-resident array (Sandy \
       Bridge): cycles per element"
    ~expectation:
      "with a RAM-resident array the OpenMP gain shrinks markedly compared \
       to the 128k case (bandwidth saturation)"

let tab01 ?quick:_ () =
  Exp_table.make ~id:"tab01" ~title:"Machines standing in for Table 1"
    ~columns:[ "preset"; "topology"; "GHz"; "figures" ]
    ~expectation:
      "Sandy Bridge E3-1240 -> Figs 17/18; dual-socket X5650 -> Figs 2-5 and \
       11-14; quad-socket X7550 -> Figs 15/16"
    [
      [ "sandy_bridge_e31240"; "1 socket x 4 cores"; "3.30"; "17, 18, tab02" ];
      [ "nehalem_x5650_2s"; "2 sockets x 6 cores"; "2.67"; "3, 4, 5, 11-14" ];
      [ "nehalem_x7550_4s"; "4 sockets x 8 cores"; "2.00"; "15, 16" ];
    ]

let tab02 ?(quick = false) () =
  let elements = if quick then 2_500_000 else 3_000_000 in
  let unrolls = if quick then [ 1; 2; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  (* The paper does not give the total workload size behind its wall
     times; we extrapolate measured ns/element to a fixed 3e10-element
     job, which lands the sequential unroll-1 row in the paper's range
     and preserves every comparison. *)
  let total_elements = 3e10 in
  let base =
    {
      (Options.default sandy) with
      Options.per = Options.Per_element;
      eval_method = Options.Wallclock_ns;
      array_bytes = elements * 4;
      repetitions = 1;
      experiments = (if quick then 1 else 2);
    }
  in
  let points =
    List.map
      (fun u ->
        let spec = Streams.movss_unrolled_spec ~unroll:u () in
        let variant =
          match Creator.generate spec with
          | [ v ] -> v
          | vs -> fail "tab02: %d variants" (List.length vs)
        in
        let seconds opts =
          let r = launch_variant opts variant |> ok_or_fail "tab02" in
          r.Report.value *. total_elements /. 1e9
        in
        ( u,
          seconds { base with Options.openmp_threads = 4 },
          seconds base ))
      unrolls
  in
  let first = List.nth points 0 in
  let last = List.nth points (List.length points - 1) in
  let omp_flat (_, o1, _) (_, o2, _) = (o1 -. o2) /. o1 *. 100. in
  let seq_gain (_, _, s1) (_, _, s2) = (s1 -. s2) /. s1 *. 100. in
  Exp_table.make ~id:"tab02"
    ~title:
      "Execution time (s) of OpenMP(4) and sequential movss kernels per \
       unroll factor (extrapolated to a fixed 3e10-element job)"
    ~columns:[ "unroll"; "OpenMP time (s)"; "Seq. time (s)" ]
    ~expectation:
      "OpenMP stays flat (~9.3-9.4 s) across unroll factors while the \
       sequential version improves from 18.30 s to ~14.4 s"
    ~observations:
      [
        Printf.sprintf "OpenMP changes only %.1f%% from unroll 1 to 8"
          (omp_flat first last);
        Printf.sprintf "sequential improves %.1f%%" (seq_gain first last);
      ]
    (List.map
       (fun (u, omp, seq) ->
         [ string_of_int u; Printf.sprintf "%.2f" omp; Printf.sprintf "%.2f" seq ])
       points)

(* ------------------------------------------------------------------ *)
(* Generator-count claims                                              *)
(* ------------------------------------------------------------------ *)

let gen_counts ?quick:_ () =
  let loadstore = List.length (Creator.generate (Streams.loadstore_spec ())) in
  let movewidth = List.length (Creator.generate (Streams.move_width_spec ())) in
  let passes = List.length Passes.pass_names in
  Exp_table.make ~id:"gen_counts"
    ~title:"MicroCreator generation claims (Sections 3, 4.2, 5.1)"
    ~columns:[ "claim"; "paper"; "measured" ]
    ~expectation:
      "510 variants from the single (Load|Store)+ file; >2000 from one file \
       with four move widths; 19 compiler passes; >30 launcher options"
    [
      [ "(Load|Store)+ variants"; "510"; string_of_int loadstore ];
      [ "move-width variants"; "> 2000"; string_of_int movewidth ];
      [ "creator passes"; "19"; string_of_int passes ];
      [ "launcher options"; "> 30"; string_of_int Options.count ];
    ]

(* ------------------------------------------------------------------ *)
(* Extensions beyond the paper: ablations and energy                   *)
(* ------------------------------------------------------------------ *)

(* Each machine-model mechanism DESIGN.md section 5 relies on, measured
   with the mechanism on and off on the diagnostic workload whose shape
   it produces. *)
let ablation ?(quick = false) () =
  let with_feature flip cfg =
    Config.with_features cfg (flip cfg.Config.features)
  in
  let stream_value cfg variant ~bytes ~cold =
    let opts =
      {
        (Options.default cfg) with
        Options.per = Options.Per_instruction;
        array_bytes = bytes;
        warmup = not cold;
        repetitions = 1;
        experiments = (if cold then 1 else 2);
      }
    in
    measure_value opts variant
  in
  let movss8 =
    match
      Creator.generate
        (Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
           ~unroll:(8, 8) ~swap_after:false ())
    with
    | [ v ] -> v
    | _ -> fail "ablation: variant"
  in
  let ram_bytes = (if quick then 1 else 2) * 1024 * 1024 in
  (* 1. Prefetcher: cold RAM stream cycles/load. *)
  let prefetch_on = stream_value x5650 movss8 ~bytes:ram_bytes ~cold:true in
  let prefetch_off =
    stream_value
      (with_feature (fun f -> { f with Config.prefetcher = false }) x5650)
      movss8 ~bytes:ram_bytes ~cold:true
  in
  (* 2. TLB: matmul past the page-stride cliff. *)
  let n = if quick then 550 else 600 in
  let tlb_on =
    matmul_cycles ~warm_cols:8 ~machine:x5650 ~n ~unroll:1 ~source:`Original
      ~rows:1 ~cols:8 ()
  in
  let tlb_off =
    matmul_cycles ~warm_cols:8
      ~machine:(with_feature (fun f -> { f with Config.tlb = false }) x5650)
      ~n ~unroll:1 ~source:`Original ~rows:1 ~cols:8 ()
  in
  (* 3. Alias interference: the Fig. 15 kernel at the worst alignment. *)
  let alias_value machine =
    let spec = Streams.multi_array_spec ~arrays:4 () in
    let variant = List.hd (Creator.generate spec) in
    let opts =
      {
        (Options.default machine) with
        Options.per = Options.Per_pass;
        array_bytes = 64 * 1024;
        warmup = false;
        repetitions = 1;
        experiments = 1;
        cores = 8;
        alignments = [ 0; 0; 0; 0 ];
      }
    in
    measure_value opts variant
  in
  let alias_on = alias_value x7550 in
  let alias_off =
    alias_value (with_feature (fun f -> { f with Config.alias_interference = false }) x7550)
  in
  (* 4. Split penalty: a deliberately line-straddling movups stream. *)
  let split_value machine =
    let spec =
      Streams.loadstore_spec ~name:"split" ~opcode:Mt_isa.Insn.MOVUPS
        ~stride:16 ~unroll:(4, 4) ~swap_after:false ()
    in
    let variant =
      match Creator.generate spec with [ v ] -> v | _ -> fail "ablation: split"
    in
    let opts =
      {
        (Options.default machine) with
        Options.per = Options.Per_instruction;
        array_bytes = 16 * 1024;
        alignments = [ 56 ] (* every movups crosses a line *);
        alignment_modulus = 64;
        repetitions = 2;
        experiments = 2;
      }
    in
    measure_value opts variant
  in
  let split_on = split_value x5650 in
  let split_off =
    split_value (with_feature (fun f -> { f with Config.split_penalty = false }) x5650)
  in
  Exp_table.make ~id:"ablation"
    ~title:"Model ablations: each mechanism on vs off on its diagnostic workload"
    ~columns:[ "mechanism"; "workload"; "on"; "off"; "effect" ]
    ~expectation:
      "each mechanism moves its diagnostic in the direction DESIGN.md claims: \
       prefetching cuts cold-stream cost, the TLB creates the matmul cliff, \
       alias replays inflate saturated multi-array passes, split accesses \
       cost extra"
    [
      [ "stream prefetcher"; "movss x8 cold RAM (cyc/load)"; cell prefetch_on;
        cell prefetch_off; Printf.sprintf "%.2fx without" (prefetch_off /. prefetch_on) ];
      [ "tlb + walker"; Printf.sprintf "matmul n=%d (cyc/iter)" n; cell tlb_on;
        cell tlb_off; Printf.sprintf "%.2fx with" (tlb_on /. tlb_off) ];
      [ "4K-alias replays"; "4-array movss, 8 cores (cyc/pass)"; cell alias_on;
        cell alias_off; Printf.sprintf "%.2fx with" (alias_on /. alias_off) ];
      [ "split penalty"; "straddling movups (cyc/load)"; cell split_on;
        cell split_off; Printf.sprintf "%.2fx with" (split_on /. split_off) ];
    ]

(* Energy per element across unroll factors and clocks — the paper's
   "performance or power utilization" axis (Section 7). *)
let energy ?(quick = false) () =
  let freqs = if quick then [ 1.6; 3.3 ] else [ 1.6; 2.4; 3.3 ] in
  let unrolls = [ 1; 8 ] in
  let measure ~freq ~unroll =
    let machine = Config.with_core_ghz sandy freq in
    let variant =
      match Creator.generate (Streams.movss_unrolled_spec ~unroll ()) with
      | [ v ] -> v
      | _ -> fail "energy: variant"
    in
    let opts =
      {
        (Options.default machine) with
        Options.array_bytes = (if quick then 64 else 256) * 1024;
        repetitions = 1;
        experiments = 1;
      }
    in
    let prepared =
      Protocol.prepare opts (Variant.concrete_body variant)
        (Option.get variant.Variant.abi)
      |> ok_or_fail "energy prepare"
    in
    ignore (Protocol.run_once prepared);
    let outcome = ok_or_fail "energy run" (Protocol.run_once prepared) in
    let elements = float_of_int (outcome.Core.rax * unroll) in
    let nj = Energy.joules machine outcome *. 1e9 /. elements in
    let ns = outcome.Core.cycles /. freq /. elements in
    (nj, ns)
  in
  let rows =
    List.concat_map
      (fun freq ->
        List.map
          (fun unroll ->
            let nj, ns = measure ~freq ~unroll in
            [
              Printf.sprintf "%.1f" freq;
              string_of_int unroll;
              Printf.sprintf "%.3f" ns;
              Printf.sprintf "%.3f" nj;
            ])
          unrolls)
      freqs
  in
  let nj_of row = float_of_string (List.nth row 3) in
  let first = List.nth rows 0 and last = List.nth rows (List.length rows - 1) in
  Exp_table.make ~id:"energy"
    ~title:
      "Energy per element (nJ) of the movss kernel across core clocks and \
       unroll factors (Sandy Bridge)"
    ~columns:[ "GHz"; "unroll"; "ns/element"; "nJ/element" ]
    ~expectation:
      "the tools evaluate power utilization as well as performance: unrolling \
       reduces energy (fewer overhead uops, less static time), and a faster \
       clock reduces static energy per element (race to idle)"
    ~observations:
      [
        Printf.sprintf
          "slow clock, unroll 1: %.3f nJ/element; fast clock, unroll 8: %.3f"
          (nj_of first) (nj_of last);
      ]
    rows

(* The Section 2 motivation's pay-off: "The optimal size for matrix
   multiplications is used by optimizations such as tiling."  Tiling
   keeps each block of the column matrix cache- and TLB-resident, which
   removes the Fig. 3 cliff. *)
let tiling ?(quick = false) () =
  let n = if quick then 400 else 600 in
  let tiles = (if quick then [ n; 100; 50 ] else [ n; 200; 100; 50; 25 ]) in
  let rows =
    List.map
      (fun tile ->
        let c =
          Matmul.tiled_cycles ~machine:x5650 ~n ~tile () |> ok_or_fail "tiling"
        in
        (tile, c))
      tiles
  in
  let naive = List.assoc n rows in
  let best =
    List.fold_left (fun acc (_, c) -> Float.min acc c) infinity rows
  in
  Exp_table.make ~id:"tiling"
    ~title:
      (Printf.sprintf
         "Tiled matmul at n=%d (X5650): cycles per inner iteration vs tile size"
         n)
    ~columns:[ "tile"; "cycles/iter" ]
    ~expectation:
      "Section 2: past the Fig. 3 cut-off, tiling restores cache/TLB locality \
       — the tiled multiply should run at the small-matrix rate while the \
       untiled one pays the cliff"
    ~observations:
      [
        Printf.sprintf "best tile runs %.1fx faster than untiled" (naive /. best);
      ]
    (List.map
       (fun (tile, c) ->
         [ (if tile = n then Printf.sprintf "%d (untiled)" tile else string_of_int tile);
           cell c ])
       rows)

(* All four execution modes on one kernel: sequential, fork (duplicated
   work per core, Section 5.2.1), OpenMP (decomposed, Section 5.2.3)
   and SPMD/MPI (decomposed with per-phase barriers, Section 7 future
   work). *)
let parmodes ?(quick = false) () =
  let variant =
    match Creator.generate (Streams.movss_unrolled_spec ~unroll:4 ()) with
    | [ v ] -> v
    | _ -> fail "parmodes: variant"
  in
  let base array_bytes =
    {
      (Options.default sandy) with
      Options.per = Options.Per_element;
      array_bytes;
      repetitions = (if quick then 1 else 2);
      experiments = (if quick then 2 else 3);
    }
  in
  let measure opts =
    (launch_variant opts variant |> ok_or_fail "parmodes").Report.value
  in
  let cached = (if quick then 64 else 128) * 1024 in
  let ram = (if quick then 9 else 12) * 1024 * 1024 in
  let row label f =
    [ label; cell (f (base cached)); cell (f (base ram)) ]
  in
  let rows =
    [
      row "sequential" measure;
      row "fork x4 (duplicated work)" (fun o -> measure { o with Options.cores = 4 });
      row "openmp x4" (fun o -> measure { o with Options.openmp_threads = 4 });
      row "mpi x4 (barrier/phase)" (fun o -> measure { o with Options.mpi_ranks = 4 });
    ]
  in
  let v r = float_of_string (List.nth r 2) in
  let seq = v (List.nth rows 0) and omp = v (List.nth rows 2) in
  Exp_table.make ~id:"parmodes"
    ~title:
      "All execution modes on the movss x4 kernel (Sandy Bridge): cycles per \
       element, cache-resident vs RAM-resident"
    ~columns:[ "mode"; "cached"; "RAM" ]
    ~expectation:
      "fork duplicates the work (per-element cost tracks sequential, worse \
       under RAM contention); OpenMP and MPI decompose it (lower per-element \
       cost, converging to the bandwidth wall on RAM data)"
    ~observations:
      [
        Printf.sprintf "RAM data: OpenMP ends at %.2fx the sequential per-element cost"
          (omp /. seq);
      ]
    rows

(* Section 4.7's stability machinery, feature by feature: "the
   launcher: modifies the alignment of data arrays, disables
   interruptions, and pins the experiments onto particular cores ...
   All these elements contribute to obtaining stable results." *)
let stability ?(quick = false) () =
  let variant =
    match Creator.generate (Streams.movss_unrolled_spec ~unroll:4 ()) with
    | [ v ] -> v
    | _ -> fail "stability: variant"
  in
  let spread ~pinned ~interrupts_masked ~warmup =
    let opts =
      {
        (Options.default x5650) with
        Options.array_bytes = 32 * 1024;
        repetitions = 1;
        experiments = (if quick then 8 else 20);
        pinned;
        interrupts_masked;
        warmup;
      }
    in
    let r = launch_variant opts variant |> ok_or_fail "stability" in
    ( Mt_stats.relative_spread r.Report.experiments *. 100.,
      Mt_quality.verdict_to_string r.Report.quality.Mt_quality.verdict )
  in
  let measured =
    [
      ("all stability features (default)", true, true, true);
      ("no core pinning", false, true, true);
      ("interrupts not masked", true, false, true);
      ("no cache warm-up", true, true, false);
      ("nothing controlled", false, false, false);
    ]
    |> List.map (fun (label, pinned, interrupts_masked, warmup) ->
           let pct, verdict = spread ~pinned ~interrupts_masked ~warmup in
           ([ label; Printf.sprintf "%.2f%%" pct ], verdict))
  in
  let rows = List.map fst measured in
  let verdicts = List.map snd measured in
  let pct row = float_of_string (String.sub (List.nth row 1) 0 (String.length (List.nth row 1) - 1)) in
  let stable = pct (List.nth rows 0) and hostile = pct (List.nth rows 4) in
  Exp_table.make ~id:"stability"
    ~title:"Run-to-run spread of the same measurement as stability features toggle"
    ~columns:[ "environment"; "spread (max-min)/min" ]
    ~expectation:
      "Section 4.7: pinning, masked interrupts and warm-up are what make        repeated executions agree; removing them widens the spread"
    ~observations:
      [
        Printf.sprintf "uncontrolled runs spread %.0fx wider than the default protocol"
          (hostile /. Float.max 0.001 stable);
      ]
    ~verdicts rows

(* Section 5's portability claim: "The MicroTools were deployed on
   each architecture without any additional work required ... the tools
   also generated the assembly and executed on the architectures also
   with no additional cost."  One description, all three machines. *)
let portability ?(quick = false) () =
  let spec =
    Streams.loadstore_spec ~opcode:Mt_isa.Insn.MOVSS ~stride:4
      ~unroll:((if quick then 2 else 8), (if quick then 2 else 8))
      ~swap_after:false ()
  in
  let variant =
    match Creator.generate spec with
    | [ v ] -> v
    | _ -> fail "portability: variant"
  in
  let measure machine level =
    let bytes =
      match level with
      | `L1 -> machine.Config.l1.Config.size_bytes / 2
      | `Ram -> (if quick then 1 else 2) * 1024 * 1024
    in
    let opts =
      {
        (Options.default machine) with
        Options.per = Options.Per_instruction;
        array_bytes = bytes;
        warmup = (level = `L1);
        repetitions = 1;
        experiments = (if level = `L1 then 2 else 1);
      }
    in
    measure_value opts variant
  in
  let rows =
    List.map
      (fun (name, machine) ->
        [
          name;
          Printf.sprintf "%d x %d @ %.2f GHz" machine.Config.sockets
            machine.Config.cores_per_socket machine.Config.core_ghz;
          cell (measure machine `L1);
          cell (measure machine `Ram);
        ])
      Config.presets
  in
  Exp_table.make ~id:"portability"
    ~title:
      "One description, every machine: movss x8 cycles/load, L1 vs cold RAM"
    ~columns:[ "machine"; "topology"; "L1"; "RAM" ]
    ~expectation:
      "Section 5: the tools deploy on each architecture with no additional        work — the same input file measures every preset, and the numbers        reflect each machine's own hierarchy"
    ~observations:
      [
        Printf.sprintf "%d machines measured from one description file"
          (List.length rows);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let registry :
    (string * (?quick:bool -> unit -> Exp_table.t)) list =
  [
    ("fig03", fig03); ("fig04", fig04); ("fig05", fig05);
    ("fig11", fig11); ("fig12", fig12); ("fig13", fig13); ("fig14", fig14);
    ("fig15", fig15); ("fig16", fig16); ("fig17", fig17); ("fig18", fig18);
    ("tab01", tab01); ("tab02", tab02); ("gen_counts", gen_counts);
    ("ablation", ablation); ("energy", energy); ("parmodes", parmodes);
    ("tiling", tiling); ("portability", portability); ("stability", stability);
  ]

let ids = List.map fst registry

let by_id id = List.assoc_opt id registry

let all ?quick () = List.map (fun (_, f) -> f ?quick ()) registry

(* ------------------------------------------------------------------ *)
(* Supervised batch execution                                          *)
(* ------------------------------------------------------------------ *)

let set_run_config (config : Study.Run_config.t) =
  set_cache config.Study.Run_config.cache;
  set_adaptive config.Study.Run_config.adaptive;
  set_profile config.Study.Run_config.profile

type table_outcome =
  | Table of Exp_table.t
  | Quarantined of Mt_resilience.Supervisor.quarantine
  | Unknown

(* One experiment = one unit of supervised work: a figure whose helper
   [failwith]s (they all funnel through [ok_or_fail]) quarantines that
   figure and the rest of the batch still prints.  Experiments are
   independent simulator batches, so they parallelise like variants. *)
let run_tables ?(quick = false) ~(config : Study.Run_config.t) ids =
  let open Study.Run_config in
  Mt_parallel.Pool.map_list ~domains:(effective_domains config)
    (fun (index, id) ->
      match by_id id with
      | None -> (id, Unknown)
      | Some f ->
        let fault =
          match Mt_resilience.Fault.find config.faults ~index with
          (* Corrupt-cache faults target variant cache entries, which
             experiments do not own individually; ignore them here. *)
          | Some { Mt_resilience.Fault.kind = Corrupt_cache_entry; _ } -> None
          | fl -> fl
        in
        (match
           Mt_resilience.Supervisor.supervise ?fault ~policy:config.policy
             ~key:id
             (fun () -> f ?quick:(Some quick) ())
         with
        | Mt_resilience.Supervisor.Done (t, _) -> (id, Table t)
        | Mt_resilience.Supervisor.Quarantined q -> (id, Quarantined q)))
    (List.mapi (fun i id -> (i, id)) ids)
