(** One reproduction per figure and table of the paper's evaluation.

    Every function runs the corresponding experiment on the machine
    model and returns a printable {!Exp_table.t} carrying the paper's
    expectation alongside the measured series.  [quick] shrinks array
    sizes, sweep widths and repetition counts so the whole suite runs
    in seconds (used by tests); the default parameters match the
    experiment index in DESIGN.md.

    Machine mapping (Table 1): Figures 3–5 and 11–14 run on the
    dual-socket X5650 preset, Figures 15–16 on the quad-socket X7550,
    Figures 17–18 and Table 2 on the Sandy Bridge E3-1240. *)

val set_cache : Mt_parallel.Cache.t option -> unit
(** Install (or clear) the process-wide result cache every experiment's
    variant launches are routed through — see {!Study.cached_launch}.
    The binaries set it from [--cache-dir] / [--no-cache]; tests and
    library users may leave it unset for always-fresh simulation. *)

val set_adaptive : (float * int) option -> unit
(** [set_adaptive (Some (rciw_target, max_experiments))] turns on the
    adaptive experiment controller for every subsequent launch: each
    figure's configured experiment count becomes the minimum, and the
    launcher keeps measuring until the series' bootstrap RCIW reaches
    [rciw_target] or [max_experiments] is exhausted (clamped up to the
    figure's own count when that is larger).  [None] (the default)
    restores fixed-count measurement. *)

val fig03 : ?quick:bool -> unit -> Exp_table.t
(** Matmul cycles/iteration vs matrix size: the memory-hierarchy
    staircase with a cliff around size 500. *)

val fig04 : ?quick:bool -> unit -> Exp_table.t
(** Matmul 200×200 under different matrix alignments: variation below
    3 %. *)

val fig05 : ?quick:bool -> unit -> Exp_table.t
(** Matmul unroll factors 1–8, original code vs the MicroCreator
    micro-benchmark: both improve by a similar high-single-digit
    percentage, and the two series track each other. *)

val fig11 : ?quick:bool -> unit -> Exp_table.t
(** movaps load/store streams: cycles per instruction vs unroll factor
    across L1/L2/L3/RAM. *)

val fig12 : ?quick:bool -> unit -> Exp_table.t
(** Same with movss. *)

val fig13 : ?quick:bool -> unit -> Exp_table.t
(** 8-unrolled movaps loads measured in rdtsc cycles while the core
    clock sweeps: L1/L2 timings scale with frequency, L3/RAM do not. *)

val fig14 : ?quick:bool -> unit -> Exp_table.t
(** Fork mode, 8-load movaps kernel from RAM, 1–12 cores on the
    dual-socket machine: flat to 6 cores, then rising. *)

val fig15 : ?quick:bool -> unit -> Exp_table.t
(** Multi-array movss traversal on 8 of 32 cores under an alignment
    sweep: a wide cycles-per-iteration band (paper: 20→33). *)

val fig16 : ?quick:bool -> unit -> Exp_table.t
(** Same with a 32-core execution (paper: 60→90). *)

val fig17 : ?quick:bool -> unit -> Exp_table.t
(** movss unroll 1–8, sequential vs OpenMP, 128k-element array:
    OpenMP wins by a large factor; min/max across runs are tight. *)

val fig18 : ?quick:bool -> unit -> Exp_table.t
(** Same with a RAM-resident array: the OpenMP gain shrinks. *)

val tab01 : ?quick:bool -> unit -> Exp_table.t
(** The machine presets standing in for Table 1. *)

val tab02 : ?quick:bool -> unit -> Exp_table.t
(** Extrapolated wall-clock seconds, OpenMP vs sequential, per unroll
    factor: OpenMP flat, sequential decreasing. *)

val gen_counts : ?quick:bool -> unit -> Exp_table.t
(** Section 3/5.1 generator claims: 510 variants from the single
    (Load|Store)+ description, 4 × 510 = 2040 from the move-width
    description. *)

val ablation : ?quick:bool -> unit -> Exp_table.t
(** Beyond the paper: each machine-model mechanism (prefetcher, TLB,
    alias replays, split penalty) toggled off on the diagnostic
    workload whose published shape it produces. *)

val energy : ?quick:bool -> unit -> Exp_table.t
(** Beyond the paper's figures: the "power utilization" axis —
    energy per element across clocks and unroll factors. *)

val parmodes : ?quick:bool -> unit -> Exp_table.t
(** Beyond the paper: all four execution modes (sequential, fork,
    OpenMP, MPI) on one kernel, cache- vs RAM-resident. *)

val tiling : ?quick:bool -> unit -> Exp_table.t
(** The Section 2 pay-off: tiling the matmul past the Fig. 3 cut-off
    restores the small-matrix rate. *)

val portability : ?quick:bool -> unit -> Exp_table.t
(** Section 5's "deployed on each architecture without any additional
    work": one description measured on all three machine presets. *)

val stability : ?quick:bool -> unit -> Exp_table.t
(** Section 4.7's claim as data: run-to-run spread with each stability
    feature (pinning, interrupt masking, warm-up) toggled off. *)

val all : ?quick:bool -> unit -> Exp_table.t list
(** Every experiment, in paper order (extensions last). *)

val by_id : string -> (?quick:bool -> unit -> Exp_table.t) option
(** Look up an experiment by its id ("fig11", "tab02", ...). *)

val ids : string list

val set_profile : bool -> unit
(** Turn bottleneck attribution on for every subsequent launch (the
    [--profile] flag): each launch's report carries a breakdown, and a
    copy is collected for {!profiles}. *)

val profiles : unit -> (string * Mt_profile.breakdown) list
(** The breakdowns collected since the process started, labelled
    [<variant-id>@<array-KB>] (the same variant is measured at several
    hierarchy levels) and sorted by label with duplicates collapsed,
    so parallel figure execution cannot reorder the output. *)

val set_run_config : Study.Run_config.t -> unit
(** {!set_cache} + {!set_adaptive} + {!set_profile} from one
    {!Study.Run_config.t} — what the binaries call after parsing the
    shared [Mt_cli] flags. *)

(** One experiment's fate in a supervised batch. *)
type table_outcome =
  | Table of Exp_table.t
  | Quarantined of Mt_resilience.Supervisor.quarantine
      (** the experiment kept crashing or hanging and was given up on *)
  | Unknown  (** no experiment registered under that id *)

val run_tables :
  ?quick:bool ->
  config:Study.Run_config.t ->
  string list ->
  (string * table_outcome) list
(** Run the named experiments in request order, spread over
    [Run_config.effective_domains config] domains, each under
    {!Mt_resilience.Supervisor.supervise} with [config.policy]: one
    figure whose helpers raise degrades to [Quarantined] instead of
    aborting the batch.  [config.faults] injects failures by position
    in [ids] (corrupt-cache faults are ignored here — they target
    variant cache entries).  Call {!set_run_config} first so the
    launches see the batch's cache and adaptive settings. *)
