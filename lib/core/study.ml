open Mt_creator
open Mt_launcher

type t = {
  spec : Spec.t;
  options : Options.t;
  ctx : Pass.context;
  pipeline : Pass.pipeline option;
  mutable generated : Variant.t list option;
}

let create ?(ctx = Pass.default_context) ?pipeline spec options =
  { spec; options; ctx; pipeline; generated = None }

let of_description ?ctx text options =
  match Description.of_string text with
  | Error msg -> Error msg
  | Ok spec -> Ok (create ?ctx spec options)

let variants t =
  match t.generated with
  | Some vs -> vs
  | None ->
    let vs =
      Mt_telemetry.span (Mt_telemetry.global ()) "study.generate" (fun () ->
          Creator.generate ~ctx:t.ctx ?pipeline:t.pipeline t.spec)
    in
    t.generated <- Some vs;
    vs

(* ------------------------------------------------------------------ *)
(* Run configuration                                                   *)
(* ------------------------------------------------------------------ *)

module Run_config = struct
  type t = {
    domains : int;
    cache : Mt_parallel.Cache.t option;
    seed : int option;
    adaptive : (float * int) option;
    policy : Mt_resilience.Policy.t;
    faults : Mt_resilience.Fault.t list;
    journal_out : string option;
    resume_from : string option;
    trace_out : string option;
    metrics_out : string option;
    snapshot_out : string option;
    history_append : string option;
    trace_detail : Mt_telemetry.detail;
    profile : bool;
    profile_folded : string option;
    plan : Mt_optimize.Plan.t option;
  }

  let default =
    {
      domains = 1;
      cache = None;
      seed = None;
      adaptive = None;
      policy = Mt_resilience.Policy.default;
      faults = [];
      journal_out = None;
      resume_from = None;
      trace_out = None;
      metrics_out = None;
      snapshot_out = None;
      history_append = None;
      trace_detail = Mt_telemetry.Off;
      profile = false;
      profile_folded = None;
      plan = None;
    }

  let make ?(domains = default.domains) ?cache ?seed ?adaptive
      ?(policy = default.policy) ?(faults = []) ?journal_out ?resume_from
      ?trace_out ?metrics_out ?snapshot_out ?history_append
      ?(trace_detail = default.trace_detail) ?(profile = default.profile)
      ?profile_folded ?plan () =
    {
      domains;
      cache;
      seed;
      adaptive;
      policy;
      faults;
      journal_out;
      resume_from;
      trace_out;
      metrics_out;
      snapshot_out;
      history_append;
      trace_detail;
      profile;
      profile_folded;
      plan;
    }

  let with_domains domains t = { t with domains }

  let with_cache cache t = { t with cache }

  let with_seed seed t = { t with seed }

  let with_adaptive adaptive t = { t with adaptive }

  let with_policy policy t = { t with policy }

  let with_faults faults t = { t with faults }

  let with_journal journal_out t = { t with journal_out }

  let with_resume resume_from t = { t with resume_from }

  let with_trace_out trace_out t = { t with trace_out }

  let with_metrics_out metrics_out t = { t with metrics_out }

  let with_snapshot_out snapshot_out t = { t with snapshot_out }

  let with_history_append history_append t = { t with history_append }

  let with_trace_detail trace_detail t = { t with trace_detail }

  let with_profile profile t = { t with profile }

  let with_profile_folded profile_folded t = { t with profile_folded }

  let with_plan plan t = { t with plan }

  let effective_domains t =
    if t.domains <= 0 then Mt_parallel.Pool.available_domains ()
    else t.domains

  (* The run-shaping knobs (seed, adaptive budget, sim fuel) are
     applied to the launcher options at run time, in one place, so the
     cache keys and the measurements always agree on what ran. *)
  let apply_options t (opts : Options.t) =
    let opts = if t.profile then { opts with Options.profile = true } else opts in
    let opts =
      match t.seed with
      | None -> opts
      | Some s -> { opts with Options.quality_seed = s }
    in
    let opts =
      match t.adaptive with
      | None -> opts
      | Some (rciw_target, max_experiments) ->
        {
          opts with
          Options.adaptive_experiments = true;
          rciw_target;
          max_experiments = max max_experiments opts.Options.experiments;
        }
    in
    match t.policy.Mt_resilience.Policy.sim_budget with
    | None -> opts
    | Some fuel ->
      { opts with Options.max_instructions = min fuel opts.Options.max_instructions }

  (* The plan's per-variant floor: an exact experiment count for a
     variant the optimizer judged stable.  Under the adaptive
     controller this is the starting (minimum) count — the controller
     can still grow a series that turns noisy. *)
  let plan_options t ~variant_id (opts : Options.t) =
    match Option.bind t.plan (fun p ->
              Mt_optimize.Plan.experiments_override p variant_id)
    with
    | None -> opts
    | Some n -> { opts with Options.experiments = max 1 n }
end

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

type exec = {
  attempts : int;
  quarantined : Mt_resilience.Supervisor.quarantine option;
  resumed : bool;
}

type outcome = {
  variant : Variant.t;
  result : (Report.t, string) result;
  exec : exec;
}

(* ------------------------------------------------------------------ *)
(* Result caching                                                      *)
(* ------------------------------------------------------------------ *)

(* Everything a measurement depends on and nothing it doesn't: the
   side-effect options (csv_path, verbose) are normalised away so a
   re-run that only redirects its CSV still hits. *)
let options_fingerprint (opts : Options.t) =
  Marshal.to_string { opts with Options.csv_path = None; verbose = false } []

(* The machine config is embedded in Options.t, but frequency overrides
   are applied late; fingerprint the effective machine explicitly. *)
let machine_fingerprint opts = Marshal.to_string (Options.effective_machine opts) []

let variant_fingerprint v =
  let body =
    match v.Variant.body with
    | Variant.Concrete program -> Mt_isa.Insn.program_to_string program
    | Variant.Abstract _ -> "abstract"
  in
  Marshal.to_string (Variant.id v, v.Variant.unroll, body, v.Variant.abi) []

let cache_key opts variant =
  Mt_parallel.Cache.digest_key
    [
      variant_fingerprint variant;
      options_fingerprint opts;
      machine_fingerprint opts;
    ]

let cached_launch ?cache opts variant =
  Mt_parallel.Cache.with_cache cache
    ~key:(fun () -> cache_key opts variant)
    (fun () -> Launcher.launch opts (Source.From_variant variant))
    ~encode:(fun result -> Marshal.to_string result [])
    ~decode:(fun data : (Report.t, string) result -> Marshal.from_string data 0)

(* ------------------------------------------------------------------ *)
(* Supervised, journalled execution                                    *)
(* ------------------------------------------------------------------ *)

(* The journal payload: the variant's result plus its quarantine state,
   so a resumed run replays not just the measurement but the verdict —
   the final CSV of interrupted-then-resumed equals uninterrupted. *)
type journal_payload =
  (Report.t, string) result * Mt_resilience.Supervisor.quarantine option

let encode_payload (p : journal_payload) = Marshal.to_string p []

let decode_payload data : journal_payload option =
  match Marshal.from_string data 0 with
  | p -> Some p
  | exception _ -> None

(* Garbage planted at a variant's cache key by corrupt-cache-entry
   faults; anything Marshal refuses to read back works. *)
let corrupt_bytes = "!! corrupt cache entry (injected fault) !!"

let run_variant ~(config : Run_config.t) ~options ~journal ~resumed ~index
    variant =
  let tel = Mt_telemetry.global () in
  let options =
    Run_config.plan_options config ~variant_id:(Variant.id variant) options
  in
  let key = cache_key options variant in
  match Mt_resilience.Journal.find resumed ~key with
  | Some entry when decode_payload entry.Mt_resilience.Journal.data <> None ->
    let result, quarantined =
      Option.get (decode_payload entry.Mt_resilience.Journal.data)
    in
    Mt_telemetry.incr tel "resilience.resume.skipped";
    { variant; result; exec = { attempts = 0; quarantined; resumed = true } }
  | _ ->
    Mt_telemetry.span tel "study.variant"
      ~args:[ ("variant", Variant.id variant) ]
      (fun () ->
        Mt_telemetry.incr tel "sim.variants";
        let fault = Mt_resilience.Fault.find config.Run_config.faults ~index in
        (* Corrupt-cache faults are planted here (the supervisor has no
           cache handle): garbage at the variant's key before the first
           lookup, exercising the cache's decode recovery. *)
        let fault =
          match fault with
          | Some { Mt_resilience.Fault.kind = Corrupt_cache_entry; _ } ->
            (match config.Run_config.cache with
            | Some cache ->
              Mt_telemetry.incr tel "resilience.fault.injected";
              Mt_parallel.Cache.store cache key corrupt_bytes
            | None -> ());
            None (* nothing left to inject at the supervision layer *)
          | f -> f
        in
        let result, exec =
          match
            Mt_resilience.Supervisor.supervise ?fault
              ~policy:config.Run_config.policy ~key:(Variant.id variant)
              (fun () -> cached_launch ?cache:config.Run_config.cache options variant)
          with
          | Mt_resilience.Supervisor.Done (result, attempts) ->
            (result, { attempts; quarantined = None; resumed = false })
          | Mt_resilience.Supervisor.Quarantined q ->
            ( Error (Mt_resilience.Supervisor.quarantine_to_string q),
              { attempts = q.Mt_resilience.Supervisor.attempts;
                quarantined = Some q;
                resumed = false } )
        in
        Option.iter
          (fun w ->
            Mt_resilience.Journal.record w ~key ~id:(Variant.id variant)
              ~data:(encode_payload (result, exec.quarantined)))
          journal;
        { variant; result; exec })

let run ?(config = Run_config.default) t =
  let options = Run_config.apply_options config t.options in
  let tel = Mt_telemetry.global () in
  let vs = variants t in
  (* Plan filtering happens here, not in [variants]: the generated
     space stays cached whole, so the same study value can run pruned
     and unpruned.  Unknown variants stay in (Plan.selects). *)
  let vs =
    match config.Run_config.plan with
    | None -> vs
    | Some plan ->
      let kept, pruned =
        List.partition
          (fun v -> Mt_optimize.Plan.selects plan (Variant.id v))
          vs
      in
      Mt_telemetry.add tel "plan.kept" (List.length kept);
      Mt_telemetry.add tel "plan.dropped" (List.length pruned);
      kept
  in
  let resumed =
    match config.Run_config.resume_from with
    | None -> []
    | Some path -> (
      match Mt_resilience.Journal.load path with
      | Ok entries -> entries
      | Error msg -> failwith (Printf.sprintf "Study.run: resume %s: %s" path msg))
  in
  let journal =
    match config.Run_config.journal_out with
    | None -> None
    | Some path ->
      (* Resuming into the same file appends, so the journal ends up
         covering the whole study; otherwise start fresh. *)
      let append = config.Run_config.resume_from = Some path in
      Some (Mt_resilience.Journal.create ~append path)
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Mt_resilience.Journal.close journal)
    (fun () ->
      Mt_telemetry.span tel "study.run" (fun () ->
          Mt_parallel.Pool.map_list
            ~domains:(Run_config.effective_domains config)
            (fun (index, variant) ->
              run_variant ~config ~options ~journal ~resumed ~index variant)
            (List.mapi (fun i v -> (i, v)) vs)))

let resumed_count outcomes =
  List.length (List.filter (fun o -> o.exec.resumed) outcomes)

let quarantined outcomes =
  List.filter_map
    (fun o ->
      Option.map (fun q -> (o.variant, q)) o.exec.quarantined)
    outcomes

let successes outcomes =
  List.filter_map
    (fun o -> match o.result with Ok r -> Some (o.variant, r) | Error _ -> None)
    outcomes

let best outcomes =
  List.fold_left
    (fun acc (v, r) ->
      match acc with
      | Some (_, b) when b.Report.value <= r.Report.value -> acc
      | Some _ | None -> Some (v, r))
    None (successes outcomes)

let by_unroll outcomes =
  let ok = successes outcomes in
  let unrolls =
    List.sort_uniq Int.compare (List.map (fun (v, _) -> v.Variant.unroll) ok)
  in
  List.map
    (fun u -> (u, List.filter (fun (v, _) -> v.Variant.unroll = u) ok))
    unrolls

let min_per_unroll outcomes =
  List.filter_map
    (fun (u, group) ->
      match group with
      | [] -> None
      | group ->
        Some
          ( u,
            List.fold_left
              (fun acc (_, r) -> Float.min acc r.Report.value)
              infinity group ))
    (by_unroll outcomes)

(* ------------------------------------------------------------------ *)
(* Run provenance                                                      *)
(* ------------------------------------------------------------------ *)

let spec_fingerprint spec = Marshal.to_string spec []

let kernel_hash t = Mt_parallel.Cache.digest_key [ spec_fingerprint t.spec ]

let machine_hash t =
  Mt_parallel.Cache.digest_key [ machine_fingerprint t.options ]

let snapshot ?(tool = "mt_study") t outcomes =
  let opts = t.options in
  let variants =
    List.filter_map
      (fun o ->
        match o.result with
        | Error _ -> None
        | Ok r ->
          let profile =
            match r.Report.profile with
            | Some b -> Mt_profile.vector b
            | None -> []
          in
          Some
            (Mt_obsv.Snapshot.of_values
               ~key:(Variant.id o.variant)
               ~unroll:o.variant.Variant.unroll
               ~unit_label:r.Report.unit_label ~per_label:r.Report.per_label
               ~thresholds:opts.Options.quality ~seed:opts.Options.quality_seed
               ~profile r.Report.experiments))
      outcomes
  in
  Mt_obsv.Snapshot.make ~tool
    ~kernel:(t.spec.Spec.name, kernel_hash t)
    ~machine:
      ( (Options.effective_machine opts).Mt_machine.Config.name,
        machine_hash t )
    ~options:(Options.summary opts) ~seed:opts.Options.noise_seed
    ~variant_count:(List.length outcomes)
    ~quarantined:(List.map (fun (v, _) -> Variant.id v) (quarantined outcomes))
    ~counters:(Mt_telemetry.counters (Mt_telemetry.global ()))
    variants

let quality_summary outcomes =
  List.fold_left
    (fun (stable, noisy, unstable) o ->
      match o.result with
      | Error _ -> (stable, noisy, unstable)
      | Ok r -> (
        match r.Report.quality.Mt_quality.verdict with
        | Mt_quality.Stable -> (stable + 1, noisy, unstable)
        | Mt_quality.Noisy _ -> (stable, noisy + 1, unstable)
        | Mt_quality.Unstable _ -> (stable, noisy, unstable + 1)))
    (0, 0, 0) outcomes

let csv outcomes =
  let doc =
    Mt_stats.Csv.create
      ~header:
        [ "variant"; "unroll"; "status"; "value"; "min"; "max"; "verdict"; "flags" ]
  in
  List.iter
    (fun o ->
      let id = Variant.id o.variant in
      let unroll = string_of_int o.variant.Variant.unroll in
      (* Only quarantine makes the flags cell: attempts and resume are
         execution history, and keeping them out is what makes an
         interrupted-then-resumed run's CSV byte-identical to an
         uninterrupted one. *)
      let flags =
        match o.exec.quarantined with
        | Some q ->
          Report.quarantine_flag ~kind:q.Mt_resilience.Supervisor.kind
        | None -> ""
      in
      match o.result with
      | Ok r ->
        Mt_stats.Csv.add_row doc
          [
            id; unroll; "ok";
            Printf.sprintf "%.6g" r.Report.value;
            Printf.sprintf "%.6g" r.Report.summary.Mt_stats.minimum;
            Printf.sprintf "%.6g" r.Report.summary.Mt_stats.maximum;
            Mt_quality.verdict_to_string r.Report.quality.Mt_quality.verdict;
            flags;
          ]
      | Error msg ->
        Mt_stats.Csv.add_row doc
          [ id; unroll; "error: " ^ msg; ""; ""; ""; ""; flags ])
    outcomes;
  doc
