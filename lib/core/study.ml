open Mt_creator
open Mt_launcher

type t = {
  spec : Spec.t;
  options : Options.t;
  ctx : Pass.context;
  pipeline : Pass.pipeline option;
  mutable generated : Variant.t list option;
}

let create ?(ctx = Pass.default_context) ?pipeline spec options =
  { spec; options; ctx; pipeline; generated = None }

let of_description ?ctx text options =
  match Description.of_string text with
  | Error msg -> Error msg
  | Ok spec -> Ok (create ?ctx spec options)

let variants t =
  match t.generated with
  | Some vs -> vs
  | None ->
    let vs =
      Mt_telemetry.span (Mt_telemetry.global ()) "study.generate" (fun () ->
          Creator.generate ~ctx:t.ctx ?pipeline:t.pipeline t.spec)
    in
    t.generated <- Some vs;
    vs

type outcome = { variant : Variant.t; result : (Report.t, string) result }

(* ------------------------------------------------------------------ *)
(* Result caching                                                      *)
(* ------------------------------------------------------------------ *)

(* Everything a measurement depends on and nothing it doesn't: the
   side-effect options (csv_path, verbose) are normalised away so a
   re-run that only redirects its CSV still hits. *)
let options_fingerprint (opts : Options.t) =
  Marshal.to_string { opts with Options.csv_path = None; verbose = false } []

(* The machine config is embedded in Options.t, but frequency overrides
   are applied late; fingerprint the effective machine explicitly. *)
let machine_fingerprint opts = Marshal.to_string (Options.effective_machine opts) []

let variant_fingerprint v =
  let body =
    match v.Variant.body with
    | Variant.Concrete program -> Mt_isa.Insn.program_to_string program
    | Variant.Abstract _ -> "abstract"
  in
  Marshal.to_string (Variant.id v, v.Variant.unroll, body, v.Variant.abi) []

let cache_key opts variant =
  Mt_parallel.Cache.digest_key
    [
      variant_fingerprint variant;
      options_fingerprint opts;
      machine_fingerprint opts;
    ]

let cached_launch ?cache opts variant =
  Mt_parallel.Cache.with_cache cache
    ~key:(fun () -> cache_key opts variant)
    (fun () -> Launcher.launch opts (Source.From_variant variant))
    ~encode:(fun result -> Marshal.to_string result [])
    ~decode:(fun data : (Report.t, string) result -> Marshal.from_string data 0)

let run ?(domains = 1) ?cache ?seed t =
  let options =
    match seed with
    | None -> t.options
    | Some s -> { t.options with Options.quality_seed = s }
  in
  let tel = Mt_telemetry.global () in
  let vs = variants t in
  Mt_telemetry.span tel "study.run" (fun () ->
      Mt_parallel.Pool.map_list ~domains
        (fun variant ->
          Mt_telemetry.span tel "study.variant"
            ~args:[ ("variant", Variant.id variant) ]
            (fun () ->
              Mt_telemetry.incr tel "sim.variants";
              { variant; result = cached_launch ?cache options variant }))
        vs)

let successes outcomes =
  List.filter_map
    (fun o -> match o.result with Ok r -> Some (o.variant, r) | Error _ -> None)
    outcomes

let best outcomes =
  List.fold_left
    (fun acc (v, r) ->
      match acc with
      | Some (_, b) when b.Report.value <= r.Report.value -> acc
      | Some _ | None -> Some (v, r))
    None (successes outcomes)

let by_unroll outcomes =
  let ok = successes outcomes in
  let unrolls =
    List.sort_uniq Int.compare (List.map (fun (v, _) -> v.Variant.unroll) ok)
  in
  List.map
    (fun u -> (u, List.filter (fun (v, _) -> v.Variant.unroll = u) ok))
    unrolls

let min_per_unroll outcomes =
  List.filter_map
    (fun (u, group) ->
      match group with
      | [] -> None
      | group ->
        Some
          ( u,
            List.fold_left
              (fun acc (_, r) -> Float.min acc r.Report.value)
              infinity group ))
    (by_unroll outcomes)

(* ------------------------------------------------------------------ *)
(* Run provenance                                                      *)
(* ------------------------------------------------------------------ *)

let spec_fingerprint spec = Marshal.to_string spec []

let kernel_hash t = Mt_parallel.Cache.digest_key [ spec_fingerprint t.spec ]

let machine_hash t =
  Mt_parallel.Cache.digest_key [ machine_fingerprint t.options ]

let snapshot ?(tool = "mt_study") t outcomes =
  let opts = t.options in
  let variants =
    List.filter_map
      (fun o ->
        match o.result with
        | Error _ -> None
        | Ok r ->
          Some
            (Mt_obsv.Snapshot.of_values
               ~key:(Variant.id o.variant)
               ~unroll:o.variant.Variant.unroll
               ~unit_label:r.Report.unit_label ~per_label:r.Report.per_label
               ~thresholds:opts.Options.quality ~seed:opts.Options.quality_seed
               r.Report.experiments))
      outcomes
  in
  Mt_obsv.Snapshot.make ~tool
    ~kernel:(t.spec.Spec.name, kernel_hash t)
    ~machine:
      ( (Options.effective_machine opts).Mt_machine.Config.name,
        machine_hash t )
    ~options:(Options.summary opts) ~seed:opts.Options.noise_seed
    ~variant_count:(List.length outcomes)
    ~counters:(Mt_telemetry.counters (Mt_telemetry.global ()))
    variants

let quality_summary outcomes =
  List.fold_left
    (fun (stable, noisy, unstable) o ->
      match o.result with
      | Error _ -> (stable, noisy, unstable)
      | Ok r -> (
        match r.Report.quality.Mt_quality.verdict with
        | Mt_quality.Stable -> (stable + 1, noisy, unstable)
        | Mt_quality.Noisy _ -> (stable, noisy + 1, unstable)
        | Mt_quality.Unstable _ -> (stable, noisy, unstable + 1)))
    (0, 0, 0) outcomes

let csv outcomes =
  let doc =
    Mt_stats.Csv.create
      ~header:[ "variant"; "unroll"; "status"; "value"; "min"; "max"; "verdict" ]
  in
  List.iter
    (fun o ->
      let id = Variant.id o.variant in
      let unroll = string_of_int o.variant.Variant.unroll in
      match o.result with
      | Ok r ->
        Mt_stats.Csv.add_row doc
          [
            id; unroll; "ok";
            Printf.sprintf "%.6g" r.Report.value;
            Printf.sprintf "%.6g" r.Report.summary.Mt_stats.minimum;
            Printf.sprintf "%.6g" r.Report.summary.Mt_stats.maximum;
            Mt_quality.verdict_to_string r.Report.quality.Mt_quality.verdict;
          ]
      | Error msg ->
        Mt_stats.Csv.add_row doc [ id; unroll; "error: " ^ msg; ""; ""; ""; "" ])
    outcomes;
  doc
