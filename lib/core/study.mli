(** The end-to-end MicroTools workflow of Section 2: describe a kernel
    once, let MicroCreator generate the variation space, run every
    variant through MicroLauncher under one set of options, and compare
    — "testing slight variations in the code or runtime environment to
    help automate the tuning process". *)

open Mt_creator
open Mt_launcher

type t

val create :
  ?ctx:Pass.context -> ?pipeline:Pass.pipeline -> Spec.t -> Options.t -> t

val of_description :
  ?ctx:Pass.context -> string -> Options.t -> (t, string) result
(** Build a study from an XML description document. *)

val variants : t -> Variant.t list
(** The generated variation space (computed once, cached). *)

(** How a run executes, gathered into one value instead of a growing
    pile of optional arguments: parallelism, caching, seeding, the
    adaptive-measurement budget, the resilience policy (retries /
    backoff / budgets), injected faults, the checkpoint journal, and
    the observability outputs.  {!Mt_cli} builds one of these from the
    shared command-line flags; library callers use {!Run_config.make}
    or pipe {!Run_config.default} through the [with_*] setters. *)
module Run_config : sig
  type t = {
    domains : int;
        (** worker domains; [<= 0] means one per available core *)
    cache : Mt_parallel.Cache.t option;  (** result cache, if any *)
    seed : int option;  (** overrides [Options.quality_seed] *)
    adaptive : (float * int) option;
        (** [(rciw_target, max_experiments)]: turn on adaptive
            measurement with this stop rule and budget *)
    policy : Mt_resilience.Policy.t;  (** supervision policy *)
    faults : Mt_resilience.Fault.t list;  (** injected faults *)
    journal_out : string option;  (** write a checkpoint journal here *)
    resume_from : string option;  (** skip work recorded in this journal *)
    trace_out : string option;  (** Chrome trace output (binaries) *)
    metrics_out : string option;  (** metrics CSV output (binaries) *)
    snapshot_out : string option;  (** run snapshot output (binaries) *)
    history_append : string option;
        (** also archive the run snapshot into this history directory
            (binaries; see [Mt_obsv.History]) *)
    trace_detail : Mt_telemetry.detail;
    profile : bool;
        (** record bottleneck attribution during measured calls and
            attach the breakdown to every report (and snapshot) *)
    profile_folded : string option;
        (** write a folded-stack flamegraph of the attribution here
            (binaries; implies [profile]) *)
    plan : Mt_optimize.Plan.t option;
        (** study plan from [mt_optimize]: restricts the run to the
            variants the plan selects and floors planned experiment
            counts — the canonical variant/experiment selection path *)
  }

  val default : t
  (** 1 domain, no cache, no seed override, no adaptive override,
      {!Mt_resilience.Policy.default}, no faults, no journal, no
      outputs. *)

  val make :
    ?domains:int ->
    ?cache:Mt_parallel.Cache.t ->
    ?seed:int ->
    ?adaptive:float * int ->
    ?policy:Mt_resilience.Policy.t ->
    ?faults:Mt_resilience.Fault.t list ->
    ?journal_out:string ->
    ?resume_from:string ->
    ?trace_out:string ->
    ?metrics_out:string ->
    ?snapshot_out:string ->
    ?history_append:string ->
    ?trace_detail:Mt_telemetry.detail ->
    ?profile:bool ->
    ?profile_folded:string ->
    ?plan:Mt_optimize.Plan.t ->
    unit ->
    t

  val with_domains : int -> t -> t

  val with_cache : Mt_parallel.Cache.t option -> t -> t

  val with_seed : int option -> t -> t

  val with_adaptive : (float * int) option -> t -> t

  val with_policy : Mt_resilience.Policy.t -> t -> t

  val with_faults : Mt_resilience.Fault.t list -> t -> t

  val with_journal : string option -> t -> t

  val with_resume : string option -> t -> t

  val with_trace_out : string option -> t -> t

  val with_metrics_out : string option -> t -> t

  val with_snapshot_out : string option -> t -> t

  val with_history_append : string option -> t -> t

  val with_trace_detail : Mt_telemetry.detail -> t -> t

  val with_profile : bool -> t -> t

  val with_profile_folded : string option -> t -> t

  val with_plan : Mt_optimize.Plan.t option -> t -> t

  val effective_domains : t -> int
  (** [domains], resolving [<= 0] to
      {!Mt_parallel.Pool.available_domains}. *)

  val apply_options : t -> Options.t -> Options.t
  (** The launcher options as the run will actually use them: [seed]
      into [quality_seed], [adaptive] into the adaptive knobs,
      [profile] into [Options.profile], the policy's [sim_budget]
      clamped onto [max_instructions].  {!run}
      applies this itself; exposed for callers that build options
      elsewhere (e.g. [microlauncher]). *)

  val plan_options :
    t -> variant_id:string -> Mt_launcher.Options.t -> Mt_launcher.Options.t
  (** The plan's per-variant experiment floor applied to already
      {!apply_options}-shaped options; identity without a plan or for
      unfloored variants.  Under the adaptive controller the floor is
      the starting (minimum) count.  {!run} applies this itself. *)
end

(** Execution history the supervisor attaches to each variant. *)
type exec = {
  attempts : int;  (** attempts spent ([0] for a journal replay) *)
  quarantined : Mt_resilience.Supervisor.quarantine option;
      (** [Some _] when the supervisor gave up on the variant *)
  resumed : bool;  (** replayed from a [--resume] journal *)
}

(** One variant's fate in the study. *)
type outcome = {
  variant : Variant.t;
  result : (Report.t, string) result;
  exec : exec;
}

val run : ?config:Run_config.t -> t -> outcome list
(** Measure every variant under the study's launcher options, shaped
    and supervised by [config] (default {!Run_config.default}).

    Execution: variants are spread over
    [Run_config.effective_domains config] domains via
    {!Mt_parallel.Pool}; the simulator is pure per variant and results
    merge back in generation order, so a parallel run's outcome list —
    and therefore its {!csv} — is byte-identical to a sequential one.
    [config.cache] short-circuits variants whose (program text,
    options, machine) triple was measured before.

    Supervision: each variant launch runs under
    {!Mt_resilience.Supervisor.supervise} with [config.policy] — a
    crashing or over-budget variant is retried with deterministic
    backoff and, when retries are exhausted, degrades to an [Error]
    outcome flagged in [exec.quarantined] instead of killing the study.
    [config.faults] injects deterministic failures by variant index
    (corrupt-cache faults plant garbage at the variant's cache key
    before launching it).

    Checkpointing: with [config.journal_out], every completed variant
    (including quarantined ones) is appended to a crash-safe journal
    keyed by {!cache_key}; with [config.resume_from], variants found in
    that journal are replayed from it ([exec.resumed]) and only the
    rest are measured.  Resumed and fresh runs produce byte-identical
    {!csv} output.
    @raise Failure when [config.resume_from] cannot be read.

    Planning: with [config.plan], only variants the plan selects are
    measured (a variant the plan has never seen still runs — see
    {!Mt_optimize.Plan.selects}), floored variants use the plan's
    experiment count, and the [plan.kept] / [plan.dropped] telemetry
    counters record the pruning.

    When the global {!Mt_telemetry} handle is enabled, the run is a
    [study.run] span containing [study.variant] and
    [resilience.attempt] spans, [sim.variants] plus the
    [resilience.retry/timeout/quarantine/fault.injected/resume.*]
    counters. *)

val cache_key : Options.t -> Variant.t -> string
(** The content address {!run} uses: a digest of the variant's
    fingerprint (id, unroll, lowered program text, ABI), the launcher
    options (minus output-routing fields) and the effective machine
    config.  Also the journal key for checkpoint/resume. *)

val cached_launch :
  ?cache:Mt_parallel.Cache.t ->
  Options.t -> Variant.t -> (Report.t, string) result
(** One variant through the launcher, routed through the cache —
    the primitive {!run} and {!Experiments} share. *)

val successes : outcome list -> (Variant.t * Report.t) list

val quarantined : outcome list -> (Variant.t * Mt_resilience.Supervisor.quarantine) list
(** The variants the supervisor gave up on, with their verdicts. *)

val resumed_count : outcome list -> int
(** How many outcomes were replayed from the resume journal. *)

val best : outcome list -> (Variant.t * Report.t) option
(** The variant with the lowest measured value. *)

val by_unroll : outcome list -> (int * (Variant.t * Report.t) list) list
(** Successful outcomes grouped by unroll factor, ascending — the
    grouping behind Figures 5, 11, 12, 17, 18. *)

val min_per_unroll : outcome list -> (int * float) list
(** The paper's per-unroll-group minimum ("for each unroll group, the
    minimum value was taken"). *)

val csv : outcome list -> Mt_stats.Csv.t
(** Variant id, unroll, decisions, measured value (or error), the
    series' quality verdict, and a flags column carrying
    {!Report.quarantine_flag} for quarantined variants.  Attempt counts
    and resume provenance are deliberately excluded so resumed and
    uninterrupted runs emit byte-identical CSVs. *)

val quality_summary : outcome list -> int * int * int
(** [(stable, noisy, unstable)] verdict counts over the successful
    outcomes — the one-line quality digest the CLIs print. *)

val kernel_hash : t -> string
(** Content digest of the kernel description — two studies with the
    same spec hash alike regardless of options. *)

val snapshot : ?tool:string -> t -> outcome list -> Mt_obsv.Snapshot.t
(** A run manifest for these outcomes: kernel/machine content hashes,
    the full option summary, the noise seed, a per-variant statistical
    summary (keyed by variant id, for {!Mt_obsv.Diff} matching; failed
    variants are counted in [variant_count] but carry no stats), the
    quarantined variant ids (schema 3), and the current global
    telemetry counters. *)
