(** The end-to-end MicroTools workflow of Section 2: describe a kernel
    once, let MicroCreator generate the variation space, run every
    variant through MicroLauncher under one set of options, and compare
    — "testing slight variations in the code or runtime environment to
    help automate the tuning process". *)

open Mt_creator
open Mt_launcher

type t

val create :
  ?ctx:Pass.context -> ?pipeline:Pass.pipeline -> Spec.t -> Options.t -> t

val of_description :
  ?ctx:Pass.context -> string -> Options.t -> (t, string) result
(** Build a study from an XML description document. *)

val variants : t -> Variant.t list
(** The generated variation space (computed once, cached). *)

(** One variant's fate in the study. *)
type outcome = { variant : Variant.t; result : (Report.t, string) result }

val run :
  ?domains:int -> ?cache:Mt_parallel.Cache.t -> ?seed:int -> t -> outcome list
(** Measure every variant under the study's launcher options.

    [seed] overrides [options.quality_seed] for this run — the explicit
    seed behind every quality bootstrap (never the global [Random]
    state), so verdicts reproduce bit-for-bit.

    [domains] (default 1) spreads the variant list over that many
    domains via {!Mt_parallel.Pool}; the simulator is pure per variant,
    and results are merged back in generation order, so a parallel
    run's outcome list — and therefore its {!csv} — is byte-identical
    to a sequential run's.

    [cache] short-circuits variants whose (program text, options,
    machine) triple was measured before: their stored report is
    replayed without touching the simulator.  A repeated run with the
    same cache re-simulates nothing.

    When the global {!Mt_telemetry} handle is enabled, the run is a
    [study.run] span containing one [study.variant] span per variant
    (tagged with the variant id) and a [sim.variants] counter. *)

val cache_key : Options.t -> Variant.t -> string
(** The content address {!run} uses: a digest of the variant's
    fingerprint (id, unroll, lowered program text, ABI), the launcher
    options (minus output-routing fields) and the effective machine
    config. *)

val cached_launch :
  ?cache:Mt_parallel.Cache.t ->
  Options.t -> Variant.t -> (Report.t, string) result
(** One variant through the launcher, routed through the cache —
    the primitive {!run} and {!Experiments} share. *)

val successes : outcome list -> (Variant.t * Report.t) list

val best : outcome list -> (Variant.t * Report.t) option
(** The variant with the lowest measured value. *)

val by_unroll : outcome list -> (int * (Variant.t * Report.t) list) list
(** Successful outcomes grouped by unroll factor, ascending — the
    grouping behind Figures 5, 11, 12, 17, 18. *)

val min_per_unroll : outcome list -> (int * float) list
(** The paper's per-unroll-group minimum ("for each unroll group, the
    minimum value was taken"). *)

val csv : outcome list -> Mt_stats.Csv.t
(** Variant id, unroll, decisions, measured value (or error), and the
    series' quality verdict. *)

val quality_summary : outcome list -> int * int * int
(** [(stable, noisy, unstable)] verdict counts over the successful
    outcomes — the one-line quality digest the CLIs print. *)

val kernel_hash : t -> string
(** Content digest of the kernel description — two studies with the
    same spec hash alike regardless of options. *)

val snapshot : ?tool:string -> t -> outcome list -> Mt_obsv.Snapshot.t
(** A run manifest for these outcomes: kernel/machine content hashes,
    the full option summary, the noise seed, a per-variant statistical
    summary (keyed by variant id, for {!Mt_obsv.Diff} matching; failed
    variants are counted in [variant_count] but carry no stats), and
    the current global telemetry counters. *)
