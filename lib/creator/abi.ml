open Mt_isa

type t = {
  function_name : string;
  counter : Reg.t;
  counter_step : int;
  pointers : (Reg.t * int) list;
  pass_counter : Reg.t option;
  unroll : int;
  loads_per_pass : int;
  stores_per_pass : int;
  bytes_per_pass : int;
}

let passes_for_bytes t bytes =
  let max_step =
    List.fold_left (fun acc (_, step) -> max acc (abs step)) 0 t.pointers
  in
  if max_step = 0 then 1 else max 1 (bytes / max_step)

(* Generated loops test [jge] after the decrement, so a trip count of
   [step * (passes - 1)] executes exactly [passes] passes. *)
let trip_count_for_passes t passes =
  let step = abs t.counter_step in
  if step = 0 then passes else step * max 0 (passes - 1)

let payload_per_pass t = t.loads_per_pass + t.stores_per_pass

let pp fmt t =
  Format.fprintf fmt
    "@[<v>function %s: counter %a step %d, unroll %d, %d loads + %d stores per pass@,"
    t.function_name Reg.pp t.counter t.counter_step t.unroll t.loads_per_pass
    t.stores_per_pass;
  List.iter
    (fun (r, step) -> Format.fprintf fmt "  array %a advances %d bytes/pass@," Reg.pp r step)
    t.pointers;
  Format.fprintf fmt "@]"
