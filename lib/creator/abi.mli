(** The contract between a generated kernel and MicroLauncher
    (Section 4.4): how the trip count and array base pointers arrive,
    what the loop advances per pass, and what [%rax] counts at exit. *)

open Mt_isa

type t = {
  function_name : string;
  counter : Reg.t;  (** Receives the trip count [n] (the [last_induction] register). *)
  counter_step : int;
      (** Signed change of [counter] per loop pass, after unroll scaling. *)
  pointers : (Reg.t * int) list;
      (** Array base registers, in argument order, each with the bytes
          it advances per loop pass.  MicroLauncher allocates one array
          per entry ([--nbvectors]). *)
  pass_counter : Reg.t option;
      (** Register incremented once per pass — [%eax] under the paper's
          return-value convention; [None] if the kernel does not count. *)
  unroll : int;
  loads_per_pass : int;
  stores_per_pass : int;
  bytes_per_pass : int;  (** Data bytes touched per loop pass. *)
}

val passes_for_bytes : t -> int -> int
(** [passes_for_bytes abi bytes] is how many loop passes traverse
    [bytes] of each array once (at least 1). *)

val trip_count_for_passes : t -> int -> int
(** The [n] to pass so the loop executes exactly the given number of
    passes under the generated kernels' [jge]-after-decrement exit
    test: [|counter_step| * (passes - 1)].  A hand-written kernel with
    a [jg]-style test runs one pass fewer — harmless, because the
    launcher normalises by the kernel-reported pass count. *)

val payload_per_pass : t -> int
(** Loads plus stores per pass — the per-instruction divisor used by
    Figures 11 and 12. *)

val pp : Format.formatter -> t -> unit
