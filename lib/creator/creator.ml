let generate ?(ctx = Pass.default_context) ?pipeline ?(use_plugins = true) spec =
  let pipeline =
    match pipeline with Some p -> p | None -> Passes.default_pipeline ()
  in
  let pipeline = if use_plugins then Plugin.apply pipeline else pipeline in
  Pass.run ~ctx pipeline spec

let generate_from_string ?ctx ?use_plugins text =
  match Description.of_string text with
  | Error msg -> Error msg
  | Ok spec -> (
    match generate ?ctx ?use_plugins spec with
    | variants -> Ok variants
    | exception Pass.Generation_error msg -> Error msg)

let generate_from_file ?ctx ?use_plugins path =
  match Description.of_file path with
  | Error msg -> Error msg
  | Ok spec -> (
    match generate ?ctx ?use_plugins spec with
    | variants -> Ok variants
    | exception Pass.Generation_error msg -> Error msg)

let generate_to_dir ?ctx ?use_plugins ?language ~dir path =
  match generate_from_file ?ctx ?use_plugins path with
  | Error msg -> Error msg
  | Ok variants -> Ok (Emit.write_all ?language ~dir variants)
