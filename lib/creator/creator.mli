(** MicroCreator's top-level interface: description in, generated
    benchmark-program variants out. *)

val generate :
  ?ctx:Pass.context ->
  ?pipeline:Pass.pipeline ->
  ?use_plugins:bool ->
  Spec.t ->
  Variant.t list
(** Run the pass pipeline (default {!Passes.default_pipeline}) over a
    description.  When [use_plugins] is true (the default), registered
    {!Plugin}s rewrite the pipeline first.
    @raise Pass.Generation_error on an invalid description. *)

val generate_from_string :
  ?ctx:Pass.context -> ?use_plugins:bool -> string -> (Variant.t list, string) result
(** Parse an XML description and generate. *)

val generate_from_file :
  ?ctx:Pass.context -> ?use_plugins:bool -> string -> (Variant.t list, string) result

val generate_to_dir :
  ?ctx:Pass.context ->
  ?use_plugins:bool ->
  ?language:[ `Assembly | `C ] ->
  dir:string ->
  string ->
  (string list, string) result
(** End-to-end command-line behaviour: description file in, one
    program file per variant out; returns the written paths. *)
