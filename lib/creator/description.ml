open Mt_isa
module X = Mt_xml

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let int_of e tag =
  match X.child_int e tag with
  | Some n -> n
  | None -> bad "<%s> requires an integer <%s> child" e.X.tag tag

let parse_reg_spec (e : X.element) =
  match X.child_text e "name" with
  | Some name -> Spec.Named name
  | None -> (
    match X.child_text e "phyName" with
    | None -> bad "<register> needs a <name> or <phyName> child"
    | Some phy -> (
      let rmin = X.child_int e "min" and rmax = X.child_int e "max" in
      match rmin, rmax with
      | Some rmin, Some rmax ->
        if String.lowercase_ascii phy <> "%xmm" && String.lowercase_ascii phy <> "xmm"
        then bad "rotation ranges are only supported for %%xmm registers, not %s" phy
        else Spec.Xmm_rotation { rmin; rmax }
      | None, None -> (
        match Reg.of_name phy with
        | Some r -> Spec.Phys r
        | None -> bad "unknown physical register %s" phy)
      | Some _, None | None, Some _ -> bad "<register> rotation needs both <min> and <max>"))

let parse_choices e =
  match X.find_children e "choice" with
  | [] -> None
  | choices -> Some (List.map X.text_content choices)

let int_list_of_choices e =
  match parse_choices e with
  | Some texts ->
    List.map
      (fun t ->
        match int_of_string_opt (String.trim t) with
        | Some n -> n
        | None -> bad "<%s>: choice %S is not an integer" e.X.tag t)
      texts
  | None -> (
    match int_of_string_opt (String.trim (X.text_content e)) with
    | Some n -> [ n ]
    | None -> bad "<%s>: %S is not an integer" e.X.tag (X.text_content e))

let opcode_of_text t =
  match Insn.opcode_of_mnemonic (String.trim t) with
  | Some op -> op
  | None -> bad "unknown operation %S" t

let parse_operand (e : X.element) =
  match e.X.tag with
  | "register" -> Some (Spec.S_reg (parse_reg_spec e))
  | "memory" -> (
    match X.find_child e "register" with
    | None -> bad "<memory> needs a <register> child"
    | Some r ->
      let offset = Option.value ~default:0 (X.child_int e "offset") in
      Some (Spec.S_mem { base = parse_reg_spec r; offset }))
  | "immediate" -> (
    match int_list_of_choices e with
    | [ one ] -> Some (Spec.S_imm one)
    | several -> Some (Spec.S_imm_choice several))
  | "operation" | "move_bytes" | "swap_after_unroll" | "swap_before_unroll" | "repeat" ->
    None
  | tag -> bad "unexpected <%s> inside <instruction>" tag

let parse_instruction (e : X.element) =
  let op =
    match X.find_child e "operation", X.find_child e "move_bytes" with
    | Some _, Some _ -> bad "<instruction> has both <operation> and <move_bytes>"
    | None, None -> bad "<instruction> needs an <operation> or <move_bytes>"
    | Some o, None -> (
      match parse_choices o with
      | Some texts -> Spec.Op_choice (List.map opcode_of_text texts)
      | None -> Spec.Fixed (opcode_of_text (X.text_content o)))
    | None, Some m -> (
      match int_of_string_opt (String.trim (X.text_content m)) with
      | Some b -> Spec.Move_bytes b
      | None -> bad "<move_bytes>: %S is not an integer" (X.text_content m))
  in
  let operands = List.filter_map parse_operand (X.children_elements e) in
  let repeat =
    match X.find_child e "repeat" with
    | None -> None
    | Some r -> Some (int_of r "min", int_of r "max")
  in
  Spec.instr
    ~swap_before:(X.has_child e "swap_before_unroll")
    ~swap_after:(X.has_child e "swap_after_unroll")
    ?repeat op operands

let parse_induction (e : X.element) =
  let reg =
    match X.find_child e "register" with
    | Some r -> parse_reg_spec r
    | None -> bad "<induction> needs a <register> child"
  in
  let increments =
    match X.find_child e "increment" with
    | Some i -> int_list_of_choices i
    | None -> bad "<induction> needs an <increment> child"
  in
  let linked_to =
    match X.find_child e "linked" with
    | None -> None
    | Some l -> (
      match X.find_child l "register" with
      | Some r -> (
        match parse_reg_spec r with
        | Spec.Named n -> Some n
        | Spec.Phys p -> Some (Reg.name p)
        | Spec.Xmm_rotation _ -> bad "<linked> register cannot be a rotation range")
      | None -> bad "<linked> needs a <register> child")
  in
  Spec.induction
    ~offset:(Option.value ~default:0 (X.child_int e "offset"))
    ?linked_to
    ~last:(X.has_child e "last_induction")
    ~unaffected:(X.has_child e "not_affected_unroll")
    reg increments

let parse_branch (e : X.element) =
  let label =
    match X.child_text e "label" with
    | Some l -> l
    | None -> bad "<branch_information> needs a <label>"
  in
  let test =
    match X.child_text e "test" with
    | Some t -> opcode_of_text t
    | None -> bad "<branch_information> needs a <test>"
  in
  { Spec.label; test }

let of_xml (root : X.element) =
  try
    if root.X.tag <> "kernel" then bad "root element must be <kernel>, got <%s>" root.X.tag;
    let name = Option.value ~default:"kernel" (X.attribute root "name") in
    let instructions = ref [] in
    let inductions = ref [] in
    let unroll = ref (1, 1) in
    let branch = ref None in
    List.iter
      (fun (e : X.element) ->
        match e.X.tag with
        | "instruction" -> instructions := parse_instruction e :: !instructions
        | "induction" -> inductions := parse_induction e :: !inductions
        | "unrolling" -> unroll := (int_of e "min", int_of e "max")
        | "branch_information" -> branch := Some (parse_branch e)
        | "name" | "comment" -> ()
        | tag -> bad "unexpected <%s> inside <kernel>" tag)
      (X.children_elements root);
    let umin, umax = !unroll in
    let spec =
      {
        Spec.name;
        instructions = List.rev !instructions;
        unroll_min = umin;
        unroll_max = umax;
        inductions = List.rev !inductions;
        branch = !branch;
      }
    in
    match Spec.validate spec with Ok () -> Ok spec | Error msg -> Error msg
  with
  | Bad msg -> Error msg
  | X.Parse_error msg -> Error msg

let of_string s =
  match X.parse_string s with
  | exception X.Parse_error msg -> Error msg
  | root -> of_xml root

let of_file path =
  match X.parse_file path with
  | exception X.Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg
  | root -> of_xml root

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let reg_spec_to_xml r =
  let children =
    match r with
    | Spec.Named n -> [ X.Element (X.elem_text "name" n) ]
    | Spec.Phys p -> [ X.Element (X.elem_text "phyName" (Reg.name p)) ]
    | Spec.Xmm_rotation { rmin; rmax } ->
      [
        X.Element (X.elem_text "phyName" "%xmm");
        X.Element (X.elem_text "min" (string_of_int rmin));
        X.Element (X.elem_text "max" (string_of_int rmax));
      ]
  in
  X.elem "register" children

let choices_to_xml tag values =
  match values with
  | [ one ] -> X.elem_text tag (string_of_int one)
  | several ->
    X.elem tag
      (List.map (fun v -> X.Element (X.elem_text "choice" (string_of_int v))) several)

let operand_to_xml = function
  | Spec.S_reg r -> reg_spec_to_xml r
  | Spec.S_mem { base; offset } ->
    X.elem "memory"
      [
        X.Element (reg_spec_to_xml base);
        X.Element (X.elem_text "offset" (string_of_int offset));
      ]
  | Spec.S_imm n -> X.elem_text "immediate" (string_of_int n)
  | Spec.S_imm_choice ns -> choices_to_xml "immediate" ns

let instruction_to_xml (i : Spec.instr_spec) =
  let op =
    match i.op with
    | Spec.Fixed op -> X.elem_text "operation" (Insn.mnemonic op)
    | Spec.Op_choice ops ->
      X.elem "operation"
        (List.map (fun op -> X.Element (X.elem_text "choice" (Insn.mnemonic op))) ops)
    | Spec.Move_bytes b -> X.elem_text "move_bytes" (string_of_int b)
  in
  let flags =
    (if i.swap_before_unroll then [ X.Element (X.elem "swap_before_unroll" []) ] else [])
    @ if i.swap_after_unroll then [ X.Element (X.elem "swap_after_unroll" []) ] else []
  in
  let repeat =
    match i.repeat with
    | None -> []
    | Some (lo, hi) ->
      [
        X.Element
          (X.elem "repeat"
             [
               X.Element (X.elem_text "min" (string_of_int lo));
               X.Element (X.elem_text "max" (string_of_int hi));
             ]);
      ]
  in
  X.elem "instruction"
    ((X.Element op :: List.map (fun o -> X.Element (operand_to_xml o)) i.operands)
    @ flags @ repeat)

let induction_to_xml (i : Spec.induction_spec) =
  let children =
    [ X.Element (reg_spec_to_xml i.ind_reg); X.Element (choices_to_xml "increment" i.increments) ]
    @ (if i.ind_offset <> 0 then [ X.Element (X.elem_text "offset" (string_of_int i.ind_offset)) ] else [])
    @ (match i.linked_to with
      | Some n ->
        [ X.Element (X.elem "linked" [ X.Element (X.elem "register" [ X.Element (X.elem_text "name" n) ]) ]) ]
      | None -> [])
    @ (if i.is_last then [ X.Element (X.elem "last_induction" []) ] else [])
    @ if i.unaffected_by_unroll then [ X.Element (X.elem "not_affected_unroll" []) ] else []
  in
  X.elem "induction" children

let to_xml (spec : Spec.t) =
  let children =
    List.map (fun i -> X.Element (instruction_to_xml i)) spec.instructions
    @ [
        X.Element
          (X.elem "unrolling"
             [
               X.Element (X.elem_text "min" (string_of_int spec.unroll_min));
               X.Element (X.elem_text "max" (string_of_int spec.unroll_max));
             ]);
      ]
    @ List.map (fun i -> X.Element (induction_to_xml i)) spec.inductions
    @
    match spec.branch with
    | None -> []
    | Some b ->
      [
        X.Element
          (X.elem "branch_information"
             [
               X.Element (X.elem_text "label" b.label);
               X.Element (X.elem_text "test" (Insn.mnemonic b.test));
             ]);
      ]
  in
  X.elem ~attrs:[ ("name", spec.name) ] "kernel" children

let to_string spec = X.to_string (to_xml spec)
