(** The XML kernel-description language of Section 3.1 (Figures 6
    and 9).

    Document shape:
    {v
    <kernel name="loadstore">
      <instruction>
        <operation>movaps</operation>          (or <choice> children,
                                                or <move_bytes>16</move_bytes>)
        <memory>
          <register><name>r1</name></register>
          <offset>0</offset>
        </memory>
        <register>
          <phyName>%xmm</phyName><min>0</min><max>8</max>
        </register>
        <swap_after_unroll/>
      </instruction>
      <unrolling><min>1</min><max>8</max></unrolling>
      <induction>
        <register><name>r1</name></register>
        <increment>16</increment>
        <offset>16</offset>
      </induction>
      <induction>
        <register><name>r0</name></register>
        <increment>-1</increment>
        <linked><register><name>r1</name></register></linked>
        <last_induction/>
      </induction>
      <branch_information><label>L6</label><test>jge</test></branch_information>
    </kernel>
    v} *)

val of_xml : Mt_xml.element -> (Spec.t, string) result

val of_string : string -> (Spec.t, string) result
(** Parse a description document.  XML syntax errors are reported in
    the [Error] case, not raised. *)

val of_file : string -> (Spec.t, string) result

val to_xml : Spec.t -> Mt_xml.element
(** Render a spec back to the document language ([of_xml] of the result
    round-trips). *)

val to_string : Spec.t -> string
