(** Emission of generated variants as assembly or C source
    (Section 3.4: "The generated programs are either in assembly format
    or in C source code"). *)

val assembly : Variant.t -> string
(** The AT&T assembly listing, with a header comment recording the
    variant's generation decisions and launcher ABI. *)

val c_source : Variant.t -> string
(** A C translation unit defining
    [int <name>(int n, void *a0, ...)] whose body is the same kernel
    as GCC extended inline assembly. *)

val file_name : Variant.t -> string
(** Deterministic base name (no extension) for the variant. *)

val write_assembly : dir:string -> Variant.t -> string
(** Write the [.s] file into [dir] (created if missing); returns the
    path. *)

val write_c : dir:string -> Variant.t -> string

val write_all : ?language:[ `Assembly | `C ] -> dir:string -> Variant.t list -> string list
(** Emit every variant (default assembly); returns the paths. *)

val object_container : Variant.t list -> string
(** Bundle many variants into one object container (a [.mto] file) —
    the stand-in for the paper's object-file/dynamic-library inputs
    (Section 4.1): an XML archive of named functions, each carrying its
    assembly listing.  MicroLauncher picks one by function name. *)

val write_object : path:string -> Variant.t list -> unit
