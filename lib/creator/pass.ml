exception Generation_error of string

type context = { max_variants : int; random_selection : int option; seed : int }

let default_context = { max_variants = 100_000; random_selection = None; seed = 1 }

type t = {
  name : string;
  description : string;
  gate : context -> Variant.t -> bool;
  transform : context -> Variant.t -> Variant.t list;
}

let make ?(gate = fun _ _ -> true) ~name ~description transform =
  { name; description; gate; transform }

type pipeline = t list

let truncate n xs =
  let rec go k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: go (k - 1) rest
  in
  go n xs

let run ?(ctx = default_context) pipeline spec =
  let tel = Mt_telemetry.global () in
  let step variants pass =
    Mt_telemetry.span tel ("creator.pass." ^ pass.name) (fun () ->
        let next =
          List.concat_map
            (fun v -> if pass.gate ctx v then pass.transform ctx v else [ v ])
            variants
        in
        let next = truncate ctx.max_variants next in
        if Mt_telemetry.enabled tel then begin
          Mt_telemetry.incr tel "creator.passes";
          Mt_telemetry.add tel ("creator.pass." ^ pass.name ^ ".variants")
            (List.length next)
        end;
        next)
  in
  let result = List.fold_left step [ Variant.of_spec spec ] pipeline in
  if Mt_telemetry.enabled tel then
    Mt_telemetry.add tel "creator.variants" (List.length result);
  result

let names pipeline = List.map (fun p -> p.name) pipeline

let find pipeline name = List.find_opt (fun p -> p.name = name) pipeline

let replace pipeline name pass =
  if not (List.exists (fun p -> p.name = name) pipeline) then raise Not_found;
  List.map (fun p -> if p.name = name then pass else p) pipeline

let remove pipeline name = List.filter (fun p -> p.name <> name) pipeline

let insert_at ~before pipeline anchor pass =
  if not (List.exists (fun p -> p.name = anchor) pipeline) then raise Not_found;
  List.concat_map
    (fun p ->
      if p.name = anchor then if before then [ pass; p ] else [ p; pass ]
      else [ p ])
    pipeline

let insert_before pipeline anchor pass = insert_at ~before:true pipeline anchor pass

let insert_after pipeline anchor pass = insert_at ~before:false pipeline anchor pass

let set_gate pipeline name gate =
  if not (List.exists (fun p -> p.name = name) pipeline) then raise Not_found;
  List.map (fun p -> if p.name = name then { p with gate } else p) pipeline
