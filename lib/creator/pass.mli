(** MicroCreator's pass framework (Section 3.2): a pipeline of
    independent source-to-source passes, each guarded by a gate
    predicate the user (or a plugin) may override.  A pass maps one
    variant to any number of successor variants, so the pipeline is a
    breadth-first expansion from the single input description to the
    full generated program set. *)

exception Generation_error of string

(** Generation-wide knobs. *)
type context = {
  max_variants : int;
      (** Hard cap on the population after each pass (the paper's
          "the user can limit the number of benchmark programs"). *)
  random_selection : int option;
      (** When [Some k], the instruction-selection pass samples at most
          [k] choices per choice point instead of enumerating all. *)
  seed : int;  (** Seed for the random-selection sampling. *)
}

val default_context : context
(** [max_variants = 100_000], exhaustive selection, seed 1. *)

type t = {
  name : string;
  description : string;
  gate : context -> Variant.t -> bool;
  transform : context -> Variant.t -> Variant.t list;
}

val make :
  ?gate:(context -> Variant.t -> bool) ->
  name:string ->
  description:string ->
  (context -> Variant.t -> Variant.t list) ->
  t
(** Build a pass; the default gate always fires. *)

(** {1 Pipelines} *)

type pipeline = t list

val run : ?ctx:context -> pipeline -> Spec.t -> Variant.t list
(** Expand a description through the pipeline.  Gated-off passes copy
    variants through unchanged.
    @raise Generation_error on an invalid description or an internal
    pass failure. *)

val names : pipeline -> string list

val find : pipeline -> string -> t option

val replace : pipeline -> string -> t -> pipeline
(** Replace the pass with the given name.
    @raise Not_found if absent. *)

val remove : pipeline -> string -> pipeline

val insert_before : pipeline -> string -> t -> pipeline
(** @raise Not_found if the anchor pass is absent. *)

val insert_after : pipeline -> string -> t -> pipeline
(** @raise Not_found if the anchor pass is absent. *)

val set_gate : pipeline -> string -> (context -> Variant.t -> bool) -> pipeline
(** Override one pass's gate (the paper's gate-redefinition feature).
    @raise Not_found if the pass is absent. *)
