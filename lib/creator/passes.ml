open Mt_isa

let fail fmt = Printf.ksprintf (fun s -> raise (Pass.Generation_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let reg_spec_key = function
  | Spec.Phys r -> "phys:" ^ Reg.name r
  | Spec.Named n -> "named:" ^ n
  | Spec.Xmm_rotation { rmin; rmax } -> Printf.sprintf "xmm:%d:%d" rmin rmax

(* SplitMix64 for the seeded random-selection mode. *)
let mix state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z' = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z'' = Int64.mul (Int64.logxor z' (Int64.shift_right_logical z' 27)) 0x94D049BB133111EBL in
  z, Int64.logxor z'' (Int64.shift_right_logical z'' 31)

let sample_choices ~seed ~k xs =
  (* Deterministically keep at most k elements of xs. *)
  if List.length xs <= k then xs
  else begin
    let state = ref (Int64.of_int (seed lxor 0x5DEECE66)) in
    let weighted =
      List.map
        (fun x ->
          let s, r = mix !state in
          state := s;
          (r, x))
        xs
    in
    let sorted = List.sort (fun (a, _) (b, _) -> Int64.compare a b) weighted in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | (_, x) :: rest -> x :: take (n - 1) rest
    in
    take k sorted
  end

(* Fold a per-instruction expansion over the body, forking variants.
   [expand v idx instr] returns the alternatives for one instruction:
   each alternative is a replacement instruction list plus a decision
   tag (or None when forced). *)
let expand_body expand v =
  let body = Variant.abstract_body v in
  let seeds = [ ([], v) ] in
  let step acc (idx, instr) =
    List.concat_map
      (fun (rev_body, var) ->
        List.map
          (fun (replacement, decision) ->
            let var =
              match decision with
              | None -> var
              | Some (key, value) -> Variant.decide var key value
            in
            (List.rev_append replacement rev_body, var))
          (expand var idx instr))
      acc
  in
  let indexed = List.mapi (fun i x -> (i, x)) body in
  let finished = List.fold_left step seeds indexed in
  List.map
    (fun (rev_body, var) -> { var with Variant.body = Variant.Abstract (List.rev rev_body) })
    finished

(* ------------------------------------------------------------------ *)
(* 1. validate-spec                                                    *)
(* ------------------------------------------------------------------ *)

let validate_spec =
  Pass.make ~name:"validate-spec" ~description:"reject malformed kernel descriptions"
    (fun _ctx v ->
      match Spec.validate v.Variant.spec with
      | Ok () -> [ v ]
      | Error msg -> fail "%s" msg)

(* ------------------------------------------------------------------ *)
(* 2. canonicalize                                                     *)
(* ------------------------------------------------------------------ *)

let canonicalize =
  Pass.make ~name:"canonicalize" ~description:"collapse singleton choices"
    (fun _ctx v ->
      let simplify (i : Spec.instr_spec) =
        let op =
          match i.op with Spec.Op_choice [ one ] -> Spec.Fixed one | op -> op
        in
        let operands =
          List.map
            (function
              | Spec.S_imm_choice [ one ] -> Spec.S_imm one
              | operand -> operand)
            i.operands
        in
        { i with op; operands }
      in
      [ { v with body = Variant.Abstract (List.map simplify (Variant.abstract_body v)) } ])

(* ------------------------------------------------------------------ *)
(* 3. instruction-repetition                                           *)
(* ------------------------------------------------------------------ *)

let instruction_repetition =
  Pass.make ~name:"instruction-repetition"
    ~description:"expand per-instruction repeat ranges" (fun _ctx v ->
      let expand _var idx (i : Spec.instr_spec) =
        match i.repeat with
        | None -> [ ([ i ], None) ]
        | Some (lo, hi) ->
          List.init (hi - lo + 1) (fun k ->
              let count = lo + k in
              let copies = List.init count (fun _ -> { i with Spec.repeat = None }) in
              (copies, Some (Printf.sprintf "rep%d" idx, string_of_int count)))
      in
      expand_body expand v)

(* ------------------------------------------------------------------ *)
(* 4. instruction-selection                                            *)
(* ------------------------------------------------------------------ *)

let instruction_selection =
  Pass.make ~name:"instruction-selection"
    ~description:"fork one variant per opcode choice" (fun ctx v ->
      let expand _var idx (i : Spec.instr_spec) =
        match i.op with
        | Spec.Fixed _ | Spec.Move_bytes _ -> [ ([ i ], None) ]
        | Spec.Op_choice ops ->
          let ops =
            match ctx.Pass.random_selection with
            | None -> ops
            | Some k -> sample_choices ~seed:(ctx.Pass.seed + idx) ~k ops
          in
          List.map
            (fun op ->
              ( [ { i with Spec.op = Spec.Fixed op } ],
                Some (Printf.sprintf "op%d" idx, Insn.mnemonic op) ))
            ops
      in
      expand_body expand v)

(* ------------------------------------------------------------------ *)
(* 5. move-semantics                                                   *)
(* ------------------------------------------------------------------ *)

(* Split a move of [bytes] at displacement step [piece] into [n] pieces
   using [op]; memory displacements advance by [piece]. *)
let split_move (i : Spec.instr_spec) op piece n =
  List.init n (fun k ->
      let shift = k * piece in
      let operands =
        List.map
          (function
            | Spec.S_mem { base; offset } -> Spec.S_mem { base; offset = offset + shift }
            | operand -> operand)
          i.operands
      in
      { i with Spec.op = Spec.Fixed op; operands })

let move_semantics =
  Pass.make ~name:"move-semantics"
    ~description:"lower byte-count moves to aligned/unaligned/vector/scalar forms"
    (fun _ctx v ->
      let expand _var idx (i : Spec.instr_spec) =
        match i.op with
        | Spec.Fixed _ | Spec.Op_choice _ -> [ ([ i ], None) ]
        | Spec.Move_bytes 16 ->
          [
            (split_move i Insn.MOVAPS 16 1, Some (Printf.sprintf "mv%d" idx, "movaps"));
            (split_move i Insn.MOVUPS 16 1, Some (Printf.sprintf "mv%d" idx, "movups"));
            (split_move i Insn.MOVSD 8 2, Some (Printf.sprintf "mv%d" idx, "2movsd"));
            (split_move i Insn.MOVSS 4 4, Some (Printf.sprintf "mv%d" idx, "4movss"));
          ]
        | Spec.Move_bytes 8 ->
          [
            (split_move i Insn.MOVSD 8 1, Some (Printf.sprintf "mv%d" idx, "movsd"));
            (split_move i Insn.MOVSS 4 2, Some (Printf.sprintf "mv%d" idx, "2movss"));
          ]
        | Spec.Move_bytes 4 ->
          [ (split_move i Insn.MOVSS 4 1, Some (Printf.sprintf "mv%d" idx, "movss")) ]
        | Spec.Move_bytes b -> fail "move-semantics: unsupported byte count %d" b
      in
      expand_body expand v)

(* ------------------------------------------------------------------ *)
(* 6. stride-selection                                                 *)
(* ------------------------------------------------------------------ *)

(* Stride choices live in the spec's induction list; a chosen stride
   rewrites the spec carried by the variant so later passes see a
   single increment. *)
let stride_selection =
  Pass.make ~name:"stride-selection"
    ~description:"fork one variant per induction increment" (fun _ctx v ->
      let rec expand spec_inductions chosen_rev var =
        match spec_inductions with
        | [] ->
          let spec = { var.Variant.spec with Spec.inductions = List.rev chosen_rev } in
          [ { var with Variant.spec = spec } ]
        | (ind : Spec.induction_spec) :: rest -> (
          match ind.increments with
          | [ _ ] | [] -> expand rest (ind :: chosen_rev) var
          | choices ->
            List.concat_map
              (fun inc ->
                let var =
                  Variant.decide var
                    (Printf.sprintf "stride_%s" (reg_spec_key ind.ind_reg))
                    (string_of_int inc)
                in
                (* The per-copy unroll displacement follows the chosen
                   stride (unless the description pinned it to 0). *)
                let ind_offset = if ind.Spec.ind_offset = 0 then 0 else inc in
                expand rest
                  ({ ind with Spec.increments = [ inc ]; ind_offset } :: chosen_rev)
                  var)
              choices)
      in
      expand v.Variant.spec.Spec.inductions [] v)

(* ------------------------------------------------------------------ *)
(* 7. immediate-selection                                              *)
(* ------------------------------------------------------------------ *)

let immediate_selection =
  Pass.make ~name:"immediate-selection"
    ~description:"fork one variant per immediate choice" (fun _ctx v ->
      let expand _var idx (i : Spec.instr_spec) =
        (* Enumerate every combination of immediate choices in this
           instruction; the decision tag concatenates the picks so
           variant ids stay unique. *)
        let rec expand_operands = function
          | [] -> [ ([], []) ]
          | Spec.S_imm_choice values :: rest ->
            let tails = expand_operands rest in
            List.concat_map
              (fun value ->
                List.map
                  (fun (tail, picks) -> (Spec.S_imm value :: tail, value :: picks))
                  tails)
              values
          | operand :: rest ->
            List.map (fun (tail, picks) -> (operand :: tail, picks)) (expand_operands rest)
        in
        List.map
          (fun (operands, picks) ->
            let decision =
              match picks with
              | [] -> None
              | picks ->
                Some
                  ( Printf.sprintf "imm%d" idx,
                    String.concat "_" (List.map string_of_int picks) )
            in
            ([ { i with Spec.operands } ], decision))
          (expand_operands i.operands)
      in
      expand_body expand v)

(* ------------------------------------------------------------------ *)
(* 8/10. operand swaps                                                 *)
(* ------------------------------------------------------------------ *)

let swap_operands (i : Spec.instr_spec) =
  { i with Spec.operands = List.rev i.operands }

let operand_swap_pre =
  Pass.make ~name:"operand-swap-pre"
    ~description:"swap flagged operands before unrolling" (fun _ctx v ->
      let expand _var idx (i : Spec.instr_spec) =
        if not i.swap_before_unroll then [ ([ i ], None) ]
        else
          [
            ([ i ], Some (Printf.sprintf "swA%d" idx, "orig"));
            ([ swap_operands i ], Some (Printf.sprintf "swA%d" idx, "swap"));
          ]
      in
      expand_body expand v)

let operand_swap_post =
  Pass.make ~name:"operand-swap-post"
    ~description:"swap flagged operands after unrolling (all interleavings)"
    (fun ctx v ->
      let body = Variant.abstract_body v in
      let flagged =
        List.filteri (fun _ i -> i.Spec.swap_after_unroll) body |> List.length
      in
      if flagged = 0 then [ v ]
      else if flagged > 20 then
        fail "operand-swap-post: 2^%d interleavings; cap the unroll factor" flagged
      else begin
        let total = 1 lsl flagged in
        let variants = ref [] in
        let count = ref 0 in
        let mask = ref 0 in
        while !mask < total && !count < ctx.Pass.max_variants do
          let bit = ref 0 in
          let tag = Buffer.create flagged in
          let new_body =
            List.map
              (fun (i : Spec.instr_spec) ->
                if not i.Spec.swap_after_unroll then i
                else begin
                  let swapped = !mask land (1 lsl !bit) <> 0 in
                  incr bit;
                  Buffer.add_char tag (if swapped then 'S' else 'L');
                  if swapped then swap_operands i else i
                end)
              body
          in
          let var = Variant.decide v "swB" (Buffer.contents tag) in
          variants := { var with Variant.body = Variant.Abstract new_body } :: !variants;
          incr count;
          incr mask
        done;
        List.rev !variants
      end)

(* ------------------------------------------------------------------ *)
(* 9. unrolling                                                        *)
(* ------------------------------------------------------------------ *)

let unrolling =
  Pass.make ~name:"unrolling" ~description:"replicate the body per unroll factor"
    (fun _ctx v ->
      let spec = v.Variant.spec in
      let offsets =
        List.map (fun (ind : Spec.induction_spec) -> (reg_spec_key ind.ind_reg, ind.ind_offset))
          spec.Spec.inductions
      in
      let offset_of base = Option.value ~default:0 (List.assoc_opt (reg_spec_key base) offsets) in
      let body = Variant.abstract_body v in
      List.init (spec.Spec.unroll_max - spec.Spec.unroll_min + 1) (fun k ->
          let u = spec.Spec.unroll_min + k in
          let copies =
            List.concat
              (List.init u (fun copy ->
                   List.map
                     (fun (i : Spec.instr_spec) ->
                       let operands =
                         List.map
                           (function
                             | Spec.S_mem { base; offset } ->
                               Spec.S_mem { base; offset = offset + (copy * offset_of base) }
                             | operand -> operand)
                           i.operands
                       in
                       { i with Spec.operands; copy_index = copy })
                     body))
          in
          let var = Variant.decide v "u" (string_of_int u) in
          { var with Variant.body = Variant.Abstract copies; unroll = u }))

(* ------------------------------------------------------------------ *)
(* 11. register-rotation                                               *)
(* ------------------------------------------------------------------ *)

let register_rotation =
  Pass.make ~name:"register-rotation"
    ~description:"resolve XMM rotation ranges per unroll copy" (fun _ctx v ->
      let resolve copy = function
        | Spec.Xmm_rotation { rmin; rmax } ->
          Spec.Phys (Reg.xmm (rmin + (copy mod (rmax - rmin))))
        | reg -> reg
      in
      let body =
        List.map
          (fun (i : Spec.instr_spec) ->
            let operands =
              List.map
                (function
                  | Spec.S_reg r -> Spec.S_reg (resolve i.copy_index r)
                  | Spec.S_mem { base; offset } ->
                    Spec.S_mem { base = resolve i.copy_index base; offset }
                  | operand -> operand)
                i.operands
            in
            { i with Spec.operands })
          (Variant.abstract_body v)
      in
      [ { v with Variant.body = Variant.Abstract body } ])

(* ------------------------------------------------------------------ *)
(* 12. lowering                                                        *)
(* ------------------------------------------------------------------ *)

let lower_reg = function
  | Spec.Phys r -> r
  | Spec.Named n -> Reg.logical n
  | Spec.Xmm_rotation _ -> fail "lowering: unresolved XMM rotation"

let lower_operand = function
  | Spec.S_reg r -> Operand.reg (lower_reg r)
  | Spec.S_mem { base; offset } -> Operand.mem ~base:(lower_reg base) ~disp:offset ()
  | Spec.S_imm n -> Operand.imm n
  | Spec.S_imm_choice _ -> fail "lowering: unresolved immediate choice"

let lowering =
  Pass.make ~name:"lowering" ~description:"lower abstract instructions to the ISA"
    (fun _ctx v ->
      let items =
        List.map
          (fun (i : Spec.instr_spec) ->
            let op =
              match i.Spec.op with
              | Spec.Fixed op -> op
              | Spec.Op_choice _ -> fail "lowering: unresolved opcode choice"
              | Spec.Move_bytes _ -> fail "lowering: unresolved move semantics"
            in
            Insn.Insn (Insn.make op (List.map lower_operand i.Spec.operands)))
          (Variant.abstract_body v)
      in
      [ { v with Variant.body = Variant.Concrete items } ])

(* ------------------------------------------------------------------ *)
(* 13. induction-insertion                                             *)
(* ------------------------------------------------------------------ *)

let induction_total (ind : Spec.induction_spec) unroll =
  let inc = match ind.increments with [ inc ] -> inc | _ -> fail "induction has no chosen stride" in
  if ind.unaffected_by_unroll then inc else inc * unroll

let induction_update (ind : Spec.induction_spec) unroll =
  let total = induction_total ind unroll in
  let reg = lower_reg ind.ind_reg in
  if total = 0 then None
  else if total > 0 then Some (Insn.make Insn.ADD [ Operand.imm total; Operand.reg reg ])
  else Some (Insn.make Insn.SUB [ Operand.imm (-total); Operand.reg reg ])

let induction_insertion =
  Pass.make ~name:"induction-insertion"
    ~description:"append induction-variable updates" (fun _ctx v ->
      let spec = v.Variant.spec in
      let ordinary, last =
        List.partition (fun (i : Spec.induction_spec) -> not i.is_last) spec.Spec.inductions
      in
      let updates inds =
        List.filter_map (fun ind -> Option.map (fun i -> Insn.Insn i) (induction_update ind v.Variant.unroll)) inds
      in
      let body =
        Variant.concrete_body v
        @ (Insn.Comment "induction variables" :: updates ordinary)
        @ updates last
      in
      [ { v with Variant.body = Variant.Concrete body } ])

(* ------------------------------------------------------------------ *)
(* 14. branch-generation                                               *)
(* ------------------------------------------------------------------ *)

let branch_generation =
  Pass.make ~name:"branch-generation" ~description:"place the loop label and jump"
    (fun _ctx v ->
      match v.Variant.spec.Spec.branch with
      | None -> [ v ]
      | Some { label; test } ->
        let body =
          (Insn.Label label :: Variant.concrete_body v)
          @ [ Insn.Insn (Insn.make test [ Operand.label label ]) ]
        in
        [ { v with Variant.body = Variant.Concrete body } ])

(* ------------------------------------------------------------------ *)
(* 15. register-allocation                                             *)
(* ------------------------------------------------------------------ *)

(* Array pointers land in the SysV argument registers first; kernels
   with more arrays than argument registers get the rest from callee-
   saved scratch (the C wrapper loads stack arguments there). *)
let pointer_arg_regs = Reg.[ RSI; RDX; RCX; R8; R9; R10; R11; R12; R13; R14; RBX ]

let scratch_regs = Reg.[ RBX; R10; R11; R12; R13; R14; R15 ]

let allocation_map (spec : Spec.t) =
  let counter_name =
    List.find_map
      (fun (i : Spec.induction_spec) ->
        if i.is_last then match i.ind_reg with Spec.Named n -> Some n | _ -> None
        else None)
      spec.inductions
  in
  (* Named registers appearing as memory bases, in order of first use. *)
  let bases = ref [] in
  List.iter
    (fun (i : Spec.instr_spec) ->
      List.iter
        (function
          | Spec.S_mem { base = Spec.Named n; _ } ->
            if (not (List.mem n !bases)) && Some n <> counter_name then bases := !bases @ [ n ]
          | _ -> ())
        i.operands)
    spec.instructions;
  (* Remaining named registers: plain register operands and induction
     registers that are neither counter nor pointer. *)
  let others = ref [] in
  let note n =
    if Some n <> counter_name && (not (List.mem n !bases)) && not (List.mem n !others)
    then others := !others @ [ n ]
  in
  List.iter
    (fun (i : Spec.instr_spec) ->
      List.iter (function Spec.S_reg (Spec.Named n) -> note n | _ -> ()) i.operands)
    spec.instructions;
  List.iter
    (fun (i : Spec.induction_spec) ->
      match i.ind_reg with Spec.Named n -> note n | _ -> ())
    spec.inductions;
  let map = ref [] in
  (match counter_name with
  | Some n -> map := [ (n, Reg.gpr64 Reg.RDI) ]
  | None -> ());
  List.iteri
    (fun k n ->
      match List.nth_opt pointer_arg_regs k with
      | Some r -> map := (n, Reg.gpr64 r) :: !map
      | None -> fail "register-allocation: more than %d array pointers" (List.length pointer_arg_regs))
    !bases;
  let taken = List.map snd !map in
  let free_scratch =
    List.filter
      (fun r -> not (List.exists (Reg.equal (Reg.gpr64 r)) taken))
      scratch_regs
  in
  List.iteri
    (fun k n ->
      match List.nth_opt free_scratch k with
      | Some r -> map := (n, Reg.gpr64 r) :: !map
      | None -> fail "register-allocation: out of scratch registers")
    !others;
  List.rev !map

let register_allocation =
  Pass.make ~name:"register-allocation"
    ~description:"map logical registers to physical registers" (fun _ctx v ->
      let map = allocation_map v.Variant.spec in
      let substitute r =
        match r with
        | Reg.Logical n -> (
          match List.assoc_opt n map with
          | Some phys -> phys
          | None -> fail "register-allocation: unmapped logical register %s" n)
        | Reg.Gpr _ | Reg.Xmm _ -> r
      in
      let body =
        List.map
          (function
            | Insn.Insn i -> Insn.Insn (Insn.map_registers substitute i)
            | item -> item)
          (Variant.concrete_body v)
      in
      [ { v with Variant.body = Variant.Concrete body } ])

(* ------------------------------------------------------------------ *)
(* 16. finalize-abi                                                    *)
(* ------------------------------------------------------------------ *)

let finalize_abi =
  Pass.make ~name:"finalize-abi"
    ~description:"add prologue/epilogue and compute the launcher ABI" (fun _ctx v ->
      let spec = v.Variant.spec in
      let map = allocation_map spec in
      let phys_of (ind : Spec.induction_spec) =
        match ind.ind_reg with
        | Spec.Phys r -> r
        | Spec.Named n -> (
          match List.assoc_opt n map with
          | Some r -> r
          | None -> fail "finalize-abi: unmapped induction register %s" n)
        | Spec.Xmm_rotation _ -> fail "finalize-abi: XMM induction register"
      in
      let last_ind =
        List.find_opt (fun (i : Spec.induction_spec) -> i.is_last) spec.inductions
      in
      let counter, counter_step =
        match last_ind with
        | Some ind -> (phys_of ind, induction_total ind v.Variant.unroll)
        | None -> (Reg.gpr64 Reg.RDI, 0)
      in
      let pointer_names =
        List.filter_map (fun (n, r) ->
            if List.exists (fun p -> Reg.equal (Reg.gpr64 p) r) pointer_arg_regs then Some (n, r)
            else None)
          map
      in
      let step_of_reg name =
        List.fold_left
          (fun acc (ind : Spec.induction_spec) ->
            match ind.ind_reg with
            | Spec.Named n when n = name -> induction_total ind v.Variant.unroll
            | _ -> acc)
          0 spec.inductions
      in
      let pointers = List.map (fun (n, r) -> (r, step_of_reg n)) pointer_names in
      let pass_counter =
        List.find_map
          (fun (ind : Spec.induction_spec) ->
            if ind.unaffected_by_unroll && not ind.is_last then Some (phys_of ind) else None)
          spec.inductions
      in
      (* Prologue: zero every induction register that the launcher does
         not initialise (it sets the counter and the array pointers). *)
      let launcher_set r =
        Reg.equal r counter || List.exists (fun (p, _) -> Reg.equal p r) pointers
      in
      let prologue =
        List.filter_map
          (fun (ind : Spec.induction_spec) ->
            let r = phys_of ind in
            if launcher_set r then None
            else Some (Insn.Insn (Insn.make Insn.XOR [ Operand.reg r; Operand.reg r ])))
          spec.inductions
      in
      let body = Variant.concrete_body v in
      let loads, stores, bytes =
        List.fold_left
          (fun (l, s, b) i ->
            let l = if Semantics.is_load i then l + 1 else l in
            let s = if Semantics.is_store i then s + 1 else s in
            let b =
              if Semantics.memory_access i <> Semantics.No_access then b + Semantics.data_bytes i
              else b
            in
            (l, s, b))
          (0, 0, 0) (Insn.insns body)
      in
      let c_identifier s =
        String.map
          (fun c ->
            match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
          s
      in
      let abi =
        {
          Abi.function_name = c_identifier (Variant.id v);
          counter;
          counter_step;
          pointers;
          pass_counter;
          unroll = v.Variant.unroll;
          loads_per_pass = loads;
          stores_per_pass = stores;
          bytes_per_pass = bytes;
        }
      in
      let program = prologue @ body @ [ Insn.Insn (Insn.make Insn.RET []) ] in
      [ { v with Variant.body = Variant.Concrete program; abi = Some abi } ])

(* ------------------------------------------------------------------ *)
(* 17. peephole                                                        *)
(* ------------------------------------------------------------------ *)

let peephole =
  Pass.make ~name:"peephole" ~description:"drop dead zero-increment updates"
    (fun _ctx v ->
      let body = Variant.concrete_body v in
      let rec clean = function
        | [] -> []
        | (Insn.Insn { Insn.op = Insn.ADD | Insn.SUB; operands = [ Operand.Imm 0; _ ] } as item)
          :: ((Insn.Insn { Insn.op = Insn.Jcc _; _ } :: _) as rest) ->
          (* Keep a zero update that feeds the loop branch's flags. *)
          item :: clean rest
        | Insn.Insn { Insn.op = Insn.ADD | Insn.SUB; operands = [ Operand.Imm 0; _ ] } :: rest ->
          clean rest
        | item :: rest -> item :: clean rest
      in
      [ { v with Variant.body = Variant.Concrete (clean body) } ])

(* ------------------------------------------------------------------ *)
(* 18. alignment-directives                                            *)
(* ------------------------------------------------------------------ *)

let alignment_directives =
  Pass.make ~name:"alignment-directives" ~description:"emit .text/.globl/.align furniture"
    (fun _ctx v ->
      let fn =
        match v.Variant.abi with
        | Some abi -> abi.Abi.function_name
        | None -> Variant.id v
      in
      let header =
        [
          Insn.Directive ".text";
          Insn.Directive (Printf.sprintf ".globl %s" fn);
          Insn.Directive ".align 16";
          Insn.Label fn;
        ]
      in
      [ { v with Variant.body = Variant.Concrete (header @ Variant.concrete_body v) } ])

(* ------------------------------------------------------------------ *)
(* 19. deduplicate                                                     *)
(* ------------------------------------------------------------------ *)

(* Deduplication needs the whole population, but passes see one variant
   at a time.  The pass keeps a per-run table keyed on the emitted text
   minus its name-bearing furniture; the pipeline runner rebuilds the
   pipeline per run, so state never leaks between generations. *)
let deduplicate () =
  let seen = Hashtbl.create 64 in
  Pass.make ~name:"deduplicate" ~description:"collapse variants with identical bodies"
    (fun _ctx v ->
      let key =
        String.concat "\n"
          (List.filter_map
             (function
               | Insn.Insn i -> Some (Insn.to_string i)
               | Insn.Label _ | Insn.Comment _ | Insn.Directive _ -> None)
             (Variant.concrete_body v))
      in
      if Hashtbl.mem seen key then []
      else begin
        Hashtbl.add seen key ();
        [ v ]
      end)

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let default_pipeline () =
  [
    validate_spec;
    canonicalize;
    instruction_repetition;
    instruction_selection;
    move_semantics;
    stride_selection;
    immediate_selection;
    operand_swap_pre;
    unrolling;
    operand_swap_post;
    register_rotation;
    lowering;
    induction_insertion;
    branch_generation;
    register_allocation;
    finalize_abi;
    peephole;
    alignment_directives;
    deduplicate ();
  ]

let pass_names = List.map (fun p -> p.Pass.name) (default_pipeline ())

let find_pass name =
  match List.find_opt (fun p -> p.Pass.name = name) (default_pipeline ()) with
  | Some p -> p
  | None -> raise Not_found
