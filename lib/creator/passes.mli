(** The nineteen passes of MicroCreator's source-to-source pipeline
    (Section 3.2), in execution order:

    + [validate-spec] — reject malformed descriptions.
    + [canonicalize] — collapse singleton choices, fill defaults.
    + [instruction-repetition] — expand per-instruction repeat ranges.
    + [instruction-selection] — fork one variant per opcode choice
      (exhaustive, or seeded sampling under
      {!Pass.context.random_selection}).
    + [move-semantics] — lower byte-count moves to aligned / unaligned /
      vector / scalar encodings.
    + [stride-selection] — fork one variant per induction increment.
    + [immediate-selection] — fork one variant per immediate choice.
    + [operand-swap-pre] — swap flagged operands before unrolling
      (whole-kernel load↔store variants).
    + [unrolling] — replicate the body for each unroll factor,
      adjusting displacements by the induction offsets.
    + [operand-swap-post] — swap flagged operands after unrolling
      (all load/store interleavings: 2^copies variants — the paper's
      510-variant example).
    + [register-rotation] — resolve XMM rotation ranges per copy.
    + [lowering] — abstract instructions to concrete ISA instructions.
    + [induction-insertion] — append induction updates (scaled by the
      unroll factor unless marked [not_affected_unroll]).
    + [branch-generation] — place the loop label and conditional jump.
    + [register-allocation] — map logical registers to physical ones
      (counter to [%rdi], array pointers to the SysV argument
      registers).
    + [finalize-abi] — prologue/epilogue and the {!Abi.t} record.
    + [peephole] — drop dead zero-increment updates.
    + [alignment-directives] — [.text]/[.globl]/[.align] furniture.
    + [deduplicate] — collapse variants with identical output.
*)

val default_pipeline : unit -> Pass.pipeline
(** A fresh copy of the nineteen-pass pipeline. *)

val pass_names : string list
(** Names in execution order (for documentation and tests). *)

val find_pass : string -> Pass.t
(** Look up one of the built-in passes by name.
    @raise Not_found for unknown names. *)

val allocation_map : Spec.t -> (string * Mt_isa.Reg.t) list
(** The deterministic logical-to-physical register assignment used by
    [register-allocation] and [finalize-abi]: the loop counter gets
    [%rdi] (where the trip count arrives), memory bases get the
    argument registers [%rsi %rdx %rcx %r8 %r9] in order of first use,
    and remaining names draw from the scratch pool. *)
