module type PLUGIN = sig
  val name : string

  val plugin_init : Pass.pipeline -> Pass.pipeline
end

let plugins : (module PLUGIN) list ref = ref []

let name_of (module P : PLUGIN) = P.name

let register p =
  let name = name_of p in
  if List.exists (fun q -> name_of q = name) !plugins then
    plugins := List.map (fun q -> if name_of q = name then p else q) !plugins
  else plugins := !plugins @ [ p ]

let unregister name = plugins := List.filter (fun q -> name_of q <> name) !plugins

let registered () = List.map name_of !plugins

let apply pipeline =
  List.fold_left
    (fun pipe p ->
      let (module P : PLUGIN) = p in
      P.plugin_init pipe)
    pipeline !plugins

let clear () = plugins := []
