(** MicroCreator's plugin system (Section 3.3).

    The paper loads user dynamic libraries exposing a [pluginInit]
    function that may add, remove or replace passes and override pass
    gates.  OCaml's sealed runtime has no [dlopen], so a plugin here is
    a first-class module registered programmatically — the same
    extension surface with the same entry-point shape. *)

module type PLUGIN = sig
  val name : string

  val plugin_init : Pass.pipeline -> Pass.pipeline
  (** Called when a generation starts; receives the current pipeline
      and returns the (possibly rewritten) pipeline to use. *)
end

val register : (module PLUGIN) -> unit
(** Add a plugin.  Plugins apply in registration order.  Registering a
    plugin with an already-registered name replaces it in place. *)

val unregister : string -> unit
(** Remove a plugin by name (no-op if absent). *)

val registered : unit -> string list
(** Names in application order. *)

val apply : Pass.pipeline -> Pass.pipeline
(** Run every registered plugin's [plugin_init] over the pipeline. *)

val clear : unit -> unit
(** Remove all plugins (tests). *)
