open Mt_isa

type reg_spec =
  | Phys of Reg.t
  | Named of string
  | Xmm_rotation of { rmin : int; rmax : int }

type operand_spec =
  | S_reg of reg_spec
  | S_mem of { base : reg_spec; offset : int }
  | S_imm of int
  | S_imm_choice of int list

type op_spec = Fixed of Insn.opcode | Op_choice of Insn.opcode list | Move_bytes of int

type instr_spec = {
  op : op_spec;
  operands : operand_spec list;
  swap_before_unroll : bool;
  swap_after_unroll : bool;
  repeat : (int * int) option;
  copy_index : int;
}

type induction_spec = {
  ind_reg : reg_spec;
  increments : int list;
  ind_offset : int;
  linked_to : string option;
  is_last : bool;
  unaffected_by_unroll : bool;
}

type branch_spec = { label : string; test : Insn.opcode }

type t = {
  name : string;
  instructions : instr_spec list;
  unroll_min : int;
  unroll_max : int;
  inductions : induction_spec list;
  branch : branch_spec option;
}

let instr ?(swap_before = false) ?(swap_after = false) ?repeat op operands =
  {
    op;
    operands;
    swap_before_unroll = swap_before;
    swap_after_unroll = swap_after;
    repeat;
    copy_index = 0;
  }

let induction ?(offset = 0) ?linked_to ?(last = false) ?(unaffected = false) reg
    increments =
  {
    ind_reg = reg;
    increments;
    ind_offset = offset;
    linked_to;
    is_last = last;
    unaffected_by_unroll = unaffected;
  }

let registers_of_reg_spec = function
  | Phys r -> Some r
  | Named _ | Xmm_rotation _ -> None

let instruction_count t = List.length t.instructions

let reg_spec_key = function
  | Phys r -> "phys:" ^ Reg.name r
  | Named n -> "named:" ^ n
  | Xmm_rotation { rmin; rmax } -> Printf.sprintf "xmm:%d:%d" rmin rmax

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate t =
  let ( let* ) = Result.bind in
  let* () = if t.instructions = [] then err "kernel %s: no instructions" t.name else Ok () in
  let* () =
    if t.unroll_min < 1 || t.unroll_max < t.unroll_min then
      err "kernel %s: bad unroll range [%d, %d]" t.name t.unroll_min t.unroll_max
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc i ->
        let* () = acc in
        let* () =
          match i.repeat with
          | Some (lo, hi) when lo < 1 || hi < lo ->
            err "kernel %s: bad repeat range [%d, %d]" t.name lo hi
          | Some _ | None -> Ok ()
        in
        let* () =
          match i.op with
          | Op_choice [] -> err "kernel %s: empty opcode choice" t.name
          | Move_bytes b when b <> 4 && b <> 8 && b <> 16 ->
            err "kernel %s: move_bytes %d not in {4, 8, 16}" t.name b
          | Fixed _ | Op_choice _ | Move_bytes _ -> Ok ()
        in
        List.fold_left
          (fun acc op ->
            let* () = acc in
            match op with
            | S_imm_choice [] -> err "kernel %s: empty immediate choice" t.name
            | S_reg (Xmm_rotation { rmin; rmax }) | S_mem { base = Xmm_rotation { rmin; rmax }; _ }
              when rmin < 0 || rmax <= rmin || rmax > 16 ->
              err "kernel %s: bad xmm rotation [%d, %d)" t.name rmin rmax
            | S_reg _ | S_mem _ | S_imm _ | S_imm_choice _ -> Ok ())
          (Ok ()) i.operands)
      (Ok ()) t.instructions
  in
  let* () =
    List.fold_left
      (fun acc (ind : induction_spec) ->
        let* () = acc in
        if ind.increments = [] then err "kernel %s: induction with no increment" t.name
        else Ok ())
      (Ok ()) t.inductions
  in
  let keys = List.map (fun i -> reg_spec_key i.ind_reg) t.inductions in
  let* () =
    if List.length (List.sort_uniq compare keys) <> List.length keys then
      err "kernel %s: duplicate induction registers" t.name
    else Ok ()
  in
  let lasts = List.filter (fun i -> i.is_last) t.inductions in
  match t.branch with
  | None -> Ok ()
  | Some b -> (
    let* () =
      if List.length lasts <> 1 then
        err "kernel %s: a branch requires exactly one <last_induction/>" t.name
      else Ok ()
    in
    match b.test with
    | Insn.Jcc _ -> Ok ()
    | op -> err "kernel %s: branch test %s is not a conditional jump" t.name (Insn.mnemonic op))

let pp_reg_spec fmt = function
  | Phys r -> Reg.pp fmt r
  | Named n -> Format.fprintf fmt "<%s>" n
  | Xmm_rotation { rmin; rmax } -> Format.fprintf fmt "%%xmm[%d..%d)" rmin rmax

let pp_operand fmt = function
  | S_reg r -> pp_reg_spec fmt r
  | S_mem { base; offset } -> Format.fprintf fmt "%d(%a)" offset pp_reg_spec base
  | S_imm n -> Format.fprintf fmt "$%d" n
  | S_imm_choice ns ->
    Format.fprintf fmt "$({%s})" (String.concat "|" (List.map string_of_int ns))

let pp_op fmt = function
  | Fixed op -> Format.pp_print_string fmt (Insn.mnemonic op)
  | Op_choice ops ->
    Format.fprintf fmt "{%s}" (String.concat "|" (List.map Insn.mnemonic ops))
  | Move_bytes b -> Format.fprintf fmt "move%db" b

let pp fmt t =
  Format.fprintf fmt "@[<v>kernel %s (unroll %d..%d)@," t.name t.unroll_min t.unroll_max;
  List.iter
    (fun i ->
      Format.fprintf fmt "  %a %a@," pp_op i.op
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_operand)
        i.operands)
    t.instructions;
  List.iter
    (fun ind ->
      Format.fprintf fmt "  induction %a += {%s}%s%s@," pp_reg_spec ind.ind_reg
        (String.concat "|" (List.map string_of_int ind.increments))
        (if ind.is_last then " [last]" else "")
        (if ind.unaffected_by_unroll then " [not-unrolled]" else ""))
    t.inductions;
  (match t.branch with
  | Some b -> Format.fprintf fmt "  branch %s -> %s@," (Insn.mnemonic b.test) b.label
  | None -> ());
  Format.fprintf fmt "@]"
