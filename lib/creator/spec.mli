(** MicroCreator kernel descriptions — the in-memory form of the XML
    input language of Section 3.1 (Figures 6 and 9 of the paper). *)

open Mt_isa

(** A register position in a description: a physical register, a named
    logical register (resolved by the register-allocation pass), or an
    XMM range rotated across unroll copies to break dependences. *)
type reg_spec =
  | Phys of Reg.t
  | Named of string
  | Xmm_rotation of { rmin : int; rmax : int }
      (** [\[rmin, rmax)] — copy [i] of the unrolled body uses
          [%xmm(rmin + i mod (rmax - rmin))]. *)

type operand_spec =
  | S_reg of reg_spec
  | S_mem of { base : reg_spec; offset : int }
  | S_imm of int  (** A fixed immediate. *)
  | S_imm_choice of int list
      (** The immediate-selection pass forks one variant per value. *)

(** What operation an instruction performs. *)
type op_spec =
  | Fixed of Insn.opcode
  | Op_choice of Insn.opcode list
      (** Instruction-selection forks one variant per opcode. *)
  | Move_bytes of int
      (** Move semantics (Section 3.1): only the byte count is given;
          the move-semantics pass tries aligned / unaligned / vector /
          scalar encodings. *)

type instr_spec = {
  op : op_spec;
  operands : operand_spec list;
  swap_before_unroll : bool;
  swap_after_unroll : bool;
  repeat : (int * int) option;
      (** Replicate this instruction [min..max] times (instruction
          repetition). *)
  copy_index : int;
      (** Which unroll copy this instruction belongs to (0 before the
          unrolling pass). *)
}

type induction_spec = {
  ind_reg : reg_spec;
  increments : int list;  (** Stride choices; one variant per value. *)
  ind_offset : int;
      (** Memory-displacement step between unroll copies for operands
          based on this register. *)
  linked_to : string option;
      (** Follows the unroll scaling of another induction register. *)
  is_last : bool;  (** [<last_induction/>]: sets the flags the branch tests. *)
  unaffected_by_unroll : bool;
      (** [<not_affected_unroll/>]: increments once per loop pass
          regardless of the unroll factor (Fig. 9's iteration counter). *)
}

type branch_spec = { label : string; test : Insn.opcode }

type t = {
  name : string;
  instructions : instr_spec list;
  unroll_min : int;
  unroll_max : int;
  inductions : induction_spec list;
  branch : branch_spec option;
}

val instr :
  ?swap_before:bool ->
  ?swap_after:bool ->
  ?repeat:int * int ->
  op_spec ->
  operand_spec list ->
  instr_spec
(** Build an instruction spec with the usual defaults. *)

val induction :
  ?offset:int ->
  ?linked_to:string ->
  ?last:bool ->
  ?unaffected:bool ->
  reg_spec ->
  int list ->
  induction_spec

val validate : t -> (unit, string) result
(** Structural checks: non-empty instruction list, sane unroll range,
    exactly one last induction when a branch is present, branch opcode
    is a conditional jump, rotation ranges non-empty, repeat ranges
    sane, induction registers distinct. *)

val registers_of_reg_spec : reg_spec -> Reg.t option
(** The concrete register, when already physical. *)

val instruction_count : t -> int

val pp : Format.formatter -> t -> unit
