open Mt_isa

type body = Abstract of Spec.instr_spec list | Concrete of Insn.program

type t = {
  spec : Spec.t;
  body : body;
  unroll : int;
  decisions : (string * string) list;
  abi : Abi.t option;
}

let of_spec spec =
  {
    spec;
    body = Abstract spec.Spec.instructions;
    unroll = 1;
    decisions = [];
    abi = None;
  }

let decide v key value = { v with decisions = (key, value) :: v.decisions }

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

let id v =
  let parts =
    List.rev_map (fun (k, value) -> Printf.sprintf "%s=%s" k value) v.decisions
  in
  sanitize (String.concat "-" (v.spec.Spec.name :: parts))

let abstract_body v =
  match v.body with
  | Abstract instrs -> instrs
  | Concrete _ -> invalid_arg "Variant.abstract_body: body already lowered"

let concrete_body v =
  match v.body with
  | Concrete prog -> prog
  | Abstract _ -> invalid_arg "Variant.concrete_body: body not lowered yet"

let is_concrete v = match v.body with Concrete _ -> true | Abstract _ -> false

let equal_output a b =
  match a.body, b.body with
  | Concrete pa, Concrete pb -> Insn.program_to_string pa = Insn.program_to_string pb
  | Abstract ia, Abstract ib -> ia = ib && a.unroll = b.unroll
  | (Concrete _ | Abstract _), _ -> false
