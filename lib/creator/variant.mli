(** A benchmark-program variant flowing through MicroCreator's pass
    pipeline.  A pass maps each variant to zero or more successors; the
    pipeline's output is the full set of generated programs. *)

open Mt_isa

(** The kernel body: abstract (spec instructions, possibly still with
    choices, logical registers and rotation ranges) until the late
    passes lower it to concrete instructions. *)
type body = Abstract of Spec.instr_spec list | Concrete of Insn.program

type t = {
  spec : Spec.t;  (** The originating description. *)
  body : body;
  unroll : int;
  decisions : (string * string) list;
      (** Choice record, newest first — becomes the variant id. *)
  abi : Abi.t option;  (** Set by the finalize pass. *)
}

val of_spec : Spec.t -> t
(** The initial variant: abstract body equal to the spec's instruction
    list, unroll factor 1, no decisions. *)

val decide : t -> string -> string -> t
(** [decide v key value] records a generation decision. *)

val id : t -> string
(** Deterministic identifier derived from the kernel name and the
    decision record, usable as a file name, e.g.
    ["loadstore-u3-swap2:store"]. *)

val abstract_body : t -> Spec.instr_spec list
(** @raise Invalid_argument if the body is already concrete. *)

val concrete_body : t -> Insn.program
(** @raise Invalid_argument if the body is still abstract. *)

val is_concrete : t -> bool

val equal_output : t -> t -> bool
(** Two variants generate the same program text (used by the
    deduplication pass). *)
