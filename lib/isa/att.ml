exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let reg_of_name s =
  match Reg.of_name s with
  | Some r -> r
  | None -> fail "unknown register %S" s

(* Split a memory operand "disp(base,index,scale)" into parts. *)
let parse_mem s =
  let lparen =
    match String.index_opt s '(' with
    | Some i -> i
    | None -> fail "memory operand %S has no '('" s
  in
  if s.[String.length s - 1] <> ')' then fail "memory operand %S has no ')'" s;
  let disp_str = String.trim (String.sub s 0 lparen) in
  let disp =
    if disp_str = "" then 0
    else
      match int_of_string_opt disp_str with
      | Some d -> d
      | None -> fail "bad displacement %S" disp_str
  in
  let inner = String.sub s (lparen + 1) (String.length s - lparen - 2) in
  let parts = String.split_on_char ',' inner |> List.map String.trim in
  match parts with
  | [ base ] -> Operand.mem ~base:(reg_of_name base) ~disp ()
  | [ base; index ] ->
    let op = if base = "" then Operand.mem ~index:(reg_of_name index) ~disp ()
      else Operand.mem ~base:(reg_of_name base) ~index:(reg_of_name index) ~disp () in
    op
  | [ base; index; scale ] ->
    let scale =
      match int_of_string_opt scale with
      | Some k -> k
      | None -> fail "bad scale %S" scale
    in
    if base = "" then Operand.mem ~index:(reg_of_name index) ~scale ~disp ()
    else Operand.mem ~base:(reg_of_name base) ~index:(reg_of_name index) ~scale ~disp ()
  | _ -> fail "malformed memory operand %S" s

let parse_operand s =
  let s = String.trim s in
  if s = "" then fail "empty operand"
  else if s.[0] = '$' then begin
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n -> Operand.imm n
    | None -> fail "bad immediate %S" s
  end
  else if s.[0] = '%' then Operand.reg (reg_of_name s)
  else if String.contains s '(' then parse_mem s
  else Operand.label s

(* Split operand text on commas that are not inside parentheses. *)
let split_operands s =
  let parts = ref [] in
  let depth = ref 0 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | ',' when !depth = 0 ->
        parts := String.sub s !start (i - !start) :: !parts;
        start := i + 1
      | _ -> ())
    s;
  parts := String.sub s !start (String.length s - !start) :: !parts;
  List.rev_map String.trim !parts

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line, None
  | Some i ->
    ( String.sub line 0 i,
      Some (String.trim (String.sub line (i + 1) (String.length line - i - 1))) )

let parse_line line =
  let code, comment = strip_comment line in
  let code = String.trim code in
  if code = "" then
    match comment with None -> None | Some c -> Some (Insn.Comment c)
  else if code.[String.length code - 1] = ':' then
    Some (Insn.Label (String.sub code 0 (String.length code - 1)))
  else if code.[0] = '.' then Some (Insn.Directive code)
  else begin
    let mnemonic, rest =
      match String.index_opt code ' ' with
      | None -> code, ""
      | Some i ->
        String.sub code 0 i, String.trim (String.sub code i (String.length code - i))
    in
    let mnemonic =
      match String.index_opt mnemonic '\t' with
      | None -> mnemonic
      | Some i -> String.sub mnemonic 0 i
    in
    match Insn.opcode_of_mnemonic mnemonic with
    | None -> fail "unknown mnemonic %S" mnemonic
    | Some op ->
      let operands = if rest = "" then [] else List.map parse_operand (split_operands rest) in
      let insn = Insn.make op operands in
      (match Semantics.validate insn with
      | Ok () -> Some (Insn.Insn insn)
      | Error msg -> fail "%s" msg)
  end

let parse_program text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun idx line ->
         try match parse_line line with None -> [] | Some item -> [ item ]
         with Syntax_error msg -> fail "line %d: %s" (idx + 1) msg)
       lines)

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_program text
