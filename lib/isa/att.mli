(** AT&T-syntax assembly reader.  This is how MicroLauncher accepts
    [.s] files produced by MicroCreator (or written by hand). *)

exception Syntax_error of string
(** Raised with a message including the 1-based line number. *)

val parse_operand : string -> Operand.t
(** Parse a single operand: [$42], [%rsi], [-8(%rax,%rbx,4)], [.L6].
    @raise Syntax_error on malformed input. *)

val parse_line : string -> Insn.item option
(** Parse one listing line.  Returns [None] for blank lines.  Comments
    ([#] to end of line) are stripped; a pure comment line yields
    [Some (Comment _)].  Lines starting with [.] and ending without [:]
    are directives.  @raise Syntax_error on malformed input. *)

val parse_program : string -> Insn.program
(** Parse a whole listing.  @raise Syntax_error with the offending line
    number on malformed input. *)

val parse_file : string -> Insn.program
(** [parse_file path] reads and parses an assembly file. *)
