open Insn

(* Component sizes. *)

let is_extended = function
  | Reg.Gpr (n, _) ->
    (match n with
    | Reg.R8 | Reg.R9 | Reg.R10 | Reg.R11 | Reg.R12 | Reg.R13 | Reg.R14 | Reg.R15 -> true
    | _ -> false)
  | Reg.Xmm n -> n >= 8
  | Reg.Logical _ -> false

let is_w64 = function Reg.Gpr (_, Reg.W64) -> true | _ -> false

let operand_regs op =
  Operand.registers_read op @ (match op with Operand.Reg r -> [ r ] | _ -> [])

(* REX is needed for a 64-bit *data* operand (REX.W) or any extended
   register anywhere; 64-bit addressing alone is the default and costs
   nothing. *)
let rex_bytes operands =
  let any_extended =
    List.exists (fun r -> is_extended r) (List.concat_map operand_regs operands)
  in
  let data_w64 =
    List.exists (function Operand.Reg r -> is_w64 r | _ -> false) operands
  in
  if any_extended || data_w64 then 1 else 0

(* ModRM memory-operand tail: SIB + displacement. *)
let mem_tail = function
  | Operand.Mem m ->
    let sib =
      if m.Operand.index <> None then 1
      else begin
        (* RSP/R12 as base force a SIB byte. *)
        match m.Operand.base with
        | Some (Reg.Gpr ((Reg.RSP | Reg.R12), _)) -> 1
        | _ -> 0
      end
    in
    let disp =
      if m.Operand.disp = 0 then begin
        (* RBP/R13 base needs an explicit disp8 even for 0. *)
        match m.Operand.base with
        | Some (Reg.Gpr ((Reg.RBP | Reg.R13), _)) -> 1
        | _ -> 0
      end
      else if m.Operand.disp >= -128 && m.Operand.disp <= 127 then 1
      else 4
    in
    sib + disp
  | Operand.Reg _ | Operand.Imm _ | Operand.Label _ -> 0

let imm_bytes ~imm8_ok operands =
  List.fold_left
    (fun acc op ->
      match op with
      | Operand.Imm n ->
        acc + (if imm8_ok && n >= -128 && n <= 127 then 1 else 4)
      | Operand.Reg _ | Operand.Mem _ | Operand.Label _ -> acc)
    0 operands

let tails operands = List.fold_left (fun acc op -> acc + mem_tail op) 0 operands

(* Opcode bytes, including mandatory prefixes. *)
let opcode_bytes = function
  | MOV | ADD | SUB | CMP | TEST | AND | OR | XOR | LEA | INC | DEC | NEG
  | SHL | SHR ->
    1
  | IMUL -> 2 (* 0F AF *)
  | MOVAPS | MOVUPS -> 2 (* 0F 28/10 *)
  | MOVAPD | MOVUPD | MOVDQA | MOVDQU | MOVNTDQ -> 3 (* 66/F3 0F xx *)
  | MOVNTPS -> 2 (* 0F 2B *)
  | MOVSS | MOVSD -> 3 (* F3/F2 0F 10 *)
  | ADDPS | SUBPS | MULPS | DIVPS -> 2
  | ADDSS | ADDSD | ADDPD | SUBSS | SUBSD | SUBPD | MULSS | MULSD | MULPD
  | DIVSS | DIVSD | DIVPD | SQRTSS | SQRTSD ->
    3
  | PADDD | PSUBD | PAND | POR | PXOR -> 3 (* 66 0F xx *)
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA -> 2 (* 0F 18 *)
  | JMP -> 1
  | Jcc _ -> 2 (* short form; generated loops are small *)
  | NOP -> 1
  | RET -> 1

let has_modrm i =
  match i.op with
  | JMP | Jcc _ | NOP | RET -> false
  | _ -> i.operands <> []

let length i =
  match i.op with
  | JMP -> 2 (* opcode + rel8 *)
  | Jcc _ -> 2
  | NOP | RET -> 1
  | _ ->
    let imm8_ok =
      (* ALU group 0x83 sign-extends imm8; mov does not. *)
      match i.op with
      | ADD | SUB | CMP | AND | OR | XOR | SHL | SHR -> true
      | _ -> false
    in
    opcode_bytes i.op
    + (if has_modrm i then 1 else 0)
    + rex_bytes i.operands
    + tails i.operands
    + imm_bytes ~imm8_ok i.operands

let program_bytes program =
  List.fold_left (fun acc i -> acc + length i) 0 (insns program)

let loop_body_bytes program =
  (* Bytes from the first label to (and including) the first backward
     conditional branch. *)
  let rec skip_to_label = function
    | Label _ :: rest -> rest
    | _ :: rest -> skip_to_label rest
    | [] -> []
  in
  let rec sum acc = function
    | Insn ({ op = Jcc _; _ } as i) :: _ -> acc + length i
    | Insn i :: rest -> sum (acc + length i) rest
    | (Label _ | Comment _ | Directive _) :: rest -> sum acc rest
    | [] -> acc
  in
  sum 0 (skip_to_label program)

let fits_loop_buffer ?(buffer_bytes = 256) program =
  loop_body_bytes program <= buffer_bytes
