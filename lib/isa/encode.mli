(** Estimated x86-64 encoding lengths.

    The machine model schedules uops, not bytes, but code footprint
    still matters to a benchmark designer: a loop that outgrows the
    decoded-uop loop buffer re-fetches from the instruction cache every
    iteration on real parts.  This module estimates encoded sizes with
    the standard prefix/opcode/ModRM/SIB/displacement/immediate rules
    (exact for the subset the generators emit, within a byte or two for
    unusual operand mixes). *)

val length : Insn.t -> int
(** Estimated encoded bytes of one instruction. *)

val program_bytes : Insn.program -> int
(** Total encoded bytes of a listing's instructions. *)

val loop_body_bytes : Insn.program -> int
(** Bytes between the first label and the backward branch — the part
    that must fit the loop buffer. *)

val fits_loop_buffer : ?buffer_bytes:int -> Insn.program -> bool
(** Whether the loop body fits a Nehalem-class loop stream detector
    (default 256 bytes / 28 uops-ish window, byte-approximated). *)
