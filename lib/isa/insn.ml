type cond = E | NE | G | GE | L | LE | A | AE | B | BE | S | NS

type opcode =
  | MOV | MOVSS | MOVSD | MOVAPS | MOVAPD | MOVUPS | MOVUPD | LEA
  | MOVDQA | MOVDQU
  | MOVNTPS | MOVNTDQ
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA
  | ADD | SUB | INC | DEC | CMP | TEST | AND | OR | XOR | SHL | SHR | IMUL | NEG
  | ADDSS | ADDSD | ADDPS | ADDPD
  | SUBSS | SUBSD | SUBPS | SUBPD
  | MULSS | MULSD | MULPS | MULPD
  | DIVSS | DIVSD | DIVPS | DIVPD
  | SQRTSS | SQRTSD
  | PADDD | PSUBD | PAND | POR | PXOR
  | JMP
  | Jcc of cond
  | NOP
  | RET

type t = { op : opcode; operands : Operand.t list }

type item = Insn of t | Label of string | Comment of string | Directive of string

type program = item list

let make op operands = { op; operands }

let cond_suffix = function
  | E -> "e" | NE -> "ne" | G -> "g" | GE -> "ge" | L -> "l" | LE -> "le"
  | A -> "a" | AE -> "ae" | B -> "b" | BE -> "be" | S -> "s" | NS -> "ns"

let all_conds = [ E; NE; G; GE; L; LE; A; AE; B; BE; S; NS ]

let mnemonic = function
  | MOV -> "mov" | MOVSS -> "movss" | MOVSD -> "movsd" | MOVAPS -> "movaps"
  | MOVAPD -> "movapd" | MOVUPS -> "movups" | MOVUPD -> "movupd" | LEA -> "lea"
  | ADD -> "add" | SUB -> "sub" | INC -> "inc" | DEC -> "dec" | CMP -> "cmp"
  | TEST -> "test" | AND -> "and" | OR -> "or" | XOR -> "xor" | SHL -> "shl"
  | SHR -> "shr" | IMUL -> "imul" | NEG -> "neg"
  | ADDSS -> "addss" | ADDSD -> "addsd" | ADDPS -> "addps" | ADDPD -> "addpd"
  | SUBSS -> "subss" | SUBSD -> "subsd" | SUBPS -> "subps" | SUBPD -> "subpd"
  | MULSS -> "mulss" | MULSD -> "mulsd" | MULPS -> "mulps" | MULPD -> "mulpd"
  | MOVDQA -> "movdqa" | MOVDQU -> "movdqu"
  | MOVNTPS -> "movntps" | MOVNTDQ -> "movntdq"
  | PREFETCHT0 -> "prefetcht0" | PREFETCHT1 -> "prefetcht1"
  | PREFETCHNTA -> "prefetchnta"
  | PADDD -> "paddd" | PSUBD -> "psubd" | PAND -> "pand" | POR -> "por"
  | PXOR -> "pxor"
  | DIVSS -> "divss" | DIVSD -> "divsd" | DIVPS -> "divps" | DIVPD -> "divpd"
  | SQRTSS -> "sqrtss" | SQRTSD -> "sqrtsd"
  | JMP -> "jmp"
  | Jcc c -> "j" ^ cond_suffix c
  | NOP -> "nop"
  | RET -> "ret"

let all_opcodes =
  [ MOV; MOVSS; MOVSD; MOVAPS; MOVAPD; MOVUPS; MOVUPD; LEA;
    ADD; SUB; INC; DEC; CMP; TEST; AND; OR; XOR; SHL; SHR; IMUL; NEG;
    ADDSS; ADDSD; ADDPS; ADDPD; SUBSS; SUBSD; SUBPS; SUBPD;
    MULSS; MULSD; MULPS; MULPD; DIVSS; DIVSD; DIVPS; DIVPD;
    SQRTSS; SQRTSD; MOVDQA; MOVDQU; MOVNTPS; MOVNTDQ;
    PREFETCHT0; PREFETCHT1; PREFETCHNTA;
    PADDD; PSUBD; PAND; POR; PXOR; JMP; NOP; RET ]
  @ List.map (fun c -> Jcc c) all_conds

let opcode_of_mnemonic =
  let table = Hashtbl.create 64 in
  List.iter (fun op -> Hashtbl.replace table (mnemonic op) op) all_opcodes;
  (* GNU as accepts width-suffixed GPR mnemonics; map the common ones. *)
  List.iter
    (fun (m, op) -> Hashtbl.replace table m op)
    [ "movq", MOV; "movl", MOV; "addq", ADD; "addl", ADD; "subq", SUB;
      "subl", SUB; "cmpq", CMP; "cmpl", CMP; "leaq", LEA; "leal", LEA;
      "incq", INC; "incl", INC; "decq", DEC; "decl", DEC; "imulq", IMUL;
      "imull", IMUL; "testq", TEST; "testl", TEST; "xorq", XOR; "xorl", XOR;
      "andq", AND; "andl", AND; "orq", OR; "orl", OR; "shlq", SHL;
      "shrq", SHR; "negq", NEG; "jz", Jcc E; "jnz", Jcc NE ];
  fun s -> Hashtbl.find_opt table (String.lowercase_ascii s)

let to_string i =
  match i.operands with
  | [] -> mnemonic i.op
  | ops -> mnemonic i.op ^ " " ^ String.concat ", " (List.map Operand.to_string ops)

let pp fmt i = Format.pp_print_string fmt (to_string i)

let equal a b = a.op = b.op && List.equal Operand.equal a.operands b.operands

let map_registers f i = { i with operands = List.map (Operand.map_registers f) i.operands }

let insns program =
  List.filter_map
    (function Insn i -> Some i | Label _ | Comment _ | Directive _ -> None)
    program

let item_to_string = function
  | Insn i -> "\t" ^ to_string i
  | Label l -> l ^ ":"
  | Comment c -> "\t# " ^ c
  | Directive d -> "\t" ^ d

let program_to_string program =
  String.concat "\n" (List.map item_to_string program) ^ "\n"
