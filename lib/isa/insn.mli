(** Instructions and instruction streams for the x86-64 subset that
    MicroCreator emits and the machine substrate executes. *)

(** Condition codes for conditional branches. *)
type cond = E | NE | G | GE | L | LE | A | AE | B | BE | S | NS

type opcode =
  (* Data movement. *)
  | MOV | MOVSS | MOVSD | MOVAPS | MOVAPD | MOVUPS | MOVUPD | LEA
  | MOVDQA | MOVDQU
  | MOVNTPS | MOVNTDQ  (** Non-temporal (streaming) stores. *)
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA  (** Software prefetch hints. *)
  (* GPR ALU. *)
  | ADD | SUB | INC | DEC | CMP | TEST | AND | OR | XOR | SHL | SHR | IMUL | NEG
  (* SSE floating point. *)
  | ADDSS | ADDSD | ADDPS | ADDPD
  | SUBSS | SUBSD | SUBPS | SUBPD
  | MULSS | MULSD | MULPS | MULPD
  | DIVSS | DIVSD | DIVPS | DIVPD
  | SQRTSS | SQRTSD
  (* Integer SSE. *)
  | PADDD | PSUBD | PAND | POR | PXOR
  (* Control. *)
  | JMP
  | Jcc of cond
  | NOP
  | RET

(** One instruction: opcode plus operands in AT&T order (sources first,
    destination last). *)
type t = { op : opcode; operands : Operand.t list }

(** An element of an assembly listing. *)
type item =
  | Insn of t
  | Label of string
  | Comment of string
  | Directive of string  (** Raw directive line, e.g. [".align 16"]. *)

type program = item list

val make : opcode -> Operand.t list -> t

val mnemonic : opcode -> string
(** AT&T mnemonic, lowercase, e.g. ["movaps"], ["jge"]. *)

val opcode_of_mnemonic : string -> opcode option
(** Inverse of {!mnemonic}. *)

val to_string : t -> string
(** Full AT&T rendering, e.g. ["movaps 16(%rsi), %xmm1"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val map_registers : (Reg.t -> Reg.t) -> t -> t
(** Substitute registers throughout the operands. *)

val insns : program -> t list
(** The instructions of a listing, dropping labels/comments/directives. *)

val program_to_string : program -> string
(** Render a listing, one item per line, instructions indented. *)

val all_opcodes : opcode list
(** Every opcode, for exhaustive table tests. *)
