type mem = { base : Reg.t option; index : Reg.t option; scale : int; disp : int }

type t = Imm of int | Reg of Reg.t | Mem of mem | Label of string

let imm n = Imm n

let reg r = Reg r

let mem ?base ?index ?(scale = 1) ?(disp = 0) () =
  if scale <> 1 && scale <> 2 && scale <> 4 && scale <> 8 then
    invalid_arg (Printf.sprintf "Operand.mem: invalid scale %d" scale);
  Mem { base; index; scale; disp }

let label s = Label s

let registers_read = function
  | Imm _ | Label _ -> []
  | Reg r -> [ r ]
  | Mem m -> List.filter_map Fun.id [ m.base; m.index ]

let is_mem = function Mem _ -> true | Imm _ | Reg _ | Label _ -> false

let to_string = function
  | Imm n -> Printf.sprintf "$%d" n
  | Reg r -> Reg.name r
  | Label s -> s
  | Mem m ->
    let disp = if m.disp = 0 && (m.base <> None || m.index <> None) then "" else string_of_int m.disp in
    let inner =
      match m.base, m.index with
      | None, None -> ""
      | Some b, None -> Printf.sprintf "(%s)" (Reg.name b)
      | None, Some i -> Printf.sprintf "(,%s,%d)" (Reg.name i) m.scale
      | Some b, Some i -> Printf.sprintf "(%s,%s,%d)" (Reg.name b) (Reg.name i) m.scale
    in
    disp ^ inner

let pp fmt op = Format.pp_print_string fmt (to_string op)

let equal a b =
  match a, b with
  | Imm x, Imm y -> x = y
  | Label x, Label y -> String.equal x y
  | Reg x, Reg y -> Reg.equal x y
  | Mem x, Mem y ->
    Option.equal Reg.equal x.base y.base
    && Option.equal Reg.equal x.index y.index
    && x.scale = y.scale && x.disp = y.disp
  | (Imm _ | Label _ | Reg _ | Mem _), _ -> false

let map_registers f = function
  | (Imm _ | Label _) as op -> op
  | Reg r -> Reg (f r)
  | Mem m -> Mem { m with base = Option.map f m.base; index = Option.map f m.index }

let shift_disp n = function
  | Mem m -> Mem { m with disp = m.disp + n }
  | (Imm _ | Reg _ | Label _) as op -> op
