(** Instruction operands in AT&T order (sources first, destination last). *)

(** A memory reference: [disp(base, index, scale)]. *)
type mem = {
  base : Reg.t option;
  index : Reg.t option;
  scale : int;  (** 1, 2, 4 or 8. *)
  disp : int;
}

type t =
  | Imm of int  (** [$n] immediate. *)
  | Reg of Reg.t
  | Mem of mem
  | Label of string  (** Branch target. *)

val imm : int -> t

val reg : Reg.t -> t

val mem : ?base:Reg.t -> ?index:Reg.t -> ?scale:int -> ?disp:int -> unit -> t
(** Build a memory operand.  @raise Invalid_argument on a scale other
    than 1, 2, 4, 8. *)

val label : string -> t

val registers_read : t -> Reg.t list
(** Registers this operand reads when used as a source or as an address
    ([base]/[index] of a memory operand). *)

val is_mem : t -> bool

val to_string : t -> string
(** AT&T rendering: [$42], [%rsi], [16(%rsi,%rax,8)], [.L6]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val map_registers : (Reg.t -> Reg.t) -> t -> t
(** Apply a register substitution to every register occurrence,
    including inside memory operands. *)

val shift_disp : int -> t -> t
(** [shift_disp n op] adds [n] to the displacement of a memory operand;
    other operands are unchanged.  Used by the unrolling pass. *)
