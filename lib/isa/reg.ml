type gpr_name =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

type width = W8 | W16 | W32 | W64

type t = Gpr of gpr_name * width | Xmm of int | Logical of string

let gpr64 n = Gpr (n, W64)

let gpr32 n = Gpr (n, W32)

let xmm n =
  if n < 0 || n > 15 then invalid_arg (Printf.sprintf "Reg.xmm: %d out of 0..15" n);
  Xmm n

let logical s = Logical s

let all_gpr_names =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let allocatable_gprs =
  [ RSI; RDI; RCX; RDX; RBX; R8; R9; R10; R11; R12; R13; R14; R15 ]

(* Base name without width decoration, e.g. "ax" component tables. *)
let gpr_names_64 = function
  | RAX -> "rax" | RBX -> "rbx" | RCX -> "rcx" | RDX -> "rdx"
  | RSI -> "rsi" | RDI -> "rdi" | RBP -> "rbp" | RSP -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let gpr_names_32 = function
  | RAX -> "eax" | RBX -> "ebx" | RCX -> "ecx" | RDX -> "edx"
  | RSI -> "esi" | RDI -> "edi" | RBP -> "ebp" | RSP -> "esp"
  | R8 -> "r8d" | R9 -> "r9d" | R10 -> "r10d" | R11 -> "r11d"
  | R12 -> "r12d" | R13 -> "r13d" | R14 -> "r14d" | R15 -> "r15d"

let gpr_names_16 = function
  | RAX -> "ax" | RBX -> "bx" | RCX -> "cx" | RDX -> "dx"
  | RSI -> "si" | RDI -> "di" | RBP -> "bp" | RSP -> "sp"
  | R8 -> "r8w" | R9 -> "r9w" | R10 -> "r10w" | R11 -> "r11w"
  | R12 -> "r12w" | R13 -> "r13w" | R14 -> "r14w" | R15 -> "r15w"

let gpr_names_8 = function
  | RAX -> "al" | RBX -> "bl" | RCX -> "cl" | RDX -> "dl"
  | RSI -> "sil" | RDI -> "dil" | RBP -> "bpl" | RSP -> "spl"
  | R8 -> "r8b" | R9 -> "r9b" | R10 -> "r10b" | R11 -> "r11b"
  | R12 -> "r12b" | R13 -> "r13b" | R14 -> "r14b" | R15 -> "r15b"

let name = function
  | Gpr (n, W64) -> "%" ^ gpr_names_64 n
  | Gpr (n, W32) -> "%" ^ gpr_names_32 n
  | Gpr (n, W16) -> "%" ^ gpr_names_16 n
  | Gpr (n, W8) -> "%" ^ gpr_names_8 n
  | Xmm n -> Printf.sprintf "%%xmm%d" n
  | Logical s -> s

let of_name s =
  let s = if String.length s > 0 && s.[0] = '%' then String.sub s 1 (String.length s - 1) else s in
  let find table width =
    List.find_opt (fun n -> table n = s) all_gpr_names
    |> Option.map (fun n -> Gpr (n, width))
  in
  let xmm_of s =
    if String.length s > 3 && String.sub s 0 3 = "xmm" then
      match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
      | Some n when n >= 0 && n <= 15 -> Some (Xmm n)
      | _ -> None
    else None
  in
  match find gpr_names_64 W64 with
  | Some r -> Some r
  | None -> (
    match find gpr_names_32 W32 with
    | Some r -> Some r
    | None -> (
      match find gpr_names_16 W16 with
      | Some r -> Some r
      | None -> (
        match find gpr_names_8 W8 with
        | Some r -> Some r
        | None -> xmm_of s)))

let width_bytes = function
  | Gpr (_, W8) -> 1
  | Gpr (_, W16) -> 2
  | Gpr (_, W32) -> 4
  | Gpr (_, W64) -> 8
  | Xmm _ -> 16
  | Logical _ -> 8

let canonical = function
  | Gpr (n, _) -> Gpr (n, W64)
  | (Xmm _ | Logical _) as r -> r

let is_physical = function Gpr _ | Xmm _ -> true | Logical _ -> false

let equal a b = canonical a = canonical b

let compare a b = Stdlib.compare (canonical a) (canonical b)

let pp fmt r = Format.pp_print_string fmt (name r)
