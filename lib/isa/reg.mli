(** x86-64 registers, plus the logical (pre-allocation) registers used by
    MicroCreator kernel descriptions ([r0], [r1], ...). *)

(** The sixteen general-purpose register names. *)
type gpr_name =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

(** Access width of a general-purpose register. *)
type width = W8 | W16 | W32 | W64

type t =
  | Gpr of gpr_name * width
  | Xmm of int  (** [Xmm n] with [0 <= n <= 15]. *)
  | Logical of string
      (** A MicroCreator logical register, resolved to a physical register
          by the register-allocation pass. *)

val gpr64 : gpr_name -> t
(** 64-bit view of a GPR. *)

val gpr32 : gpr_name -> t
(** 32-bit view of a GPR. *)

val xmm : int -> t
(** [xmm n] is [%xmmn].  @raise Invalid_argument unless [0 <= n <= 15]. *)

val logical : string -> t
(** A logical register by name. *)

val name : t -> string
(** AT&T name with the [%] sigil, e.g. ["%rsi"], ["%xmm3"].  Logical
    registers print as their bare name. *)

val of_name : string -> t option
(** Inverse of {!name} for physical registers: accepts with or without
    the leading [%].  Returns [None] for unknown names. *)

val width_bytes : t -> int
(** Storage width in bytes: 1/2/4/8 for GPRs by view, 16 for XMM.
    Logical registers are treated as 8 (they always become GPRs). *)

val canonical : t -> t
(** Same register ignoring the access width: widens GPR views to W64.
    Used as the key for dependence tracking. *)

val is_physical : t -> bool
(** [true] for GPR and XMM registers, [false] for logical registers. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val all_gpr_names : gpr_name list
(** All sixteen GPR names, in encoding order. *)

val allocatable_gprs : gpr_name list
(** GPRs the register allocator may hand out to logical registers:
    everything except [RSP] and [RBP] (stack) and [RAX] (reserved for
    the iteration-count return convention of Section 4.4). *)
