type port = Load | Store | Alu | Fp_add | Fp_mul | Fp_div | Branch_port

type access =
  | No_access
  | Load_access of Operand.mem * int
  | Store_access of Operand.mem * int
  | Load_store_access of Operand.mem * int

open Insn

(* Opcode classification helpers. *)

let is_sse_move = function
  | MOVSS | MOVSD | MOVAPS | MOVAPD | MOVUPS | MOVUPD | MOVDQA | MOVDQU
  | MOVNTPS | MOVNTDQ -> true
  | _ -> false

let is_move op = op = MOV || is_sse_move op

let sse_arith_class = function
  | ADDSS | ADDSD | ADDPS | ADDPD | SUBSS | SUBSD | SUBPS | SUBPD -> Some Fp_add
  | MULSS | MULSD | MULPS | MULPD -> Some Fp_mul
  | DIVSS | DIVSD | DIVPS | DIVPD | SQRTSS | SQRTSD -> Some Fp_div
  | _ -> None

let is_sse_arith op = sse_arith_class op <> None

let is_gpr_alu = function
  | ADD | SUB | INC | DEC | CMP | TEST | AND | OR | XOR | SHL | SHR | IMUL | NEG -> true
  | _ -> false

let is_sse_int_alu = function
  | PADDD | PSUBD | PAND | POR | PXOR -> true
  | _ -> false

let is_prefetch_op = function
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA -> true
  | _ -> false

let is_non_temporal_op = function MOVNTPS | MOVNTDQ -> true | _ -> false

(* Bytes moved per opcode, where fixed by the opcode itself. *)
let fixed_width = function
  | MOVSS | ADDSS | SUBSS | MULSS | DIVSS | SQRTSS -> Some 4
  | MOVSD | ADDSD | SUBSD | MULSD | DIVSD | SQRTSD -> Some 8
  | MOVAPS | MOVAPD | MOVUPS | MOVUPD | MOVDQA | MOVDQU | MOVNTPS | MOVNTDQ
  | ADDPS | ADDPD | SUBPS | SUBPD | MULPS | MULPD | DIVPS | DIVPD
  | PADDD | PSUBD | PAND | POR | PXOR -> Some 16
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA -> Some 64 (* whole line *)
  | _ -> None

let register_operand_width i =
  let widths =
    List.filter_map
      (function Operand.Reg r -> Some (Reg.width_bytes r) | _ -> None)
      i.operands
  in
  match widths with [] -> 8 | w :: _ -> w

let data_bytes i =
  match i.op with
  | LEA | JMP | Jcc _ | NOP | RET -> 0
  | op -> (
    match fixed_width op with
    | Some w -> w
    | None -> register_operand_width i)

let mem_operand i =
  if i.op = LEA then None
  else
    List.find_map (function Operand.Mem m -> Some m | _ -> None) i.operands

(* The memory operand's role: x86 convention is AT&T order, destination
   last.  A memory destination of a plain move is a pure store; of an
   ALU op, a read-modify-write. *)
let memory_access i =
  match mem_operand i with
  | None -> No_access
  | Some m ->
    let bytes = data_bytes i in
    if is_prefetch_op i.op then Load_access (m, bytes)
    else begin
      let mem_is_last =
        match List.rev i.operands with
        | Operand.Mem _ :: _ -> true
        | _ -> false
      in
      if not mem_is_last then Load_access (m, bytes)
      else if is_move i.op then Store_access (m, bytes)
      else if i.op = CMP || i.op = TEST then Load_access (m, bytes)
      else Load_store_access (m, bytes)
    end

let is_load i =
  match memory_access i with
  | Load_access _ | Load_store_access _ -> true
  | No_access | Store_access _ -> false

let is_store i =
  match memory_access i with
  | Store_access _ | Load_store_access _ -> true
  | No_access | Load_access _ -> false

let is_branch i = match i.op with JMP | Jcc _ -> true | _ -> false

let is_memory_move i = is_move i.op && mem_operand i <> None

let required_alignment i =
  match i.op with
  | MOVAPS | MOVAPD | MOVDQA | MOVNTPS | MOVNTDQ
  | ADDPS | ADDPD | SUBPS | SUBPD | MULPS | MULPD | DIVPS | DIVPD
  | PADDD | PSUBD | PAND | POR | PXOR ->
    if mem_operand i <> None then 16 else 1
  | _ -> 1

let is_prefetch i = is_prefetch_op i.op

let is_non_temporal i = is_non_temporal_op i.op

let exec_latency i =
  match i.op with
  | MOV | MOVSS | MOVSD | MOVAPS | MOVAPD | MOVUPS | MOVUPD
  | MOVDQA | MOVDQU | MOVNTPS | MOVNTDQ -> 1
  | PREFETCHT0 | PREFETCHT1 | PREFETCHNTA -> 1
  | PADDD | PSUBD | PAND | POR | PXOR -> 1
  | LEA -> 1
  | ADD | SUB | INC | DEC | CMP | TEST | AND | OR | XOR | SHL | SHR | NEG -> 1
  | IMUL -> 3
  | ADDSS | ADDSD | ADDPS | ADDPD | SUBSS | SUBSD | SUBPS | SUBPD -> 3
  | MULSS | MULSD | MULPS | MULPD -> 4
  | DIVSS | DIVSD | DIVPS | DIVPD -> 22
  | SQRTSS | SQRTSD -> 21
  | JMP | Jcc _ -> 1
  | NOP | RET -> 1

let compute_port i =
  match i.op with
  | JMP | Jcc _ -> Some Branch_port
  | NOP | RET -> None
  | op -> (
    match sse_arith_class op with
    | Some p -> Some p
    | None ->
      if is_gpr_alu op || is_sse_int_alu op || op = LEA then Some Alu
      else if is_move op then Some Alu (* register-to-register move *)
      else None)

let ports i =
  if is_prefetch i then [ Load ]
  else
  match memory_access i with
  | No_access -> (
    match compute_port i with None -> [] | Some p -> [ p ])
  | Load_access _ ->
    (* A pure load has no compute uop; a load-op keeps its compute uop. *)
    if is_move i.op then [ Load ]
    else Load :: (match compute_port i with None -> [] | Some p -> [ p ])
  | Store_access _ -> [ Store ]
  | Load_store_access _ ->
    Load :: Store :: (match compute_port i with None -> [] | Some p -> [ p ])

let destination i =
  match i.op with
  | CMP | TEST | JMP | Jcc _ | NOP | RET -> None
  | INC | DEC | NEG -> (
    match i.operands with [ Operand.Reg r ] -> Some r | _ -> None)
  | _ -> (
    match List.rev i.operands with
    | Operand.Reg r :: _ -> Some r
    | _ -> None)

(* Two-operand instructions whose destination is also read. *)
let dest_is_read op =
  is_gpr_alu op || is_sse_arith op || is_sse_int_alu op

let sources i =
  let addr_regs =
    List.concat_map
      (function Operand.Mem _ as m -> Operand.registers_read m | _ -> [])
      i.operands
  in
  let explicit =
    match i.operands with
    | [] -> []
    | operands ->
      let rec split_last acc = function
        | [] -> List.rev acc, None
        | [ last ] -> List.rev acc, Some last
        | x :: rest -> split_last (x :: acc) rest
      in
      let srcs, last = split_last [] operands in
      let src_regs =
        List.concat_map
          (function Operand.Reg r -> [ r ] | _ -> [])
          srcs
      in
      let last_regs =
        match last with
        | Some (Operand.Reg r) when dest_is_read i.op || i.op = CMP || i.op = TEST -> [ r ]
        | Some (Operand.Reg r) when i.op = INC || i.op = DEC || i.op = NEG -> [ r ]
        | _ -> []
      in
      src_regs @ last_regs
  in
  (* De-duplicate while keeping order. *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      let key = Reg.canonical r in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    (explicit @ addr_regs)

let sets_flags i =
  match i.op with
  | ADD | SUB | INC | DEC | CMP | TEST | AND | OR | XOR | SHL | SHR | IMUL | NEG -> true
  | _ -> false

let reads_flags i = match i.op with Jcc _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let is_reg = function Operand.Reg _ -> true | _ -> false

let is_xmm_or_logical = function
  | Operand.Reg (Reg.Xmm _) | Operand.Reg (Reg.Logical _) -> true
  | _ -> false

let is_gpr_or_logical = function
  | Operand.Reg (Reg.Gpr _) | Operand.Reg (Reg.Logical _) -> true
  | _ -> false

let is_mem = Operand.is_mem

let is_imm = function Operand.Imm _ -> true | _ -> false

let is_label = function Operand.Label _ -> true | _ -> false

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate i =
  let mem_count = List.length (List.filter is_mem i.operands) in
  if mem_count > 1 then err "%s: more than one memory operand" (to_string i)
  else begin
    match i.op, i.operands with
    | MOV, [ src; dst ] ->
      if (is_imm src || is_reg src || is_mem src) && (is_reg dst || is_mem dst) then
        if is_mem src && is_mem dst then err "mov: memory-to-memory is not encodable"
        else Ok ()
      else err "mov: bad operand kinds in %s" (to_string i)
    | (MOVSS | MOVSD | MOVAPS | MOVAPD | MOVUPS | MOVUPD | MOVDQA | MOVDQU), [ src; dst ] ->
      if (is_xmm_or_logical src || is_mem src) && (is_xmm_or_logical dst || is_mem dst)
      then
        if is_mem src && is_mem dst then err "%s: memory-to-memory" (mnemonic i.op)
        else Ok ()
      else err "%s: operands must be xmm or memory" (mnemonic i.op)
    | (MOVNTPS | MOVNTDQ), [ src; dst ] ->
      if is_xmm_or_logical src && is_mem dst then Ok ()
      else err "%s: streaming stores go xmm -> memory" (mnemonic i.op)
    | (PREFETCHT0 | PREFETCHT1 | PREFETCHNTA), [ op1 ] ->
      if is_mem op1 then Ok ()
      else err "%s: expects one memory operand" (mnemonic i.op)
    | LEA, [ src; dst ] ->
      if is_mem src && is_gpr_or_logical dst then Ok ()
      else err "lea: expects memory source and register destination"
    | (ADD | SUB | AND | OR | XOR | CMP | TEST | IMUL), [ src; dst ] ->
      if (is_imm src || is_reg src || is_mem src) && (is_reg dst || is_mem dst) then
        if is_mem src && is_mem dst then err "%s: memory-to-memory" (mnemonic i.op)
        else Ok ()
      else err "%s: bad operand kinds" (mnemonic i.op)
    | (SHL | SHR), [ src; dst ] ->
      if is_imm src && (is_reg dst || is_mem dst) then Ok ()
      else err "%s: expects immediate count and register/memory" (mnemonic i.op)
    | (INC | DEC | NEG), [ op1 ] ->
      if is_reg op1 || is_mem op1 then Ok ()
      else err "%s: expects one register or memory operand" (mnemonic i.op)
    | ( ( ADDSS | ADDSD | ADDPS | ADDPD | SUBSS | SUBSD | SUBPS | SUBPD
        | MULSS | MULSD | MULPS | MULPD | DIVSS | DIVSD | DIVPS | DIVPD
        | SQRTSS | SQRTSD | PADDD | PSUBD | PAND | POR | PXOR ),
        [ src; dst ] ) ->
      if (is_xmm_or_logical src || is_mem src) && is_xmm_or_logical dst then Ok ()
      else err "%s: expects xmm/mem source and xmm destination" (mnemonic i.op)
    | (JMP | Jcc _), [ target ] ->
      if is_label target then Ok ()
      else err "%s: expects a label operand" (mnemonic i.op)
    | (NOP | RET), [] -> Ok ()
    | op, operands ->
      err "%s: wrong arity %d" (mnemonic op) (List.length operands)
  end
