(** Static semantics of the ISA subset: operand shapes, register
    read/write sets, memory behaviour, and the execution-resource
    metadata the machine substrate schedules with. *)

(** Execution port classes of the modelled cores. *)
type port = Load | Store | Alu | Fp_add | Fp_mul | Fp_div | Branch_port

(** Memory behaviour of one instruction.  x86 allows at most one memory
    operand; read-modify-write instructions both load and store it. *)
type access =
  | No_access
  | Load_access of Operand.mem * int  (** address expression, bytes. *)
  | Store_access of Operand.mem * int
  | Load_store_access of Operand.mem * int

val memory_access : Insn.t -> access

val data_bytes : Insn.t -> int
(** Bytes moved by a memory access of this instruction (4 for [movss],
    16 for [movaps], register width for [mov], ...).  0 when the
    instruction cannot access memory ([lea], branches, ...). *)

val required_alignment : Insn.t -> int
(** Alignment the hardware demands of a memory operand: 16 for aligned
    SSE ops ([movaps], [addps], ...), 1 otherwise. *)

val is_load : Insn.t -> bool

val is_store : Insn.t -> bool

val is_branch : Insn.t -> bool

val is_prefetch : Insn.t -> bool
(** Software prefetch hint: touches memory but never stalls or faults. *)

val is_non_temporal : Insn.t -> bool
(** Streaming store: bypasses the cache hierarchy (write-combining). *)

val is_memory_move : Insn.t -> bool
(** [true] for the mov-family opcodes when one operand is memory — the
    kernels the paper's figures are built from. *)

val exec_latency : Insn.t -> int
(** Execution latency in core cycles, excluding any memory access time
    (the cache model adds that). *)

val ports : Insn.t -> port list
(** The micro-op port demands of the instruction, e.g. a store is
    [[Store]], a load-and-multiply is [[Load; Fp_mul]]. *)

val destination : Insn.t -> Reg.t option
(** The register written, if any. *)

val sources : Insn.t -> Reg.t list
(** Registers read: explicit sources, read-modify-write destinations,
    and address registers of memory operands. *)

val sets_flags : Insn.t -> bool

val reads_flags : Insn.t -> bool

val validate : Insn.t -> (unit, string) result
(** Check the operand shape (arity, operand kinds, no mem-to-mem, XMM
    where required).  Logical registers are accepted anywhere a register
    is. *)
