open Mt_isa
open Mt_machine
open Mt_creator

let matrix_bytes ~n = n * n * 8

let b_reg = Reg.gpr64 Reg.RSI

let c_reg = Reg.gpr64 Reg.RDX

let res_reg = Reg.gpr64 Reg.RCX

let counter_reg = Reg.gpr64 Reg.RDI

let accumulator = Reg.xmm 15

let original_program ~n ~unroll =
  if unroll < 1 then invalid_arg "Matmul.original_program: unroll < 1";
  let copy k =
    let load_reg = Reg.xmm (k mod 8) in
    [
      Insn.Insn
        (Insn.make Insn.MOVSD
           [ Operand.mem ~base:b_reg ~disp:(8 * k) (); Operand.reg load_reg ]);
      Insn.Insn
        (Insn.make Insn.MULSD
           [ Operand.mem ~base:c_reg ~disp:(8 * n * k) (); Operand.reg load_reg ]);
      Insn.Insn
        (Insn.make Insn.ADDSD [ Operand.reg load_reg; Operand.reg accumulator ]);
      Insn.Insn
        (Insn.make Insn.MOVSD [ Operand.reg accumulator; Operand.mem ~base:res_reg () ]);
    ]
  in
  [ Insn.Insn (Insn.make Insn.XOR [ Operand.reg (Reg.gpr32 Reg.RAX); Operand.reg (Reg.gpr32 Reg.RAX) ]);
    Insn.Label "L3" ]
  @ List.concat (List.init unroll copy)
  @ [
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm (8 * unroll); Operand.reg b_reg ]);
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm (8 * n * unroll); Operand.reg c_reg ]);
      Insn.Insn (Insn.make Insn.ADD [ Operand.imm 1; Operand.reg (Reg.gpr32 Reg.RAX) ]);
      Insn.Insn (Insn.make Insn.SUB [ Operand.imm unroll; Operand.reg counter_reg ]);
      Insn.Insn (Insn.make (Insn.Jcc Insn.GE) [ Operand.label "L3" ]);
      Insn.Insn (Insn.make Insn.RET []);
    ]

let micro_spec ~n ~unroll =
  let umin, umax = unroll in
  {
    Spec.name = Printf.sprintf "matmul%d" n;
    instructions =
      [
        Spec.instr (Spec.Fixed Insn.MOVSD)
          [
            Spec.S_mem { base = Spec.Named "rB"; offset = 0 };
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
          ];
        Spec.instr (Spec.Fixed Insn.MULSD)
          [
            Spec.S_mem { base = Spec.Named "rC"; offset = 0 };
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
          ];
        Spec.instr (Spec.Fixed Insn.ADDSD)
          [
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
            Spec.S_reg (Spec.Phys accumulator);
          ];
        Spec.instr (Spec.Fixed Insn.MOVSD)
          [
            Spec.S_reg (Spec.Phys accumulator);
            Spec.S_mem { base = Spec.Named "rRes"; offset = 0 };
          ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        Spec.induction ~offset:8 (Spec.Named "rB") [ 8 ];
        Spec.induction ~offset:(8 * n) (Spec.Named "rC") [ 8 * n ];
        Spec.induction ~linked_to:"rB" ~last:true (Spec.Named "r0") [ -1 ];
        Spec.induction ~unaffected:true (Spec.Phys (Reg.gpr32 Reg.RAX)) [ 1 ];
      ];
    branch = Some { Spec.label = "L3"; test = Insn.Jcc Insn.GE };
  }

type driver = {
  cfg : Config.t;
  memory : Memory.t;
  compiled : Core.compiled;
  n : int;
  unroll : int;
  a_base : int;
  b_base : int;
  c_base : int;
  b_ptr : Reg.t;
  c_ptr : Reg.t;
  res_ptr : Reg.t;
  counter : Reg.t;
  trip : int;  (** Initial counter value for one full k-loop. *)
}

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let make_driver ?(alignments = (0, 0, 0)) ~machine ~n source =
  if n < 1 then err "matmul: n < 1"
  else begin
    let a_off, b_off, c_off = alignments in
    let memmap = Memmap.create () in
    let alloc offset = (Memmap.alloc memmap ~size:(matrix_bytes ~n) ~align:4096 ~offset).Memmap.base in
    let a_base = alloc a_off in
    let b_base = alloc b_off in
    let c_base = alloc c_off in
    let build program unroll b_ptr c_ptr res_ptr counter trip =
      match Core.compile program with
      | Error e -> err "matmul: %s" (Core.error_to_string e)
      | Ok compiled ->
        Ok
          {
            cfg = machine;
            memory = Memory.create machine;
            compiled;
            n;
            unroll;
            a_base;
            b_base;
            c_base;
            b_ptr;
            c_ptr;
            res_ptr;
            counter;
            trip;
          }
    in
    match source with
    | `Original unroll ->
      (* jge exits after the counter drops below zero: start at n - unroll
         for exactly n/unroll passes. *)
      build (original_program ~n ~unroll) unroll b_reg c_reg res_reg counter_reg
        (n - unroll)
    | `Micro variant -> (
      match variant.Variant.abi with
      | None -> err "matmul: variant %s has no ABI" (Variant.id variant)
      | Some abi -> (
        match abi.Abi.pointers with
        | [ (b_ptr, _); (c_ptr, _); (res_ptr, _) ] ->
          build (Variant.concrete_body variant) abi.Abi.unroll b_ptr c_ptr res_ptr
            abi.Abi.counter
            (Abi.trip_count_for_passes abi (n / abi.Abi.unroll))
        | pointers -> err "matmul: variant has %d pointers, expected 3" (List.length pointers)))
  end

(* ------------------------------------------------------------------ *)
(* Tiling                                                              *)
(* ------------------------------------------------------------------ *)

let tiled_program ~n ~tile ~rows ~jj_tiles =
  if tile < 1 || n mod tile <> 0 then
    invalid_arg "Matmul.tiled_program: tile must divide n";
  if rows < 1 || rows > n then invalid_arg "Matmul.tiled_program: bad rows";
  if jj_tiles < 1 || jj_tiles > n / tile then
    invalid_arg "Matmul.tiled_program: bad jj_tiles";
  let jj = Reg.gpr64 Reg.R8
  and kk = Reg.gpr64 Reg.R9
  and iv = Reg.gpr64 Reg.R10
  and jv = Reg.gpr64 Reg.R11
  and kv = Reg.gpr64 Reg.R12
  and bj = Reg.gpr64 Reg.R13
  and bk = Reg.gpr64 Reg.R14
  and t1 = Reg.gpr64 Reg.RBX
  and t2 = Reg.gpr64 Reg.R15 in
  let acc = Reg.xmm 1 and tmp = Reg.xmm 0 in
  let i_ op ops = Insn.Insn (Insn.make op ops) in
  (* t := a*n + b, as an element index. *)
  let index t a b =
    [
      i_ Insn.MOV [ Operand.reg a; Operand.reg t ];
      i_ Insn.IMUL [ Operand.reg counter_reg; Operand.reg t ];
      i_ Insn.ADD [ Operand.reg b; Operand.reg t ];
    ]
  in
  [
    i_ Insn.XOR [ Operand.reg (Reg.gpr32 Reg.RAX); Operand.reg (Reg.gpr32 Reg.RAX) ];
    i_ Insn.MOV [ Operand.imm 0; Operand.reg jj ];
    Insn.Label "Ltjj";
    i_ Insn.MOV [ Operand.reg jj; Operand.reg bj ];
    i_ Insn.ADD [ Operand.imm tile; Operand.reg bj ];
    i_ Insn.MOV [ Operand.imm 0; Operand.reg kk ];
    Insn.Label "Ltkk";
    i_ Insn.MOV [ Operand.reg kk; Operand.reg bk ];
    i_ Insn.ADD [ Operand.imm tile; Operand.reg bk ];
    i_ Insn.MOV [ Operand.imm 0; Operand.reg iv ];
    Insn.Label "Lti";
    i_ Insn.MOV [ Operand.reg jj; Operand.reg jv ];
    Insn.Label "Ltj";
  ]
  @ index t1 iv jv
  @ [
      i_ Insn.MOVSD [ Operand.mem ~base:res_reg ~index:t1 ~scale:8 (); Operand.reg acc ];
      i_ Insn.MOV [ Operand.reg kk; Operand.reg kv ];
      Insn.Label "Ltk";
    ]
  @ index t1 iv kv
  @ [ i_ Insn.MOVSD [ Operand.mem ~base:b_reg ~index:t1 ~scale:8 (); Operand.reg tmp ] ]
  @ index t2 kv jv
  @ [
      i_ Insn.MULSD [ Operand.mem ~base:c_reg ~index:t2 ~scale:8 (); Operand.reg tmp ];
      i_ Insn.ADDSD [ Operand.reg tmp; Operand.reg acc ];
      i_ Insn.ADD [ Operand.imm 1; Operand.reg (Reg.gpr32 Reg.RAX) ];
      i_ Insn.ADD [ Operand.imm 1; Operand.reg kv ];
      i_ Insn.CMP [ Operand.reg bk; Operand.reg kv ];
      i_ (Insn.Jcc Insn.L) [ Operand.label "Ltk" ];
    ]
  @ index t1 iv jv
  @ [
      i_ Insn.MOVSD [ Operand.reg acc; Operand.mem ~base:res_reg ~index:t1 ~scale:8 () ];
      i_ Insn.ADD [ Operand.imm 1; Operand.reg jv ];
      i_ Insn.CMP [ Operand.reg bj; Operand.reg jv ];
      i_ (Insn.Jcc Insn.L) [ Operand.label "Ltj" ];
      i_ Insn.ADD [ Operand.imm 1; Operand.reg iv ];
      i_ Insn.CMP [ Operand.imm rows; Operand.reg iv ];
      i_ (Insn.Jcc Insn.L) [ Operand.label "Lti" ];
      i_ Insn.ADD [ Operand.imm tile; Operand.reg kk ];
      i_ Insn.CMP [ Operand.reg counter_reg; Operand.reg kk ];
      i_ (Insn.Jcc Insn.L) [ Operand.label "Ltkk" ];
      i_ Insn.ADD [ Operand.imm tile; Operand.reg jj ];
      i_ Insn.CMP [ Operand.imm (jj_tiles * tile); Operand.reg jj ];
      i_ (Insn.Jcc Insn.L) [ Operand.label "Ltjj" ];
      i_ Insn.RET [];
    ]

let tiled_cycles ?(rows = 2) ?(jj_tiles = 1) ~machine ~n ~tile () =
  match tiled_program ~n ~tile ~rows ~jj_tiles with
  | exception Invalid_argument msg -> Error msg
  | program -> (
    match Core.compile program with
    | Error e -> Error (Core.error_to_string e)
    | Ok compiled -> (
      let memory = Memory.create machine in
      let memmap = Memmap.create () in
      let alloc () =
        (Memmap.alloc memmap ~size:(matrix_bytes ~n) ~align:4096 ~offset:0).Memmap.base
      in
      let init =
        [
          (counter_reg, n);
          (res_reg, alloc ());
          (b_reg, alloc ());
          (c_reg, alloc ());
        ]
      in
      let run () = Core.run ~init machine memory compiled in
      match run () with
      | Error e -> Error (Core.error_to_string e)
      | Ok _ -> (
        match run () with
        | Error e -> Error (Core.error_to_string e)
        | Ok outcome ->
          if outcome.Core.rax = 0 then Error "tiled multiply executed no iterations"
          else Ok (outcome.Core.cycles /. float_of_int outcome.Core.rax))))

type sample = {
  cycles_per_iteration : float;
  iterations : int;
  mem : Memory.counters;
}

let sample_run ?(rows = 2) ?(cols = 16) ?(warm_cols = 0) d =
  let cols = min cols d.n in
  let rows = min rows d.n in
  let warm_cols = min warm_cols (d.n - cols) in
  let total_cycles = ref 0. in
  let total_iters = ref 0 in
  let failure = ref None in
  let run_column i j =
    let init =
      [
        (d.b_ptr, d.b_base + (i * d.n * 8));
        (d.c_ptr, d.c_base + (j * 8));
        (d.res_ptr, d.a_base + (((i * d.n) + j) * 8));
        (d.counter, d.trip);
      ]
    in
    Core.run ~init d.cfg d.memory d.compiled
  in
  (* The loop nest is i-outer, j-inner; cache state flows from one
     k-loop call into the next, as in the real multiply.  [warm_cols]
     untimed lead-in columns put the sampler mid-multiply, where the
     fresh-cache-line phase is independent of the arrays' offsets. *)
  for j = 0 to warm_cols - 1 do
    if !failure = None then begin
      match run_column 0 j with
      | Ok _ -> ()
      | Error e -> failure := Some (Core.error_to_string e)
    end
  done;
  for i = 0 to rows - 1 do
    for j = warm_cols to warm_cols + cols - 1 do
      if !failure = None then begin
        match run_column i j with
        | Ok outcome ->
          total_cycles := !total_cycles +. outcome.Core.cycles;
          total_iters := !total_iters + (outcome.Core.rax * d.unroll)
        | Error e -> failure := Some (Core.error_to_string e)
      end
    done
  done;
  match !failure with
  | Some msg -> Error msg
  | None ->
    if !total_iters = 0 then Error "matmul: no iterations executed"
    else
      Ok
        {
          cycles_per_iteration = !total_cycles /. float_of_int !total_iters;
          iterations = !total_iters;
          mem = Memory.counters d.memory;
        }
