(** The Section 2 motivating example: the naive matrix-multiply inner
    kernel (Figure 1/2), both as the GCC-style assembly the paper shows
    and as a MicroCreator description, plus a sampled driver that
    measures cycles per inner-loop iteration on the machine model.

    One inner k-loop computes [res(i,j) += B(i,k) * C(k,j)]: the B row
    is a sequential stride-8 stream, the C column walks with stride
    [8n] (the access that falls out of the caches as [n] grows —
    Figure 3), and the result element is stored every iteration, as in
    the paper's Figure 2. *)

open Mt_isa
open Mt_creator

val original_program : n:int -> unroll:int -> Insn.program
(** The Figure 2 kernel, unrolled GCC-style: load registers rotate
    through [%xmm0..7], a single [%xmm15] accumulator, a store per
    copy, [jge] loop.  Registers: B row in [%rsi], C column in [%rdx],
    result element address in [%rcx], counter in [%rdi], pass count in
    [%eax]. *)

val micro_spec : n:int -> unroll:int * int -> Spec.t
(** The same kernel abstracted into the MicroCreator input format; the
    pipeline generates one variant per unroll factor. *)

(** A matmul instance bound to the machine model. *)
type driver

val make_driver :
  ?alignments:int * int * int ->
  machine:Mt_machine.Config.t ->
  n:int ->
  [ `Original of int | `Micro of Variant.t ] ->
  (driver, string) result
(** [`Original u] uses {!original_program} with unroll [u]; [`Micro v]
    runs a MicroCreator-generated variant (its ABI names the pointer
    registers).  [alignments] offsets the three matrices within a 4 KiB
    boundary (Figure 4). *)

type sample = {
  cycles_per_iteration : float;  (** Core cycles per k-loop iteration. *)
  iterations : int;  (** Inner iterations simulated. *)
  mem : Mt_machine.Memory.counters;
}

val sample_run :
  ?rows:int -> ?cols:int -> ?warm_cols:int -> driver -> (sample, string) result
(** Simulate the inner loop at [rows × cols] sampled [(i, j)] positions
    (defaults 2 × 16), sharing cache state across calls exactly as the
    real loop nest does.  [warm_cols] (default 0) runs that many
    untimed lead-in columns first so the measured window sits
    mid-multiply — needed when comparing alignments, where the cold
    lead-in would otherwise bias the sampled window. *)

val matrix_bytes : n:int -> int
(** Storage for one [n × n] double matrix. *)

(** {1 Tiling (the Section 2 optimisation)}

    "Tiling ... allows the complete multiplication to be performed in
    steps, each tile being calculated separately ... The right tiling
    size is a correct ratio between space and temporal locality."  The
    tiled program below keeps each [tile × tile] block of the column
    matrix cache- and TLB-resident, which removes the Fig. 3 cliff. *)

val tiled_program : n:int -> tile:int -> rows:int -> jj_tiles:int -> Mt_isa.Insn.program
(** The tiled loop nest
    [for jj (for kk (for i (for j in tile (for k in tile))))] over a
    sampled slab: [rows] values of [i] and [jj_tiles] tile columns
    (both full [n] when set to [n] and [n/tile]).  Registers follow
    {!original_program}'s convention ([%rsi]=A result, [%rdx]=B,
    [%rcx]=C, [%rdi]=n); [%rax] counts executed inner iterations.
    @raise Invalid_argument unless [tile] divides [n] and the sampling
    bounds fit. *)

val tiled_cycles :
  ?rows:int ->
  ?jj_tiles:int ->
  machine:Mt_machine.Config.t ->
  n:int ->
  tile:int ->
  unit ->
  (float, string) result
(** Cycles per inner iteration of the sampled tiled multiply (warm
    caches, like {!sample_run}).  [tile = n] degenerates to the naive
    untied loop nest. *)
