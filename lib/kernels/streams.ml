open Mt_isa
open Mt_creator

let eax_pass_counter =
  Spec.induction ~unaffected:true (Spec.Phys (Reg.gpr32 Reg.RAX)) [ 1 ]

let counter_induction ~linked_to =
  Spec.induction ~linked_to ~last:true (Spec.Named "r0") [ -1 ]

let branch = { Spec.label = "L6"; test = Insn.Jcc Insn.GE }

let loadstore_spec ?(name = "loadstore") ?(opcode = Insn.MOVAPS) ?(stride = 16)
    ?(unroll = (1, 8)) ?(swap_after = true) ?(xmm_range = (0, 8)) () =
  let rmin, rmax = xmm_range in
  let umin, umax = unroll in
  {
    Spec.name;
    instructions =
      [
        Spec.instr ~swap_after (Spec.Fixed opcode)
          [
            Spec.S_mem { base = Spec.Named "r1"; offset = 0 };
            Spec.S_reg (Spec.Xmm_rotation { rmin; rmax });
          ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        Spec.induction ~offset:stride (Spec.Named "r1") [ stride ];
        counter_induction ~linked_to:"r1";
        eax_pass_counter;
      ];
    branch = Some branch;
  }

let move_width_spec ?(name = "movewidth") ?(unroll = (1, 8)) () =
  let base = loadstore_spec ~name ~unroll () in
  let instructions =
    List.map
      (fun (i : Spec.instr_spec) ->
        { i with Spec.op = Spec.Op_choice [ Insn.MOVSS; Insn.MOVSD; Insn.MOVAPS; Insn.MOVAPD ] })
      base.Spec.instructions
  in
  { base with Spec.instructions }

let multi_array_spec ?(name = "multiarray") ?(opcode = Insn.MOVSS)
    ?(element_bytes = 4) ?(unroll = (1, 1)) ~arrays () =
  if arrays < 1 then invalid_arg "Streams.multi_array_spec: arrays < 1";
  let umin, umax = unroll in
  let pointer i = Printf.sprintf "p%d" i in
  {
    Spec.name;
    instructions =
      List.init arrays (fun i ->
          Spec.instr (Spec.Fixed opcode)
            [
              Spec.S_mem { base = Spec.Named (pointer i); offset = 0 };
              Spec.S_reg (Spec.Phys (Reg.xmm (i mod 16)));
            ]);
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      List.init arrays (fun i ->
          Spec.induction ~offset:element_bytes (Spec.Named (pointer i)) [ element_bytes ])
      @ [ counter_induction ~linked_to:(pointer 0); eax_pass_counter ];
    branch = Some branch;
  }

let movss_unrolled_spec ?name ~unroll () =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "movss_u%d" unroll
  in
  loadstore_spec ~name ~opcode:Insn.MOVSS ~stride:4 ~unroll:(unroll, unroll)
    ~swap_after:false ()

let strided_spec ?(name = "strided") ?(opcode = Insn.MOVSS)
    ?(strides = [ 4; 16; 64; 256; 1024 ]) ?(unroll = (1, 1)) () =
  let umin, umax = unroll in
  {
    Spec.name;
    instructions =
      [
        Spec.instr (Spec.Fixed opcode)
          [
            Spec.S_mem { base = Spec.Named "r1"; offset = 0 };
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
          ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        (* The stride-selection pass forks one variant per value; the
           unroll pass scales the chosen stride's displacement via the
           offset, which we leave at the smallest stride (offsets only
           matter within a pass). *)
        Spec.induction ~offset:(List.fold_left min max_int strides)
          (Spec.Named "r1") strides;
        counter_induction ~linked_to:"r1";
        eax_pass_counter;
      ];
    branch = Some branch;
  }

let store_stream_spec ?(name = "storestream") ?(streaming = false)
    ?(unroll = (1, 8)) () =
  let umin, umax = unroll in
  let opcode = if streaming then Insn.MOVNTPS else Insn.MOVAPS in
  {
    Spec.name;
    instructions =
      [
        Spec.instr (Spec.Fixed opcode)
          [
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
            Spec.S_mem { base = Spec.Named "r1"; offset = 0 };
          ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        Spec.induction ~offset:16 (Spec.Named "r1") [ 16 ];
        counter_induction ~linked_to:"r1";
        eax_pass_counter;
      ];
    branch = Some branch;
  }

let stencil_spec ?(name = "stencil3") ?(unroll = (1, 4)) () =
  let umin, umax = unroll in
  let load disp reg =
    Spec.instr (Spec.Fixed Insn.MOVSD)
      [ Spec.S_mem { base = Spec.Named "rA"; offset = disp }; Spec.S_reg (Spec.Phys (Reg.xmm reg)) ]
  in
  {
    Spec.name;
    instructions =
      [
        load 0 0;
        load 8 1;
        load 16 2;
        Spec.instr (Spec.Fixed Insn.ADDSD)
          [ Spec.S_reg (Spec.Phys (Reg.xmm 0)); Spec.S_reg (Spec.Phys (Reg.xmm 1)) ];
        Spec.instr (Spec.Fixed Insn.ADDSD)
          [ Spec.S_reg (Spec.Phys (Reg.xmm 2)); Spec.S_reg (Spec.Phys (Reg.xmm 1)) ];
        Spec.instr (Spec.Fixed Insn.MOVSD)
          [ Spec.S_reg (Spec.Phys (Reg.xmm 1)); Spec.S_mem { base = Spec.Named "rB"; offset = 0 } ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        Spec.induction ~offset:8 (Spec.Named "rA") [ 8 ];
        Spec.induction ~offset:8 (Spec.Named "rB") [ 8 ];
        counter_induction ~linked_to:"rA";
        eax_pass_counter;
      ];
    branch = Some branch;
  }

let prefetched_spec ?(name = "prefetched") ?(distance = 512) ?(unroll = (1, 8)) () =
  let umin, umax = unroll in
  {
    Spec.name;
    instructions =
      [
        Spec.instr (Spec.Fixed Insn.MOVSS)
          [
            Spec.S_mem { base = Spec.Named "r1"; offset = 0 };
            Spec.S_reg (Spec.Xmm_rotation { rmin = 0; rmax = 8 });
          ];
        Spec.instr (Spec.Fixed Insn.PREFETCHT0)
          [ Spec.S_mem { base = Spec.Named "r1"; offset = distance } ];
      ];
    unroll_min = umin;
    unroll_max = umax;
    inductions =
      [
        Spec.induction ~offset:4 (Spec.Named "r1") [ 4 ];
        counter_induction ~linked_to:"r1";
        eax_pass_counter;
      ];
    branch = Some branch;
  }

type stream_kernel = Copy | Scale | Add | Triad

let stream_kernel_name = function
  | Copy -> "copy"
  | Scale -> "scale"
  | Add -> "add"
  | Triad -> "triad"

(* Scalar factors are written as a zero-initialised local: the machine
   model does not track floating-point values, only the access and
   dependence structure, which is identical. *)
let stream_kernel_source = function
  | Copy ->
    {|int copy(int n, double *a, double *b) {
        int i;
        for (i = 0; i < n; i++) { b[i] = a[i]; }
        return n;
      }|}
  | Scale ->
    {|int scale(int n, double *a, double *b) {
        int i;
        double s = 0.0;
        for (i = 0; i < n; i++) { b[i] = a[i] * s; }
        return n;
      }|}
  | Add ->
    {|int add(int n, double *a, double *b, double *c) {
        int i;
        for (i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
        return n;
      }|}
  | Triad ->
    {|int triad(int n, double *a, double *b, double *c) {
        int i;
        double s = 0.0;
        for (i = 0; i < n; i++) { c[i] = a[i] + b[i] * s; }
        return n;
      }|}

let stream_kernel_bytes_per_pass = function
  | Copy | Scale -> 16
  | Add | Triad -> 24

let description_xml spec = Description.to_string spec
