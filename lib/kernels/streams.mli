(** Ready-made MicroCreator descriptions for the paper's stream
    workloads: the (Load|Store)+ kernels of Section 3.1 and the
    multi-array traversals of Section 5.2.2. *)

open Mt_isa
open Mt_creator

val loadstore_spec :
  ?name:string ->
  ?opcode:Insn.opcode ->
  ?stride:int ->
  ?unroll:int * int ->
  ?swap_after:bool ->
  ?xmm_range:int * int ->
  unit ->
  Spec.t
(** The Figure 6 kernel: one SSE move per copy against a strided
    pointer, XMM rotation, a linked loop counter, the [%eax] pass
    counter, and a [jge] branch.  Defaults mirror the paper: [movaps],
    stride 16, unroll 1–8, [swap_after] on, XMM range [0, 8).
    With the defaults the pipeline yields the paper's 510 variants. *)

val move_width_spec : ?name:string -> ?unroll:int * int -> unit -> Spec.t
(** Same kernel with the opcode left as a choice among [movss],
    [movsd], [movaps], [movapd] — the "more than two thousand programs
    from a single input file" example (4 × 510 = 2040 variants). *)

val multi_array_spec :
  ?name:string ->
  ?opcode:Insn.opcode ->
  ?element_bytes:int ->
  ?unroll:int * int ->
  arrays:int ->
  unit ->
  Spec.t
(** A stride-one traversal of [arrays] arrays per pass (one load each),
    the kernel behind the alignment studies of Figures 15 and 16. *)

val movss_unrolled_spec : ?name:string -> unroll:int -> unit -> Spec.t
(** A single-array [movss] load kernel at a fixed unroll factor — the
    OpenMP workload of Figures 17/18 and Table 2. *)

val strided_spec :
  ?name:string ->
  ?opcode:Insn.opcode ->
  ?strides:int list ->
  ?unroll:int * int ->
  unit ->
  Spec.t
(** A load kernel whose pointer stride is left as a choice list — the
    Section 3.5 stride study.  The stride-selection pass forks one
    variant per stride; defaults sweep 4, 16, 64, 256 and 1024 bytes
    with [movss]. *)

val store_stream_spec :
  ?name:string -> ?streaming:bool -> ?unroll:int * int -> unit -> Spec.t
(** A pure store stream: [movaps] (write-allocate, double DRAM traffic)
    or, with [streaming], [movntps] (non-temporal: the write-combining
    path with single-direction traffic).  The ablation behind the
    classic memset-style optimisation. *)

val stencil_spec : ?name:string -> ?unroll:int * int -> unit -> Spec.t
(** A 3-point stencil pass (Section 3.5's "users are modeling ...
    stencil codes"): load [a(i-1)], [a(i)], [a(i+1)] as doubles, two
    [addsd], store to [b(i)]. *)

val prefetched_spec :
  ?name:string -> ?distance:int -> ?unroll:int * int -> unit -> Spec.t
(** The movss load stream with a software [prefetcht0] touching
    [distance] bytes ahead of the pointer in every pass. *)

(** {1 STREAM-style kernels}

    The classic memory-system micro-benchmarks (the lineage the paper
    cites through Jalby et al. [14]), as C sources for the built-in
    compiler. *)

type stream_kernel = Copy | Scale | Add | Triad

val stream_kernel_name : stream_kernel -> string

val stream_kernel_source : stream_kernel -> string
(** The C source: [copy: b\[i\] = a\[i\]], [scale: b\[i\] = a\[i\] * s]
    (with [s] pre-zeroed — values are untracked), [add: c\[i\] = a\[i\]
    + b\[i\]], [triad: c\[i\] = a\[i\] + b\[i\] * s]. *)

val stream_kernel_bytes_per_pass : stream_kernel -> int
(** Data bytes each pass moves (for bandwidth computation): 16 for
    copy/scale, 24 for add/triad. *)

val description_xml : Spec.t -> string
(** The XML document for a spec (what ships in [descriptions/]). *)
