type config = int list

let configs ~arrays ~candidates ?(limit = 4096) () =
  if arrays <= 0 then invalid_arg "Alignment.configs: arrays <= 0";
  if candidates = [] then invalid_arg "Alignment.configs: no candidates";
  (* The cross-product has |candidates|^arrays members but only [limit]
     are wanted: enumerate configuration k as the [arrays]-digit
     base-|candidates| numeral of k (first array most significant, so
     the order is lexicographic like the full product's), never
     materializing the rest.  Work is O(limit * arrays) however large
     the space. *)
  let cands = Array.of_list candidates in
  let base = Array.length cands in
  let total =
    (* min limit base^arrays, capping at [limit] each step so the
       product cannot overflow (8 candidates over 64 arrays is far past
       max_int). *)
    let rec go acc i =
      if i = 0 || acc >= limit then min acc limit else go (min limit (acc * base)) (i - 1)
    in
    go 1 arrays
  in
  List.init (max 0 total) (fun k ->
      let rec digits i k acc =
        if i = 0 then acc else digits (i - 1) (k / base) (cands.(k mod base) :: acc)
      in
      digits arrays k [])

let stride_configs ~arrays ~step ~modulus =
  if arrays <= 0 || step <= 0 || modulus <= 0 then
    invalid_arg "Alignment.stride_configs: non-positive argument";
  List.init (modulus / step) (fun k ->
      List.init arrays (fun i -> k * step * (i + 1) mod modulus))

type point = { offsets : config; report : Report.t }

let sweep opts program abi ~configs =
  let measure_config offsets =
    let opts = { opts with Options.alignments = offsets } in
    if opts.Options.cores > 1 then
      Result.map (fun r -> r.Fork_mode.aggregate) (Fork_mode.run opts program abi)
    else
      Result.bind (Protocol.prepare opts program abi) (Protocol.measure ~mode:"seq")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | offsets :: rest -> (
      match measure_config offsets with
      | Ok report -> go ({ offsets; report } :: acc) rest
      | Error msg ->
        if opts.Options.keep_failures then go acc rest else Error msg)
  in
  go [] configs

let best points =
  match points with
  | [] -> invalid_arg "Alignment.best: no points"
  | p :: rest ->
    List.fold_left
      (fun acc q -> if q.report.Report.value < acc.report.Report.value then q else acc)
      p rest

let worst points =
  match points with
  | [] -> invalid_arg "Alignment.worst: no points"
  | p :: rest ->
    List.fold_left
      (fun acc q -> if q.report.Report.value > acc.report.Report.value then q else acc)
      p rest

let spread points =
  let lo = (best points).report.Report.value in
  let hi = (worst points).report.Report.value in
  if lo = 0. then 0. else (hi -. lo) /. lo
