type config = int list

let configs ~arrays ~candidates ?(limit = 4096) () =
  if arrays <= 0 then invalid_arg "Alignment.configs: arrays <= 0";
  if candidates = [] then invalid_arg "Alignment.configs: no candidates";
  let rec go n =
    if n = 0 then [ [] ]
    else begin
      let tails = go (n - 1) in
      List.concat_map (fun c -> List.map (fun tail -> c :: tail) tails) candidates
    end
  in
  let all = go arrays in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take limit all

let stride_configs ~arrays ~step ~modulus =
  if arrays <= 0 || step <= 0 || modulus <= 0 then
    invalid_arg "Alignment.stride_configs: non-positive argument";
  List.init (modulus / step) (fun k ->
      List.init arrays (fun i -> k * step * (i + 1) mod modulus))

type point = { offsets : config; report : Report.t }

let sweep opts program abi ~configs =
  let measure_config offsets =
    let opts = { opts with Options.alignments = offsets } in
    if opts.Options.cores > 1 then
      Result.map (fun r -> r.Fork_mode.aggregate) (Fork_mode.run opts program abi)
    else
      Result.bind (Protocol.prepare opts program abi) (Protocol.measure ~mode:"seq")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | offsets :: rest -> (
      match measure_config offsets with
      | Ok report -> go ({ offsets; report } :: acc) rest
      | Error msg ->
        if opts.Options.keep_failures then go acc rest else Error msg)
  in
  go [] configs

let best points =
  match points with
  | [] -> invalid_arg "Alignment.best: no points"
  | p :: rest ->
    List.fold_left
      (fun acc q -> if q.report.Report.value < acc.report.Report.value then q else acc)
      p rest

let worst points =
  match points with
  | [] -> invalid_arg "Alignment.worst: no points"
  | p :: rest ->
    List.fold_left
      (fun acc q -> if q.report.Report.value > acc.report.Report.value then q else acc)
      p rest

let spread points =
  let lo = (best points).report.Report.value in
  let hi = (worst points).report.Report.value in
  if lo = 0. then 0. else (hi -. lo) /. lo
