(** Alignment sweeps (Sections 4.0, 5.2.2): run the same kernel while
    varying each array's offset within the allocation boundary, to find
    the configurations where performance collapses or peaks. *)

open Mt_creator

type config = int list
(** One offset per array. *)

val configs : arrays:int -> candidates:int list -> ?limit:int -> unit -> config list
(** The cartesian product of candidate offsets over [arrays] arrays, in
    lexicographic order, truncated to [limit] (default 4096)
    configurations.  Only the returned prefix is ever materialized, so
    the cost is [O(limit * arrays)] regardless of how large the full
    product would be.  @raise Invalid_argument if [arrays <= 0] or the
    candidate list is empty. *)

val stride_configs : arrays:int -> step:int -> modulus:int -> config list
(** A cheaper diagonal family: configuration [k] offsets array [i] by
    [(k * step * (i + 1)) mod modulus].  Produces [modulus / step]
    configurations covering aligned and conflicting layouts. *)

type point = { offsets : config; report : Report.t }

val sweep :
  Options.t ->
  Mt_isa.Insn.program ->
  Abi.t ->
  configs:config list ->
  (point list, string) result
(** Measure every configuration (sequentially, or under fork mode when
    [opts.cores > 1], reporting the aggregate).  Stops at the first
    error unless [opts.keep_failures] is set, in which case failing
    configurations are skipped. *)

val best : point list -> point
(** Lowest reported value.  @raise Invalid_argument on empty input. *)

val worst : point list -> point

val spread : point list -> float
(** [(worst - best) / best] — the paper's alignment-impact metric. *)
