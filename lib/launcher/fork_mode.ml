open Mt_machine
open Mt_creator

type outcome = { aggregate : Report.t; per_core : Report.t list }

let run opts program abi =
  let cores = opts.Options.cores in
  let ( let* ) = Result.bind in
  (* Each forked process allocates its own arrays after pinning
     (first-touch, [local_alloc], the default).  When the parent
     allocated them instead, every process hits the parent's node: one
     memory controller serves everyone and the interleaved budget is
     gone. *)
  let opts =
    if opts.Options.local_alloc then opts
    else
      { opts with
        Options.machine =
          { opts.Options.machine with Mt_machine.Config.memory_interleaved = false } }
  in
  let* prepared = Protocol.prepare ~sharers:cores opts program abi in
  let* totals, actual_passes = Protocol.measure_totals prepared in
  let mode = Printf.sprintf "fork:%d" cores in
  let per_core =
    List.init cores (fun core ->
        let noise =
          Noise.create
            ~seed:(opts.Options.noise_seed + (7919 * (core + 1)))
            (Options.noise_env opts)
        in
        let report = Protocol.report_of_totals ~mode ~noise prepared ~actual_passes totals in
        { report with Report.id = Printf.sprintf "%s@core%d" report.Report.id core })
  in
  match per_core with
  | [] -> Error "fork mode with zero cores"
  | first :: _ ->
    let experiments = Array.length first.Report.experiments in
    let mean_per_experiment =
      Array.init experiments (fun e ->
          let sum =
            List.fold_left (fun acc r -> acc +. r.Report.experiments.(e)) 0. per_core
          in
          sum /. float_of_int cores)
    in
    let aggregate =
      Report.make ~id:abi.Abi.function_name ~mode
        ~unit_label:first.Report.unit_label ~per_label:first.Report.per_label
        ~passes_per_call:actual_passes
        ~calls_per_experiment:opts.Options.repetitions
        ~overhead_exceeded:
          (List.exists (fun r -> r.Report.overhead_exceeded) per_core)
        ?mem:first.Report.mem ~thresholds:opts.Options.quality
        ~quality_seed:opts.Options.quality_seed mean_per_experiment
    in
    Ok { aggregate; per_core }
