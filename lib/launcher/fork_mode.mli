(** Fork-based multi-process execution (Sections 4.6, 5.2.1): the same
    sequential kernel runs on [opts.cores] cores at once, each process
    pinned to its own core with its own locally-allocated arrays, all
    contending for DRAM bandwidth.

    The processes are symmetric — identical kernel, identical array
    layout, a fair share of interleaved controller bandwidth — so one
    simulation provides every process's raw timing and each process
    applies its own environmental noise. *)

open Mt_creator

type outcome = {
  aggregate : Report.t;
      (** Per-experiment mean across processes — the Figure 14 series. *)
  per_core : Report.t list;  (** One report per forked process. *)
}

val run : Options.t -> Mt_isa.Insn.program -> Abi.t -> (outcome, string) result
(** Run the kernel on [opts.cores] cores.  Core pinning is compact
    (process [i] on core [i]). *)
