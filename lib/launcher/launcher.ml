open Mt_creator

let ( let* ) = Result.bind

let with_csv opts result =
  match result, opts.Options.csv_path with
  | Ok report, Some path ->
    Report.save_csv ~full:opts.Options.emit_full_times [ report ] path;
    result
  | (Ok _ | Error _), _ -> result

let run_sequential opts source =
  let* program, abi = Source.load source in
  let* prepared = Protocol.prepare opts program abi in
  with_csv opts (Protocol.measure ~mode:"seq" prepared)

let run_fork opts source =
  let* program, abi = Source.load source in
  Fork_mode.run opts program abi

let run_openmp opts source =
  let* program, abi = Source.load source in
  with_csv opts (Openmp_mode.run opts program abi)

let run_mpi opts source =
  let* program, abi = Source.load source in
  with_csv opts (Mpi_mode.run opts program abi)

let launch opts source =
  if opts.Options.mpi_ranks > 0 then run_mpi opts source
  else if opts.Options.openmp_threads > 0 then run_openmp opts source
  else if opts.Options.cores > 1 then
    with_csv opts
      (Result.map (fun r -> r.Fork_mode.aggregate) (run_fork opts source))
  else run_sequential opts source

(* A stand-alone program has no trip count or arrays: give it a trivial
   ABI and report whole-call times.  "The advantage of using
   MicroLauncher is the multi-core aspect" (Section 4.1): with
   [opts.cores > 1] the program is forked onto that many cores and the
   aggregate reported. *)
let run_standalone opts program =
  let abi =
    {
      Abi.function_name = "standalone";
      counter = Mt_isa.Reg.gpr64 Mt_isa.Reg.RDI;
      counter_step = 0;
      pointers = [];
      pass_counter = None;
      unroll = 1;
      loads_per_pass = 0;
      stores_per_pass = 0;
      bytes_per_pass = 0;
    }
  in
  let opts = { opts with Options.per = Options.Per_call; trip_passes = Some 1 } in
  if opts.Options.cores > 1 then
    with_csv opts
      (Result.map (fun r -> r.Fork_mode.aggregate) (Fork_mode.run opts program abi))
  else begin
    let* prepared = Protocol.prepare opts program abi in
    with_csv opts (Protocol.measure ~mode:"standalone" prepared)
  end

let run_variants opts variants =
  List.map
    (fun v -> (v, launch opts (Source.From_variant v)))
    variants

let best_variant opts variants =
  let results = run_variants opts variants in
  let rec pick acc = function
    | [] -> Ok acc
    | (_, Error msg) :: rest ->
      if opts.Options.keep_failures then pick acc rest else Error msg
    | (v, Ok report) :: rest ->
      let acc =
        match acc with
        | Some (_, best) when best.Report.value <= report.Report.value -> acc
        | Some _ | None -> Some (v, report)
      in
      pick acc rest
  in
  pick None results
