(** MicroLauncher's front door: load a kernel from any supported
    source, dispatch on the execution mode the options select, and
    return (or batch) measurement reports. *)

open Mt_creator

val run_sequential : Options.t -> Source.t -> (Report.t, string) result
(** Pinned single-core execution with the full stability protocol. *)

val run_fork : Options.t -> Source.t -> (Fork_mode.outcome, string) result
(** The same kernel forked onto [opts.cores] cores. *)

val run_openmp : Options.t -> Source.t -> (Report.t, string) result
(** OpenMP parallel-for execution on [opts.openmp_threads] threads. *)

val run_mpi : Options.t -> Source.t -> (Report.t, string) result
(** SPMD execution over [opts.mpi_ranks] processes with per-phase
    communication (see {!Mpi_mode}). *)

val launch : Options.t -> Source.t -> (Report.t, string) result
(** Mode dispatch: MPI when [mpi_ranks > 0], OpenMP when
    [openmp_threads > 0], fork aggregate when [cores > 1], sequential
    otherwise.  Writes the CSV when [opts.csv_path] is set. *)

val run_standalone :
  Options.t -> Mt_isa.Insn.program -> (Report.t, string) result
(** Stand-alone program mode (Section 4.1): time a whole program that
    has no launcher ABI — no arrays, no per-iteration normalisation,
    value is per call.  With [opts.cores > 1] the program forks onto
    that many cores (the mode's "multi-core aspect"). *)

val run_variants :
  Options.t -> Variant.t list -> (Variant.t * (Report.t, string) result) list
(** The MicroCreator→MicroLauncher link: measure every generated
    variant under the same options. *)

val best_variant :
  Options.t -> Variant.t list -> ((Variant.t * Report.t) option, string) result
(** Measure all variants and return the fastest (lowest value); [None]
    when every variant failed and [opts.keep_failures] is set,
    [Error] on the first failure otherwise. *)
