let ( let* ) = Result.bind

let communicator opts =
  let ranks = opts.Options.mpi_ranks in
  Mt_mpi.create (Options.effective_machine opts) ~ranks

let communication opts ~phase:_ =
  match opts.Options.mpi_halo_bytes with
  | Some bytes -> Mt_mpi.Halo_exchange bytes
  | None -> Mt_mpi.Barrier

(* Ranks are symmetric (same kernel, same chunk size up to the
   remainder, fair DRAM shares): simulate rank 0's chunk once per phase
   and reuse it, like fork mode does. *)
let setup opts program abi =
  let ranks = opts.Options.mpi_ranks in
  if ranks < 1 then Error "MPI mode requires mpi_ranks >= 1"
  else begin
    let* probe = Protocol.prepare opts program abi in
    let total = Protocol.passes_per_call probe in
    let chunk = (total + ranks - 1) / ranks in
    let* prepared = Protocol.prepare ~sharers:ranks ~passes:chunk opts program abi in
    Ok (total, prepared)
  end

let one_job opts comm prepared =
  let reps = opts.Options.repetitions in
  (* One simulation per phase; every rank sees the same number. *)
  let phase_cost = Array.make reps 0. in
  let failed = ref None in
  for phase = 0 to reps - 1 do
    if !failed = None then begin
      match Protocol.run_once prepared with
      | Ok outcome -> phase_cost.(phase) <- outcome.Mt_machine.Core.cycles
      | Error msg -> failed := Some msg
    end
  done;
  match !failed with
  | Some msg -> Error msg
  | None ->
    Ok
      (Mt_mpi.run_spmd comm ~phases:reps
         ~compute:(fun ~rank:_ ~phase ~sharers:_ -> phase_cost.(phase))
         ~communication:(fun ~phase -> communication opts ~phase)
      +. (float_of_int reps *. opts.Options.call_overhead_cycles))

let run opts program abi =
  let* total, prepared = setup opts program abi in
  let comm = communicator opts in
  if opts.Options.warmup then ignore (Protocol.run_once prepared);
  let rec experiments n acc =
    if n = 0 then Ok (List.rev acc)
    else
      let* total_cycles = one_job opts comm prepared in
      experiments (n - 1) (total_cycles :: acc)
  in
  let* totals = experiments opts.Options.experiments [] in
  Ok
    (Protocol.report_of_totals
       ~mode:(Printf.sprintf "mpi:%d" opts.Options.mpi_ranks)
       prepared ~actual_passes:total totals)

let job_cycles opts program abi =
  let* _, prepared = setup opts program abi in
  let comm = communicator opts in
  if opts.Options.warmup then ignore (Protocol.run_once prepared);
  one_job opts comm prepared
