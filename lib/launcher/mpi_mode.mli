(** MPI (SPMD) execution mode: the kernel's pass space is block-
    decomposed over [opts.mpi_ranks] processes pinned one per core;
    each repetition is one bulk-synchronous phase ending in the
    configured communication (halo exchange of [opts.mpi_halo_bytes],
    or a barrier).  Completes the paper's fork mode into the "typical
    HPC profile" its Section 5.2.1 describes and the MPI support its
    Section 7 plans. *)

open Mt_creator

val run : Options.t -> Mt_isa.Insn.program -> Abi.t -> (Report.t, string) result
(** Measure the kernel under SPMD execution.  The per-unit divisor
    covers the whole pass space (all ranks), so values compare directly
    against the sequential and OpenMP modes. *)

val job_cycles :
  Options.t -> Mt_isa.Insn.program -> Abi.t -> (float, string) result
(** Core cycles of one full job (all repetitions/phases), for tests. *)
