let ( let* ) = Result.bind

let rec collect_chunks opts program abi threads = function
  | [] -> Ok []
  | (c : Mt_openmp.chunk) :: rest ->
    let* prepared =
      Protocol.prepare ~sharers:threads ~passes:c.Mt_openmp.iterations
        ~start_pass:c.Mt_openmp.start_iteration ~noise_salt:c.Mt_openmp.thread opts
        program abi
    in
    let* tail = collect_chunks opts program abi threads rest in
    Ok ((c, prepared) :: tail)

let runtime_of opts =
  let threads = opts.Options.openmp_threads in
  let rt = Mt_openmp.default_runtime ~threads in
  let chunk = Option.value ~default:1 opts.Options.openmp_chunk in
  let schedule =
    match opts.Options.openmp_schedule, opts.Options.openmp_chunk with
    | Options.Omp_static, None -> Mt_openmp.Static
    | Options.Omp_static, Some size -> Mt_openmp.Static_chunk size
    | Options.Omp_dynamic, _ -> Mt_openmp.Dynamic chunk
    | Options.Omp_guided, _ -> Mt_openmp.Guided chunk
  in
  { rt with Mt_openmp.schedule }

let setup opts program abi =
  let threads = opts.Options.openmp_threads in
  if threads < 1 then Error "OpenMP mode requires openmp_threads >= 1"
  else begin
    let rt = runtime_of opts in
    (* The whole iteration space, as loop passes of the kernel. *)
    let* probe = Protocol.prepare opts program abi in
    let total = Protocol.passes_per_call probe in
    let chunks = Mt_openmp.chunks_of rt ~total in
    let* prepared_chunks = collect_chunks opts program abi threads chunks in
    Ok (rt, total, prepared_chunks)
  end

let one_region cfg rt total prepared_chunks =
  let run_chunk (c : Mt_openmp.chunk) ~sharers:_ =
    let prepared =
      List.assoc_opt c
        (List.map (fun (c', p) -> (c', p)) prepared_chunks)
    in
    match prepared with
    | None -> 0.
    | Some p -> (
      match Protocol.run_once p with
      | Ok outcome -> outcome.Mt_machine.Core.cycles
      | Error _ -> 0.)
  in
  Mt_openmp.parallel_for cfg rt ~total ~run_chunk

let region_cycles opts program abi =
  let* rt, total, prepared_chunks = setup opts program abi in
  let cfg = Options.effective_machine opts in
  (* Warm each thread's caches once, as the sequential protocol does. *)
  List.iter (fun (_, p) -> ignore (Protocol.run_once p)) prepared_chunks;
  Ok (one_region cfg rt total prepared_chunks)

let run opts program abi =
  let* rt, total, prepared_chunks = setup opts program abi in
  match prepared_chunks with
  | [] -> Error "OpenMP mode: empty iteration space"
  | (_, first) :: _ ->
    let cfg = Options.effective_machine opts in
    if opts.Options.warmup then
      List.iter (fun (_, p) -> ignore (Protocol.run_once p)) prepared_chunks;
    let reps = opts.Options.repetitions in
    let experiment () =
      let rec go r acc =
        if r = 0 then acc
        else
          go (r - 1)
            (acc
            +. opts.Options.call_overhead_cycles
            +. one_region cfg rt total prepared_chunks)
      in
      go reps 0.
    in
    let totals = List.init opts.Options.experiments (fun _ -> experiment ()) in
    let report =
      Protocol.report_of_totals
        ~mode:(Printf.sprintf "openmp:%d" opts.Options.openmp_threads)
        first ~actual_passes:total totals
    in
    Ok report
