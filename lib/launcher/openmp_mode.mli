(** OpenMP execution mode (Section 5.2.3): the kernel's iteration space
    is split across [opts.openmp_threads] threads with libgomp-style
    static scheduling; each repetition is one parallel region with its
    fork/join overhead; threads contend for DRAM bandwidth. *)

open Mt_creator

val run : Options.t -> Mt_isa.Insn.program -> Abi.t -> (Report.t, string) result
(** Measure the kernel under OpenMP.  The per-unit divisor covers the
    whole iteration space (all threads together), so values compare
    directly against the sequential mode's. *)

val region_cycles :
  Options.t -> Mt_isa.Insn.program -> Abi.t -> (float, string) result
(** Core cycles of a single parallel region (for tests and the Table 2
    wall-time extrapolation). *)
