type per_unit = Per_pass | Per_instruction | Per_element | Per_call

type eval_method = Rdtsc | Wallclock_ns

type omp_schedule = Omp_static | Omp_dynamic | Omp_guided

type t = {
  machine : Mt_machine.Config.t;
  frequency_ghz : float option;
  pin_core : int option;
  pinned : bool;
  interrupts_masked : bool;
  noise_seed : int;
  function_name : string option;
  nbvectors : int option;
  array_bytes : int;
  element_bytes : int;
  alignments : int list;
  alignment_modulus : int;
  trip_passes : int option;
  repetitions : int;
  experiments : int;
  warmup : bool;
  subtract_overhead : bool;
  call_overhead_cycles : float;
  max_instructions : int;
  cores : int;
  openmp_threads : int;
  openmp_chunk : int option;
  openmp_schedule : omp_schedule;
  local_alloc : bool;
  ram_sharers : int option;
  mpi_ranks : int;
  mpi_halo_bytes : int option;
  eval_method : eval_method;
  per : per_unit;
  csv_path : string option;
  emit_full_times : bool;
  verbose : bool;
  keep_failures : bool;
  drop_first_experiment : bool;
  adaptive_experiments : bool;
  rciw_target : float;
  max_experiments : int;
  quality_seed : int;
  quality : Mt_quality.thresholds;
  profile : bool;
}

let count = 40

let default machine =
  {
    machine;
    frequency_ghz = None;
    pin_core = Some 0;
    pinned = true;
    interrupts_masked = true;
    noise_seed = 42;
    function_name = None;
    nbvectors = None;
    array_bytes = 64 * 1024;
    element_bytes = 4;
    alignments = [];
    alignment_modulus = 4096;
    trip_passes = None;
    repetitions = 4;
    experiments = 10;
    warmup = true;
    subtract_overhead = true;
    call_overhead_cycles = 25.;
    max_instructions = 50_000_000;
    cores = 1;
    openmp_threads = 0;
    openmp_chunk = None;
    openmp_schedule = Omp_static;
    local_alloc = true;
    ram_sharers = None;
    mpi_ranks = 0;
    mpi_halo_bytes = None;
    eval_method = Rdtsc;
    per = Per_pass;
    csv_path = None;
    emit_full_times = false;
    verbose = false;
    keep_failures = false;
    drop_first_experiment = false;
    adaptive_experiments = false;
    rciw_target = 0.02;
    max_experiments = 64;
    quality_seed = 42;
    quality = Mt_quality.default_thresholds;
    profile = false;
  }

let effective_machine t =
  match t.frequency_ghz with
  | None -> t.machine
  | Some ghz -> Mt_machine.Config.with_core_ghz t.machine ghz

let noise_env t =
  {
    Mt_machine.Noise.pinned = t.pinned;
    interrupts_masked = t.interrupts_masked;
    warmed = t.warmup;
  }

let alignment_for t i =
  match t.alignments with
  | [] -> 0
  | alignments -> List.nth alignments (i mod List.length alignments)

let summary t =
  let b = Printf.sprintf in
  let opt f = function None -> "default" | Some v -> f v in
  let per = function
    | Per_pass -> "pass"
    | Per_instruction -> "instruction"
    | Per_element -> "element"
    | Per_call -> "call"
  in
  let eval = function Rdtsc -> "rdtsc" | Wallclock_ns -> "wallclock-ns" in
  let sched = function
    | Omp_static -> "static"
    | Omp_dynamic -> "dynamic"
    | Omp_guided -> "guided"
  in
  [
    ("machine", t.machine.Mt_machine.Config.name);
    ("frequency_ghz", opt (b "%g") t.frequency_ghz);
    ("pin_core", opt string_of_int t.pin_core);
    ("pinned", string_of_bool t.pinned);
    ("interrupts_masked", string_of_bool t.interrupts_masked);
    ("noise_seed", string_of_int t.noise_seed);
    ("function_name", opt Fun.id t.function_name);
    ("nbvectors", opt string_of_int t.nbvectors);
    ("array_bytes", string_of_int t.array_bytes);
    ("element_bytes", string_of_int t.element_bytes);
    ("alignments", String.concat "," (List.map string_of_int t.alignments));
    ("alignment_modulus", string_of_int t.alignment_modulus);
    ("trip_passes", opt string_of_int t.trip_passes);
    ("repetitions", string_of_int t.repetitions);
    ("experiments", string_of_int t.experiments);
    ("warmup", string_of_bool t.warmup);
    ("subtract_overhead", string_of_bool t.subtract_overhead);
    ("call_overhead_cycles", b "%g" t.call_overhead_cycles);
    ("max_instructions", string_of_int t.max_instructions);
    ("cores", string_of_int t.cores);
    ("openmp_threads", string_of_int t.openmp_threads);
    ("openmp_chunk", opt string_of_int t.openmp_chunk);
    ("openmp_schedule", sched t.openmp_schedule);
    ("local_alloc", string_of_bool t.local_alloc);
    ("ram_sharers", opt string_of_int t.ram_sharers);
    ("mpi_ranks", string_of_int t.mpi_ranks);
    ("mpi_halo_bytes", opt string_of_int t.mpi_halo_bytes);
    ("eval_method", eval t.eval_method);
    ("per", per t.per);
    ("emit_full_times", string_of_bool t.emit_full_times);
    ("keep_failures", string_of_bool t.keep_failures);
    ("drop_first_experiment", string_of_bool t.drop_first_experiment);
    ("adaptive_experiments", string_of_bool t.adaptive_experiments);
    ("rciw_target", b "%g" t.rciw_target);
    ("max_experiments", string_of_int t.max_experiments);
    ("quality_seed", string_of_int t.quality_seed);
    ("quality_thresholds", Mt_quality.thresholds_summary t.quality);
    ("profile", string_of_bool t.profile);
  ]

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let validate t =
  let ( let* ) = Result.bind in
  let* () = if t.array_bytes <= 0 then err "array_bytes must be positive" else Ok () in
  let* () = if t.repetitions < 1 then err "repetitions must be >= 1" else Ok () in
  let* () = if t.experiments < 1 then err "experiments must be >= 1" else Ok () in
  let* () =
    if t.drop_first_experiment && t.experiments < 2 then
      err "drop_first_experiment requires at least 2 experiments"
    else Ok ()
  in
  let* () =
    if t.adaptive_experiments && t.max_experiments < t.experiments then
      err "max_experiments (%d) must be >= experiments (%d) in adaptive mode"
        t.max_experiments t.experiments
    else Ok ()
  in
  let* () =
    if t.adaptive_experiments && t.rciw_target <= 0. then
      err "rciw_target must be positive in adaptive mode"
    else Ok ()
  in
  let* () = if t.cores < 1 then err "cores must be >= 1" else Ok () in
  let* () = if t.openmp_threads < 0 then err "openmp_threads must be >= 0" else Ok () in
  let* () = if t.mpi_ranks < 0 then err "mpi_ranks must be >= 0" else Ok () in
  let* () =
    if t.alignment_modulus <= 0 || t.alignment_modulus land (t.alignment_modulus - 1) <> 0
    then err "alignment_modulus must be a power of two"
    else Ok ()
  in
  let* () =
    if List.exists (fun a -> a < 0 || a >= t.alignment_modulus) t.alignments then
      err "alignment offsets must lie in [0, modulus)"
    else Ok ()
  in
  let* () =
    match t.frequency_ghz with
    | Some f when f <= 0. -> err "frequency override must be positive"
    | Some _ | None -> Ok ()
  in
  let cores_available = Mt_machine.Config.core_count (effective_machine t) in
  let* () =
    if t.cores > cores_available then
      err "fork mode asks for %d cores, machine has %d" t.cores cores_available
    else Ok ()
  in
  let* () =
    if t.openmp_threads > cores_available then
      err "OpenMP asks for %d threads, machine has %d cores" t.openmp_threads cores_available
    else Ok ()
  in
  let* () =
    if t.mpi_ranks > cores_available then
      err "MPI asks for %d ranks, machine has %d cores" t.mpi_ranks cores_available
    else Ok ()
  in
  match t.pin_core with
  | Some c when c < 0 || c >= cores_available ->
    err "pin core %d out of range [0, %d)" c cores_available
  | Some _ | None -> Ok ()
