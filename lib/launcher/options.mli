(** MicroLauncher's behaviour knobs — the paper's "more than thirty
    options" (Section 4.2), as one record with sensible defaults. *)

(** What the reported number divides the measured time by. *)
type per_unit =
  | Per_pass  (** Loop passes, as counted by the kernel's [%eax]. *)
  | Per_instruction  (** Loads + stores (Figures 11, 12). *)
  | Per_element  (** Payload iterations: passes × unroll (Figures 17, 18). *)
  | Per_call  (** Whole kernel invocations. *)

(** Timing source: the default [rdtsc] reference cycles, or a custom
    wall-clock evaluation library (Section 4.2). *)
type eval_method = Rdtsc | Wallclock_ns

(** OpenMP loop schedule selection. *)
type omp_schedule = Omp_static | Omp_dynamic | Omp_guided

type t = {
  (* Machine & environment. *)
  machine : Mt_machine.Config.t;  (* 1. target machine description *)
  frequency_ghz : float option;  (* 2. core-clock override (Fig. 13) *)
  pin_core : int option;  (* 3. which core the kernel is pinned on *)
  pinned : bool;  (* 4. pinning enabled at all *)
  interrupts_masked : bool;  (* 5. disable interruptions (Section 4.7) *)
  noise_seed : int;  (* 6. environment PRNG seed *)
  (* Kernel interface. *)
  function_name : string option;  (* 7. entry point inside object containers *)
  nbvectors : int option;  (* 8. number of arrays (--nbvectors) *)
  array_bytes : int;  (* 9. size of each array *)
  element_bytes : int;  (* 10. element width for Per_element *)
  alignments : int list;  (* 11. per-array alignment offsets *)
  alignment_modulus : int;  (* 12. boundary the offsets apply to *)
  trip_passes : int option;  (* 13. loop passes per call (else one traversal) *)
  (* Protocol. *)
  repetitions : int;  (* 14. inner loop: kernel calls per experiment *)
  experiments : int;  (* 15. outer loop: measured experiments *)
  warmup : bool;  (* 16. cache-heating call before measuring *)
  subtract_overhead : bool;  (* 17. remove call overhead from results *)
  call_overhead_cycles : float;  (* 18. cost charged per function call *)
  max_instructions : int;  (* 19. simulation fuel per call *)
  (* Parallel modes. *)
  cores : int;  (* 20. fork mode process count *)
  openmp_threads : int;  (* 21. OpenMP thread count (0 = off) *)
  openmp_chunk : int option;  (* 22. chunk size (static/dynamic/guided) *)
  openmp_schedule : omp_schedule;  (* 22b. loop schedule *)
  local_alloc : bool;
      (* 23. forked processes allocate locally after pinning (first
         touch); when false the parent's node serves all the traffic *)
  ram_sharers : int option;  (* 24. override DRAM-sharing degree *)
  mpi_ranks : int;  (* 24b. SPMD process count (0 = off) *)
  mpi_halo_bytes : int option;  (* 24c. per-phase halo exchange size *)
  (* Output. *)
  eval_method : eval_method;  (* 25. rdtsc vs wall-clock library *)
  per : per_unit;  (* 26. divisor for the reported number *)
  csv_path : string option;  (* 27. write a CSV next to the run *)
  emit_full_times : bool;  (* 28. also report raw per-experiment times *)
  verbose : bool;  (* 29. chatty progress on stderr *)
  keep_failures : bool;  (* 30. report failed variants instead of raising *)
  drop_first_experiment : bool;  (* 31. discard experiment 0 (extra warm) *)
  (* Measurement quality. *)
  adaptive_experiments : bool;
      (* 32. stop running experiments once the series is stable enough
         (RCIW under [rciw_target]) instead of always running
         [experiments]; [experiments] becomes the minimum *)
  rciw_target : float;  (* 32b. adaptive stop target (relative CI width) *)
  max_experiments : int;  (* 32c. adaptive budget ceiling *)
  quality_seed : int;
      (* 33. seed for the quality bootstrap RNG — explicit so snapshots
         and mt_report diffs reproduce bit-for-bit *)
  quality : Mt_quality.thresholds;  (* 34. verdict classification bands *)
  profile : bool;
      (* 35. record per-instruction bottleneck attribution during the
         measured calls and attach the cycle-accounting breakdown to
         the report; never changes the measured numbers *)
}

val default : Mt_machine.Config.t -> t
(** Defaults: 64 KiB arrays, 16-byte-aligned, 4 repetitions,
    10 experiments, warm-up and overhead subtraction on, stable
    environment, sequential mode, rdtsc, per-pass reporting. *)

val count : int
(** Number of user-settable options (for the Section 4.2 claim test). *)

val effective_machine : t -> Mt_machine.Config.t
(** The machine with the frequency override applied. *)

val noise_env : t -> Mt_machine.Noise.env
(** The environment implied by the stability options. *)

val alignment_for : t -> int -> int
(** [alignment_for t i] is the byte offset for array [i] (cycling
    through [alignments]; 0 when the list is empty). *)

val validate : t -> (unit, string) result

val summary : t -> (string * string) list
(** Every measurement-shaping field rendered as a [(name, value)] pair,
    for run-provenance snapshots.  Output-routing fields ([csv_path],
    [verbose]) are omitted — two runs differing only there measured the
    same thing. *)
