open Mt_isa
open Mt_machine
open Mt_creator

type prepared = {
  opts : Options.t;
  cfg : Config.t;
  compiled : Core.compiled;
  abi : Abi.t;
  init : (Reg.t * int) list;
  bases : int list;
  passes : int;
  memory : Memory.t;
  noise : Noise.t;
  noise_seed : int;  (* effective seed behind [noise], for previews *)
  empty_cycles : float;
  attr : Attribution.t option;
      (* bottleneck attribution sink, created when [opts.profile];
         reset after warm-up so the profile covers measured calls only *)
}

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Cost of calling an empty kernel on this machine: the baseline the
   overhead subtraction removes (Fig. 10's "overhead calculation"). *)
let empty_kernel_cycles cfg =
  let empty = [ Insn.Insn (Insn.make Insn.RET []) ] in
  let memory = Memory.create cfg in
  match Core.run_program cfg memory empty with
  | Ok r -> r.Core.cycles
  | Error _ -> 1.

let prepare ?sharers ?passes ?(start_pass = 0) ?(noise_salt = 0) opts program abi =
  match Options.validate opts with
  | Error msg -> Error msg
  | Ok () -> (
    let cfg = Options.effective_machine opts in
    match Core.compile program with
    | Error e -> err "%s: %s" abi.Abi.function_name (Core.error_to_string e)
    | Ok compiled ->
      let ram_sharers =
        match opts.Options.ram_sharers with
        | Some n -> n
        | None -> Option.value ~default:1 sharers
      in
      let memory = Memory.create ~ram_sharers cfg in
      let array_count =
        match opts.Options.nbvectors with
        | Some n -> n
        | None -> List.length abi.Abi.pointers
      in
      if array_count < List.length abi.Abi.pointers then
        err "kernel %s needs %d arrays, --nbvectors gave %d" abi.Abi.function_name
          (List.length abi.Abi.pointers) array_count
      else begin
        let memmap = Memmap.create () in
        let bases =
          List.init array_count (fun i ->
              let offset = Options.alignment_for opts i in
              let region =
                Memmap.alloc memmap ~size:opts.Options.array_bytes
                  ~align:opts.Options.alignment_modulus ~offset
              in
              region.Memmap.base)
        in
        let passes =
          match passes, opts.Options.trip_passes with
          | Some p, _ -> p
          | None, Some p -> p
          | None, None -> Abi.passes_for_bytes abi opts.Options.array_bytes
        in
        (* A chunked (OpenMP) thread starts its traversal [start_pass]
           passes into each array. *)
        let pointer_inits =
          List.mapi
            (fun i (r, step) ->
              (r, List.nth bases (i mod array_count) + (start_pass * step)))
            abi.Abi.pointers
        in
        let init =
          (abi.Abi.counter, Abi.trip_count_for_passes abi passes) :: pointer_inits
        in
        let noise_seed = opts.Options.noise_seed + (noise_salt * 7919) in
        let noise = Noise.create ~seed:noise_seed (Options.noise_env opts) in
        Ok
          {
            opts;
            cfg;
            compiled;
            abi;
            init;
            bases;
            passes;
            memory;
            noise;
            noise_seed;
            empty_cycles = empty_kernel_cycles cfg;
            attr =
              (if opts.Options.profile then Some (Attribution.create ())
               else None);
          }
      end)

let passes_per_call p = p.passes

let array_bases p = p.bases

(* ------------------------------------------------------------------ *)
(* Deep trace lanes                                                    *)
(* ------------------------------------------------------------------ *)

(* Simulated-time lanes live on tids far above any real domain id, so
   Perfetto draws them as separate tracks from the wall-clock spans.
   Their "ts" axis is core cycles, not microseconds — within a lane the
   scale is self-consistent, which is all a timeline needs. *)
let trace_lane_tid = 1_000_000

let run_traced p tel stride =
  let tid = trace_lane_tid + (Domain.self () :> int) in
  let l1h = ref 0 and l1m = ref 0 in
  let l2h = ref 0 and l2m = ref 0 in
  let l3h = ref 0 and l3m = ref 0 in
  Memory.set_access_hook p.memory
    (Some
       (fun level ~hit ->
         match level with
         | Memory.L1 -> if hit then incr l1h else incr l1m
         | Memory.L2 -> if hit then incr l2h else incr l2m
         | Memory.L3 -> if hit then incr l3h else incr l3m
         | Memory.Ram -> ()));
  let seen = ref 0 in
  let trace pc insn ~issue ~completion =
    let n = !seen in
    seen := n + 1;
    if n mod stride = 0 then begin
      Mt_telemetry.emit tel
        (Mt_isa.Insn.to_string insn)
        ~args:[ ("pc", string_of_int pc) ]
        ~tid ~start_us:issue ~dur_us:(completion -. issue);
      let point hits misses = [ ("hit", float_of_int !hits); ("miss", float_of_int !misses) ] in
      Mt_telemetry.series ~ts_us:completion ~tid tel "cache.L1" (point l1h l1m);
      Mt_telemetry.series ~ts_us:completion ~tid tel "cache.L2" (point l2h l2m);
      Mt_telemetry.series ~ts_us:completion ~tid tel "cache.L3" (point l3h l3m)
    end
  in
  Fun.protect
    ~finally:(fun () -> Memory.set_access_hook p.memory None)
    (fun () ->
      Core.run ~init:p.init ~max_instructions:p.opts.Options.max_instructions
        ~trace ?attr:p.attr p.cfg p.memory p.compiled)

let run_once p =
  (* The detail gate is two atomic loads and a branch; when Off the
     simulate path below is exactly the pre-lane call — no closure, no
     hook, no allocation. *)
  let tel = Mt_telemetry.global () in
  let stride = Mt_telemetry.sample_stride (Mt_telemetry.detail ()) in
  match
    if stride > 0 && Mt_telemetry.enabled tel then run_traced p tel stride
    else
      Core.run ~init:p.init ~max_instructions:p.opts.Options.max_instructions
        ?attr:p.attr p.cfg p.memory p.compiled
  with
  | Ok outcome -> Ok outcome
  | Error e -> err "%s: %s" p.abi.Abi.function_name (Core.error_to_string e)

let overhead_cycles p = p.opts.Options.call_overhead_cycles +. p.empty_cycles

let per_call_divisor p actual_passes =
  match p.opts.Options.per with
  | Options.Per_pass -> float_of_int (max 1 actual_passes)
  | Options.Per_instruction ->
    float_of_int (max 1 (actual_passes * Abi.payload_per_pass p.abi))
  | Options.Per_element ->
    float_of_int (max 1 (actual_passes * p.abi.Abi.unroll))
  | Options.Per_call -> 1.

let per_label opts =
  match opts.Options.per with
  | Options.Per_pass -> "pass"
  | Options.Per_instruction -> "instruction"
  | Options.Per_element -> "element"
  | Options.Per_call -> "call"

let unit_label opts =
  match opts.Options.eval_method with
  | Options.Rdtsc -> "tsc-cycles"
  | Options.Wallclock_ns -> "ns"

let convert p core_cycles =
  match p.opts.Options.eval_method with
  | Options.Rdtsc -> core_cycles *. Config.tsc_per_core_cycle p.cfg
  | Options.Wallclock_ns -> core_cycles /. p.cfg.Config.core_ghz

let measure_totals p =
  let opts = p.opts in
  let tel = Mt_telemetry.global () in
  let ( let* ) = Result.bind in
  (* Cache heating (Section 4.5): one un-timed call. *)
  let* first =
    if opts.Options.warmup then
      Mt_telemetry.span tel "launcher.warmup" (fun () ->
          Result.map Option.some (run_once p))
    else Ok None
  in
  (* The warm-up call is not a measurement: restart attribution so the
     profile describes the measured steady state only. *)
  (match p.attr with Some a -> Attribution.reset a | None -> ());
  (* Trust the kernel's own iteration count when it provides one (the
     %eax convention of Section 4.4). *)
  let actual_passes =
    match p.abi.Abi.pass_counter, first with
    | Some _, Some outcome when outcome.Core.rax > 0 -> outcome.Core.rax
    | (Some _ | None), _ -> p.passes
  in
  let reps = opts.Options.repetitions in
  let run_experiment () =
    (* Each experiment is a span carrying the memory-hierarchy activity
       it caused: Core.run resets the pipeline counters per call and
       reports them in the outcome, so summing outcomes is exactly this
       experiment's delta. *)
    Mt_telemetry.span tel "launcher.experiment" (fun () ->
        let rec go r acc =
          if r = 0 then Ok acc
          else
            match run_once p with
            | Error msg -> Error msg
            | Ok outcome ->
              if Mt_telemetry.enabled tel then
                List.iter
                  (fun (k, v) -> Mt_telemetry.add tel ("mem." ^ k) v)
                  (Memory.counters_to_alist outcome.Core.mem);
              go (r - 1)
                (acc +. outcome.Core.cycles +. opts.Options.call_overhead_cycles)
        in
        let result = go reps 0. in
        if Result.is_ok result then Mt_telemetry.incr tel "launcher.experiments";
        result)
  in
  let rec collect e acc =
    if e = 0 then Ok (List.rev acc)
    else
      match run_experiment () with
      | Error msg -> Error msg
      | Ok total -> collect (e - 1) (total :: acc)
  in
  (* Adaptive stop rule.  [measure_totals] returns raw simulator totals;
     environment noise is only injected later, in [report_of_totals], by
     perturbing the totals in list order.  So the stop rule scores a
     preview of the series the report will actually contain: re-create
     the noise stream from the same seed (identical sequence), apply the
     same drop-first and overhead subtraction, and bootstrap that.
     Judging raw totals instead would see a deterministic simulator and
     always stop at the minimum. *)
  let preview_rciw totals =
    let noise = Noise.create ~seed:p.noise_seed (Options.noise_env opts) in
    let xs = List.map (Noise.perturb noise) totals in
    let xs =
      match xs with
      | _ :: (_ :: _ as rest) when opts.Options.drop_first_experiment -> rest
      | xs -> xs
    in
    let overhead =
      if opts.Options.subtract_overhead then overhead_cycles p else 0.
    in
    let xs =
      List.map
        (fun total -> Float.max 0. (total -. (overhead *. float_of_int reps)))
        xs
    in
    let q = opts.Options.quality in
    Mt_quality.rciw ~resamples:q.Mt_quality.resamples
      ~confidence:q.Mt_quality.confidence ~seed:opts.Options.quality_seed
      (Array.of_list xs)
  in
  let adaptive totals =
    Mt_telemetry.span tel "quality.adaptive" (fun () ->
        let target = opts.Options.rciw_target in
        let budget = opts.Options.max_experiments in
        (* The series is accumulated newest-first and reversed per use:
           appending with [totals @ [total]] would rebuild the whole
           list per extension (quadratic in extensions), while the
           preview below reprocesses the series anyway, so one O(n)
           reverse costs nothing extra.  Experiment order — which the
           noise stream and drop-first depend on — is preserved. *)
        let rec extend rev_totals n =
          if preview_rciw (List.rev rev_totals) <= target then begin
            Mt_telemetry.incr tel "quality.adaptive.early_stops";
            Mt_telemetry.add tel "quality.adaptive.experiments_saved"
              (budget - n);
            Ok (List.rev rev_totals)
          end
          else if n >= budget then begin
            Mt_telemetry.incr tel "quality.adaptive.budget_exhausted";
            Ok (List.rev rev_totals)
          end
          else begin
            Mt_telemetry.incr tel "quality.adaptive.extensions";
            match run_experiment () with
            | Error msg -> Error msg
            | Ok total -> extend (total :: rev_totals) (n + 1)
          end
        in
        extend (List.rev totals) (List.length totals))
  in
  let* totals =
    Mt_telemetry.span tel "launcher.measure" (fun () ->
        let ( let* ) = Result.bind in
        let* base = collect opts.Options.experiments [] in
        if opts.Options.adaptive_experiments then adaptive base else Ok base)
  in
  Ok (totals, actual_passes)

let report_of_totals ?(mode = "seq") ?noise p ~actual_passes totals =
  let opts = p.opts in
  let noise = Option.value ~default:p.noise noise in
  let totals = List.map (Noise.perturb noise) totals in
  (* Drop the extra-warm first experiment, but only when a later one
     exists: [Options.validate] rejects drop-first studies with fewer
     than 2 experiments, and a direct caller handing us a single total
     keeps it rather than crashing on [List.tl].  The drop happens
     before the overhead-exceeded flag below is computed, so a clamped
     warm-up-only experiment cannot flag an otherwise clean run. *)
  let totals =
    match totals with
    | _ :: (_ :: _ as rest) when opts.Options.drop_first_experiment -> rest
    | totals -> totals
  in
  if totals = [] then
    invalid_arg
      (Printf.sprintf "Protocol.report_of_totals(%s): no experiment totals"
         p.abi.Abi.function_name);
  let reps = opts.Options.repetitions in
  let overhead = if opts.Options.subtract_overhead then overhead_cycles p else 0. in
  let divisor = per_call_divisor p actual_passes *. float_of_int reps in
  (* When the configured overhead out-weighs a measured total the
     subtraction clamps to 0 — flag it rather than silently reporting
     zero cycles (a mis-calibrated call_overhead_cycles would otherwise
     masquerade as an infinitely fast kernel). *)
  let overhead_exceeded =
    List.exists (fun total -> total -. (overhead *. float_of_int reps) < 0.) totals
  in
  let values =
    List.map
      (fun total ->
        let net = Float.max 0. (total -. (overhead *. float_of_int reps)) in
        convert p net /. divisor)
      totals
  in
  let mem = Memory.counters p.memory in
  let profile =
    match p.attr with
    | Some a ->
      Some
        (Mt_profile.of_attribution
           ~name:(fun pc -> Core.disassemble p.compiled ~pc)
           a)
    | None -> None
  in
  let report =
    Report.make
      ~id:p.abi.Abi.function_name ~mode ~unit_label:(unit_label opts)
      ~per_label:(per_label opts) ~passes_per_call:actual_passes
      ~calls_per_experiment:reps ~overhead_exceeded ~mem
      ~thresholds:opts.Options.quality ~quality_seed:opts.Options.quality_seed
      ?profile (Array.of_list values)
  in
  let tel = Mt_telemetry.global () in
  if Mt_telemetry.enabled tel then
    Mt_telemetry.incr tel
      ("quality.verdict."
      ^ Mt_quality.verdict_kind report.Report.quality.Mt_quality.verdict);
  report

let measure ?mode p =
  match measure_totals p with
  | Error msg -> Error msg
  | Ok (totals, actual_passes) -> Ok (report_of_totals ?mode p ~actual_passes totals)
