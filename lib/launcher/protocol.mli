(** MicroLauncher's measurement engine (Sections 4.5, 4.7 and the
    Figure 10 pseudo-code): allocate arrays at controlled alignments,
    heat the caches with one un-timed call, run an outer loop of
    experiments each timing an inner loop of kernel calls, subtract the
    call overhead, and normalise to the requested unit. *)

open Mt_creator

type prepared
(** A kernel bound to a machine, a memory pipeline and allocated
    arrays, ready to run. *)

val prepare :
  ?sharers:int ->
  ?passes:int ->
  ?start_pass:int ->
  ?noise_salt:int ->
  Options.t ->
  Mt_isa.Insn.program ->
  Abi.t ->
  (prepared, string) result
(** Bind a kernel.  [sharers] is how many cores contend for DRAM
    (parallel modes); [passes] overrides the loop passes per call
    (default: one traversal of the array, or [opts.trip_passes]);
    [start_pass] begins the traversal that many passes into each array
    (OpenMP chunking); [noise_salt] decorrelates the noise of sibling
    processes. *)

val passes_per_call : prepared -> int

val array_bases : prepared -> int list
(** Allocated base addresses (alignment tests inspect these). *)

val run_once : prepared -> (Mt_machine.Core.outcome, string) result
(** A single kernel call against the current cache state.

    When the global telemetry handle is enabled and
    {!Mt_telemetry.detail} is not [Off], the call also records deep
    trace lanes: one complete event per sampled dynamic instruction
    (name = disassembly, ["pc"] argument, ts = issue cycle, duration =
    issue-to-completion cycles) and three ["cache.L1"/"cache.L2"/
    "cache.L3"] counter series carrying cumulative hit/miss counts, all
    on a simulated-time track ([tid] = 1,000,000 + domain id).  With
    detail [Off] the simulate path is byte-for-byte the plain
    {!Mt_machine.Core.run} call — no hook, no allocation. *)

val measure : ?mode:string -> prepared -> (Report.t, string) result
(** The full protocol.  The reported value and per-experiment series
    are in the unit implied by the options ([rdtsc] reference cycles by
    default), divided by the per-unit count ([Per_pass] by default). *)

val measure_totals : prepared -> (float list * int, string) result
(** The raw protocol: un-perturbed per-experiment core-cycle totals
    plus the kernel-reported pass count.  Parallel modes reuse one
    simulation across symmetric processes and apply per-process noise
    via {!report_of_totals}. *)

val report_of_totals :
  ?mode:string ->
  ?noise:Mt_machine.Noise.t ->
  prepared ->
  actual_passes:int ->
  float list ->
  Report.t
(** Normalise raw totals into a report (noise, overhead subtraction,
    unit conversion, per-unit division).  With
    [opts.drop_first_experiment] the first total is discarded {e before}
    the overhead-exceeded flag is computed — and only when another
    total follows, so a singleton list is reported as-is instead of
    crashing.  @raise Invalid_argument on an empty totals list (the
    message names the kernel). *)

val overhead_cycles : prepared -> float
(** The per-call overhead the protocol subtracts (function-call cost
    plus an empty kernel's cycles), in core cycles. *)
