type t = {
  id : string;
  mode : string;
  unit_label : string;
  per_label : string;
  experiments : float array;
  value : float;
  summary : Mt_stats.summary;
  passes_per_call : int;
  calls_per_experiment : int;
  mem : Mt_machine.Memory.counters option;
  overhead_exceeded : bool;
}

let make ~id ~mode ~unit_label ~per_label ?(passes_per_call = 0)
    ?(calls_per_experiment = 0) ?(overhead_exceeded = false) ?mem experiments =
  if Array.length experiments = 0 then
    invalid_arg "Report.make: no experiment values";
  let summary = Mt_stats.summarize experiments in
  {
    id;
    mode;
    unit_label;
    per_label;
    experiments;
    value = summary.Mt_stats.median;
    summary;
    passes_per_call;
    calls_per_experiment;
    mem;
    overhead_exceeded;
  }

let flags_cell r = if r.overhead_exceeded then "overhead-exceeds-measurement" else ""

let csv ?(full = false) reports =
  let max_experiments =
    List.fold_left (fun acc r -> max acc (Array.length r.experiments)) 0 reports
  in
  let header =
    [ "id"; "mode"; "unit"; "per"; "value"; "min"; "median"; "max"; "stddev";
      "experiments"; "passes_per_call"; "flags" ]
    @ (if full then List.init max_experiments (fun i -> Printf.sprintf "run%d" i) else [])
  in
  let doc = Mt_stats.Csv.create ~header in
  List.iter
    (fun r ->
      let s = r.summary in
      let row =
        [
          r.id; r.mode; r.unit_label; r.per_label;
          Printf.sprintf "%.6g" r.value;
          Printf.sprintf "%.6g" s.Mt_stats.minimum;
          Printf.sprintf "%.6g" s.Mt_stats.median;
          Printf.sprintf "%.6g" s.Mt_stats.maximum;
          Printf.sprintf "%.6g" s.Mt_stats.stddev;
          string_of_int s.Mt_stats.count;
          string_of_int r.passes_per_call;
          flags_cell r;
        ]
        @
        if full then
          List.init max_experiments (fun i ->
              if i < Array.length r.experiments then
                Printf.sprintf "%.6g" r.experiments.(i)
              else "")
        else []
      in
      Mt_stats.Csv.add_row doc row)
    reports;
  doc

let save_csv ?full reports path = Mt_stats.Csv.save (csv ?full reports) path

let pp fmt r =
  Format.fprintf fmt "%s [%s] %.3f %s/%s (min %.3f, max %.3f, n=%d)%s" r.id r.mode
    r.value r.unit_label r.per_label r.summary.Mt_stats.minimum
    r.summary.Mt_stats.maximum r.summary.Mt_stats.count
    (if r.overhead_exceeded then " [overhead exceeds measurement]" else "")
