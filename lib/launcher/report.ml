type t = {
  id : string;
  mode : string;
  unit_label : string;
  per_label : string;
  experiments : float array;
  value : float;
  summary : Mt_stats.summary;
  passes_per_call : int;
  calls_per_experiment : int;
  mem : Mt_machine.Memory.counters option;
  overhead_exceeded : bool;
  quality : Mt_quality.assessment;
  profile : Mt_profile.breakdown option;
}

let make ~id ~mode ~unit_label ~per_label ?(passes_per_call = 0)
    ?(calls_per_experiment = 0) ?(overhead_exceeded = false) ?mem ?thresholds
    ?quality_seed ?profile experiments =
  if Array.length experiments = 0 then
    invalid_arg "Report.make: no experiment values";
  let summary = Mt_stats.summarize experiments in
  let quality = Mt_quality.assess ?thresholds ?seed:quality_seed experiments in
  {
    id;
    mode;
    unit_label;
    per_label;
    experiments;
    value = summary.Mt_stats.median;
    summary;
    passes_per_call;
    calls_per_experiment;
    mem;
    overhead_exceeded;
    quality;
    profile;
  }

(* Only actionable signals make the flags cell: [unstable] (the series
   is not a measurement) and [outliers=N] (specific experiments to look
   at).  A bare "noisy" verdict stays out — it already colours the
   verdict column and would train readers to ignore flags. *)
let flags_cell r =
  let q = r.quality in
  let flags =
    (if r.overhead_exceeded then [ "overhead-exceeds-measurement" ] else [])
    @ (match q.Mt_quality.verdict with
      | Mt_quality.Unstable _ -> [ "unstable" ]
      | Mt_quality.Stable | Mt_quality.Noisy _ -> [])
    @
    if q.Mt_quality.outliers > 0 then
      [ Printf.sprintf "outliers=%d" q.Mt_quality.outliers ]
    else []
  in
  String.concat ";" flags

(* Quarantine is a launch-level fate, not a measurement signal: a
   quarantined variant never produced a [t], so the study CSV formats
   its flag here, beside the rest of the flag vocabulary. *)
let quarantine_flag ~kind = "quarantined:" ^ kind

let csv ?(full = false) reports =
  let max_experiments =
    List.fold_left (fun acc r -> max acc (Array.length r.experiments)) 0 reports
  in
  let header =
    [ "id"; "mode"; "unit"; "per"; "value"; "min"; "median"; "max"; "stddev";
      "experiments"; "passes_per_call"; "flags"; "cov"; "rciw"; "verdict" ]
    @ (if full then List.init max_experiments (fun i -> Printf.sprintf "run%d" i) else [])
  in
  let doc = Mt_stats.Csv.create ~header in
  List.iter
    (fun r ->
      let s = r.summary in
      let q = r.quality in
      let row =
        [
          r.id; r.mode; r.unit_label; r.per_label;
          Printf.sprintf "%.6g" r.value;
          Printf.sprintf "%.6g" s.Mt_stats.minimum;
          Printf.sprintf "%.6g" s.Mt_stats.median;
          Printf.sprintf "%.6g" s.Mt_stats.maximum;
          Printf.sprintf "%.6g" s.Mt_stats.stddev;
          string_of_int s.Mt_stats.count;
          string_of_int r.passes_per_call;
          flags_cell r;
          Printf.sprintf "%.6g" q.Mt_quality.cov;
          Printf.sprintf "%.6g" q.Mt_quality.rciw;
          Mt_quality.verdict_to_string q.Mt_quality.verdict;
        ]
        @
        if full then
          List.init max_experiments (fun i ->
              if i < Array.length r.experiments then
                Printf.sprintf "%.6g" r.experiments.(i)
              else "")
        else []
      in
      Mt_stats.Csv.add_row doc row)
    reports;
  doc

let save_csv ?full reports path = Mt_stats.Csv.save (csv ?full reports) path

let pp fmt r =
  Format.fprintf fmt "%s [%s] %.3f %s/%s (min %.3f, max %.3f, n=%d)%s%s" r.id
    r.mode r.value r.unit_label r.per_label r.summary.Mt_stats.minimum
    r.summary.Mt_stats.maximum r.summary.Mt_stats.count
    (if r.overhead_exceeded then " [overhead exceeds measurement]" else "")
    (match r.quality.Mt_quality.verdict with
    | Mt_quality.Stable -> ""
    | v -> Printf.sprintf " [%s]" (Mt_quality.verdict_to_string v))
