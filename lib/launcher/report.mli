(** Measurement records and the CSV output MicroLauncher produces
    (Section 4.3). *)

type t = {
  id : string;  (** Kernel/variant identifier. *)
  mode : string;  (** "seq", "fork:N", "openmp:N", "standalone". *)
  unit_label : string;  (** "tsc-cycles" or "ns". *)
  per_label : string;  (** "pass", "instruction", "element", "call". *)
  experiments : float array;
      (** One already-normalised value per outer experiment. *)
  value : float;  (** The reported number: median over experiments. *)
  summary : Mt_stats.summary;
  passes_per_call : int;
  calls_per_experiment : int;
  mem : Mt_machine.Memory.counters option;
  overhead_exceeded : bool;
      (** The configured call overhead was larger than at least one
          measured total, i.e. the subtraction clamped to 0 and the
          reported cycles are a floor, not a measurement — a
          mis-calibrated [call_overhead_cycles].  Rendered in the CSV
          "flags" column. *)
}

val make :
  id:string ->
  mode:string ->
  unit_label:string ->
  per_label:string ->
  ?passes_per_call:int ->
  ?calls_per_experiment:int ->
  ?overhead_exceeded:bool ->
  ?mem:Mt_machine.Memory.counters ->
  float array ->
  t
(** Build a record from per-experiment values.
    @raise Invalid_argument on an empty array. *)

val flags_cell : t -> string
(** The CSV "flags" column content: ["overhead-exceeds-measurement"]
    when {!field-overhead_exceeded} is set, [""] otherwise. *)

val csv : ?full:bool -> t list -> Mt_stats.Csv.t
(** The launcher's CSV: one row per measurement with id, mode, value,
    min/median/max/stddev.  With [full], one extra column per
    experiment. *)

val save_csv : ?full:bool -> t list -> string -> unit

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary. *)
