(** Measurement records and the CSV output MicroLauncher produces
    (Section 4.3). *)

type t = {
  id : string;  (** Kernel/variant identifier. *)
  mode : string;  (** "seq", "fork:N", "openmp:N", "standalone". *)
  unit_label : string;  (** "tsc-cycles" or "ns". *)
  per_label : string;  (** "pass", "instruction", "element", "call". *)
  experiments : float array;
      (** One already-normalised value per outer experiment. *)
  value : float;  (** The reported number: median over experiments. *)
  summary : Mt_stats.summary;
  passes_per_call : int;
  calls_per_experiment : int;
  mem : Mt_machine.Memory.counters option;
  overhead_exceeded : bool;
      (** The configured call overhead was larger than at least one
          measured total, i.e. the subtraction clamped to 0 and the
          reported cycles are a floor, not a measurement — a
          mis-calibrated [call_overhead_cycles].  Rendered in the CSV
          "flags" column. *)
  quality : Mt_quality.assessment;
      (** Stability verdict and metrics over {!field-experiments},
          computed at construction so every consumer (CSV, snapshots,
          diffs) reads the same classification. *)
  profile : Mt_profile.breakdown option;
      (** Bottleneck attribution over the measured calls, present when
          the run was profiled ([Options.profile]).  Carried beside the
          measurements — it never changes any CSV cell. *)
}

val make :
  id:string ->
  mode:string ->
  unit_label:string ->
  per_label:string ->
  ?passes_per_call:int ->
  ?calls_per_experiment:int ->
  ?overhead_exceeded:bool ->
  ?mem:Mt_machine.Memory.counters ->
  ?thresholds:Mt_quality.thresholds ->
  ?quality_seed:int ->
  ?profile:Mt_profile.breakdown ->
  float array ->
  t
(** Build a record from per-experiment values.  [thresholds] and
    [quality_seed] feed the {!Mt_quality.assess} call (defaults:
    {!Mt_quality.default_thresholds} and its documented seed).
    @raise Invalid_argument on an empty array. *)

val flags_cell : t -> string
(** The CSV "flags" column: semicolon-joined actionable signals —
    ["overhead-exceeds-measurement"], ["unstable"], ["outliers=N"] —
    or [""] when there is nothing to act on.  A merely noisy verdict is
    not a flag; it lives in the "verdict" column. *)

val quarantine_flag : kind:string -> string
(** The flag ["quarantined:<kind>"] (kind: ["raise"] or ["timeout"])
    that a study CSV row carries when the resilience supervisor gave up
    on the variant — part of the same flags vocabulary as
    {!flags_cell}, kept here because a quarantined variant has no [t]
    of its own. *)

val csv : ?full:bool -> t list -> Mt_stats.Csv.t
(** The launcher's CSV: one row per measurement with id, mode, value,
    min/median/max/stddev plus quality columns (cov, rciw, verdict).
    With [full], one extra column per experiment. *)

val save_csv : ?full:bool -> t list -> string -> unit

val pp : Format.formatter -> t -> unit
(** One-line human-readable summary; appends the verdict when it is not
    [Stable]. *)
