open Mt_isa
open Mt_creator

type t =
  | From_variant of Variant.t
  | From_program of Insn.program * Abi.t
  | From_assembly_text of string
  | From_file of string
  | From_object of string * string option

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* "key=value" fields of an "abi:" comment. *)
let fields_of_line line =
  String.split_on_char ' ' line
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
           Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))

let parse_abi_comments program =
  let abi_line = ref None in
  let arrays = ref [] in
  List.iter
    (function
      | Insn.Comment c ->
        let c = String.trim c in
        if String.length c >= 4 && String.sub c 0 4 = "abi:" then
          abi_line := Some (String.sub c 4 (String.length c - 4))
        else if String.length c >= 10 && String.sub c 0 10 = "abi-array:" then begin
          match
            String.split_on_char ' '
              (String.trim (String.sub c 10 (String.length c - 10)))
          with
          | [ reg; step ] -> arrays := (reg, step) :: !arrays
          | _ -> ()
        end
      | Insn.Insn _ | Insn.Label _ | Insn.Directive _ -> ())
    program;
  match !abi_line with
  | None -> err "no \"# abi:\" header found (not a MicroCreator listing?)"
  | Some line -> (
    let fields = fields_of_line line in
    let get k = List.assoc_opt k fields in
    let get_int k = Option.bind (get k) int_of_string_opt in
    let get_reg k =
      Option.bind (get k) (fun name -> Reg.of_name name)
    in
    match get "function", get_reg "counter", get_int "step", get_int "unroll" with
    | Some fn, Some counter, Some step, Some unroll ->
      let pointers =
        List.rev_map
          (fun (reg, step) ->
            match Reg.of_name reg, int_of_string_opt step with
            | Some r, Some s -> (r, s)
            | _ -> (Reg.gpr64 Reg.RSI, 0))
          !arrays
      in
      Ok
        {
          Abi.function_name = fn;
          counter;
          counter_step = step;
          pointers;
          pass_counter = get_reg "passctr";
          unroll;
          loads_per_pass = Option.value ~default:0 (get_int "loads");
          stores_per_pass = Option.value ~default:0 (get_int "stores");
          bytes_per_pass = Option.value ~default:0 (get_int "bytes");
        }
    | _ -> err "incomplete abi header: %s" line)

let replace_all s pattern repl =
  let plen = String.length pattern in
  if plen = 0 then s
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - plen do
      if String.sub s !i plen = pattern then begin
        Buffer.add_string b repl;
        i := !i + plen
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.add_string b (String.sub s !i (String.length s - !i));
    Buffer.contents b
  end

(* A MicroCreator .c kernel: the instructions live in the extended-asm
   string literals ("insn\n\t" with %% escapes) and the launcher
   contract in "/* abi: ... */" comments.  We translate both back into
   a listing and reuse the assembly path. *)
let parse_c_source text =
  let buf = Buffer.create 256 in
  (* abi comments -> '#' comments the Att reader keeps. *)
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      let has_prefix p =
        String.length line >= String.length p && String.sub line 0 (String.length p) = p
      in
      if has_prefix "/* abi" then begin
        (* "/* abi: ... */" -> "# abi: ..." *)
        let inner = String.sub line 2 (String.length line - 4) in
        Buffer.add_string buf ("# " ^ String.trim inner ^ "\n")
      end
      else if String.length line >= 1 && line.[0] = '"' then begin
        (* A template string: strip quotes, \n\t escapes, %% -> %.
           Constraint strings ("=a", "r", "memory") carry no \n\t
           terminator and are skipped. *)
        match String.rindex_opt line '"' with
        | Some close when close > 0 ->
          let body = String.sub line 1 (close - 1) in
          let stripped = replace_all body "\\n\\t" "" in
          if stripped <> body then begin
            let code = replace_all stripped "%%" "%" in
            Buffer.add_string buf (code ^ "\n")
          end
        | Some _ | None -> ()
      end)
    lines;
  match Att.parse_program (Buffer.contents buf) with
  | exception Att.Syntax_error msg -> Error msg
  | program -> Result.map (fun abi -> (program, abi)) (parse_abi_comments program)

let contains_substring haystack needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length haystack
    && (String.sub haystack i n = needle || go (i + 1))
  in
  go 0

let load_c_text text =
  (* MicroCreator's own C output carries its kernel as inline assembly;
     anything else goes through the C-subset compiler (Section 4.1:
     the launcher "compiles the kernel code"). *)
  if contains_substring text "__asm__" then parse_c_source text
  else Mt_cc.Codegen.compile text

let object_root path =
  match Mt_xml.parse_file path with
  | exception Mt_xml.Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg
  | root ->
    if root.Mt_xml.tag <> "object" then
      err "%s: not an object container (root <%s>)" path root.Mt_xml.tag
    else Ok root

let object_functions path =
  Result.map
    (fun root ->
      List.filter_map
        (fun (e : Mt_xml.element) -> Mt_xml.attribute e "name")
        (Mt_xml.find_children root "function"))
    (object_root path)

let load_object path function_name =
  match object_root path with
  | Error msg -> Error msg
  | Ok root -> (
    let functions = Mt_xml.find_children root "function" in
    let chosen =
      match function_name with
      | Some name ->
        List.find_opt (fun e -> Mt_xml.attribute e "name" = Some name) functions
      | None -> ( match functions with [ one ] -> Some one | _ -> None)
    in
    match chosen with
    | None -> (
      match function_name with
      | Some name ->
        err "%s: no function %S (available: %s)" path name
          (String.concat ", "
             (List.filter_map (fun e -> Mt_xml.attribute e "name") functions))
      | None ->
        err "%s: container holds %d functions; pick one with --function" path
          (List.length functions))
    | Some e -> (
      let text = Mt_xml.text_content e in
      match Att.parse_program text with
      | exception Att.Syntax_error msg -> Error msg
      | program ->
        Result.map (fun abi -> (program, abi)) (parse_abi_comments program)))

let load = function
  | From_program (program, abi) -> Ok (program, abi)
  | From_variant v -> (
    match v.Variant.abi with
    | Some abi -> Ok (Variant.concrete_body v, abi)
    | None -> err "variant %s has no ABI (pipeline did not reach finalize-abi)" (Variant.id v))
  | From_assembly_text text -> (
    match Att.parse_program text with
    | exception Att.Syntax_error msg -> Error msg
    | program ->
      Result.map (fun abi -> (program, abi)) (parse_abi_comments program))
  | From_object (path, function_name) -> load_object path function_name
  | From_file path -> (
    if Filename.check_suffix path ".mto" then load_object path None
    else if Filename.check_suffix path ".c" then begin
      match open_in_bin path with
      | exception Sys_error msg -> Error msg
      | ic ->
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        load_c_text text
    end
    else
      match Att.parse_file path with
      | exception Att.Syntax_error msg -> Error msg
      | exception Sys_error msg -> Error msg
      | program ->
        Result.map (fun abi -> (program, abi)) (parse_abi_comments program))
