(** Kernel inputs MicroLauncher accepts (Section 4.1): a MicroCreator
    variant in memory, an assembly listing (text or file) carrying the
    "# abi:" header MicroCreator emits, or an explicit program + ABI
    pair for hand-written kernels. *)

open Mt_creator

type t =
  | From_variant of Variant.t
  | From_program of Mt_isa.Insn.program * Abi.t
      (** Hand-written kernel with an explicit launcher contract. *)
  | From_assembly_text of string
      (** An AT&T listing whose comments carry the MicroCreator ABI
          header. *)
  | From_file of string
      (** Path to a [.s] file with the ABI header, or a [.c] file:
          either MicroCreator's inline-assembly output, or a plain C
          kernel compiled on the fly by {!Mt_cc.Codegen} ("the launcher
          compiles the kernel code", Section 4.1). *)
  | From_object of string * string option
      (** A [.mto] object container (the stand-in for object-file and
          dynamic-library inputs) and the entry point's function name —
          "a command-line parameter provides the function name to the
          launcher" (Section 4.1).  [None] picks the only function and
          errors when the container holds several. *)

val load : t -> (Mt_isa.Insn.program * Abi.t, string) result
(** Resolve any source to an executable program plus its ABI. *)

val parse_abi_comments : Mt_isa.Insn.program -> (Abi.t, string) result
(** Extract the launcher contract from "abi:" / "abi-array:" comment
    lines (how the two tools link up, Section 4.4). *)

val object_functions : string -> (string list, string) result
(** The function names inside a [.mto] container file. *)

val parse_c_source : string -> (Mt_isa.Insn.program * Abi.t, string) result
(** Recover the kernel from a MicroCreator C translation unit: the
    extended-asm template strings plus the ABI header comments. *)
