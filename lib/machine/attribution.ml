(* Bottleneck attribution sink for the two simulator engines.

   Both [Core.run] and [Core.run_reference] compute every issue time
   from explicit constraints — the fetch frontier, the finite window,
   source/flags readiness, WAW issue serialization, port booking and
   the memory pipeline — so the constraint that was *binding* for each
   dynamic instruction is known exactly, not sampled.  This module
   receives one [observe] call per dynamic instruction (from either
   engine, with identical arguments) and accumulates:

   - a cycle-accounting breakdown over {!categories} buckets in which
     the advance of the completion frontier caused by each instruction
     is attributed wholly to its binding constraint, and the buckets
     sum *exactly* to the simulated [outcome.cycles] (each frontier
     delta is accumulated together with its exact floating-point
     subtraction error, Neumaier-style, so the telescoped total is the
     frontier itself);
   - a per-port uop pressure histogram;
   - a bounded ring of dynamic-instruction records forming the RAW
     dependency chains, from which {!critical_path} walks the longest
     chain backwards from the latest completion.

   The sink is a plain record of preallocated arrays: an [observe]
   call mutates in place and never allocates, so the engines can hook
   it behind a single [match] without disturbing the fast path's
   zero-minor-words steady state when disabled. *)

(* Category indices.  [cat_port_base + booker] names the execution
   port using the fast path's booker indexing (Load 0, Store 1, Alu 2,
   Fp_add 3, Fp_mul/Fp_div 4, Branch 5); [cat_mem_base + level] splits
   memory stalls by the serving cache level (L1 0, L2 1, L3 2, DRAM
   3). *)
let cat_frontend = 0
let cat_window = 1
let cat_dependency = 2
let cat_port_base = 3
let cat_mem_base = 9
let categories = 13

let category_name = function
  | 0 -> "frontend"
  | 1 -> "window"
  | 2 -> "dependency"
  | 3 -> "port-load"
  | 4 -> "port-store"
  | 5 -> "port-alu"
  | 6 -> "port-fp_add"
  | 7 -> "port-fp_mul"
  | 8 -> "port-branch"
  | 9 -> "mem-L1"
  | 10 -> "mem-L2"
  | 11 -> "mem-L3"
  | 12 -> "mem-DRAM"
  | _ -> invalid_arg "Attribution.category_name"

let port_count = 6

let port_name = function
  | 0 -> "load"
  | 1 -> "store"
  | 2 -> "alu"
  | 3 -> "fp_add"
  | 4 -> "fp_mul"
  | 5 -> "branch"
  | _ -> invalid_arg "Attribution.port_name"

let level_index = function
  | Memory.L1 -> 0
  | Memory.L2 -> 1
  | Memory.L3 -> 2
  | Memory.Ram -> 3

(* Ring size bounds the remembered dependency records: chains longer
   than this are truncated at the walk (generation-checked below).
   Power of two so the index is a mask. *)
let ring_size = 65536

let ring_mask = ring_size - 1

let slot_count = 33

let flags_slot = 32

type t = {
  (* Neumaier-compensated per-category cycle sums: the attributed
     value lives in [cycles], accumulated rounding in [comp]. *)
  cycles : float array;
  comp : float array;
  insns : int array;  (* dynamic instructions classified per category *)
  port_uops : int array;  (* uops booked per execution port *)
  mutable prev_frontier : float;  (* running max completion this run *)
  (* Critical-path ring: one record per recent dynamic instruction.
     [ring_abs] stores the absolute dynamic index for generation
     validation — a parent pointer whose record was overwritten no
     longer matches and terminates the walk. *)
  ring_abs : int array;
  ring_pc : int array;
  ring_parent : int array;
  ring_completion : float array;
  mutable next_idx : int;
  writer : int array;  (* scoreboard slot -> last writer's dynamic index *)
  mutable max_idx : int;  (* dynamic index of the latest completion *)
  mutable max_completion : float;
}

let create () =
  {
    cycles = Array.make categories 0.;
    comp = Array.make categories 0.;
    insns = Array.make categories 0;
    port_uops = Array.make port_count 0;
    prev_frontier = 0.;
    ring_abs = Array.make ring_size (-1);
    ring_pc = Array.make ring_size (-1);
    ring_parent = Array.make ring_size (-1);
    ring_completion = Array.make ring_size 0.;
    next_idx = 0;
    writer = Array.make slot_count (-1);
    max_idx = -1;
    max_completion = neg_infinity;
  }

(* Per-call reset: each [Core.run] restarts cycle time at 0, so the
   completion frontier and the dependency bookkeeping must restart
   with it.  Category accumulators are preserved — a profiled
   measurement sums attribution over every measured kernel call. *)
let begin_run a =
  a.prev_frontier <- 0.;
  Array.fill a.writer 0 slot_count (-1);
  a.max_idx <- -1;
  a.max_completion <- neg_infinity

let reset a =
  Array.fill a.cycles 0 categories 0.;
  Array.fill a.comp 0 categories 0.;
  Array.fill a.insns 0 categories 0;
  Array.fill a.port_uops 0 port_count 0;
  a.next_idx <- 0;
  begin_run a

(* Attribute the frontier advance [next - a.prev_frontier] to
   [cat] together with the exact error of the subtraction
   (two-sum with |next| >= |prev| >= 0), so the telescoped category
   total reproduces the final frontier exactly. *)
let[@inline] advance_frontier a cat next =
  let p = a.prev_frontier in
  if next > p then begin
    let d = next -. p in
    let e = next -. d -. p in
    (* Neumaier add of [d] into the category sum. *)
    let s = Array.unsafe_get a.cycles cat in
    let t = s +. d in
    let c =
      if Float.abs s >= Float.abs d then s -. t +. d else d -. t +. s
    in
    Array.unsafe_set a.cycles cat t;
    Array.unsafe_set a.comp cat
      (Array.unsafe_get a.comp cat +. c +. e);
    a.prev_frontier <- next
  end

let note_uop a port =
  Array.unsafe_set a.port_uops port (Array.unsafe_get a.port_uops port + 1)

(* One call per dynamic instruction, from either engine, placed after
   the completion time is final and *before* the scoreboard update, so
   [ready]/[wissue] still describe the pre-instruction state.

   Classification priority (deterministic, shared by both engines):
   1. the memory pipeline extended completion beyond issue + latency
      -> memory category of the serving level;
   2. port booking pushed issue past the first eligible cycle
      [ceil t] (plain issue-slot quantization of a fractional
      readiness time is not contention) -> the port whose booking set
      the final issue ([bport]);
   3. otherwise, whichever readiness term produced [t]: a source /
      flags / WAW producer (dependency), the window slot when it
      exceeds the fetch frontier (window), else the front end. *)
let observe a ~pc ~dst ~srcs ~reads_flags ~sets_flags ~window_ready ~fetch ~t
    ~issue ~completion ~mem_extended ~level ~bport ~ready ~wissue =
  (* RAW argmax over sources (+ flags) for both the dependency test
     and the critical-path parent. *)
  let dep = ref neg_infinity in
  let dep_slot = ref (-1) in
  for j = 0 to Array.length srcs - 1 do
    let s = Array.unsafe_get srcs j in
    let r = Array.unsafe_get ready s in
    if r > !dep then begin
      dep := r;
      dep_slot := s
    end
  done;
  if reads_flags then begin
    let r = Array.unsafe_get ready flags_slot in
    if r > !dep then begin
      dep := r;
      dep_slot := flags_slot
    end
  end;
  let waw = if dst >= 0 then Array.unsafe_get wissue dst +. 1. else neg_infinity in
  let cat =
    if mem_extended then cat_mem_base + level_index level
    else if bport >= 0 && issue > Float.ceil t then cat_port_base + bport
    else if (!dep_slot >= 0 && !dep = t) || waw = t then cat_dependency
    else if window_ready > fetch then cat_window
    else cat_frontend
  in
  a.insns.(cat) <- a.insns.(cat) + 1;
  advance_frontier a cat completion;
  (* Critical path: the parent is the producer of the latest-ready
     source — the RAW edge — validated at walk time by generation. *)
  let n = a.next_idx in
  let parent = if !dep_slot >= 0 then a.writer.(!dep_slot) else -1 in
  let i = n land ring_mask in
  a.ring_abs.(i) <- n;
  a.ring_pc.(i) <- pc;
  a.ring_parent.(i) <- parent;
  a.ring_completion.(i) <- completion;
  if completion > a.max_completion then begin
    a.max_completion <- completion;
    a.max_idx <- n
  end;
  a.next_idx <- n + 1;
  if dst >= 0 then a.writer.(dst) <- n;
  if sets_flags then a.writer.(flags_slot) <- n

(* Close the accounting for one run: when the fetch frontier ends past
   the last completion the simulated cycle count is the fetch time, and
   the overhang is front-end time by definition. *)
let finish a ~fetch = advance_frontier a cat_frontend fetch

let category_cycles a =
  Array.init categories (fun i -> a.cycles.(i) +. a.comp.(i))

let category_insns a = Array.copy a.insns

let port_pressure a = Array.copy a.port_uops

(* Neumaier sum over every partial (sums then compensations): the true
   total is the final frontier, which is representable, so the
   faithfully-rounded compensated sum returns it exactly. *)
let total a =
  let s = ref 0. in
  let c = ref 0. in
  let add v =
    let t = !s +. v in
    c := !c +. (if Float.abs !s >= Float.abs v then !s -. t +. v else v -. t +. !s);
    s := t
  in
  Array.iter add a.cycles;
  Array.iter add a.comp;
  !s +. !c

(* Walk the RAW chain backwards from the latest completion.  Each
   element is [(pc, completion, edge)] where [edge] is the time this
   instruction's completion trails its parent's (the chain-link
   latency); the head of the returned list is the chain's start
   (earliest instruction).  The walk stops at a missing parent, an
   overwritten ring record, or [max_hops]. *)
let critical_path ?(max_hops = ring_size) a =
  let rec walk idx hops acc =
    if idx < 0 || hops >= max_hops then acc
    else begin
      let i = idx land ring_mask in
      if a.ring_abs.(i) <> idx then acc
      else begin
        let pc = a.ring_pc.(i) in
        let completion = a.ring_completion.(i) in
        let parent = a.ring_parent.(i) in
        let edge =
          if parent >= 0 && a.ring_abs.(parent land ring_mask) = parent then
            completion -. a.ring_completion.(parent land ring_mask)
          else completion
        in
        walk parent (hops + 1) ((pc, completion, edge) :: acc)
      end
    end
  in
  if a.max_idx < 0 then [] else walk a.max_idx 0 []
