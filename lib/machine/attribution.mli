(** Bottleneck attribution sink shared by both simulator engines.

    One {!observe} call per dynamic instruction (placed identically in
    [Core.run] and [Core.run_reference]) attributes each advance of
    the completion frontier to the constraint that was binding at
    issue time, accumulates a per-port uop pressure histogram, and
    records the RAW dependency chain for {!critical_path}.  The
    category cycle totals telescope exactly: after {!finish} their
    compensated sum equals the simulated [outcome.cycles].

    The sink never allocates after {!create}, so the engines hook it
    behind a single [match] without disturbing the fast path's
    zero-minor-words steady state when disabled. *)

type t

(** Number of attribution categories (13). *)
val categories : int

(** Category index constants: [cat_port_base + booker index] is an
    execution-port category (Load 0, Store 1, Alu 2, Fp_add 3,
    Fp_mul/Fp_div 4, Branch 5); [cat_mem_base + level] a memory
    category (L1 0, L2 1, L3 2, DRAM 3). *)
val cat_frontend : int

val cat_window : int
val cat_dependency : int
val cat_port_base : int
val cat_mem_base : int

(** Stable display name of a category index. *)
val category_name : int -> string

(** Number of execution-port buckets (6, booker indexing). *)
val port_count : int

(** Display name of a booker index. *)
val port_name : int -> string

val create : unit -> t

(** Zero every accumulator (used after warm-up so the profile covers
    measured calls only). *)
val reset : t -> unit

(** Restart the per-call state (completion frontier, writer table,
    critical-path head) without clearing the category accumulators.
    The engines call this on entry, so attribution sums over every
    profiled call. *)
val begin_run : t -> unit

(** Record one dynamic instruction.  Must be called after the
    completion time is final and before the scoreboard update, with
    the engine's live [ready]/[wissue] arrays.  [t] is the readiness
    time before port booking, [bport] the booker index whose booking
    set the final issue time (-1 when booking did not raise it),
    [mem_extended] whether the memory pipeline pushed completion past
    [issue + latency], and [level] the serving level of the
    instruction's access (read only when [mem_extended]). *)
val observe :
  t ->
  pc:int ->
  dst:int ->
  srcs:int array ->
  reads_flags:bool ->
  sets_flags:bool ->
  window_ready:float ->
  fetch:float ->
  t:float ->
  issue:float ->
  completion:float ->
  mem_extended:bool ->
  level:Memory.level ->
  bport:int ->
  ready:float array ->
  wissue:float array ->
  unit

(** Count one uop booked on the given booker index. *)
val note_uop : t -> int -> unit

(** Close one run's accounting: attributes the fetch-frontier overhang
    past the last completion to the front end, so category totals sum
    to [Float.max last_completion fetch] — the simulated cycles. *)
val finish : t -> fetch:float -> unit

(** Compensated per-category cycle totals (length {!categories}). *)
val category_cycles : t -> float array

(** Dynamic instructions classified per category. *)
val category_insns : t -> int array

(** Uops booked per execution port (length {!port_count}). *)
val port_pressure : t -> int array

(** Compensated sum of every category — equals the attributed cycles
    exactly. *)
val total : t -> float

(** The RAW dependency chain ending at the latest completion, earliest
    instruction first: [(pc, completion, edge)] where [edge] is the
    latency this link added over its parent's completion. *)
val critical_path : ?max_hops:int -> t -> (int * float * float) list
