type t = {
  geom : Config.cache_geom;
  sets : int;
  ways : int;
  line_shift : int;
  (* tags.(set * ways + way) holds a line number, or -1 when invalid.
     Within a set, way 0 is most recently used: a hit moves its tag to
     the front, a miss shifts everything down and inserts at the front
     (true LRU, cheap for the small associativities we model). *)
  tags : int array;
  mutable hit_count : int;
  mutable miss_count : int;
  (* Per-access observer for deep trace lanes; [None] (the default)
     costs one branch per access. *)
  mutable on_access : (hit:bool -> unit) option;
}

let log2_exact n =
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Cache: not a power of two";
  go 0 n

let create (geom : Config.cache_geom) =
  let sets = geom.size_bytes / (geom.line_bytes * geom.associativity) in
  if sets <= 0 then invalid_arg "Cache.create: set count must be positive";
  {
    geom;
    sets;
    ways = geom.associativity;
    line_shift = log2_exact geom.line_bytes;
    tags = Array.make (sets * geom.associativity) (-1);
    hit_count = 0;
    miss_count = 0;
    on_access = None;
  }

let set_on_access t hook = t.on_access <- hook

let geometry t = t.geom

let line_of_addr t addr = addr lsr t.line_shift

(* Power-of-two set counts index by mask; others (e.g. a 12 MiB L3) by
   modulo, which is what sliced LLCs amount to for our purposes. *)
let set_of_line t line =
  if t.sets land (t.sets - 1) = 0 then line land (t.sets - 1) else line mod t.sets

let find_way t base line =
  let rec go way =
    if way >= t.ways then -1
    else if t.tags.(base + way) = line then way
    else go (way + 1)
  in
  go 0

let promote t base way line =
  (* Shift tags [0, way) down by one and put [line] in front. *)
  for i = way downto 1 do
    t.tags.(base + i) <- t.tags.(base + i - 1)
  done;
  t.tags.(base) <- line

let access t line =
  let base = set_of_line t line * t.ways in
  let way = find_way t base line in
  let hit =
    if way >= 0 then begin
      t.hit_count <- t.hit_count + 1;
      if way > 0 then promote t base way line;
      true
    end
    else begin
      t.miss_count <- t.miss_count + 1;
      promote t base (t.ways - 1) line;
      false
    end
  in
  (match t.on_access with None -> () | Some f -> f ~hit);
  hit

let probe t line =
  let base = set_of_line t line * t.ways in
  find_way t base line >= 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hit_count <- 0;
  t.miss_count <- 0

let hits t = t.hit_count

let misses t = t.miss_count

let set_count t = t.sets
