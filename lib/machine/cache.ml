type t = {
  geom : Config.cache_geom;
  sets : int;
  ways : int;
  line_shift : int;
  (* tags.(set * ways + way) holds a line number, or -1 when invalid.
     Within a set, way 0 is most recently used: a hit moves its tag to
     the front, a miss shifts everything down and inserts at the front
     (true LRU, cheap for the small associativities we model). *)
  tags : int array;
  mutable hit_count : int;
  mutable miss_count : int;
  (* Per-access observer for deep trace lanes; [None] (the default)
     costs one branch per access. *)
  mutable on_access : (hit:bool -> unit) option;
  set_mask : int;
  (* Per set, the line served by the set's previous access.  A repeat
     of the same line is a guaranteed hit already sitting at way 0
     (both the hit and the miss paths leave the accessed line
     most-recently-used), so the way scan and LRU shuffle can be
     skipped wholesale — and because the check is per set, interleaved
     streams in distinct sets all stay on the shortcut. *)
  last_line : int array;
}

let log2_exact n =
  let rec go k m = if m = 1 then k else go (k + 1) (m lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Cache: not a power of two";
  go 0 n

let create (geom : Config.cache_geom) =
  let sets = geom.size_bytes / (geom.line_bytes * geom.associativity) in
  if sets <= 0 then invalid_arg "Cache.create: set count must be positive";
  {
    geom;
    sets;
    ways = geom.associativity;
    line_shift = log2_exact geom.line_bytes;
    tags = Array.make (sets * geom.associativity) (-1);
    hit_count = 0;
    miss_count = 0;
    on_access = None;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else min_int);
    last_line = Array.make sets min_int;
  }

let set_on_access t hook = t.on_access <- hook

let geometry t = t.geom

let line_of_addr t addr = addr lsr t.line_shift

(* Power-of-two set counts index by mask; others (e.g. a 12 MiB L3) by
   modulo, which is what sliced LLCs amount to for our purposes. *)
let set_of_line t line =
  if t.sets land (t.sets - 1) = 0 then line land (t.sets - 1) else line mod t.sets

let find_way t base line =
  let rec go way =
    if way >= t.ways then -1
    else if t.tags.(base + way) = line then way
    else go (way + 1)
  in
  go 0

(* Self-contained: the way scan and LRU promotion are open-coded so the
   per-lookup cost is the loop itself — no inner-closure allocation and
   no helper calls on the path every simulated access takes. *)
let access t line =
  let set =
    if t.set_mask >= 0 then line land t.set_mask else line mod t.sets
  in
  if line = Array.unsafe_get t.last_line set then begin
    (* Guaranteed hit at way 0: the set's previous access left this
       line most-recently-used, so the scan and shuffle are no-ops. *)
    t.hit_count <- t.hit_count + 1;
    (match t.on_access with None -> () | Some f -> f ~hit:true);
    true
  end
  else begin
    Array.unsafe_set t.last_line set line;
    let ways = t.ways in
    let base = set * ways in
    let tags = t.tags in
    (* [base + way < sets * ways = Array.length tags] throughout, so
       the scan and the LRU shuffle skip the bounds checks. *)
    let way = ref 0 in
    while !way < ways && Array.unsafe_get tags (base + !way) <> line do
      incr way
    done;
    let hit = !way < ways in
    if hit then begin
      t.hit_count <- t.hit_count + 1;
      if !way > 0 then begin
        for i = !way downto 1 do
          Array.unsafe_set tags (base + i)
            (Array.unsafe_get tags (base + i - 1))
        done;
        Array.unsafe_set tags base line
      end
    end
    else begin
      t.miss_count <- t.miss_count + 1;
      for i = ways - 1 downto 1 do
        Array.unsafe_set tags (base + i) (Array.unsafe_get tags (base + i - 1))
      done;
      Array.unsafe_set tags base line
    end;
    (match t.on_access with None -> () | Some f -> f ~hit);
    hit
  end

let probe t line =
  let base = set_of_line t line * t.ways in
  find_way t base line >= 0

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hit_count <- 0;
  t.miss_count <- 0;
  Array.fill t.last_line 0 (Array.length t.last_line) min_int

let hits t = t.hit_count

let misses t = t.miss_count

let set_count t = t.sets
