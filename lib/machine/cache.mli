(** A set-associative cache with LRU replacement, simulated on real
    line addresses.  Alignment-induced set conflicts between
    concurrently streamed arrays emerge from this model directly. *)

type t = {
  geom : Config.cache_geom;
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable on_access : (hit:bool -> unit) option;
  set_mask : int;
  last_line : int array;
}
(** Exposed concretely so {!Memory}'s per-access fast path can inline
    the repeat-same-line hit check without a cross-module call:
    [last_line.(set)] is the line served by the set's previous access,
    which both the hit and the miss paths of {!access} leave
    most-recently-used — a repeat is a guaranteed hit at way 0 with no
    LRU movement.  [set_mask] is [sets - 1] for power-of-two set
    counts, [min_int] otherwise (index by modulo).  Mutate only
    through {!access} / {!reset}. *)

val create : Config.cache_geom -> t

val geometry : t -> Config.cache_geom

val access : t -> int -> bool
(** [access t line] looks up line number [line] (byte address divided by
    the line size is the caller's job — see {!line_of_addr}); on a miss
    the line is allocated, evicting the LRU way.  Returns [true] on
    hit. *)

val probe : t -> int -> bool
(** Like {!access} but without updating any state. *)

val set_on_access : t -> (hit:bool -> unit) option -> unit
(** Install (or clear, with [None]) a per-access observer: called by
    every {!access} with the hit/miss outcome, after counters update.
    [probe] never fires it.  The default is [None], which costs one
    branch per access — the deep trace lanes install hooks only while a
    traced measurement is running. *)

val line_of_addr : t -> int -> int
(** Byte address to line number. *)

val reset : t -> unit
(** Invalidate every line and zero the counters. *)

val hits : t -> int

val misses : t -> int

val set_count : t -> int

val set_of_line : t -> int -> int
(** The set index a line maps to (for conflict diagnostics in tests). *)
