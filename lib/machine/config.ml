type cache_geom = { size_bytes : int; associativity : int; line_bytes : int }

type features = {
  prefetcher : bool;
  tlb : bool;
  alias_interference : bool;
  split_penalty : bool;
}

let all_features =
  { prefetcher = true; tlb = true; alias_interference = true; split_penalty = true }

type energy_params = {
  alu_pj : float;
  fp_pj : float;
  load_pj : float;
  store_pj : float;
  l2_fill_pj : float;
  l3_fill_pj : float;
  dram_line_pj : float;
  core_static_w : float;
  uncore_static_w : float;
}

(* Representative 32 nm-era numbers: register-file ops cost a few pJ,
   cache line movements tens to hundreds, a DRAM line ~2 nJ; a Nehalem
   core leaks a handful of watts. *)
let default_energy =
  {
    alu_pj = 8.;
    fp_pj = 25.;
    load_pj = 30.;
    store_pj = 35.;
    l2_fill_pj = 180.;
    l3_fill_pj = 450.;
    dram_line_pj = 2000.;
    core_static_w = 4.0;
    uncore_static_w = 6.0;
  }

type t = {
  name : string;
  nominal_ghz : float;
  core_ghz : float;
  sockets : int;
  cores_per_socket : int;
  issue_width : int;
  rob_size : int;
  load_ports : int;
  store_ports : int;
  alu_ports : int;
  fp_add_ports : int;
  fp_mul_ports : int;
  branch_ports : int;
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  l1_latency_cycles : int;
  l2_latency_cycles : int;
  l3_latency_ns : float;
  ram_latency_ns : float;
  l2_bandwidth_bytes_per_cycle : float;
  l3_bandwidth_bytes_per_cycle : float;
  socket_bandwidth_gbps : float;
  bandwidth_contention_slope : float;
  memory_interleaved : bool;
  miss_parallelism : int;
  split_line_penalty_cycles : int;
  page_4k_alias_penalty_cycles : float;
  mispredict_penalty_cycles : int;
  features : features;
  energy : energy_params;
}

let core_count t = t.sockets * t.cores_per_socket

let cycles_of_ns t ns = ns *. t.core_ghz

let tsc_per_core_cycle t = t.nominal_ghz /. t.core_ghz

let with_core_ghz t ghz = { t with core_ghz = ghz }

let with_features t features = { t with features }

let ram_stream_bytes_per_cycle t ~sharers =
  let sharers = max 1 sharers in
  (* A single core sustains at most [miss_parallelism] line fills in
     flight, i.e. mlp * line / ram_latency bytes per second. *)
  let line = float_of_int t.l3.line_bytes in
  let core_limit_gbps = float_of_int t.miss_parallelism *. line /. t.ram_latency_ns in
  let controllers = if t.memory_interleaved then t.sockets else 1 in
  let machine_gbps =
    t.socket_bandwidth_gbps *. float_of_int controllers
    /. (1. +. (t.bandwidth_contention_slope *. float_of_int (sharers - 1)))
  in
  let share_gbps = min core_limit_gbps (machine_gbps /. float_of_int sharers) in
  (* GB/s = bytes/ns; divide by core frequency to get bytes/cycle. *)
  share_gbps /. t.core_ghz

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let geom_ok name g =
    if not (is_power_of_two g.line_bytes) then
      Error (Printf.sprintf "%s: line size %d not a power of two" name g.line_bytes)
    else if g.associativity <= 0 then
      Error (Printf.sprintf "%s: associativity %d <= 0" name g.associativity)
    else if g.size_bytes mod (g.line_bytes * g.associativity) <> 0 then
      Error (Printf.sprintf "%s: size %d not divisible by line*assoc" name g.size_bytes)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = check (t.core_ghz > 0.) "core_ghz <= 0" in
  let* () = check (t.nominal_ghz > 0.) "nominal_ghz <= 0" in
  let* () = check (t.sockets > 0 && t.cores_per_socket > 0) "empty topology" in
  let* () = check (t.issue_width > 0) "issue_width <= 0" in
  let* () = check (t.rob_size > t.issue_width) "rob_size too small" in
  let* () =
    check
      (t.load_ports > 0 && t.store_ports > 0 && t.alu_ports > 0
      && t.fp_add_ports > 0 && t.fp_mul_ports > 0 && t.branch_ports > 0)
      "every port class needs at least one port"
  in
  let* () = geom_ok "l1" t.l1 in
  let* () = geom_ok "l2" t.l2 in
  let* () = geom_ok "l3" t.l3 in
  let* () =
    check
      (t.l1.line_bytes = t.l2.line_bytes && t.l2.line_bytes = t.l3.line_bytes)
      "all levels must share one line size"
  in
  let* () = check (t.l1_latency_cycles > 0 && t.l2_latency_cycles > t.l1_latency_cycles)
      "l2 latency must exceed l1" in
  let* () = check (t.l3_latency_ns > 0. && t.ram_latency_ns > t.l3_latency_ns)
      "ram latency must exceed l3" in
  let* () = check (t.socket_bandwidth_gbps > 0.) "socket bandwidth <= 0" in
  let* () = check (t.miss_parallelism > 0) "miss_parallelism <= 0" in
  Ok ()

(* ------------------------------------------------------------------ *)
(* Table 1 presets                                                     *)
(* ------------------------------------------------------------------ *)

let kib n = n * 1024

let mib n = n * 1024 * 1024

(* Dual-socket Xeon X5650 (Westmere-EP, the paper calls it Nehalem):
   6 cores/socket, 2.67 GHz, 32K/256K/12M caches, 3 DDR3 channels. *)
let nehalem_x5650_2s =
  {
    name = "nehalem_x5650_2s";
    nominal_ghz = 2.67;
    core_ghz = 2.67;
    sockets = 2;
    cores_per_socket = 6;
    issue_width = 4;
    rob_size = 128;
    load_ports = 1;
    store_ports = 1;
    alu_ports = 3;
    fp_add_ports = 1;
    fp_mul_ports = 1;
    branch_ports = 1;
    l1 = { size_bytes = kib 32; associativity = 8; line_bytes = 64 };
    l2 = { size_bytes = kib 256; associativity = 8; line_bytes = 64 };
    l3 = { size_bytes = mib 12; associativity = 16; line_bytes = 64 };
    l1_latency_cycles = 4;
    l2_latency_cycles = 10;
    l3_latency_ns = 15.0;
    ram_latency_ns = 65.0;
    l2_bandwidth_bytes_per_cycle = 32.0;
    l3_bandwidth_bytes_per_cycle = 10.0;
    (* 3 DDR3-1333 channels sustain ~23.5 GB/s per socket; with one
       core limited to mlp*line/latency = 7.9 GB/s, the interleaved
       two-socket budget saturates at 47/7.9 = 6 streaming cores — the
       Fig. 14 knee. *)
    socket_bandwidth_gbps = 23.5;
    bandwidth_contention_slope = 0.;
    memory_interleaved = true;
    miss_parallelism = 8;
    split_line_penalty_cycles = 3;
    page_4k_alias_penalty_cycles = 1.0;
    mispredict_penalty_cycles = 17;
    features = all_features;
    energy = default_energy;
  }

(* Xeon E3-1240 (Sandy Bridge): 4 cores, 3.3 GHz, 2 load ports. *)
let sandy_bridge_e31240 =
  {
    name = "sandy_bridge_e31240";
    nominal_ghz = 3.3;
    core_ghz = 3.3;
    sockets = 1;
    cores_per_socket = 4;
    issue_width = 4;
    rob_size = 168;
    load_ports = 2;
    store_ports = 1;
    alu_ports = 3;
    fp_add_ports = 1;
    fp_mul_ports = 1;
    branch_ports = 1;
    l1 = { size_bytes = kib 32; associativity = 8; line_bytes = 64 };
    l2 = { size_bytes = kib 256; associativity = 8; line_bytes = 64 };
    l3 = { size_bytes = mib 8; associativity = 16; line_bytes = 64 };
    l1_latency_cycles = 4;
    l2_latency_cycles = 12;
    l3_latency_ns = 8.0;
    ram_latency_ns = 60.0;
    l2_bandwidth_bytes_per_cycle = 32.0;
    l3_bandwidth_bytes_per_cycle = 16.0;
    socket_bandwidth_gbps = 18.0;
    bandwidth_contention_slope = 0.;
    memory_interleaved = false;
    miss_parallelism = 10;
    split_line_penalty_cycles = 3;
    page_4k_alias_penalty_cycles = 1.0;
    mispredict_penalty_cycles = 15;
    features = all_features;
    energy = { default_energy with core_static_w = 3.0; uncore_static_w = 4.0 };
  }

(* Quad-socket Xeon X7550 (Nehalem-EX): 8 cores/socket, 2.0 GHz,
   buffered DDR3 with comparatively low per-socket stream bandwidth. *)
let nehalem_x7550_4s =
  {
    name = "nehalem_x7550_4s";
    nominal_ghz = 2.0;
    core_ghz = 2.0;
    sockets = 4;
    cores_per_socket = 8;
    issue_width = 4;
    rob_size = 128;
    load_ports = 1;
    store_ports = 1;
    alu_ports = 3;
    fp_add_ports = 1;
    fp_mul_ports = 1;
    branch_ports = 1;
    l1 = { size_bytes = kib 32; associativity = 8; line_bytes = 64 };
    l2 = { size_bytes = kib 256; associativity = 8; line_bytes = 64 };
    l3 = { size_bytes = mib 18; associativity = 16; line_bytes = 64 };
    l1_latency_cycles = 4;
    l2_latency_cycles = 10;
    l3_latency_ns = 22.0;
    ram_latency_ns = 110.0;
    l2_bandwidth_bytes_per_cycle = 32.0;
    l3_bandwidth_bytes_per_cycle = 12.0;
    (* Buffered DDR3 behind serial memory buffers: decent per-socket
       peak, but aggregate efficiency collapses as all 32 cores stream
       (measured STREAM on this class of machine is ~20 GB/s). *)
    socket_bandwidth_gbps = 9.0;
    bandwidth_contention_slope = 0.03;
    memory_interleaved = true;
    miss_parallelism = 8;
    split_line_penalty_cycles = 3;
    page_4k_alias_penalty_cycles = 1.0;
    mispredict_penalty_cycles = 17;
    features = all_features;
    energy = { default_energy with core_static_w = 5.0; uncore_static_w = 10.0 };
  }

let presets =
  [
    ("sandy_bridge_e31240", sandy_bridge_e31240);
    ("nehalem_x5650_2s", nehalem_x5650_2s);
    ("nehalem_x7550_4s", nehalem_x7550_4s);
  ]

let find_preset name = List.assoc_opt name presets
