(** Machine descriptions: core resources, cache geometry, latencies and
    bandwidths.  Presets model the three machines of the paper's
    Table 1. *)

(** Geometry of one cache level. *)
type cache_geom = {
  size_bytes : int;
  associativity : int;
  line_bytes : int;
}

(** Model-feature toggles, for ablation studies: every mechanism the
    reproduction's shapes depend on can be switched off to measure its
    contribution (see [bench/main.exe ablation]). *)
type features = {
  prefetcher : bool;  (** Stream prefetch (Figs. 11/12 bandwidth-bound levels). *)
  tlb : bool;  (** TLB + page walker (Fig. 3's size-500 cliff). *)
  alias_interference : bool;  (** 4K-alias replays (Figs. 15/16 bands). *)
  split_penalty : bool;  (** Cache-line-split surcharge. *)
}

val all_features : features
(** Everything on — the default in every preset. *)

(** Energy accounting parameters (the paper's "performance or power
    utilization" axis).  Per-event energies in picojoules, static power
    in watts; values are representative of 32 nm-era server parts. *)
type energy_params = {
  alu_pj : float;  (** Per simple integer uop. *)
  fp_pj : float;  (** Per floating-point uop. *)
  load_pj : float;  (** Per L1 load access. *)
  store_pj : float;  (** Per store access. *)
  l2_fill_pj : float;  (** Per line filled from L2. *)
  l3_fill_pj : float;  (** Per line filled from L3. *)
  dram_line_pj : float;  (** Per line transferred from DRAM. *)
  core_static_w : float;  (** Static/leakage power per active core. *)
  uncore_static_w : float;  (** Per-socket uncore share while active. *)
}

type t = {
  name : string;
  (* Clocking.  The TSC ticks at [nominal_ghz] regardless of the core
     clock (invariant-TSC behaviour the paper relies on in Fig. 13). *)
  nominal_ghz : float;
  core_ghz : float;
  (* Topology. *)
  sockets : int;
  cores_per_socket : int;
  (* Front end and execution ports (per core). *)
  issue_width : int;
  rob_size : int;  (** Instruction window: limits run-ahead over long-latency loads. *)
  load_ports : int;
  store_ports : int;
  alu_ports : int;
  fp_add_ports : int;
  fp_mul_ports : int;
  branch_ports : int;
  (* Memory hierarchy.  L1/L2 are per-core, L3 is shared per socket.
     L1/L2 latencies are in core cycles (they scale with the core
     clock); L3/RAM latencies are in nanoseconds (uncore/DRAM do not
     follow core frequency scaling) — this split is what Fig. 13
     measures. *)
  l1 : cache_geom;
  l2 : cache_geom;
  l3 : cache_geom;
  l1_latency_cycles : int;
  l2_latency_cycles : int;
  l3_latency_ns : float;
  ram_latency_ns : float;
  (* Sustained fill bandwidths, per core, for prefetched streams. *)
  l2_bandwidth_bytes_per_cycle : float;
  l3_bandwidth_bytes_per_cycle : float;
  (* DRAM. *)
  socket_bandwidth_gbps : float;  (** GB/s per socket's memory controller. *)
  bandwidth_contention_slope : float;
      (** Aggregate-bandwidth degradation per extra streaming core:
          effective = peak / (1 + slope * (sharers - 1)).  Models row
          conflicts and cross-socket traffic on buffered-memory parts
          (Nehalem-EX); 0 for well-behaved controllers. *)
  memory_interleaved : bool;
      (** When true, DRAM pages interleave across all sockets'
          controllers, so every core competes for the machine-wide
          bandwidth (the paper's dual-socket fork experiment, Fig. 14). *)
  miss_parallelism : int;  (** Outstanding line fills per core (fill buffers). *)
  (* Penalties. *)
  split_line_penalty_cycles : int;  (** Access straddling a cache line. *)
  page_4k_alias_penalty_cycles : float;
      (** Per-iteration stall when two concurrently-streamed arrays
          collide modulo 4 KiB (Section 5.2.2 alignment studies). *)
  mispredict_penalty_cycles : int;
  features : features;
  energy : energy_params;
}

val core_count : t -> int
(** Total cores: [sockets * cores_per_socket]. *)

val cycles_of_ns : t -> float -> float
(** Convert nanoseconds to core cycles at the current core clock. *)

val tsc_per_core_cycle : t -> float
(** Reference (TSC) cycles elapsed per core cycle: [nominal / core]. *)

val with_core_ghz : t -> float -> t
(** Same machine with the core clock changed (Fig. 13 frequency sweep). *)

val with_features : t -> features -> t
(** Same machine with model features toggled (ablation studies). *)

val ram_stream_bytes_per_cycle : t -> sharers:int -> float
(** Sustained DRAM stream bandwidth available to one core, in bytes per
    core cycle, when [sharers] cores stream concurrently: the minimum of
    the core's own miss-parallelism limit and its fair share of the
    (possibly interleaved) controller bandwidth. *)

val validate : t -> (unit, string) result
(** Sanity-check a configuration (power-of-two geometry, positive
    latencies, at least one port of each kind used by the ISA). *)

(** {1 Table 1 presets} *)

val sandy_bridge_e31240 : t
(** Intel Xeon E3-1240 (Sandy Bridge), 4 cores, 3.3 GHz — Figs. 17, 18,
    Table 2. *)

val nehalem_x5650_2s : t
(** Dual-socket Intel Xeon X5650 (Nehalem/Westmere), 2×6 cores,
    2.67 GHz — Figs. 2–5, 11–14. *)

val nehalem_x7550_4s : t
(** Quad-socket Intel Xeon X7550 (Nehalem-EX), 4×8 cores — Figs. 15,
    16. *)

val presets : (string * t) list
(** All presets keyed by name, for CLI lookup. *)

val find_preset : string -> t option
