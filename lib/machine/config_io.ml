module X = Mt_xml

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let attr_int e name default =
  match X.attribute e name with
  | None -> Ok default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Ok n
    | None -> err "<%s %s=%S>: not an integer" e.X.tag name s)

let attr_float e name default =
  match X.attribute e name with
  | None -> Ok default
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok f
    | None -> err "<%s %s=%S>: not a number" e.X.tag name s)

let attr_bool e name default =
  match X.attribute e name with
  | None -> Ok default
  | Some "true" -> Ok true
  | Some "false" -> Ok false
  | Some s -> err "<%s %s=%S>: expected true or false" e.X.tag name s

let ( let* ) = Result.bind

let parse_cache_geom e (geom : Config.cache_geom) =
  let* size_kb = attr_int e "size_kb" (geom.Config.size_bytes / 1024) in
  let* associativity = attr_int e "associativity" geom.Config.associativity in
  let* line_bytes = attr_int e "line_bytes" geom.Config.line_bytes in
  Ok { Config.size_bytes = size_kb * 1024; associativity; line_bytes }

let of_xml (root : X.element) =
  if root.X.tag <> "machine" then
    err "root element must be <machine>, got <%s>" root.X.tag
  else begin
    let* base =
      match X.attribute root "base" with
      | None -> Ok Config.nehalem_x5650_2s
      | Some name -> (
        match Config.find_preset name with
        | Some cfg -> Ok cfg
        | None -> err "unknown base preset %S" name)
    in
    let cfg = ref base in
    (match X.attribute root "name" with
    | Some name -> cfg := { !cfg with Config.name }
    | None -> ());
    let result =
      List.fold_left
        (fun acc (e : X.element) ->
          let* () = acc in
          match e.X.tag with
          | "clock" ->
            let* nominal_ghz = attr_float e "nominal_ghz" !cfg.Config.nominal_ghz in
            let* core_ghz = attr_float e "core_ghz" nominal_ghz in
            cfg := { !cfg with Config.nominal_ghz; core_ghz };
            Ok ()
          | "topology" ->
            let* sockets = attr_int e "sockets" !cfg.Config.sockets in
            let* cores_per_socket =
              attr_int e "cores_per_socket" !cfg.Config.cores_per_socket
            in
            cfg := { !cfg with Config.sockets; cores_per_socket };
            Ok ()
          | "core" ->
            let* issue_width = attr_int e "issue_width" !cfg.Config.issue_width in
            let* rob_size = attr_int e "rob_size" !cfg.Config.rob_size in
            let* load_ports = attr_int e "load_ports" !cfg.Config.load_ports in
            let* store_ports = attr_int e "store_ports" !cfg.Config.store_ports in
            let* alu_ports = attr_int e "alu_ports" !cfg.Config.alu_ports in
            let* fp_add_ports = attr_int e "fp_add_ports" !cfg.Config.fp_add_ports in
            let* fp_mul_ports = attr_int e "fp_mul_ports" !cfg.Config.fp_mul_ports in
            let* branch_ports = attr_int e "branch_ports" !cfg.Config.branch_ports in
            cfg :=
              { !cfg with
                Config.issue_width; rob_size; load_ports; store_ports;
                alu_ports; fp_add_ports; fp_mul_ports; branch_ports };
            Ok ()
          | "cache" -> (
            match X.attribute e "level" with
            | Some "l1" ->
              let* l1 = parse_cache_geom e !cfg.Config.l1 in
              let* l1_latency_cycles =
                attr_int e "latency_cycles" !cfg.Config.l1_latency_cycles
              in
              cfg := { !cfg with Config.l1; l1_latency_cycles };
              Ok ()
            | Some "l2" ->
              let* l2 = parse_cache_geom e !cfg.Config.l2 in
              let* l2_latency_cycles =
                attr_int e "latency_cycles" !cfg.Config.l2_latency_cycles
              in
              let* l2_bandwidth_bytes_per_cycle =
                attr_float e "bandwidth_bytes_per_cycle"
                  !cfg.Config.l2_bandwidth_bytes_per_cycle
              in
              cfg :=
                { !cfg with Config.l2; l2_latency_cycles; l2_bandwidth_bytes_per_cycle };
              Ok ()
            | Some "l3" ->
              let* l3 = parse_cache_geom e !cfg.Config.l3 in
              let* l3_latency_ns = attr_float e "latency_ns" !cfg.Config.l3_latency_ns in
              let* l3_bandwidth_bytes_per_cycle =
                attr_float e "bandwidth_bytes_per_cycle"
                  !cfg.Config.l3_bandwidth_bytes_per_cycle
              in
              cfg :=
                { !cfg with Config.l3; l3_latency_ns; l3_bandwidth_bytes_per_cycle };
              Ok ()
            | Some lvl -> err "<cache level=%S>: expected l1, l2 or l3" lvl
            | None -> err "<cache> needs a level attribute")
          | "dram" ->
            let* ram_latency_ns = attr_float e "latency_ns" !cfg.Config.ram_latency_ns in
            let* socket_bandwidth_gbps =
              attr_float e "socket_bandwidth_gbps" !cfg.Config.socket_bandwidth_gbps
            in
            let* memory_interleaved =
              attr_bool e "interleaved" !cfg.Config.memory_interleaved
            in
            let* miss_parallelism =
              attr_int e "miss_parallelism" !cfg.Config.miss_parallelism
            in
            let* bandwidth_contention_slope =
              attr_float e "contention_slope" !cfg.Config.bandwidth_contention_slope
            in
            cfg :=
              { !cfg with
                Config.ram_latency_ns; socket_bandwidth_gbps; memory_interleaved;
                miss_parallelism; bandwidth_contention_slope };
            Ok ()
          | tag -> err "unexpected <%s> inside <machine>" tag)
        (Ok ())
        (X.children_elements root)
    in
    let* () = result in
    let* () = Config.validate !cfg in
    Ok !cfg
  end

let of_string s =
  match X.parse_string s with
  | exception X.Parse_error msg -> Error msg
  | root -> of_xml root

let of_file path =
  match X.parse_file path with
  | exception X.Parse_error msg -> Error msg
  | exception Sys_error msg -> Error msg
  | root -> of_xml root

let to_xml (cfg : Config.t) =
  let attr_i name v = (name, string_of_int v) in
  let attr_f name v = (name, Printf.sprintf "%g" v) in
  let cache level (g : Config.cache_geom) extra =
    X.elem "cache"
      ~attrs:
        ([ ("level", level); attr_i "size_kb" (g.Config.size_bytes / 1024);
           attr_i "associativity" g.Config.associativity;
           attr_i "line_bytes" g.Config.line_bytes ]
        @ extra)
      []
  in
  X.elem "machine"
    ~attrs:[ ("name", cfg.Config.name) ]
    [
      X.Element
        (X.elem "clock"
           ~attrs:
             [ attr_f "nominal_ghz" cfg.Config.nominal_ghz;
               attr_f "core_ghz" cfg.Config.core_ghz ]
           []);
      X.Element
        (X.elem "topology"
           ~attrs:
             [ attr_i "sockets" cfg.Config.sockets;
               attr_i "cores_per_socket" cfg.Config.cores_per_socket ]
           []);
      X.Element
        (X.elem "core"
           ~attrs:
             [ attr_i "issue_width" cfg.Config.issue_width;
               attr_i "rob_size" cfg.Config.rob_size;
               attr_i "load_ports" cfg.Config.load_ports;
               attr_i "store_ports" cfg.Config.store_ports;
               attr_i "alu_ports" cfg.Config.alu_ports;
               attr_i "fp_add_ports" cfg.Config.fp_add_ports;
               attr_i "fp_mul_ports" cfg.Config.fp_mul_ports;
               attr_i "branch_ports" cfg.Config.branch_ports ]
           []);
      X.Element
        (cache "l1" cfg.Config.l1 [ attr_i "latency_cycles" cfg.Config.l1_latency_cycles ]);
      X.Element
        (cache "l2" cfg.Config.l2
           [ attr_i "latency_cycles" cfg.Config.l2_latency_cycles;
             attr_f "bandwidth_bytes_per_cycle" cfg.Config.l2_bandwidth_bytes_per_cycle ]);
      X.Element
        (cache "l3" cfg.Config.l3
           [ attr_f "latency_ns" cfg.Config.l3_latency_ns;
             attr_f "bandwidth_bytes_per_cycle" cfg.Config.l3_bandwidth_bytes_per_cycle ]);
      X.Element
        (X.elem "dram"
           ~attrs:
             [ attr_f "latency_ns" cfg.Config.ram_latency_ns;
               attr_f "socket_bandwidth_gbps" cfg.Config.socket_bandwidth_gbps;
               ("interleaved", string_of_bool cfg.Config.memory_interleaved);
               attr_i "miss_parallelism" cfg.Config.miss_parallelism;
               attr_f "contention_slope" cfg.Config.bandwidth_contention_slope ]
           []);
    ]

let to_string cfg = X.to_string (to_xml cfg)
