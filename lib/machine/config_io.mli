(** Machine descriptions as XML documents, so new targets need no
    recompilation — the paper's "the tools are entirely independent of
    the underlying architecture" (Section 7).

    Document shape (all latencies/bandwidths in the units of
    {!Config.t}; omitted fields default to the [base] preset's values,
    default [nehalem_x5650_2s]):

    {v
    <machine name="my_box" base="sandy_bridge_e31240">
      <clock nominal_ghz="3.0" core_ghz="3.0"/>
      <topology sockets="2" cores_per_socket="8"/>
      <core issue_width="4" rob_size="168" load_ports="2" store_ports="1"
            alu_ports="3" fp_add_ports="1" fp_mul_ports="1" branch_ports="1"/>
      <cache level="l1" size_kb="32" associativity="8" line_bytes="64" latency_cycles="4"/>
      <cache level="l2" size_kb="256" associativity="8" latency_cycles="12"/>
      <cache level="l3" size_kb="20480" associativity="16" latency_ns="9.0"
             bandwidth_bytes_per_cycle="16"/>
      <dram latency_ns="60" socket_bandwidth_gbps="25" interleaved="false"
            miss_parallelism="10" contention_slope="0.0"/>
    </machine>
    v} *)

val of_xml : Mt_xml.element -> (Config.t, string) result

val of_string : string -> (Config.t, string) result

val of_file : string -> (Config.t, string) result
(** Parse and {!Config.validate} a machine file. *)

val to_xml : Config.t -> Mt_xml.element
(** Write a configuration back out (round-trips through {!of_xml}). *)

val to_string : Config.t -> string
