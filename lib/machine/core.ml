open Mt_isa

type outcome = {
  cycles : float;
  instructions : int;
  rax : int;
  mem : Memory.counters;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  prefetches : int;
  fp_ops : int;
  alu_ops : int;
}

type error =
  | Unallocated_register of string
  | Unknown_label of string
  | Alignment_fault of { pc : int; addr : int; required : int }
  | Fuel_exhausted of int
  | Invalid_instruction of string

let error_to_string = function
  | Unallocated_register r -> Printf.sprintf "unallocated logical register %s" r
  | Unknown_label l -> Printf.sprintf "branch to unknown label %s" l
  | Alignment_fault { pc; addr; required } ->
    Printf.sprintf "alignment fault at instruction %d: address %#x requires %d-byte alignment"
      pc addr required
  | Fuel_exhausted n -> Printf.sprintf "fuel exhausted after %d instructions" n
  | Invalid_instruction msg -> Printf.sprintf "invalid instruction: %s" msg

(* Register scoreboard slots: GPRs 0..15, XMM 16..31, flags 32. *)
let slot_count = 33

let flags_slot = 32

let slot_of_reg = function
  | Reg.Gpr (n, _) -> Exec.gpr_index n
  | Reg.Xmm n -> 16 + n
  | Reg.Logical _ -> -1

type control = Fall | Jump of int | Cond of Insn.cond * int | Return

type decoded = {
  insn : Insn.t;
  srcs : int array;
  dst : int;
  ports : Semantics.port array;
  latency : float;
  mem_op : Operand.mem option;
  mem_bytes : int;
  mem_write : bool;
  mem_prefetch : bool;
  mem_nt : bool;
  align_req : int;
  d_sets_flags : bool;
  d_reads_flags : bool;
  control : control;
}

(* ------------------------------------------------------------------ *)
(* Basic-block replay representation                                    *)
(* ------------------------------------------------------------------ *)

(* The steady-state path replays a flattened form of the program:
   operand addressing, port/booker indices, uop occupancies and the
   architectural effect are all resolved once, at block-build time, so
   the per-instruction loop reads plain ints and floats and allocates
   nothing.  Port booker indices: Load 0, Store 1, Alu 2, Fp_add 3,
   Fp_mul/Fp_div 4, Branch 5. *)

type fast_insn = {
  f_insn : Insn.t;  (* original instruction, for the trace hook *)
  f_pc : int;  (* original instruction index, for traces and faults *)
  f_srcs : int array;
  f_dst : int;
  f_pidx : int array;  (* booker index per uop *)
  f_pocc : int array;  (* booked occupancy per uop *)
  f_uport : int;  (* booker index when the insn is exactly one
                     occupancy-1 uop (the common case), else -1 *)
  f_has_effect : bool;  (* false when the architectural effect is a no-op *)
  f_fp_uops : int;
  f_alu_uops : int;
  f_lat : float;
  f_mem : int;  (* 0 = none, 1 = demand, 2 = prefetch hint *)
  f_write : bool;
  f_nt : bool;
  f_bytes : int;
  f_align : int;
  (* Effective address [f_adisp + gpr f_abase + gpr f_aindex * f_ascale];
     -1 slots contribute 0, matching Exec.address_of on absent or XMM
     base/index registers. *)
  f_abase : int;
  f_aindex : int;
  f_ascale : int;
  f_adisp : int;
  f_sets_flags : bool;
  f_reads_flags : bool;
  f_effect : Exec.effect;
}

(* Block terminators.  Block id -1 means "off the end of the listing"
   (the interpreter treats that as a normal stop). *)
type fterm =
  | T_fall of int
  | T_end
  | T_ret
  | T_jump of int
  | T_cond of Insn.cond * int * int * bool
      (* cond, taken block, fall-through block, backward (mispredict
         on fall-through) *)

type fblock = { body : fast_insn array; term : fterm }

type fast_prog = { blocks : fblock array; entry : int }

type compiled = { dec : decoded array; mutable fast : fast_prog option }

exception Compile_error of error

let compile_insn labels pc insn =
  (match Semantics.validate insn with
  | Ok () -> ()
  | Error msg -> raise (Compile_error (Invalid_instruction msg)));
  let target () =
    match insn.Insn.operands with
    | [ Operand.Label l ] -> (
      match Hashtbl.find_opt labels l with
      | Some idx -> idx
      | None -> raise (Compile_error (Unknown_label l)))
    | _ -> raise (Compile_error (Invalid_instruction (Insn.to_string insn)))
  in
  let control =
    match insn.Insn.op with
    | Insn.JMP -> Jump (target ())
    | Insn.Jcc c -> Cond (c, target ())
    | Insn.RET -> Return
    | _ -> Fall
  in
  ignore pc;
  let mem_op, mem_bytes, mem_write =
    match Semantics.memory_access insn with
    | Semantics.No_access -> None, 0, false
    | Semantics.Load_access (m, b) -> Some m, b, false
    | Semantics.Store_access (m, b) -> Some m, b, true
    | Semantics.Load_store_access (m, b) -> Some m, b, true
  in
  {
    insn;
    srcs = Array.of_list (List.filter_map (fun r ->
        let s = slot_of_reg r in
        if s < 0 then raise (Compile_error (Unallocated_register (Reg.name r)));
        Some s)
        (Semantics.sources insn));
    dst =
      (match Semantics.destination insn with
      | None -> -1
      | Some r ->
        let s = slot_of_reg r in
        if s < 0 then raise (Compile_error (Unallocated_register (Reg.name r)));
        s);
    ports = Array.of_list (Semantics.ports insn);
    latency = float_of_int (Semantics.exec_latency insn);
    mem_op;
    mem_bytes;
    mem_write;
    mem_prefetch = Semantics.is_prefetch insn;
    mem_nt = Semantics.is_non_temporal insn;
    align_req = Semantics.required_alignment insn;
    d_sets_flags = Semantics.sets_flags insn;
    d_reads_flags = Semantics.reads_flags insn;
    control;
  }

let compile (program : Insn.program) =
  (* First pass: map labels to the index of the following instruction. *)
  let labels = Hashtbl.create 8 in
  let count = ref 0 in
  List.iter
    (function
      | Insn.Insn _ -> incr count
      | Insn.Label l -> Hashtbl.replace labels l !count
      | Insn.Comment _ | Insn.Directive _ -> ())
    program;
  try
    let decoded = ref [] in
    let pc = ref 0 in
    List.iter
      (function
        | Insn.Insn i ->
          decoded := compile_insn labels !pc i :: !decoded;
          incr pc
        | Insn.Label _ | Insn.Comment _ | Insn.Directive _ -> ())
      program;
    Ok { dec = Array.of_list (List.rev !decoded); fast = None }
  with Compile_error e -> Error e

let port_index = function
  | Semantics.Load -> 0
  | Semantics.Store -> 1
  | Semantics.Alu -> 2
  | Semantics.Fp_add -> 3
  | Semantics.Fp_mul | Semantics.Fp_div -> 4
  | Semantics.Branch_port -> 5

let fast_of_decoded pc (d : decoded) =
  let mem_slot = function
    | None -> -1
    | Some (Reg.Gpr (n, _)) -> Exec.gpr_index n
    | Some (Reg.Xmm _ | Reg.Logical _) -> -1
  in
  let abase, aindex, ascale, adisp =
    match d.mem_op with
    | None -> -1, -1, 0, 0
    | Some m ->
      mem_slot m.Operand.base, mem_slot m.Operand.index, m.Operand.scale,
      m.Operand.disp
  in
  let count p =
    Array.fold_left (fun acc q -> if List.mem q p then acc + 1 else acc) 0
      d.ports
  in
  {
    f_insn = d.insn;
    f_pc = pc;
    f_srcs = d.srcs;
    f_dst = d.dst;
    f_pidx = Array.map port_index d.ports;
    f_pocc =
      Array.map
        (fun p -> if p = Semantics.Fp_div then int_of_float d.latency else 1)
        d.ports;
    f_uport =
      (match d.ports with
      | [| p |] when p <> Semantics.Fp_div -> port_index p
      | _ -> -1);
    f_has_effect = not (Exec.effect_is_none (Exec.compile_effect d.insn));
    f_fp_uops = count [ Semantics.Fp_add; Semantics.Fp_mul; Semantics.Fp_div ];
    f_alu_uops = count [ Semantics.Alu ];
    f_lat = d.latency;
    f_mem = (match d.mem_op with
      | None -> 0
      | Some _ -> if d.mem_prefetch then 2 else 1);
    f_write = d.mem_write;
    f_nt = d.mem_nt;
    f_bytes = d.mem_bytes;
    f_align = d.align_req;
    f_abase = abase;
    f_aindex = aindex;
    f_ascale = ascale;
    f_adisp = adisp;
    f_sets_flags = d.d_sets_flags;
    f_reads_flags = d.d_reads_flags;
    f_effect = Exec.compile_effect d.insn;
  }

let build_fast (dec : decoded array) =
  let n = Array.length dec in
  if n = 0 then { blocks = [||]; entry = -1 }
  else begin
    (* Leaders: instruction 0, every branch target, and every
       instruction following a control-flow instruction, so a branch is
       always the last instruction of its block. *)
    let leader = Array.make (n + 1) false in
    leader.(0) <- true;
    Array.iteri
      (fun i d ->
        let mark t = if t <= n then leader.(t) <- true in
        match d.control with
        | Fall -> ()
        | Return -> mark (i + 1)
        | Jump t ->
          mark t;
          mark (i + 1)
        | Cond (_, t) ->
          mark t;
          mark (i + 1))
      dec;
    let blk_of = Array.make (n + 1) (-1) in
    let nblocks = ref 0 in
    for i = 0 to n - 1 do
      if leader.(i) then begin
        blk_of.(i) <- !nblocks;
        incr nblocks
      end
    done;
    let target_blk t = if t >= n then -1 else blk_of.(t) in
    let blocks =
      Array.init !nblocks (fun _ -> { body = [||]; term = T_end })
    in
    let start = ref 0 in
    for b = 0 to !nblocks - 1 do
      let s = !start in
      let e = ref (s + 1) in
      while !e < n && not leader.(!e) do incr e done;
      let e = !e in
      let body = Array.init (e - s) (fun k -> fast_of_decoded (s + k) dec.(s + k)) in
      let term =
        match dec.(e - 1).control with
        | Fall -> if e = n then T_end else T_fall blk_of.(e)
        | Return -> T_ret
        | Jump t -> T_jump (target_blk t)
        | Cond (c, t) -> T_cond (c, target_blk t, target_blk e, t <= e - 1)
      in
      blocks.(b) <- { body; term };
      start := e
    done;
    { blocks; entry = 0 }
  end

let fast_of cp =
  match cp.fast with
  | Some f -> f
  | None ->
    let f = build_fast cp.dec in
    cp.fast <- Some f;
    f

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Cycle-granular port booking with gap filling: a uop that becomes
   ready at cycle [t] takes the first cycle >= t in which fewer than
   [ports] uops are already booked — younger ready uops slot into the
   holes older stalled uops leave, as a real scheduler does.  The ring
   remembers [window] cycles; bookings never spread wider than the
   instruction window allows in practice. *)
module Booker = struct
  type t = {
    ports : int;
    window : int;
    counts : int array;
    cycle_of : int array;
  }

  let window = 8192

  (* [window] is a power of two so the ring index is a mask, not an
     integer division — [book] runs once per booked cycle on the hot
     path and idiv latency would dominate it. *)
  let mask = window - 1

  let create ~ports =
    { ports; window; counts = Array.make window 0; cycle_of = Array.make window min_int }

  (* [idx] is masked into [0, window), so the ring accesses skip the
     bounds checks. *)
  let rec book t c =
    let idx = c land mask in
    if Array.unsafe_get t.cycle_of idx <> c then begin
      Array.unsafe_set t.cycle_of idx c;
      Array.unsafe_set t.counts idx 0
    end;
    let n = Array.unsafe_get t.counts idx in
    if n < t.ports then begin
      Array.unsafe_set t.counts idx (n + 1);
      c
    end
    else book t (c + 1)

  let rec extend_span t c remaining =
    if remaining > 0 then begin
      ignore (book t c);
      extend_span t (c + 1) (remaining - 1)
    end

  (* Book [occupancy] consecutive cycles starting no earlier than cycle
     [start]; returns the first booked cycle.  All-integer so the hot
     path never boxes. *)
  let book_span t ~start ~occupancy =
    let first = book t start in
    extend_span t (first + 1) (occupancy - 1);
    first

  (* Float-facing wrapper kept for the reference interpreter. *)
  let book_from t ~time ~occupancy =
    float_of_int
      (book_span t ~start:(int_of_float (Float.ceil time)) ~occupancy)
end

type port_file = {
  load : Booker.t;
  store : Booker.t;
  alu : Booker.t;
  fp_add : Booker.t;
  fp_mul : Booker.t;
  branch : Booker.t;
}

let make_ports (cfg : Config.t) =
  {
    load = Booker.create ~ports:cfg.load_ports;
    store = Booker.create ~ports:cfg.store_ports;
    alu = Booker.create ~ports:cfg.alu_ports;
    fp_add = Booker.create ~ports:cfg.fp_add_ports;
    fp_mul = Booker.create ~ports:cfg.fp_mul_ports;
    branch = Booker.create ~ports:cfg.branch_ports;
  }

let port_booker pf = function
  | Semantics.Load -> pf.load
  | Semantics.Store -> pf.store
  | Semantics.Alu -> pf.alu
  | Semantics.Fp_add -> pf.fp_add
  | Semantics.Fp_mul | Semantics.Fp_div -> pf.fp_mul
  | Semantics.Branch_port -> pf.branch

(* The reference interpreter: the original per-instruction loop over
   the decoded array, kept verbatim as the oracle the fast path is
   tested against (golden corpus + QCheck equivalence suites). *)
let run_reference ?(init = []) ?(max_instructions = 50_000_000) ?trace ?attr
    (cfg : Config.t) (memory : Memory.t) (cp : compiled) =
  let prog = cp.dec in
  let exec = Exec.create () in
  List.iter (fun (r, v) -> Exec.set exec r v) init;
  let ready = Array.make slot_count 0. in
  (* Issue time of the last write to each register: with register
     renaming a second write need not wait for the first to complete,
     but writes to one architectural register still claim rename slots
     in order — modelled as one-cycle issue serialization. *)
  let wissue = Array.make slot_count 0. in
  let ports = make_ports cfg in
  let rob = Array.make cfg.rob_size 0. in
  let decode_step = 1. /. float_of_int cfg.issue_width in
  let fetch = ref 0. in
  let last_retire = ref 0. in
  let last_completion = ref 0. in
  let issued = ref 0 in
  let branches = ref 0 in
  let mispredicts = ref 0 in
  let loads = ref 0 in
  let stores = ref 0 in
  let prefetches = ref 0 in
  let fp_ops = ref 0 in
  let alu_ops = ref 0 in
  let pc = ref 0 in
  let stop = ref None in
  (* Booker index that set the final issue time of the current
     instruction; read by the attribution hook. *)
  let bport = ref (-1) in
  Memory.drain memory;
  Memory.reset_counters memory;
  (match attr with Some a -> Attribution.begin_run a | None -> ());
  while !stop = None do
    if !pc < 0 || !pc >= Array.length prog then stop := Some (Ok ())
    else if !issued >= max_instructions then
      stop := Some (Error (Fuel_exhausted !issued))
    else begin
      let d = prog.(!pc) in
      (* Window: cannot dispatch until the instruction rob_size back
         has retired. *)
      let window_ready = rob.(!issued mod cfg.rob_size) in
      let t = ref (Float.max !fetch window_ready) in
      Array.iter (fun s -> if ready.(s) > !t then t := ready.(s)) d.srcs;
      if d.d_reads_flags && ready.(flags_slot) > !t then t := ready.(flags_slot);
      (* WAW: renamed, but serialized by one issue slot. *)
      if d.dst >= 0 && wissue.(d.dst) +. 1. > !t then t := wissue.(d.dst) +. 1.;
      (* Ports: each uop books the first free cycle at or after the
         ready time; the instruction issues when its last uop does. *)
      bport := -1;
      let issue = ref !t in
      Array.iter
        (fun p ->
          let booker = port_booker ports p in
          let occupancy =
            if p = Semantics.Fp_div then int_of_float d.latency else 1
          in
          let slot = Booker.book_from booker ~time:!t ~occupancy in
          if slot > !issue then begin
            issue := slot;
            bport := port_index p
          end;
          match attr with
          | Some a -> Attribution.note_uop a (port_index p)
          | None -> ())
        d.ports;
      let issue = !issue in
      (* Memory access. *)
      let completion = ref (issue +. d.latency) in
      (match d.mem_op with
      | None -> ()
      | Some m ->
        let addr = Exec.address_of exec m in
        if d.mem_prefetch then
          (* A prefetch hint warms the memory pipeline but never stalls
             the instruction stream and never faults. *)
          ignore (Memory.access memory ~now:issue ~addr ~bytes:d.mem_bytes ~write:false)
        else if d.align_req > 1 && addr mod d.align_req <> 0 then
          stop := Some (Error (Alignment_fault { pc = !pc; addr; required = d.align_req }))
        else begin
          let data_ready =
            Memory.access ~nt:d.mem_nt memory ~now:issue ~addr ~bytes:d.mem_bytes
              ~write:d.mem_write
          in
          (* A line-split access replays: it occupies its port for one
             extra slot, so split-heavy streams lose throughput too. *)
          if Memory.last_access_was_split memory then begin
            let booker =
              port_booker ports (if d.mem_write then Semantics.Store else Semantics.Load)
            in
            ignore (Booker.book_from booker ~time:issue ~occupancy:1)
          end;
          if data_ready +. d.latency -. 1. > !completion then
            completion := data_ready +. d.latency -. 1.
        end);
      match !stop with
      | Some _ -> ()
      | None ->
        let completion = !completion in
        (match attr with
        | Some a ->
          Attribution.observe a ~pc:!pc ~dst:d.dst ~srcs:d.srcs
            ~reads_flags:d.d_reads_flags ~sets_flags:d.d_sets_flags
            ~window_ready ~fetch:!fetch ~t:!t ~issue ~completion
            ~mem_extended:(completion > issue +. d.latency)
            ~level:memory.Memory.last_level ~bport:!bport ~ready ~wissue
        | None -> ());
        if d.dst >= 0 then begin
          ready.(d.dst) <- completion;
          wissue.(d.dst) <- issue
        end;
        if d.d_sets_flags then ready.(flags_slot) <- issue +. 1.;
        (* In-order retirement pressure. *)
        (match d.mem_op with
        | Some _ ->
          if d.mem_prefetch then incr prefetches
          else if d.mem_write then incr stores
          else incr loads
        | None -> ());
        Array.iter
          (fun p ->
            match p with
            | Semantics.Fp_add | Semantics.Fp_mul | Semantics.Fp_div -> incr fp_ops
            | Semantics.Alu -> incr alu_ops
            | Semantics.Load | Semantics.Store | Semantics.Branch_port -> ())
          d.ports;
        (match trace with
        | Some f -> f !pc d.insn ~issue ~completion
        | None -> ());
        let retire = Float.max completion !last_retire in
        rob.(!issued mod cfg.rob_size) <- retire;
        last_retire := retire;
        if completion > !last_completion then last_completion := completion;
        (* The front end decodes at issue_width per cycle regardless of
           stalled instructions (they wait in the scheduler); run-ahead
           is bounded by the rob window above.  A taken branch redirects
           with no bubble (loop branches live in the BTB); the final
           not-taken exit pays the mispredict penalty below. *)
        fetch := !fetch +. decode_step;
        Exec.step exec d.insn;
        incr issued;
        (match d.control with
        | Fall -> incr pc
        | Return -> stop := Some (Ok ())
        | Jump target ->
          incr branches;
          (* A taken branch ends the fetch group: the rest of the
             decode slots this cycle are lost. *)
          fetch := Float.ceil !fetch;
          pc := target
        | Cond (c, target) ->
          incr branches;
          if Exec.branch_taken exec c then begin
            fetch := Float.ceil !fetch;
            pc := target
          end
          else begin
            (* Backward conditional falling through = loop exit =
               mispredict on the last iteration. *)
            if target <= !pc then begin
              incr mispredicts;
              fetch := Float.max !fetch (issue +. float_of_int cfg.mispredict_penalty_cycles)
            end;
            incr pc
          end)
    end
  done;
  match !stop with
  | Some (Error e) -> Error e
  | Some (Ok ()) | None ->
    (match attr with
    | Some a -> Attribution.finish a ~fetch:!fetch
    | None -> ());
    Ok
      {
        cycles = Float.max !last_completion !fetch;
        instructions = !issued;
        rax = Exec.get exec (Reg.gpr64 Reg.RAX);
        mem = Memory.counters memory;
        branches = !branches;
        mispredicts = !mispredicts;
        loads = !loads;
        stores = !stores;
        prefetches = !prefetches;
        fp_ops = !fp_ops;
        alu_ops = !alu_ops;
      }

(* Scalar pipeline state of the fast path.  All fields are floats, so
   the record is flat and mutation never boxes. *)
type fstate = {
  mutable fetch : float;
  mutable last_retire : float;
  mutable last_completion : float;
  mutable s_t : float;
  mutable s_issue : float;
  mutable s_completion : float;
}

type icounts = {
  mutable issued : int;
  mutable i_branches : int;
  mutable i_mispredicts : int;
  mutable i_loads : int;
  mutable i_stores : int;
  mutable i_prefetches : int;
  mutable i_fp : int;
  mutable i_alu : int;
}

exception Stop_run

(* Integer ceiling of a non-negative cycle time: a truncating convert
   plus a compare, instead of a call into libm.  Identical to
   [int_of_float (Float.ceil x)] for the [0, 2^52] range cycle times
   live in. *)
let[@inline] iceil x =
  let t = int_of_float x in
  if float_of_int t < x then t + 1 else t

(* The allocation-free steady-state interpreter.  Identical cycle
   accounting to [run_reference] — same dependence maxima, same booking
   sequence, same memory-access order — replayed over the prebuilt
   basic blocks with no per-instruction closures, options or boxed
   floats.  Verified equivalent by the golden and QCheck suites. *)
let run ?(init = []) ?(max_instructions = 50_000_000) ?trace ?attr
    (cfg : Config.t) (memory : Memory.t) (cp : compiled) =
  let fp = fast_of cp in
  let exec = Exec.create () in
  List.iter (fun (r, v) -> Exec.set exec r v) init;
  let gprs = exec.Exec.gpr in
  (* Hoisted memory-pipeline handles for the open-coded steady-state
     access below (see the note on {!Memory.t}). *)
  let mem_l1 = memory.Memory.l1 in
  let mem_dtlb = memory.Memory.dtlb in
  let mem_memo_line = memory.Memory.memo_line in
  let mem_memo_stream = memory.Memory.memo_stream in
  let mem_st_addr = memory.Memory.st_addr in
  let mem_lshift = mem_l1.Cache.line_shift in
  let mem_tlb_on = memory.Memory.tlb_on in
  let mem_fast_ok = memory.Memory.alias_scale = 0. in
  let memo_n = Array.length mem_memo_line in
  let l1_lat_f = float_of_int cfg.l1_latency_cycles in
  let ready = Array.make slot_count 0. in
  let wissue = Array.make slot_count 0. in
  let pf = make_ports cfg in
  let bookers = [| pf.load; pf.store; pf.alu; pf.fp_add; pf.fp_mul; pf.branch |] in
  let rob_size = cfg.rob_size in
  let rob = Array.make rob_size 0. in
  let decode_step = 1. /. float_of_int cfg.issue_width in
  let penalty = float_of_int cfg.mispredict_penalty_cycles in
  let s =
    { fetch = 0.; last_retire = 0.; last_completion = 0.; s_t = 0.;
      s_issue = 0.; s_completion = 0. }
  in
  let c =
    { issued = 0; i_branches = 0; i_mispredicts = 0; i_loads = 0;
      i_stores = 0; i_prefetches = 0; i_fp = 0; i_alu = 0 }
  in
  let err = ref None in
  (* Booker index that set the final issue time of the current
     instruction; hoisted so the steady state only stores an immediate
     into it.  Read by the attribution hook. *)
  let bport = ref (-1) in
  Memory.drain memory;
  Memory.reset_counters memory;
  (match attr with Some a -> Attribution.begin_run a | None -> ());
  let blocks = fp.blocks in
  let bid = ref fp.entry in
  (* Wrapping index equal to [c.issued mod rob_size], maintained by
     increment-and-compare so the loop never pays an integer division. *)
  let rob_idx = ref 0 in
  (try
     while true do
       if !bid < 0 then raise_notrace Stop_run;
       let blk = blocks.(!bid) in
       let body = blk.body in
       for k = 0 to Array.length body - 1 do
         if c.issued >= max_instructions then begin
           err := Some (Fuel_exhausted c.issued);
           raise_notrace Stop_run
         end;
         let d = Array.unsafe_get body k in
         (* Scoreboard slots, the rob ring index and GPR numbers are
            all in range by construction (see [fast_of_decoded] and
            the [rob_idx] wrap below), so the steady state reads them
            unchecked. *)
         let window_ready = Array.unsafe_get rob !rob_idx in
         s.s_t <- (if window_ready > s.fetch then window_ready else s.fetch);
         let srcs = d.f_srcs in
         for j = 0 to Array.length srcs - 1 do
           let r = Array.unsafe_get ready (Array.unsafe_get srcs j) in
           if r > s.s_t then s.s_t <- r
         done;
         if d.f_reads_flags then begin
           let r = Array.unsafe_get ready flags_slot in
           if r > s.s_t then s.s_t <- r
         end;
         if d.f_dst >= 0 then begin
           let w = Array.unsafe_get wissue d.f_dst +. 1. in
           if w > s.s_t then s.s_t <- w
         end;
         s.s_issue <- s.s_t;
         bport := -1;
         if d.f_uport >= 0 then begin
           (* Common case: one occupancy-1 uop — book it directly,
              skipping the uop loop and the span extension.  The
              first ring probe is open-coded; only a saturated cycle
              falls back to the general walk. *)
           let bk = Array.unsafe_get bookers d.f_uport in
           let start = iceil s.s_t in
           let idx = start land Booker.mask in
           let slot =
             if Array.unsafe_get bk.Booker.cycle_of idx <> start then begin
               Array.unsafe_set bk.Booker.cycle_of idx start;
               Array.unsafe_set bk.Booker.counts idx 1;
               start
             end
             else begin
               let n = Array.unsafe_get bk.Booker.counts idx in
               if n < bk.Booker.ports then begin
                 Array.unsafe_set bk.Booker.counts idx (n + 1);
                 start
               end
               else Booker.book bk (start + 1)
             end
           in
           let slotf = float_of_int slot in
           if slotf > s.s_issue then begin
             s.s_issue <- slotf;
             bport := d.f_uport
           end;
           (match attr with
           | Some a -> Attribution.note_uop a d.f_uport
           | None -> ())
         end
         else begin
           let pidx = d.f_pidx in
           if Array.length pidx > 0 then begin
             let start = iceil s.s_t in
             for j = 0 to Array.length pidx - 1 do
               let slot =
                 Booker.book_span bookers.(pidx.(j)) ~start
                   ~occupancy:d.f_pocc.(j)
               in
               let slotf = float_of_int slot in
               if slotf > s.s_issue then begin
                 s.s_issue <- slotf;
                 bport := pidx.(j)
               end;
               match attr with
               | Some a -> Attribution.note_uop a pidx.(j)
               | None -> ()
             done
           end
         end;
         s.s_completion <- s.s_issue +. d.f_lat;
         if d.f_mem > 0 then begin
           let addr =
             d.f_adisp
             + (if d.f_abase >= 0 then Array.unsafe_get gprs d.f_abase else 0)
             + (if d.f_aindex >= 0 then
                  Array.unsafe_get gprs d.f_aindex * d.f_ascale
                else 0)
           in
           if d.f_mem = 2 then
             ignore
               (Memory.access_nt memory ~nt:false ~now:s.s_issue ~addr
                  ~bytes:d.f_bytes ~write:false)
           else if d.f_align > 1 && addr mod d.f_align <> 0 then begin
             err := Some (Alignment_fault { pc = d.f_pc; addr; required = d.f_align });
             raise_notrace Stop_run
           end
           else begin
             (* Open-coded memo-hit access — the steady state of every
                strided stream.  All checks up to the mutation block
                are pure, so any failure falls back to the full
                pipeline with no state touched; [-1.] marks the
                fallback (ready times are never negative). *)
             let r =
               if mem_fast_ok && (not d.f_nt) && d.f_bytes >= 1 then begin
                 let line = addr lsr mem_lshift in
                 if (addr + d.f_bytes - 1) lsr mem_lshift <> line then -1.
                 else begin
                   let slot =
                     let sl = ref (-1) in
                     let i = ref 0 in
                     while !sl < 0 && !i < memo_n do
                       if Array.unsafe_get mem_memo_line !i = line then
                         sl := !i;
                       incr i
                     done;
                     !sl
                   in
                   if slot < 0 then -1.
                   else begin
                     let tlb_ok =
                       (not mem_tlb_on)
                       ||
                       let page = addr lsr 12 in
                       let dset =
                         let m = mem_dtlb.Cache.set_mask in
                         if m >= 0 then page land m
                         else page mod mem_dtlb.Cache.sets
                       in
                       page = Array.unsafe_get mem_dtlb.Cache.last_line dset
                     in
                     if not tlb_ok then -1.
                     else begin
                       let lset =
                         let m = mem_l1.Cache.set_mask in
                         if m >= 0 then line land m
                         else line mod mem_l1.Cache.sets
                       in
                       if line <> Array.unsafe_get mem_l1.Cache.last_line lset
                       then -1.
                       else begin
                         (* Exactly the mutations [Memory.access_nt]
                            performs on this path, in the same order. *)
                         memory.Memory.c_accesses <-
                           memory.Memory.c_accesses + 1;
                         memory.Memory.last_split <- false;
                         if mem_tlb_on then begin
                           mem_dtlb.Cache.hit_count <-
                             mem_dtlb.Cache.hit_count + 1;
                           match mem_dtlb.Cache.on_access with
                           | None -> ()
                           | Some f -> f ~hit:true
                         end;
                         mem_l1.Cache.hit_count <-
                           mem_l1.Cache.hit_count + 1;
                         (match mem_l1.Cache.on_access with
                         | None -> ()
                         | Some f -> f ~hit:true);
                         memory.Memory.last_level <- Memory.L1;
                         memory.Memory.c_l1_hits <-
                           memory.Memory.c_l1_hits + 1;
                         Array.unsafe_set mem_st_addr
                           (Array.unsafe_get mem_memo_stream slot)
                           addr;
                         s.s_issue +. l1_lat_f
                       end
                     end
                   end
                 end
               end
               else -1.
             in
             let data_ready =
               if r >= 0. then r
               else begin
                 let dr =
                   Memory.access_nt memory ~nt:d.f_nt ~now:s.s_issue ~addr
                     ~bytes:d.f_bytes ~write:d.f_write
                 in
                 if Memory.last_access_was_split memory then
                   ignore
                     (Booker.book_span bookers.(if d.f_write then 1 else 0)
                        ~start:(iceil s.s_issue) ~occupancy:1);
                 dr
               end
             in
             let dc = data_ready +. d.f_lat -. 1. in
             if dc > s.s_completion then s.s_completion <- dc
           end
         end;
         (match attr with
         | Some a ->
           Attribution.observe a ~pc:d.f_pc ~dst:d.f_dst ~srcs:d.f_srcs
             ~reads_flags:d.f_reads_flags ~sets_flags:d.f_sets_flags
             ~window_ready ~fetch:s.fetch ~t:s.s_t ~issue:s.s_issue
             ~completion:s.s_completion
             ~mem_extended:(s.s_completion > s.s_issue +. d.f_lat)
             ~level:memory.Memory.last_level ~bport:!bport ~ready ~wissue
         | None -> ());
         if d.f_dst >= 0 then begin
           Array.unsafe_set ready d.f_dst s.s_completion;
           Array.unsafe_set wissue d.f_dst s.s_issue
         end;
         if d.f_sets_flags then
           Array.unsafe_set ready flags_slot (s.s_issue +. 1.);
         if d.f_mem = 1 then begin
           if d.f_write then c.i_stores <- c.i_stores + 1
           else c.i_loads <- c.i_loads + 1
         end
         else if d.f_mem = 2 then c.i_prefetches <- c.i_prefetches + 1;
         c.i_fp <- c.i_fp + d.f_fp_uops;
         c.i_alu <- c.i_alu + d.f_alu_uops;
         (match trace with
         | Some f -> f d.f_pc d.f_insn ~issue:s.s_issue ~completion:s.s_completion
         | None -> ());
         let retire =
           if s.last_retire > s.s_completion then s.last_retire
           else s.s_completion
         in
         Array.unsafe_set rob !rob_idx retire;
         rob_idx := !rob_idx + 1;
         if !rob_idx = rob_size then rob_idx := 0;
         s.last_retire <- retire;
         if s.s_completion > s.last_completion then
           s.last_completion <- s.s_completion;
         s.fetch <- s.fetch +. decode_step;
         (* Exec.apply_effect, open-coded over the exposed
            representation so the steady state pays no call. *)
         (if d.f_has_effect then
            match d.f_effect with
            | Exec.E_none -> ()
            | Exec.E_mov (dst, s) ->
              Array.unsafe_set gprs dst
                (match s with
                | Exec.S_imm n -> n
                | Exec.S_gpr i -> Array.unsafe_get gprs i)
            | Exec.E_lea (dst, base, index, scale, disp) ->
              Array.unsafe_set gprs dst
                (disp
                + (if base >= 0 then Array.unsafe_get gprs base else 0)
                + (if index >= 0 then Array.unsafe_get gprs index * scale
                   else 0))
            | Exec.E_bin (k, dst, a, b) ->
              let av =
                match a with
                | Exec.S_imm n -> n
                | Exec.S_gpr i -> Array.unsafe_get gprs i
              in
              let bv =
                match b with
                | Exec.S_imm n -> n
                | Exec.S_gpr i -> Array.unsafe_get gprs i
              in
              let v =
                match k with
                | Exec.B_add -> av + bv
                | Exec.B_sub -> av - bv
                | Exec.B_and -> av land bv
                | Exec.B_or -> av lor bv
                | Exec.B_xor -> av lxor bv
                | Exec.B_imul -> av * bv
                | Exec.B_shl -> av lsl bv
                | Exec.B_shr -> av lsr bv
              in
              if dst >= 0 then Array.unsafe_set gprs dst v;
              exec.Exec.flags <- v);
         c.issued <- c.issued + 1
       done;
       (match blk.term with
       | T_fall nxt -> bid := nxt
       | T_end | T_ret -> raise_notrace Stop_run
       | T_jump tgt ->
         c.i_branches <- c.i_branches + 1;
         s.fetch <- Float.ceil s.fetch;
         bid := tgt
       | T_cond (cond, tb, fb, backward) ->
         c.i_branches <- c.i_branches + 1;
         if Exec.branch_taken exec cond then begin
           s.fetch <- Float.ceil s.fetch;
           bid := tb
         end
         else begin
           if backward then begin
             c.i_mispredicts <- c.i_mispredicts + 1;
             let m = s.s_issue +. penalty in
             if m > s.fetch then s.fetch <- m
           end;
           bid := fb
         end)
     done
   with Stop_run -> ());
  match !err with
  | Some e -> Error e
  | None ->
    (match attr with
    | Some a -> Attribution.finish a ~fetch:s.fetch
    | None -> ());
    Ok
      {
        cycles =
          (if s.fetch > s.last_completion then s.fetch else s.last_completion);
        instructions = c.issued;
        rax = Exec.get exec (Reg.gpr64 Reg.RAX);
        mem = Memory.counters memory;
        branches = c.i_branches;
        mispredicts = c.i_mispredicts;
        loads = c.i_loads;
        stores = c.i_stores;
        prefetches = c.i_prefetches;
        fp_ops = c.i_fp;
        alu_ops = c.i_alu;
      }

let run_program ?init ?max_instructions cfg memory program =
  match compile program with
  | Error e -> Error e
  | Ok compiled -> run ?init ?max_instructions cfg memory compiled

let disassemble cp ~pc =
  if pc >= 0 && pc < Array.length cp.dec then Insn.to_string cp.dec.(pc).insn
  else Printf.sprintf "<pc %d>" pc
