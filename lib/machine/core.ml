open Mt_isa

type outcome = {
  cycles : float;
  instructions : int;
  rax : int;
  mem : Memory.counters;
  branches : int;
  mispredicts : int;
  loads : int;
  stores : int;
  fp_ops : int;
  alu_ops : int;
}

type error =
  | Unallocated_register of string
  | Unknown_label of string
  | Alignment_fault of { pc : int; addr : int; required : int }
  | Fuel_exhausted of int
  | Invalid_instruction of string

let error_to_string = function
  | Unallocated_register r -> Printf.sprintf "unallocated logical register %s" r
  | Unknown_label l -> Printf.sprintf "branch to unknown label %s" l
  | Alignment_fault { pc; addr; required } ->
    Printf.sprintf "alignment fault at instruction %d: address %#x requires %d-byte alignment"
      pc addr required
  | Fuel_exhausted n -> Printf.sprintf "fuel exhausted after %d instructions" n
  | Invalid_instruction msg -> Printf.sprintf "invalid instruction: %s" msg

(* Register scoreboard slots: GPRs 0..15, XMM 16..31, flags 32. *)
let slot_count = 33

let flags_slot = 32

let slot_of_reg = function
  | Reg.Gpr (n, _) -> Exec.gpr_index n
  | Reg.Xmm n -> 16 + n
  | Reg.Logical _ -> -1

type control = Fall | Jump of int | Cond of Insn.cond * int | Return

type decoded = {
  insn : Insn.t;
  srcs : int array;
  dst : int;
  ports : Semantics.port array;
  latency : float;
  mem_op : Operand.mem option;
  mem_bytes : int;
  mem_write : bool;
  mem_prefetch : bool;
  mem_nt : bool;
  align_req : int;
  d_sets_flags : bool;
  d_reads_flags : bool;
  control : control;
}

type compiled = decoded array

exception Compile_error of error

let compile_insn labels pc insn =
  (match Semantics.validate insn with
  | Ok () -> ()
  | Error msg -> raise (Compile_error (Invalid_instruction msg)));
  let target () =
    match insn.Insn.operands with
    | [ Operand.Label l ] -> (
      match Hashtbl.find_opt labels l with
      | Some idx -> idx
      | None -> raise (Compile_error (Unknown_label l)))
    | _ -> raise (Compile_error (Invalid_instruction (Insn.to_string insn)))
  in
  let control =
    match insn.Insn.op with
    | Insn.JMP -> Jump (target ())
    | Insn.Jcc c -> Cond (c, target ())
    | Insn.RET -> Return
    | _ -> Fall
  in
  ignore pc;
  let mem_op, mem_bytes, mem_write =
    match Semantics.memory_access insn with
    | Semantics.No_access -> None, 0, false
    | Semantics.Load_access (m, b) -> Some m, b, false
    | Semantics.Store_access (m, b) -> Some m, b, true
    | Semantics.Load_store_access (m, b) -> Some m, b, true
  in
  {
    insn;
    srcs = Array.of_list (List.filter_map (fun r ->
        let s = slot_of_reg r in
        if s < 0 then raise (Compile_error (Unallocated_register (Reg.name r)));
        Some s)
        (Semantics.sources insn));
    dst =
      (match Semantics.destination insn with
      | None -> -1
      | Some r ->
        let s = slot_of_reg r in
        if s < 0 then raise (Compile_error (Unallocated_register (Reg.name r)));
        s);
    ports = Array.of_list (Semantics.ports insn);
    latency = float_of_int (Semantics.exec_latency insn);
    mem_op;
    mem_bytes;
    mem_write;
    mem_prefetch = Semantics.is_prefetch insn;
    mem_nt = Semantics.is_non_temporal insn;
    align_req = Semantics.required_alignment insn;
    d_sets_flags = Semantics.sets_flags insn;
    d_reads_flags = Semantics.reads_flags insn;
    control;
  }

let compile (program : Insn.program) =
  (* First pass: map labels to the index of the following instruction. *)
  let labels = Hashtbl.create 8 in
  let count = ref 0 in
  List.iter
    (function
      | Insn.Insn _ -> incr count
      | Insn.Label l -> Hashtbl.replace labels l !count
      | Insn.Comment _ | Insn.Directive _ -> ())
    program;
  try
    let decoded = ref [] in
    let pc = ref 0 in
    List.iter
      (function
        | Insn.Insn i ->
          decoded := compile_insn labels !pc i :: !decoded;
          incr pc
        | Insn.Label _ | Insn.Comment _ | Insn.Directive _ -> ())
      program;
    Ok (Array.of_list (List.rev !decoded))
  with Compile_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Cycle-granular port booking with gap filling: a uop that becomes
   ready at cycle [t] takes the first cycle >= t in which fewer than
   [ports] uops are already booked — younger ready uops slot into the
   holes older stalled uops leave, as a real scheduler does.  The ring
   remembers [window] cycles; bookings never spread wider than the
   instruction window allows in practice. *)
module Booker = struct
  type t = {
    ports : int;
    window : int;
    counts : int array;
    cycle_of : int array;
  }

  let window = 8192

  let create ~ports =
    { ports; window; counts = Array.make window 0; cycle_of = Array.make window min_int }

  let rec book t c =
    let idx = c mod t.window in
    if t.cycle_of.(idx) <> c then begin
      t.cycle_of.(idx) <- c;
      t.counts.(idx) <- 0
    end;
    if t.counts.(idx) < t.ports then begin
      t.counts.(idx) <- t.counts.(idx) + 1;
      c
    end
    else book t (c + 1)

  (* Book [occupancy] consecutive cycles starting no earlier than
     [time]; returns the first booked cycle as a float. *)
  let book_from t ~time ~occupancy =
    let start = book t (int_of_float (Float.ceil time)) in
    let rec extend c remaining =
      if remaining > 0 then begin
        ignore (book t c);
        extend (c + 1) (remaining - 1)
      end
    in
    extend (start + 1) (occupancy - 1);
    float_of_int start
end

type port_file = {
  load : Booker.t;
  store : Booker.t;
  alu : Booker.t;
  fp_add : Booker.t;
  fp_mul : Booker.t;
  branch : Booker.t;
}

let make_ports (cfg : Config.t) =
  {
    load = Booker.create ~ports:cfg.load_ports;
    store = Booker.create ~ports:cfg.store_ports;
    alu = Booker.create ~ports:cfg.alu_ports;
    fp_add = Booker.create ~ports:cfg.fp_add_ports;
    fp_mul = Booker.create ~ports:cfg.fp_mul_ports;
    branch = Booker.create ~ports:cfg.branch_ports;
  }

let port_booker pf = function
  | Semantics.Load -> pf.load
  | Semantics.Store -> pf.store
  | Semantics.Alu -> pf.alu
  | Semantics.Fp_add -> pf.fp_add
  | Semantics.Fp_mul | Semantics.Fp_div -> pf.fp_mul
  | Semantics.Branch_port -> pf.branch

let run ?(init = []) ?(max_instructions = 50_000_000) ?trace (cfg : Config.t)
    (memory : Memory.t) (prog : compiled) =
  let exec = Exec.create () in
  List.iter (fun (r, v) -> Exec.set exec r v) init;
  let ready = Array.make slot_count 0. in
  (* Issue time of the last write to each register: with register
     renaming a second write need not wait for the first to complete,
     but writes to one architectural register still claim rename slots
     in order — modelled as one-cycle issue serialization. *)
  let wissue = Array.make slot_count 0. in
  let ports = make_ports cfg in
  let rob = Array.make cfg.rob_size 0. in
  let decode_step = 1. /. float_of_int cfg.issue_width in
  let fetch = ref 0. in
  let last_retire = ref 0. in
  let last_completion = ref 0. in
  let issued = ref 0 in
  let branches = ref 0 in
  let mispredicts = ref 0 in
  let loads = ref 0 in
  let stores = ref 0 in
  let fp_ops = ref 0 in
  let alu_ops = ref 0 in
  let pc = ref 0 in
  let stop = ref None in
  Memory.drain memory;
  Memory.reset_counters memory;
  while !stop = None do
    if !pc < 0 || !pc >= Array.length prog then stop := Some (Ok ())
    else if !issued >= max_instructions then
      stop := Some (Error (Fuel_exhausted !issued))
    else begin
      let d = prog.(!pc) in
      (* Window: cannot dispatch until the instruction rob_size back
         has retired. *)
      let window_ready = rob.(!issued mod cfg.rob_size) in
      let t = ref (Float.max !fetch window_ready) in
      Array.iter (fun s -> if ready.(s) > !t then t := ready.(s)) d.srcs;
      if d.d_reads_flags && ready.(flags_slot) > !t then t := ready.(flags_slot);
      (* WAW: renamed, but serialized by one issue slot. *)
      if d.dst >= 0 && wissue.(d.dst) +. 1. > !t then t := wissue.(d.dst) +. 1.;
      (* Ports: each uop books the first free cycle at or after the
         ready time; the instruction issues when its last uop does. *)
      let issue = ref !t in
      Array.iter
        (fun p ->
          let booker = port_booker ports p in
          let occupancy =
            if p = Semantics.Fp_div then int_of_float d.latency else 1
          in
          let slot = Booker.book_from booker ~time:!t ~occupancy in
          if slot > !issue then issue := slot)
        d.ports;
      let issue = !issue in
      (* Memory access. *)
      let completion = ref (issue +. d.latency) in
      (match d.mem_op with
      | None -> ()
      | Some m ->
        let addr = Exec.address_of exec m in
        if d.mem_prefetch then
          (* A prefetch hint warms the memory pipeline but never stalls
             the instruction stream and never faults. *)
          ignore (Memory.access memory ~now:issue ~addr ~bytes:d.mem_bytes ~write:false)
        else if d.align_req > 1 && addr mod d.align_req <> 0 then
          stop := Some (Error (Alignment_fault { pc = !pc; addr; required = d.align_req }))
        else begin
          let data_ready =
            Memory.access ~nt:d.mem_nt memory ~now:issue ~addr ~bytes:d.mem_bytes
              ~write:d.mem_write
          in
          (* A line-split access replays: it occupies its port for one
             extra slot, so split-heavy streams lose throughput too. *)
          if Memory.last_access_was_split memory then begin
            let booker =
              port_booker ports (if d.mem_write then Semantics.Store else Semantics.Load)
            in
            ignore (Booker.book_from booker ~time:issue ~occupancy:1)
          end;
          if data_ready +. d.latency -. 1. > !completion then
            completion := data_ready +. d.latency -. 1.
        end);
      match !stop with
      | Some _ -> ()
      | None ->
        let completion = !completion in
        if d.dst >= 0 then begin
          ready.(d.dst) <- completion;
          wissue.(d.dst) <- issue
        end;
        if d.d_sets_flags then ready.(flags_slot) <- issue +. 1.;
        (* In-order retirement pressure. *)
        (match d.mem_op with
        | Some _ -> if d.mem_write then incr stores else incr loads
        | None -> ());
        Array.iter
          (fun p ->
            match p with
            | Semantics.Fp_add | Semantics.Fp_mul | Semantics.Fp_div -> incr fp_ops
            | Semantics.Alu -> incr alu_ops
            | Semantics.Load | Semantics.Store | Semantics.Branch_port -> ())
          d.ports;
        (match trace with
        | Some f -> f !pc d.insn ~issue ~completion
        | None -> ());
        let retire = Float.max completion !last_retire in
        rob.(!issued mod cfg.rob_size) <- retire;
        last_retire := retire;
        if completion > !last_completion then last_completion := completion;
        (* The front end decodes at issue_width per cycle regardless of
           stalled instructions (they wait in the scheduler); run-ahead
           is bounded by the rob window above.  A taken branch redirects
           with no bubble (loop branches live in the BTB); the final
           not-taken exit pays the mispredict penalty below. *)
        fetch := !fetch +. decode_step;
        Exec.step exec d.insn;
        incr issued;
        (match d.control with
        | Fall -> incr pc
        | Return -> stop := Some (Ok ())
        | Jump target ->
          incr branches;
          (* A taken branch ends the fetch group: the rest of the
             decode slots this cycle are lost. *)
          fetch := Float.ceil !fetch;
          pc := target
        | Cond (c, target) ->
          incr branches;
          if Exec.branch_taken exec c then begin
            fetch := Float.ceil !fetch;
            pc := target
          end
          else begin
            (* Backward conditional falling through = loop exit =
               mispredict on the last iteration. *)
            if target <= !pc then begin
              incr mispredicts;
              fetch := Float.max !fetch (issue +. float_of_int cfg.mispredict_penalty_cycles)
            end;
            incr pc
          end)
    end
  done;
  match !stop with
  | Some (Error e) -> Error e
  | Some (Ok ()) | None ->
    Ok
      {
        cycles = Float.max !last_completion !fetch;
        instructions = !issued;
        rax = Exec.get exec (Reg.gpr64 Reg.RAX);
        mem = Memory.counters memory;
        branches = !branches;
        mispredicts = !mispredicts;
        loads = !loads;
        stores = !stores;
        fp_ops = !fp_ops;
        alu_ops = !alu_ops;
      }

let run_program ?init ?max_instructions cfg memory program =
  match compile program with
  | Error e -> Error e
  | Ok compiled -> run ?init ?max_instructions cfg memory compiled
