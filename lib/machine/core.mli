(** The scoreboard core: a width-limited front end, port-constrained
    issue, RAW/WAW register dependences (no renaming — the reason the
    paper rotates XMM registers across unroll iterations), a finite
    instruction window, and data access times from {!Memory}.

    The simulation is cycle-accounting rather than cycle-stepped: each
    dynamic instruction's issue and completion times are computed from
    its dependences and resource availability, which is exact for the
    in-order-issue model and orders of magnitude faster to simulate. *)

type outcome = {
  cycles : float;  (** Core cycles from first fetch to last completion. *)
  instructions : int;  (** Dynamic instructions executed (labels excluded). *)
  rax : int;
      (** Final value of [%rax] — by the paper's Section 4.4 convention,
          the number of iterations the kernel executed. *)
  mem : Memory.counters;
  branches : int;
  mispredicts : int;
  loads : int;  (** Instructions that read memory on demand (no hints). *)
  stores : int;  (** Instructions that wrote memory. *)
  prefetches : int;
      (** Prefetch-hint instructions.  They warm the memory pipeline and
          occupy a load-port slot but never stall, so they are counted
          apart from demand [loads]. *)
  fp_ops : int;  (** Floating-point uops executed. *)
  alu_ops : int;  (** Integer/address uops executed. *)
}

type error =
  | Unallocated_register of string
      (** The program still contains a logical register. *)
  | Unknown_label of string
  | Alignment_fault of { pc : int; addr : int; required : int }
      (** An aligned SSE access hit a misaligned address (hardware would
          deliver #GP). *)
  | Fuel_exhausted of int
  | Invalid_instruction of string

val error_to_string : error -> string

type compiled
(** A program decoded for repeated execution. *)

val compile : Mt_isa.Insn.program -> (compiled, error) result
(** Resolve labels, validate instructions, and precompute scheduling
    metadata. *)

val run :
  ?init:(Mt_isa.Reg.t * int) list ->
  ?max_instructions:int ->
  ?trace:(int -> Mt_isa.Insn.t -> issue:float -> completion:float -> unit) ->
  ?attr:Attribution.t ->
  Config.t ->
  Memory.t ->
  compiled ->
  (outcome, error) result
(** Execute the program to its [ret] (or to the end of the listing).
    [init] sets initial register values (trip counts, array base
    addresses).  The memory pipeline keeps its cache contents across
    calls — that is how the launcher's warm-up run works — but its
    in-flight fill state is drained first.  [max_instructions] defaults
    to 50 million.

    This is the allocation-free basic-block replay engine: addressing,
    port lists and architectural effects are resolved once per program
    (cached on [compiled]) and the steady-state loop allocates no minor
    words per instruction on the non-memory path.

    [attr] hooks an {!Attribution} sink: every dynamic instruction's
    binding constraint is recorded into it (same classifications as
    {!run_reference}).  When absent the hook costs one branch per
    instruction and the zero-allocation guarantee is unchanged. *)

val run_reference :
  ?init:(Mt_isa.Reg.t * int) list ->
  ?max_instructions:int ->
  ?trace:(int -> Mt_isa.Insn.t -> issue:float -> completion:float -> unit) ->
  ?attr:Attribution.t ->
  Config.t ->
  Memory.t ->
  compiled ->
  (outcome, error) result
(** The original per-instruction interpreter, kept as the oracle for
    the fast path: same cycle accounting, same memory-access order,
    bit-identical outcomes — including identical {!Attribution}
    records through [attr].  Slower; use {!run} unless comparing. *)

val run_program :
  ?init:(Mt_isa.Reg.t * int) list ->
  ?max_instructions:int ->
  Config.t ->
  Memory.t ->
  Mt_isa.Insn.program ->
  (outcome, error) result
(** [compile] + [run] in one step, for tests and one-shot uses. *)

val disassemble : compiled -> pc:int -> string
(** The source-syntax rendering of the instruction at [pc], for naming
    profile critical-path entries.  Out-of-range pcs render as
    ["<pc N>"]. *)
