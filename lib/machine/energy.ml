type breakdown = {
  core_dynamic_j : float;
  memory_dynamic_j : float;
  static_j : float;
}

let total b = b.core_dynamic_j +. b.memory_dynamic_j +. b.static_j

let pj = 1e-12

let of_outcome (cfg : Config.t) (o : Core.outcome) =
  let e = cfg.Config.energy in
  let core_dynamic_j =
    pj
    *. ((float_of_int o.Core.alu_ops *. e.Config.alu_pj)
       +. (float_of_int o.Core.fp_ops *. e.Config.fp_pj)
       +. (float_of_int o.Core.loads *. e.Config.load_pj)
       +. (float_of_int o.Core.stores *. e.Config.store_pj))
  in
  let m = o.Core.mem in
  let memory_dynamic_j =
    pj
    *. ((float_of_int m.Memory.l2_hits *. e.Config.l2_fill_pj)
       +. (float_of_int m.Memory.l3_hits *. e.Config.l3_fill_pj)
       +. (float_of_int m.Memory.ram_accesses *. e.Config.dram_line_pj))
  in
  let seconds = o.Core.cycles /. (cfg.Config.core_ghz *. 1e9) in
  let static_j = (e.Config.core_static_w +. e.Config.uncore_static_w) *. seconds in
  { core_dynamic_j; memory_dynamic_j; static_j }

let joules cfg o = total (of_outcome cfg o)

let average_power_w cfg o =
  let seconds = o.Core.cycles /. (cfg.Config.core_ghz *. 1e9) in
  if seconds <= 0. then 0. else joules cfg o /. seconds

let energy_per_iteration_nj cfg o =
  let passes = max 1 o.Core.rax in
  joules cfg o /. float_of_int passes *. 1e9

let pp fmt b =
  Format.fprintf fmt "core %.3g J + memory %.3g J + static %.3g J = %.3g J"
    b.core_dynamic_j b.memory_dynamic_j b.static_j (total b)
