(** Energy accounting over a simulated run — the paper's second
    evaluation axis ("MicroCreator creates variations of a described
    program in order to evaluate variations in performance or power
    utilization", Section 7).

    The model is event-based: each executed uop and each cache-line
    movement costs a fixed dynamic energy (from
    {!Config.energy_params}), and static/leakage power accrues over the
    run's wall-clock time — which is what makes energy
    frequency-dependent even when the dynamic work is fixed. *)

(** Where the joules went. *)
type breakdown = {
  core_dynamic_j : float;  (** ALU/FP/load/store uop energy. *)
  memory_dynamic_j : float;  (** L2/L3/DRAM line movements. *)
  static_j : float;  (** Leakage over the run's duration. *)
}

val total : breakdown -> float

val of_outcome : Config.t -> Core.outcome -> breakdown
(** Energy of one simulated kernel run on one core (plus its uncore
    share). *)

val joules : Config.t -> Core.outcome -> float
(** [total (of_outcome cfg outcome)]. *)

val average_power_w : Config.t -> Core.outcome -> float
(** Joules divided by the run's wall-clock seconds. *)

val energy_per_iteration_nj : Config.t -> Core.outcome -> float
(** Nanojoules per kernel pass (using the [%rax] pass count). *)

val pp : Format.formatter -> breakdown -> unit
