open Mt_isa

type t = { gpr : int array; mutable flags : int }

let create () = { gpr = Array.make 16 0; flags = 0 }

let reset t =
  Array.fill t.gpr 0 16 0;
  t.flags <- 0

let gpr_index = function
  | Reg.RAX -> 0 | Reg.RCX -> 1 | Reg.RDX -> 2 | Reg.RBX -> 3
  | Reg.RSP -> 4 | Reg.RBP -> 5 | Reg.RSI -> 6 | Reg.RDI -> 7
  | Reg.R8 -> 8 | Reg.R9 -> 9 | Reg.R10 -> 10 | Reg.R11 -> 11
  | Reg.R12 -> 12 | Reg.R13 -> 13 | Reg.R14 -> 14 | Reg.R15 -> 15

let get t = function
  | Reg.Gpr (n, _) -> t.gpr.(gpr_index n)
  | Reg.Xmm _ -> 0
  | Reg.Logical name ->
    invalid_arg (Printf.sprintf "Exec.get: unallocated logical register %s" name)

let set t r v =
  match r with
  | Reg.Gpr (n, _) -> t.gpr.(gpr_index n) <- v
  | Reg.Xmm _ -> ()
  | Reg.Logical name ->
    invalid_arg (Printf.sprintf "Exec.set: unallocated logical register %s" name)

let address_of t (m : Operand.mem) =
  let base = match m.base with None -> 0 | Some r -> get t r in
  let index = match m.index with None -> 0 | Some r -> get t r in
  m.disp + base + (index * m.scale)

let operand_value t = function
  | Operand.Imm n -> n
  | Operand.Reg r -> get t r
  | Operand.Mem _ -> 0 (* loaded data values are not tracked *)
  | Operand.Label _ -> 0

let set_operand t op v =
  match op with
  | Operand.Reg r -> set t r v
  | Operand.Mem _ | Operand.Imm _ | Operand.Label _ -> ()

let step t (i : Insn.t) =
  let binop f = function
    | [ src; dst ] ->
      let v = f (operand_value t dst) (operand_value t src) in
      set_operand t dst v;
      t.flags <- v
    | _ -> ()
  in
  match i.op, i.operands with
  | Insn.MOV, [ src; dst ] -> set_operand t dst (operand_value t src)
  | Insn.LEA, [ Operand.Mem m; dst ] -> set_operand t dst (address_of t m)
  | Insn.ADD, ops -> binop ( + ) ops
  | Insn.SUB, ops -> binop ( - ) ops
  | Insn.AND, ops -> binop ( land ) ops
  | Insn.OR, ops -> binop ( lor ) ops
  | Insn.XOR, ops -> binop ( lxor ) ops
  | Insn.IMUL, ops -> binop ( * ) ops
  | Insn.SHL, ops -> binop (fun d s -> d lsl s) ops
  | Insn.SHR, ops -> binop (fun d s -> d lsr s) ops
  | Insn.INC, [ dst ] ->
    let v = operand_value t dst + 1 in
    set_operand t dst v;
    t.flags <- v
  | Insn.DEC, [ dst ] ->
    let v = operand_value t dst - 1 in
    set_operand t dst v;
    t.flags <- v
  | Insn.NEG, [ dst ] ->
    let v = -operand_value t dst in
    set_operand t dst v;
    t.flags <- v
  | Insn.CMP, [ src; dst ] -> t.flags <- operand_value t dst - operand_value t src
  | Insn.TEST, [ src; dst ] -> t.flags <- operand_value t dst land operand_value t src
  | ( Insn.MOVSS | Insn.MOVSD | Insn.MOVAPS | Insn.MOVAPD | Insn.MOVUPS
    | Insn.MOVUPD | Insn.MOVDQA | Insn.MOVDQU | Insn.MOVNTPS | Insn.MOVNTDQ
    | Insn.PREFETCHT0 | Insn.PREFETCHT1 | Insn.PREFETCHNTA
    | Insn.PADDD | Insn.PSUBD | Insn.PAND | Insn.POR | Insn.PXOR
    | Insn.ADDSS | Insn.ADDSD | Insn.ADDPS | Insn.ADDPD
    | Insn.SUBSS | Insn.SUBSD | Insn.SUBPS | Insn.SUBPD | Insn.MULSS
    | Insn.MULSD | Insn.MULPS | Insn.MULPD | Insn.DIVSS | Insn.DIVSD
    | Insn.DIVPS | Insn.DIVPD | Insn.SQRTSS | Insn.SQRTSD ), _ -> ()
  | (Insn.JMP | Insn.Jcc _ | Insn.NOP | Insn.RET), _ -> ()
  | (Insn.MOV | Insn.LEA | Insn.INC | Insn.DEC | Insn.NEG | Insn.CMP | Insn.TEST), _ -> ()

(* Signed interpretation throughout; the generated kernels use small
   counters and addresses, where A/B coincide with G/L. *)
let branch_taken t (c : Insn.cond) =
  match c with
  | Insn.E -> t.flags = 0
  | Insn.NE -> t.flags <> 0
  | Insn.G | Insn.A -> t.flags > 0
  | Insn.GE | Insn.AE | Insn.NS -> t.flags >= 0
  | Insn.L | Insn.B | Insn.S -> t.flags < 0
  | Insn.LE | Insn.BE -> t.flags <= 0

let flags_value t = t.flags
