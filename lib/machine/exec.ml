open Mt_isa

type t = { gpr : int array; mutable flags : int }

let create () = { gpr = Array.make 16 0; flags = 0 }

let reset t =
  Array.fill t.gpr 0 16 0;
  t.flags <- 0

let gpr_index = function
  | Reg.RAX -> 0 | Reg.RCX -> 1 | Reg.RDX -> 2 | Reg.RBX -> 3
  | Reg.RSP -> 4 | Reg.RBP -> 5 | Reg.RSI -> 6 | Reg.RDI -> 7
  | Reg.R8 -> 8 | Reg.R9 -> 9 | Reg.R10 -> 10 | Reg.R11 -> 11
  | Reg.R12 -> 12 | Reg.R13 -> 13 | Reg.R14 -> 14 | Reg.R15 -> 15

let get t = function
  | Reg.Gpr (n, _) -> t.gpr.(gpr_index n)
  | Reg.Xmm _ -> 0
  | Reg.Logical name ->
    invalid_arg (Printf.sprintf "Exec.get: unallocated logical register %s" name)

let set t r v =
  match r with
  | Reg.Gpr (n, _) -> t.gpr.(gpr_index n) <- v
  | Reg.Xmm _ -> ()
  | Reg.Logical name ->
    invalid_arg (Printf.sprintf "Exec.set: unallocated logical register %s" name)

let address_of t (m : Operand.mem) =
  let base = match m.base with None -> 0 | Some r -> get t r in
  let index = match m.index with None -> 0 | Some r -> get t r in
  m.disp + base + (index * m.scale)

let operand_value t = function
  | Operand.Imm n -> n
  | Operand.Reg r -> get t r
  | Operand.Mem _ -> 0 (* loaded data values are not tracked *)
  | Operand.Label _ -> 0

let set_operand t op v =
  match op with
  | Operand.Reg r -> set t r v
  | Operand.Mem _ | Operand.Imm _ | Operand.Label _ -> ()

let step t (i : Insn.t) =
  let binop f = function
    | [ src; dst ] ->
      let v = f (operand_value t dst) (operand_value t src) in
      set_operand t dst v;
      t.flags <- v
    | _ -> ()
  in
  match i.op, i.operands with
  | Insn.MOV, [ src; dst ] -> set_operand t dst (operand_value t src)
  | Insn.LEA, [ Operand.Mem m; dst ] -> set_operand t dst (address_of t m)
  | Insn.ADD, ops -> binop ( + ) ops
  | Insn.SUB, ops -> binop ( - ) ops
  | Insn.AND, ops -> binop ( land ) ops
  | Insn.OR, ops -> binop ( lor ) ops
  | Insn.XOR, ops -> binop ( lxor ) ops
  | Insn.IMUL, ops -> binop ( * ) ops
  | Insn.SHL, ops -> binop (fun d s -> d lsl s) ops
  | Insn.SHR, ops -> binop (fun d s -> d lsr s) ops
  | Insn.INC, [ dst ] ->
    let v = operand_value t dst + 1 in
    set_operand t dst v;
    t.flags <- v
  | Insn.DEC, [ dst ] ->
    let v = operand_value t dst - 1 in
    set_operand t dst v;
    t.flags <- v
  | Insn.NEG, [ dst ] ->
    let v = -operand_value t dst in
    set_operand t dst v;
    t.flags <- v
  | Insn.CMP, [ src; dst ] -> t.flags <- operand_value t dst - operand_value t src
  | Insn.TEST, [ src; dst ] -> t.flags <- operand_value t dst land operand_value t src
  | ( Insn.MOVSS | Insn.MOVSD | Insn.MOVAPS | Insn.MOVAPD | Insn.MOVUPS
    | Insn.MOVUPD | Insn.MOVDQA | Insn.MOVDQU | Insn.MOVNTPS | Insn.MOVNTDQ
    | Insn.PREFETCHT0 | Insn.PREFETCHT1 | Insn.PREFETCHNTA
    | Insn.PADDD | Insn.PSUBD | Insn.PAND | Insn.POR | Insn.PXOR
    | Insn.ADDSS | Insn.ADDSD | Insn.ADDPS | Insn.ADDPD
    | Insn.SUBSS | Insn.SUBSD | Insn.SUBPS | Insn.SUBPD | Insn.MULSS
    | Insn.MULSD | Insn.MULPS | Insn.MULPD | Insn.DIVSS | Insn.DIVSD
    | Insn.DIVPS | Insn.DIVPD | Insn.SQRTSS | Insn.SQRTSD ), _ -> ()
  | (Insn.JMP | Insn.Jcc _ | Insn.NOP | Insn.RET), _ -> ()
  | (Insn.MOV | Insn.LEA | Insn.INC | Insn.DEC | Insn.NEG | Insn.CMP | Insn.TEST), _ -> ()

(* ------------------------------------------------------------------ *)
(* Precompiled effects                                                  *)
(* ------------------------------------------------------------------ *)

(* The replay fast path resolves each instruction's architectural
   effect once at decode time into this flat form, so the steady-state
   loop applies it with a single dispatch — no operand-list matching,
   no closures, no allocation.  [apply_effect] must mirror [step]
   exactly, including its quirks: memory and XMM operands read as 0,
   writes to anything but a GPR are dropped, and malformed arities are
   no-ops. *)

type src = S_imm of int | S_gpr of int

type binop_kind =
  | B_add | B_sub | B_and | B_or | B_xor | B_imul | B_shl | B_shr

type effect =
  | E_none
  | E_mov of int * src  (* gpr index <- src; no flags *)
  | E_lea of int * int * int * int * int
      (* dst gpr <- disp + base + index*scale; base/index -1 = absent *)
  | E_bin of binop_kind * int * src * src
      (* dst gpr (-1 = discard) <- op a b; flags <- result *)

let src_of_operand t_op =
  match t_op with
  | Operand.Imm n -> S_imm n
  | Operand.Reg (Reg.Gpr (n, _)) -> S_gpr (gpr_index n)
  | Operand.Reg (Reg.Xmm _) | Operand.Mem _ | Operand.Label _ -> S_imm 0
  | Operand.Reg (Reg.Logical _) -> S_imm 0 (* rejected by Core.compile *)

let dst_slot = function
  | Operand.Reg (Reg.Gpr (n, _)) -> gpr_index n
  | _ -> -1

let lea_slot = function
  | None -> -1
  | Some (Reg.Gpr (n, _)) -> gpr_index n
  | Some (Reg.Xmm _ | Reg.Logical _) -> -1

let compile_effect (i : Insn.t) =
  let bin k = function
    | [ src; dst ] -> E_bin (k, dst_slot dst, src_of_operand dst, src_of_operand src)
    | _ -> E_none
  in
  match i.op, i.operands with
  | Insn.MOV, [ src; dst ] -> (
    match dst_slot dst with
    | -1 -> E_none
    | s -> E_mov (s, src_of_operand src))
  | Insn.LEA, [ Operand.Mem m; dst ] -> (
    match dst_slot dst with
    | -1 -> E_none
    | s -> E_lea (s, lea_slot m.Operand.base, lea_slot m.Operand.index, m.Operand.scale, m.Operand.disp))
  | Insn.ADD, ops -> bin B_add ops
  | Insn.SUB, ops -> bin B_sub ops
  | Insn.AND, ops -> bin B_and ops
  | Insn.OR, ops -> bin B_or ops
  | Insn.XOR, ops -> bin B_xor ops
  | Insn.IMUL, ops -> bin B_imul ops
  | Insn.SHL, ops -> bin B_shl ops
  | Insn.SHR, ops -> bin B_shr ops
  | Insn.INC, [ dst ] -> E_bin (B_add, dst_slot dst, src_of_operand dst, S_imm 1)
  | Insn.DEC, [ dst ] -> E_bin (B_sub, dst_slot dst, src_of_operand dst, S_imm 1)
  | Insn.NEG, [ dst ] -> E_bin (B_sub, dst_slot dst, S_imm 0, src_of_operand dst)
  | Insn.CMP, [ src; dst ] ->
    E_bin (B_sub, -1, src_of_operand dst, src_of_operand src)
  | Insn.TEST, [ src; dst ] ->
    E_bin (B_and, -1, src_of_operand dst, src_of_operand src)
  | _ -> E_none

let effect_is_none = function E_none -> true | _ -> false

let src_value t = function S_imm n -> n | S_gpr i -> t.gpr.(i)

let apply_effect t eff =
  match eff with
  | E_none -> ()
  | E_mov (dst, s) -> t.gpr.(dst) <- src_value t s
  | E_lea (dst, base, index, scale, disp) ->
    t.gpr.(dst) <-
      disp
      + (if base >= 0 then t.gpr.(base) else 0)
      + (if index >= 0 then t.gpr.(index) * scale else 0)
  | E_bin (k, dst, a, b) ->
    let av = src_value t a in
    let bv = src_value t b in
    let v =
      match k with
      | B_add -> av + bv
      | B_sub -> av - bv
      | B_and -> av land bv
      | B_or -> av lor bv
      | B_xor -> av lxor bv
      | B_imul -> av * bv
      | B_shl -> av lsl bv
      | B_shr -> av lsr bv
    in
    if dst >= 0 then t.gpr.(dst) <- v;
    t.flags <- v

let gpr_value t i = t.gpr.(i)

(* Signed interpretation throughout; the generated kernels use small
   counters and addresses, where A/B coincide with G/L. *)
let branch_taken t (c : Insn.cond) =
  match c with
  | Insn.E -> t.flags = 0
  | Insn.NE -> t.flags <> 0
  | Insn.G | Insn.A -> t.flags > 0
  | Insn.GE | Insn.AE | Insn.NS -> t.flags >= 0
  | Insn.L | Insn.B | Insn.S -> t.flags < 0
  | Insn.LE | Insn.BE -> t.flags <= 0

let flags_value t = t.flags
