(** Architectural (value-level) execution of the GPR subset: register
    values and flags.  The timing model in {!Core} consults this to
    compute addresses and resolve branches; XMM data values are not
    tracked (micro-benchmark timing never depends on them).

    Loads into a GPR produce the value 0 — the generated kernels never
    use loaded integers as addresses, and {!Core.run} rejects programs
    that would. *)

type t = { gpr : int array; mutable flags : int }
(** Exposed concretely so {!Core.run}'s replay loop can read address
    registers and apply effects with direct array accesses instead of
    a cross-module call per instruction.  [gpr] is indexed by
    {!gpr_index}; [flags] holds the signed result the flag-setting
    instruction produced. *)

val create : unit -> t

val gpr_index : Mt_isa.Reg.gpr_name -> int
(** Stable 0..15 index of a GPR, shared with the core's scoreboard. *)

val get : t -> Mt_isa.Reg.t -> int
(** Current value of a register.  XMM registers read as 0.
    @raise Invalid_argument for logical (unallocated) registers. *)

val set : t -> Mt_isa.Reg.t -> int -> unit
(** Assign a register.  Assignments to XMM registers are ignored. *)

val address_of : t -> Mt_isa.Operand.mem -> int
(** Effective address [disp + base + index*scale]. *)

val step : t -> Mt_isa.Insn.t -> unit
(** Apply the architectural effect of one non-control-flow instruction:
    register updates and flag updates.  Branches are a no-op here (the
    core handles control flow via {!branch_taken}). *)

type src = S_imm of int | S_gpr of int

type binop_kind =
  | B_add | B_sub | B_and | B_or | B_xor | B_imul | B_shl | B_shr

type effect =
  | E_none
  | E_mov of int * src  (** gpr index <- src; no flags *)
  | E_lea of int * int * int * int * int
      (** dst gpr <- disp + base + index*scale; base/index -1 = absent *)
  | E_bin of binop_kind * int * src * src
      (** dst gpr (-1 = discard) <- op a b; flags <- result *)
(** The architectural effect of one instruction, resolved at decode
    time (operand lists matched, register slots and immediates
    flattened) so the replay loop applies it without allocating.
    Exposed concretely for the same reason as {!t}. *)

val compile_effect : Mt_isa.Insn.t -> effect
(** Precompile an instruction's effect.  [apply_effect t (compile_effect i)]
    is observationally identical to [step t i]. *)

val apply_effect : t -> effect -> unit
(** Apply a precompiled effect.  Allocation-free. *)

val effect_is_none : effect -> bool
(** Whether the effect is a no-op, so replay loops can precompute a
    skip flag instead of paying a call per instruction. *)

val gpr_value : t -> int -> int
(** Value of the GPR with the given {!gpr_index} slot. *)

val branch_taken : t -> Mt_isa.Insn.cond -> bool
(** Evaluate a condition against the current flags. *)

val flags_value : t -> int
(** The signed result the flags encode (for tests). *)

val reset : t -> unit
