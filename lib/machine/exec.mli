(** Architectural (value-level) execution of the GPR subset: register
    values and flags.  The timing model in {!Core} consults this to
    compute addresses and resolve branches; XMM data values are not
    tracked (micro-benchmark timing never depends on them).

    Loads into a GPR produce the value 0 — the generated kernels never
    use loaded integers as addresses, and {!Core.run} rejects programs
    that would. *)

type t

val create : unit -> t

val gpr_index : Mt_isa.Reg.gpr_name -> int
(** Stable 0..15 index of a GPR, shared with the core's scoreboard. *)

val get : t -> Mt_isa.Reg.t -> int
(** Current value of a register.  XMM registers read as 0.
    @raise Invalid_argument for logical (unallocated) registers. *)

val set : t -> Mt_isa.Reg.t -> int -> unit
(** Assign a register.  Assignments to XMM registers are ignored. *)

val address_of : t -> Mt_isa.Operand.mem -> int
(** Effective address [disp + base + index*scale]. *)

val step : t -> Mt_isa.Insn.t -> unit
(** Apply the architectural effect of one non-control-flow instruction:
    register updates and flag updates.  Branches are a no-op here (the
    core handles control flow via {!branch_taken}). *)

val branch_taken : t -> Mt_isa.Insn.cond -> bool
(** Evaluate a condition against the current flags. *)

val flags_value : t -> int
(** The signed result the flags encode (for tests). *)

val reset : t -> unit
