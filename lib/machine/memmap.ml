type region = { base : int; size : int }

type t = { start : int; mutable next : int }

(* Keep distinct arrays on separate pages so the only sharing effects
   are the ones the experiment asked for via alignment offsets. *)
let guard_bytes = 4096

let create ?(start = 256 * 1024 * 1024) () = { start; next = start }

let alloc t ~size ~align ~offset =
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg (Printf.sprintf "Memmap.alloc: alignment %d not a power of two" align);
  if offset < 0 || offset >= align then
    invalid_arg (Printf.sprintf "Memmap.alloc: offset %d out of [0, %d)" offset align);
  if size < 0 then invalid_arg "Memmap.alloc: negative size";
  let aligned = (t.next + align - 1) / align * align in
  let base = aligned + offset in
  t.next <- base + size + guard_bytes;
  { base; size }

let reset t = t.next <- t.start

let allocated_bytes t = t.next - t.start
