(** Simulated address-space layout for kernel arrays.

    MicroLauncher allocates the arrays a kernel needs and controls each
    one's alignment (Sections 4.2, 5.2.2).  This is the bump allocator
    behind that: it hands out non-overlapping regions whose base
    addresses have a requested alignment and intra-page offset. *)

type region = {
  base : int;  (** First byte address of usable storage. *)
  size : int;  (** Usable bytes. *)
}

type t

val create : ?start:int -> unit -> t
(** A fresh address space.  [start] defaults to 256 MiB. *)

val alloc : t -> size:int -> align:int -> offset:int -> region
(** [alloc t ~size ~align ~offset] reserves a region of [size] bytes at
    the next address congruent to [offset] modulo [align].  [align] must
    be a positive power of two and [0 <= offset < align].  Regions are
    padded apart by a guard gap so distinct arrays never share a cache
    line by accident.
    @raise Invalid_argument on bad alignment arguments. *)

val reset : t -> unit
(** Release everything (the next allocation starts over). *)

val allocated_bytes : t -> int
(** Total bytes currently reserved, guards included. *)
