type level = L1 | L2 | L3 | Ram

type counters = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  ram_accesses : int;
  split_accesses : int;
  alias_stalls : int;
  prefetched_fills : int;
  tlb_misses : int;
  page_walks : int;
  nt_stores : int;
}

(* One tracked prefetch stream: the last line it touched and the line
   stride it has locked onto (0 until two accesses establish one). *)
type stream = { mutable last_line : int; mutable stride : int; mutable last_addr : int }

type t = {
  cfg : Config.t;
  sharers : int;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Cache.t;  (* 64-entry 4-way, 4 KiB pages *)
  stlb : Cache.t;  (* 512-entry 4-way second-level TLB *)
  mutable walker_free : float;  (* the single page walker serializes *)
  ram_share : float;  (* bytes per core cycle *)
  streams : stream array;
  mutable next_stream : int;  (* round-robin victim *)
  fill_buffers : float array;  (* busy-until times *)
  mutable bandwidth_free : float;  (* fill-path serialization point *)
  mutable c_accesses : int;
  mutable c_l1_hits : int;
  mutable c_l2_hits : int;
  mutable c_l3_hits : int;
  mutable c_ram : int;
  mutable c_splits : int;
  mutable c_alias : int;
  mutable c_prefetched : int;
  mutable c_tlb_misses : int;
  mutable c_page_walks : int;
  mutable c_nt_stores : int;
  mutable last_level : level;
  mutable last_split : bool;
}

(* TLB geometry shared by the Nehalem/Sandy Bridge generation the paper
   measures: 64-entry 4-way first level, 512-entry 4-way second level,
   7-cycle STLB hit, ~30-cycle page walk through a single walker. *)
let dtlb_geom = { Config.size_bytes = 64 * 4096; associativity = 4; line_bytes = 4096 }

let stlb_geom = { Config.size_bytes = 512 * 4096; associativity = 4; line_bytes = 4096 }

let stlb_hit_penalty = 7.

let page_walk_cycles = 30.

let stream_table_size = 16

(* The hardware streamer does not prefetch across large strides. *)
let max_prefetch_stride_lines = 4

let create ?(ram_sharers = 1) (cfg : Config.t) =
  (* The L3 is shared: when several cores stream at once, each one
     effectively owns a capacity slice (we model one core per memory
     pipeline, so the slice approximates the shared-cache pressure of
     the siblings). *)
  let l3_slice =
    let sharers_per_socket =
      (ram_sharers + cfg.sockets - 1) / cfg.sockets |> max 1
    in
    let min_size = cfg.l3.Config.line_bytes * cfg.l3.Config.associativity in
    { cfg.l3 with Config.size_bytes = max min_size (cfg.l3.Config.size_bytes / sharers_per_socket) }
  in
  {
    cfg;
    sharers = ram_sharers;
    l1 = Cache.create cfg.l1;
    l2 = Cache.create cfg.l2;
    l3 = Cache.create l3_slice;
    dtlb = Cache.create dtlb_geom;
    stlb = Cache.create stlb_geom;
    walker_free = 0.;
    ram_share = Config.ram_stream_bytes_per_cycle cfg ~sharers:ram_sharers;
    streams =
      Array.init stream_table_size (fun _ ->
          { last_line = min_int; stride = 0; last_addr = min_int });
    next_stream = 0;
    fill_buffers = Array.make cfg.miss_parallelism 0.;
    bandwidth_free = 0.;
    c_accesses = 0;
    c_l1_hits = 0;
    c_l2_hits = 0;
    c_l3_hits = 0;
    c_ram = 0;
    c_splits = 0;
    c_alias = 0;
    c_prefetched = 0;
    c_tlb_misses = 0;
    c_page_walks = 0;
    c_nt_stores = 0;
    last_level = L1;
    last_split = false;
  }

let config t = t.cfg

let ram_share_bytes_per_cycle t = t.ram_share

let counters t =
  {
    accesses = t.c_accesses;
    l1_hits = t.c_l1_hits;
    l2_hits = t.c_l2_hits;
    l3_hits = t.c_l3_hits;
    ram_accesses = t.c_ram;
    split_accesses = t.c_splits;
    alias_stalls = t.c_alias;
    prefetched_fills = t.c_prefetched;
    tlb_misses = t.c_tlb_misses;
    page_walks = t.c_page_walks;
    nt_stores = t.c_nt_stores;
  }

let counters_to_alist c =
  [
    ("accesses", c.accesses);
    ("l1_hits", c.l1_hits);
    ("l2_hits", c.l2_hits);
    ("l3_hits", c.l3_hits);
    ("ram_accesses", c.ram_accesses);
    ("split_accesses", c.split_accesses);
    ("alias_stalls", c.alias_stalls);
    ("prefetched_fills", c.prefetched_fills);
    ("tlb_misses", c.tlb_misses);
    ("page_walks", c.page_walks);
    ("nt_stores", c.nt_stores);
  ]

let reset_counters t =
  t.c_accesses <- 0;
  t.c_l1_hits <- 0;
  t.c_l2_hits <- 0;
  t.c_l3_hits <- 0;
  t.c_ram <- 0;
  t.c_splits <- 0;
  t.c_alias <- 0;
  t.c_prefetched <- 0;
  t.c_tlb_misses <- 0;
  t.c_page_walks <- 0;
  t.c_nt_stores <- 0

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  Cache.reset t.l3;
  Cache.reset t.dtlb;
  Cache.reset t.stlb;
  t.walker_free <- 0.;
  Array.iter
    (fun s ->
      s.last_line <- min_int;
      s.stride <- 0;
      s.last_addr <- min_int)
    t.streams;
  t.next_stream <- 0;
  Array.fill t.fill_buffers 0 (Array.length t.fill_buffers) 0.;
  t.bandwidth_free <- 0.;
  t.last_level <- L1;
  reset_counters t

let drain t =
  Array.fill t.fill_buffers 0 (Array.length t.fill_buffers) 0.;
  t.bandwidth_free <- 0.;
  t.walker_free <- 0.

let level_of_last_access t = t.last_level

let last_access_was_split t = t.last_split

(* Deep trace lanes: one observer over the three data-cache levels
   (the TLBs stay unobserved — their activity is already summarized by
   the tlb_misses/page_walks counters). *)
let set_access_hook t hook =
  match hook with
  | None ->
    Cache.set_on_access t.l1 None;
    Cache.set_on_access t.l2 None;
    Cache.set_on_access t.l3 None
  | Some f ->
    Cache.set_on_access t.l1 (Some (fun ~hit -> f L1 ~hit));
    Cache.set_on_access t.l2 (Some (fun ~hit -> f L2 ~hit));
    Cache.set_on_access t.l3 (Some (fun ~hit -> f L3 ~hit))

(* ------------------------------------------------------------------ *)
(* Stream prefetch detection                                           *)
(* ------------------------------------------------------------------ *)

(* Returns [true] when [line] continues an established stream whose
   stride is small enough for the hardware streamer to follow. *)
let stream_hit t line =
  let found = ref false in
  Array.iter
    (fun s ->
      if not !found then begin
        if s.last_line = line then found := true
        else begin
          let delta = line - s.last_line in
          if delta <> 0 && abs delta <= max_prefetch_stride_lines then begin
            if s.stride = delta then begin
              (* Established stream continues. *)
              s.last_line <- line;
              found := true
            end
            else if s.stride = 0 && s.last_line <> min_int then begin
              (* Second touch establishes the stride; the streamer
                 starts covering from the next access on. *)
              s.stride <- delta;
              s.last_line <- line
            end
          end
        end
      end)
    t.streams;
  if not !found then begin
    (* Is some tracker one step behind (training touch)?  Otherwise
       allocate a fresh tracker on the round-robin victim. *)
    let trained =
      Array.exists (fun s -> s.stride <> 0 && s.last_line + s.stride = line) t.streams
    in
    if not trained then begin
      let s = t.streams.(t.next_stream) in
      s.last_line <- line;
      s.stride <- 0;
      s.last_addr <- min_int;
      t.next_stream <- (t.next_stream + 1) mod stream_table_size
    end
  end;
  !found

(* 4 KiB aliasing: the access collides modulo one page with the most
   recent address of a *different* stream (a concurrently traversed
   array at a conflicting alignment).  See DESIGN.md section 5. *)
let alias_conflict t addr =
  let page_off = addr land 4095 in
  let page = addr lsr 12 in
  let conflict = ref false in
  Array.iter
    (fun s ->
      if s.last_addr <> min_int then begin
        let other_off = s.last_addr land 4095 in
        let other_page = s.last_addr lsr 12 in
        if other_page <> page && abs (other_off - page_off) < 64 then conflict := true
      end)
    t.streams;
  !conflict

let record_addr t line addr =
  Array.iter (fun s -> if s.last_line = line then s.last_addr <- addr) t.streams

(* ------------------------------------------------------------------ *)
(* Fill pipeline                                                       *)
(* ------------------------------------------------------------------ *)

let earliest_buffer t =
  let best = ref 0 in
  for i = 1 to Array.length t.fill_buffers - 1 do
    if t.fill_buffers.(i) < t.fill_buffers.(!best) then best := i
  done;
  !best

(* Charge one line fill served by [serving] level.  [streamed] fills are
   covered by the prefetcher: their latency collapses to the serving
   bandwidth; demand (random) fills pay the level's full latency.
   Returns the fill completion time. *)
let line_fill t ~now ~streamed ~write ~serving =
  let cfg = t.cfg in
  let line = float_of_int cfg.l1.line_bytes in
  let bw =
    match serving with
    | L1 -> infinity
    | L2 -> cfg.l2_bandwidth_bytes_per_cycle
    | L3 ->
      (* The L3 lives in the uncore clock domain: its bandwidth is
         fixed in bytes/second, so in core cycles it scales with the
         core clock (Fig. 13: off-core timings are frequency-
         independent in TSC cycles). *)
      cfg.l3_bandwidth_bytes_per_cycle *. cfg.nominal_ghz /. cfg.core_ghz
    | Ram -> t.ram_share
  in
  let transfer = if bw = infinity then 0. else line /. bw in
  (* Stores write-allocate: the RFO read plus the eventual writeback
     consume the fill path twice. *)
  let transfer = if write then 2. *. transfer else transfer in
  let full_latency =
    match serving with
    | L1 -> float_of_int cfg.l1_latency_cycles
    | L2 -> float_of_int cfg.l2_latency_cycles
    | L3 -> Config.cycles_of_ns cfg cfg.l3_latency_ns
    | Ram -> Config.cycles_of_ns cfg cfg.ram_latency_ns
  in
  let buf = earliest_buffer t in
  let start = Float.max now (Float.max t.fill_buffers.(buf) t.bandwidth_free) in
  t.bandwidth_free <- start +. transfer;
  let completion =
    if streamed then start +. Float.max transfer (float_of_int cfg.l1_latency_cycles)
    else start +. full_latency +. transfer
  in
  t.fill_buffers.(buf) <- completion;
  if streamed then t.c_prefetched <- t.c_prefetched + 1;
  completion

(* Look the line up in the hierarchy; allocate it at every level it
   missed in (inclusive caching).  Returns serving level. *)
let lookup t line =
  if Cache.access t.l1 line then L1
  else if Cache.access t.l2 line then L2
  else if Cache.access t.l3 line then L3
  else Ram

(* Address translation: DTLB hit is free, an STLB hit costs a fixed
   re-lookup, a full miss walks the page table through the single
   hardware walker (walks serialize — the mechanism behind the paper's
   Figure 3 cliff once the matmul column stride exceeds a page). *)
let translate t ~now ~addr =
  if not t.cfg.Config.features.Config.tlb then 0.
  else begin
  let page = addr lsr 12 in
  if Cache.access t.dtlb page then 0.
  else begin
    t.c_tlb_misses <- t.c_tlb_misses + 1;
    if Cache.access t.stlb page then stlb_hit_penalty
    else begin
      t.c_page_walks <- t.c_page_walks + 1;
      let start = Float.max now t.walker_free in
      let finish = start +. page_walk_cycles in
      t.walker_free <- finish;
      finish -. now
    end
  end
  end

let single_access t ~now ~addr ~write =
  let tlb_penalty = translate t ~now ~addr in
  let now = now +. tlb_penalty in
  let line = Cache.line_of_addr t.l1 addr in
  let streamed = stream_hit t line && t.cfg.Config.features.Config.prefetcher in
  let serving = lookup t line in
  t.last_level <- serving;
  let ready =
    match serving with
    | L1 ->
      t.c_l1_hits <- t.c_l1_hits + 1;
      now +. float_of_int t.cfg.l1_latency_cycles
    | L2 | L3 | Ram ->
      (match serving with
      | L2 -> t.c_l2_hits <- t.c_l2_hits + 1
      | L3 -> t.c_l3_hits <- t.c_l3_hits + 1
      | Ram | L1 -> t.c_ram <- t.c_ram + 1);
      line_fill t ~now ~streamed ~write ~serving
  in
  record_addr t line addr;
  ready

(* Non-temporal store: write-combining buffers stream the data straight
   to DRAM — no allocation, no read-for-ownership, single-direction
   bandwidth.  The data-ready time is just the store-buffer handoff. *)
let nt_store t ~now ~addr ~bytes =
  t.c_nt_stores <- t.c_nt_stores + 1;
  let tlb_penalty = translate t ~now ~addr in
  let now = now +. tlb_penalty in
  let bw = t.ram_share in
  let transfer = float_of_int bytes /. bw in
  t.bandwidth_free <- Float.max t.bandwidth_free now +. transfer;
  t.last_level <- Ram;
  (* Finite write-combining buffers (four lines): once the DRAM backlog
     exceeds them, the store stalls until it drains — streaming stores
     end up paying single-direction bandwidth, i.e. half a regular
     write-allocate store stream. *)
  let line = float_of_int t.cfg.Config.l1.Config.line_bytes in
  let wc_allowance = 4. *. line /. bw in
  Float.max (now +. 1.) (t.bandwidth_free -. wc_allowance)

let access ?(nt = false) t ~now ~addr ~bytes ~write =
  t.c_accesses <- t.c_accesses + 1;
  let bytes = max 1 bytes in
  t.last_split <- false;
  if nt && write then nt_store t ~now ~addr ~bytes
  else begin
  let first_line = Cache.line_of_addr t.l1 addr in
  let last_line = Cache.line_of_addr t.l1 (addr + bytes - 1) in
  (* Cross-array page-offset collisions only hurt when the memory
     system is under multi-core pressure (Section 5.2.2's alignment
     studies run 8- and 32-core saturated configurations); a lone core
     absorbs them (Fig. 4's <3% variation at 200x200). *)
  let alias_scale =
    if t.cfg.Config.features.Config.alias_interference then
      float_of_int (t.sharers - 1) /. 4.
    else 0.
  in
  let alias = alias_scale > 0. && alias_conflict t addr in
  if alias then t.c_alias <- t.c_alias + 1;
  let alias_pen =
    if alias then t.cfg.page_4k_alias_penalty_cycles *. alias_scale else 0.
  in
  (* A conflicting access replays through the memory pipeline: the
     penalty is occupancy, not just latency, so saturated streams slow
     down (the Figures 15/16 alignment bands). *)
  if alias then
    t.bandwidth_free <- Float.max t.bandwidth_free now +. alias_pen;
  if first_line = last_line then single_access t ~now ~addr ~write +. alias_pen
  else begin
    (* Line-split access: both halves must arrive, plus a fixed split
       penalty for the re-issue (the core also books a replay uop). *)
    t.c_splits <- t.c_splits + 1;
    if t.cfg.Config.features.Config.split_penalty then t.last_split <- true;
    let r1 = single_access t ~now ~addr ~write in
    let second_addr = (first_line + 1) * t.cfg.l1.line_bytes in
    let r2 = single_access t ~now:r1 ~addr:second_addr ~write in
    let penalty =
      if t.cfg.Config.features.Config.split_penalty then
        float_of_int t.cfg.split_line_penalty_cycles
      else 0.
    in
    Float.max r1 r2 +. penalty +. alias_pen
  end
  end
