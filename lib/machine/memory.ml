type level = L1 | L2 | L3 | Ram

type counters = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  ram_accesses : int;
  split_accesses : int;
  alias_stalls : int;
  prefetched_fills : int;
  tlb_misses : int;
  page_walks : int;
  nt_stores : int;
}

(* One tracked prefetch stream: the last line it touched and the line
   stride it has locked onto (0 until two accesses establish one). *)
(* Stored as three parallel unboxed int arrays rather than an array of
   records: the 16-entry scans below run on every access, and chasing
   16 record pointers per scan is what they would otherwise spend their
   time on. *)

(* Same-line repeat-access memo: a tiny table of lines whose stream-
   table scan is known to be a pure "found" (exactly one tracker on the
   line, no tracker within prefetch range).  A repeat access to such a
   line can skip the 16-way scans entirely — the scan would mutate
   nothing and return found=true — which is what makes dense strided
   streams resolve their stream/translation bookkeeping once per line
   rather than once per access.  Entries are invalidated whenever any
   tracker moves near them.  Only used when alias interference is off
   (scale 0): the alias scan reads every tracker's last address, so it
   cannot be skipped. *)
let memo_size = 8

type t = {
  cfg : Config.t;
  sharers : int;
  alias_scale : float;
      (* 4 KiB alias penalty scale, constant per pipeline: (sharers-1)/4
         when the feature is on, else 0. *)
  prefetcher_on : bool;
  tlb_on : bool;
  memo_line : int array;  (* -1 = empty slot *)
  memo_stream : int array;
  mutable memo_next : int;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Cache.t;  (* 64-entry 4-way, 4 KiB pages *)
  stlb : Cache.t;  (* 512-entry 4-way second-level TLB *)
  mutable walker_free : float;  (* the single page walker serializes *)
  ram_share : float;  (* bytes per core cycle *)
  st_line : int array;  (* last line touched, or min_int *)
  st_stride : int array;  (* locked stride in lines, 0 = not locked *)
  st_addr : int array;  (* last raw address, or min_int *)
  mutable next_stream : int;  (* round-robin victim *)
  fill_buffers : float array;  (* busy-until times *)
  mutable bandwidth_free : float;  (* fill-path serialization point *)
  mutable c_accesses : int;
  mutable c_l1_hits : int;
  mutable c_l2_hits : int;
  mutable c_l3_hits : int;
  mutable c_ram : int;
  mutable c_splits : int;
  mutable c_alias : int;
  mutable c_prefetched : int;
  mutable c_tlb_misses : int;
  mutable c_page_walks : int;
  mutable c_nt_stores : int;
  mutable last_level : level;
  mutable last_split : bool;
}

(* TLB geometry shared by the Nehalem/Sandy Bridge generation the paper
   measures: 64-entry 4-way first level, 512-entry 4-way second level,
   7-cycle STLB hit, ~30-cycle page walk through a single walker. *)
let dtlb_geom = { Config.size_bytes = 64 * 4096; associativity = 4; line_bytes = 4096 }

let stlb_geom = { Config.size_bytes = 512 * 4096; associativity = 4; line_bytes = 4096 }

let stlb_hit_penalty = 7.

let page_walk_cycles = 30.

let stream_table_size = 16

(* The hardware streamer does not prefetch across large strides. *)
let max_prefetch_stride_lines = 4

let create ?(ram_sharers = 1) (cfg : Config.t) =
  (* The L3 is shared: when several cores stream at once, each one
     effectively owns a capacity slice (we model one core per memory
     pipeline, so the slice approximates the shared-cache pressure of
     the siblings). *)
  let l3_slice =
    let sharers_per_socket =
      (ram_sharers + cfg.sockets - 1) / cfg.sockets |> max 1
    in
    let min_size = cfg.l3.Config.line_bytes * cfg.l3.Config.associativity in
    { cfg.l3 with Config.size_bytes = max min_size (cfg.l3.Config.size_bytes / sharers_per_socket) }
  in
  {
    cfg;
    sharers = ram_sharers;
    alias_scale =
      (if cfg.Config.features.Config.alias_interference then
         float_of_int (ram_sharers - 1) /. 4.
       else 0.);
    prefetcher_on = cfg.Config.features.Config.prefetcher;
    tlb_on = cfg.Config.features.Config.tlb;
    memo_line = Array.make memo_size (-1);
    memo_stream = Array.make memo_size 0;
    memo_next = 0;
    l1 = Cache.create cfg.l1;
    l2 = Cache.create cfg.l2;
    l3 = Cache.create l3_slice;
    dtlb = Cache.create dtlb_geom;
    stlb = Cache.create stlb_geom;
    walker_free = 0.;
    ram_share = Config.ram_stream_bytes_per_cycle cfg ~sharers:ram_sharers;
    st_line = Array.make stream_table_size min_int;
    st_stride = Array.make stream_table_size 0;
    st_addr = Array.make stream_table_size min_int;
    next_stream = 0;
    fill_buffers = Array.make cfg.miss_parallelism 0.;
    bandwidth_free = 0.;
    c_accesses = 0;
    c_l1_hits = 0;
    c_l2_hits = 0;
    c_l3_hits = 0;
    c_ram = 0;
    c_splits = 0;
    c_alias = 0;
    c_prefetched = 0;
    c_tlb_misses = 0;
    c_page_walks = 0;
    c_nt_stores = 0;
    last_level = L1;
    last_split = false;
  }

let config t = t.cfg

let ram_share_bytes_per_cycle t = t.ram_share

let counters t =
  {
    accesses = t.c_accesses;
    l1_hits = t.c_l1_hits;
    l2_hits = t.c_l2_hits;
    l3_hits = t.c_l3_hits;
    ram_accesses = t.c_ram;
    split_accesses = t.c_splits;
    alias_stalls = t.c_alias;
    prefetched_fills = t.c_prefetched;
    tlb_misses = t.c_tlb_misses;
    page_walks = t.c_page_walks;
    nt_stores = t.c_nt_stores;
  }

let counters_to_alist c =
  [
    ("accesses", c.accesses);
    ("l1_hits", c.l1_hits);
    ("l2_hits", c.l2_hits);
    ("l3_hits", c.l3_hits);
    ("ram_accesses", c.ram_accesses);
    ("split_accesses", c.split_accesses);
    ("alias_stalls", c.alias_stalls);
    ("prefetched_fills", c.prefetched_fills);
    ("tlb_misses", c.tlb_misses);
    ("page_walks", c.page_walks);
    ("nt_stores", c.nt_stores);
  ]

let reset_counters t =
  t.c_accesses <- 0;
  t.c_l1_hits <- 0;
  t.c_l2_hits <- 0;
  t.c_l3_hits <- 0;
  t.c_ram <- 0;
  t.c_splits <- 0;
  t.c_alias <- 0;
  t.c_prefetched <- 0;
  t.c_tlb_misses <- 0;
  t.c_page_walks <- 0;
  t.c_nt_stores <- 0

let reset t =
  Cache.reset t.l1;
  Cache.reset t.l2;
  Cache.reset t.l3;
  Cache.reset t.dtlb;
  Cache.reset t.stlb;
  t.walker_free <- 0.;
  Array.fill t.st_line 0 stream_table_size min_int;
  Array.fill t.st_stride 0 stream_table_size 0;
  Array.fill t.st_addr 0 stream_table_size min_int;
  t.next_stream <- 0;
  Array.fill t.memo_line 0 memo_size (-1);
  t.memo_next <- 0;
  Array.fill t.fill_buffers 0 (Array.length t.fill_buffers) 0.;
  t.bandwidth_free <- 0.;
  t.last_level <- L1;
  t.last_split <- false;
  reset_counters t

let drain t =
  Array.fill t.fill_buffers 0 (Array.length t.fill_buffers) 0.;
  t.bandwidth_free <- 0.;
  t.walker_free <- 0.;
  (* Same staleness gap as [reset] had: a split flag describing an
     access from before the drain must not leak into the next run. *)
  t.last_split <- false

let level_of_last_access t = t.last_level

let last_access_was_split t = t.last_split

(* Deep trace lanes: one observer over the three data-cache levels
   (the TLBs stay unobserved — their activity is already summarized by
   the tlb_misses/page_walks counters). *)
let set_access_hook t hook =
  match hook with
  | None ->
    Cache.set_on_access t.l1 None;
    Cache.set_on_access t.l2 None;
    Cache.set_on_access t.l3 None
  | Some f ->
    Cache.set_on_access t.l1 (Some (fun ~hit -> f L1 ~hit));
    Cache.set_on_access t.l2 (Some (fun ~hit -> f L2 ~hit));
    Cache.set_on_access t.l3 (Some (fun ~hit -> f L3 ~hit))

(* ------------------------------------------------------------------ *)
(* Stream prefetch detection                                           *)
(* ------------------------------------------------------------------ *)

(* A tracker moved onto [moved_line]: any memo entry it was backing, or
   any entry now within prefetch range of the tracker's new position,
   is no longer a guaranteed pure hit. *)
let memo_invalidate t ~stream ~moved_line =
  for i = 0 to memo_size - 1 do
    let l = Array.unsafe_get t.memo_line i in
    if l >= 0 then begin
      let d = l - moved_line in
      if
        Array.unsafe_get t.memo_stream i = stream
        || (d >= -max_prefetch_stride_lines && d <= max_prefetch_stride_lines)
      then Array.unsafe_set t.memo_line i (-1)
    end
  done

let memo_find t line =
  let r = ref (-1) in
  let i = ref 0 in
  while !r < 0 && !i < memo_size do
    if Array.unsafe_get t.memo_line !i = line then r := !i;
    incr i
  done;
  !r

(* After a slow scan found [line], check whether a repeat access could
   skip the scan: exactly one tracker sits on the line and no other
   tracker is within prefetch range (so the scan neither mutates a
   tracker nor allocates one).  If so, remember it. *)
let memo_try_establish t line =
  let matches = ref 0 in
  let idx = ref (-1) in
  let near = ref false in
  for i = 0 to stream_table_size - 1 do
    let l = Array.unsafe_get t.st_line i in
    if l = line then begin
      incr matches;
      idx := i
    end
    else if l <> min_int then begin
      (* The empty-slot sentinel must be skipped before the distance
         test: [line - min_int] overflows, and [abs min_int] is still
         negative, so an unguarded compare reads an empty slot as
         "near" and line 0 can never be memoized. *)
      let d = line - l in
      if d <> 0 && abs d <= max_prefetch_stride_lines then near := true
    end
  done;
  if !matches = 1 && not !near then begin
    let slot = t.memo_next in
    t.memo_line.(slot) <- line;
    t.memo_stream.(slot) <- !idx;
    t.memo_next <- (slot + 1) mod memo_size
  end

(* Returns [true] when [line] continues an established stream whose
   stride is small enough for the hardware streamer to follow. *)
let stream_hit t line =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < stream_table_size do
    let l = Array.unsafe_get t.st_line !i in
    if l = line then found := true
    else begin
      let delta = line - l in
      if delta <> 0 && abs delta <= max_prefetch_stride_lines then begin
        let st = Array.unsafe_get t.st_stride !i in
        if st = delta then begin
          (* Established stream continues. *)
          Array.unsafe_set t.st_line !i line;
          memo_invalidate t ~stream:!i ~moved_line:line;
          found := true
        end
        else if st = 0 && l <> min_int then begin
          (* Second touch establishes the stride; the streamer
             starts covering from the next access on. *)
          Array.unsafe_set t.st_stride !i delta;
          Array.unsafe_set t.st_line !i line;
          memo_invalidate t ~stream:!i ~moved_line:line
        end
      end
    end;
    incr i
  done;
  if not !found then begin
    (* Is some tracker one step behind (training touch)?  Otherwise
       allocate a fresh tracker on the round-robin victim. *)
    let trained = ref false in
    for j = 0 to stream_table_size - 1 do
      let st = Array.unsafe_get t.st_stride j in
      if st <> 0 && Array.unsafe_get t.st_line j + st = line then
        trained := true
    done;
    if not !trained then begin
      let victim = t.next_stream in
      t.st_line.(victim) <- line;
      t.st_stride.(victim) <- 0;
      t.st_addr.(victim) <- min_int;
      t.next_stream <- (victim + 1) mod stream_table_size;
      memo_invalidate t ~stream:victim ~moved_line:line
    end
  end;
  !found

(* 4 KiB aliasing: the access collides modulo one page with the most
   recent address of a *different* stream (a concurrently traversed
   array at a conflicting alignment).  See DESIGN.md section 5. *)
let alias_conflict t addr =
  let page_off = addr land 4095 in
  let page = addr lsr 12 in
  let conflict = ref false in
  for i = 0 to stream_table_size - 1 do
    let a = Array.unsafe_get t.st_addr i in
    if a <> min_int then begin
      let other_off = a land 4095 in
      let other_page = a lsr 12 in
      if other_page <> page && abs (other_off - page_off) < 64 then
        conflict := true
    end
  done;
  !conflict

let record_addr t line addr =
  for i = 0 to stream_table_size - 1 do
    if Array.unsafe_get t.st_line i = line then
      Array.unsafe_set t.st_addr i addr
  done

(* ------------------------------------------------------------------ *)
(* Fill pipeline                                                       *)
(* ------------------------------------------------------------------ *)

let earliest_buffer t =
  let best = ref 0 in
  for i = 1 to Array.length t.fill_buffers - 1 do
    if t.fill_buffers.(i) < t.fill_buffers.(!best) then best := i
  done;
  !best

(* Charge one line fill served by [serving] level.  [streamed] fills are
   covered by the prefetcher: their latency collapses to the serving
   bandwidth; demand (random) fills pay the level's full latency.
   Returns the fill completion time. *)
let line_fill t ~now ~streamed ~write ~serving =
  let cfg = t.cfg in
  let line = float_of_int cfg.l1.line_bytes in
  let bw =
    match serving with
    | L1 -> infinity
    | L2 -> cfg.l2_bandwidth_bytes_per_cycle
    | L3 ->
      (* The L3 lives in the uncore clock domain: its bandwidth is
         fixed in bytes/second, so in core cycles it scales with the
         core clock (Fig. 13: off-core timings are frequency-
         independent in TSC cycles). *)
      cfg.l3_bandwidth_bytes_per_cycle *. cfg.nominal_ghz /. cfg.core_ghz
    | Ram -> t.ram_share
  in
  let transfer = if bw = infinity then 0. else line /. bw in
  (* Stores write-allocate: the RFO read plus the eventual writeback
     consume the fill path twice. *)
  let transfer = if write then 2. *. transfer else transfer in
  let full_latency =
    match serving with
    | L1 -> float_of_int cfg.l1_latency_cycles
    | L2 -> float_of_int cfg.l2_latency_cycles
    | L3 -> Config.cycles_of_ns cfg cfg.l3_latency_ns
    | Ram -> Config.cycles_of_ns cfg cfg.ram_latency_ns
  in
  let buf = earliest_buffer t in
  let start = Float.max now (Float.max t.fill_buffers.(buf) t.bandwidth_free) in
  t.bandwidth_free <- start +. transfer;
  let completion =
    if streamed then start +. Float.max transfer (float_of_int cfg.l1_latency_cycles)
    else start +. full_latency +. transfer
  in
  t.fill_buffers.(buf) <- completion;
  if streamed then t.c_prefetched <- t.c_prefetched + 1;
  completion

(* Look the line up in the hierarchy; allocate it at every level it
   missed in (inclusive caching).  Returns serving level. *)
let lookup_beyond_l1 t line =
  if Cache.access t.l2 line then L2
  else if Cache.access t.l3 line then L3
  else Ram

(* Address translation: DTLB hit is free, an STLB hit costs a fixed
   re-lookup, a full miss walks the page table through the single
   hardware walker (walks serialize — the mechanism behind the paper's
   Figure 3 cliff once the matmul column stride exceeds a page). *)
let translate_miss t ~now ~page =
  t.c_tlb_misses <- t.c_tlb_misses + 1;
  if Cache.access t.stlb page then stlb_hit_penalty
  else begin
    t.c_page_walks <- t.c_page_walks + 1;
    let start = Float.max now t.walker_free in
    let finish = start +. page_walk_cycles in
    t.walker_free <- finish;
    finish -. now
  end

let translate t ~now ~addr =
  if not t.tlb_on then 0.
  else begin
    let page = addr lsr 12 in
    if Cache.access t.dtlb page then 0. else translate_miss t ~now ~page
  end

(* The TLB-hit and L1-hit cases are open-coded at each access site:
   they are the steady state, and a call per layer is what the slow
   path would otherwise spend its time on. *)
let single_access t ~now ~addr ~write =
  let now =
    if not t.tlb_on then now
    else begin
      let page = addr lsr 12 in
      if Cache.access t.dtlb page then now
      else now +. translate_miss t ~now ~page
    end
  in
  let line = Cache.line_of_addr t.l1 addr in
  let streamed = stream_hit t line && t.prefetcher_on in
  let ready =
    if Cache.access t.l1 line then begin
      t.last_level <- L1;
      t.c_l1_hits <- t.c_l1_hits + 1;
      now +. float_of_int t.cfg.l1_latency_cycles
    end
    else begin
      let serving = lookup_beyond_l1 t line in
      t.last_level <- serving;
      (match serving with
      | L2 -> t.c_l2_hits <- t.c_l2_hits + 1
      | L3 -> t.c_l3_hits <- t.c_l3_hits + 1
      | Ram | L1 -> t.c_ram <- t.c_ram + 1);
      line_fill t ~now ~streamed ~write ~serving
    end
  in
  record_addr t line addr;
  ready

(* Non-temporal store: write-combining buffers stream the data straight
   to DRAM — no allocation, no read-for-ownership, single-direction
   bandwidth.  The data-ready time is just the store-buffer handoff. *)
let nt_store t ~now ~addr ~bytes =
  t.c_nt_stores <- t.c_nt_stores + 1;
  let tlb_penalty = translate t ~now ~addr in
  let now = now +. tlb_penalty in
  let bw = t.ram_share in
  let transfer = float_of_int bytes /. bw in
  t.bandwidth_free <- Float.max t.bandwidth_free now +. transfer;
  t.last_level <- Ram;
  (* Finite write-combining buffers (four lines): once the DRAM backlog
     exceeds them, the store stalls until it drains — streaming stores
     end up paying single-direction bandwidth, i.e. half a regular
     write-allocate store stream. *)
  let line = float_of_int t.cfg.Config.l1.Config.line_bytes in
  let wc_allowance = 4. *. line /. bw in
  Float.max (now +. 1.) (t.bandwidth_free -. wc_allowance)

(* Memoized repeat of [single_access] for a line whose stream scan is
   known pure-found: translation and cache lookup still run for real
   (they carry their own state and counters), only the 16-way stream
   scans are skipped.  [streamed] is exactly what the slow path would
   compute: found && prefetcher feature. *)
let split_access t ~now ~addr ~write ~first_line =
  (* Line-split access: both halves must arrive, plus a fixed split
     penalty for the re-issue (the core also books a replay uop). *)
  t.c_splits <- t.c_splits + 1;
  if t.cfg.Config.features.Config.split_penalty then t.last_split <- true;
  let r1 = single_access t ~now ~addr ~write in
  let second_addr = (first_line + 1) * t.cfg.l1.line_bytes in
  let r2 = single_access t ~now:r1 ~addr:second_addr ~write in
  let penalty =
    if t.cfg.Config.features.Config.split_penalty then
      float_of_int t.cfg.split_line_penalty_cycles
    else 0.
  in
  Float.max r1 r2 +. penalty

let access_nt t ~nt ~now ~addr ~bytes ~write =
  t.c_accesses <- t.c_accesses + 1;
  let bytes = if bytes < 1 then 1 else bytes in
  t.last_split <- false;
  if nt && write then nt_store t ~now ~addr ~bytes
  else begin
    let shift = t.l1.Cache.line_shift in
    let first_line = addr lsr shift in
    let last_line = (addr + bytes - 1) lsr shift in
    if t.alias_scale = 0. then begin
      (* No alias interference: the penalty term is identically 0 and
         the alias scan never runs, so the memo fast path applies. *)
      if first_line = last_line then begin
        let slot = memo_find t first_line in
        if slot >= 0 then begin
          (* Memo hit, open-coded (= [memo_single_access] with the
             repeat-line cache checks already inlined): the steady
             state of every strided stream lands here. *)
          let now =
            if not t.tlb_on then now
            else begin
              let page = addr lsr 12 in
              let dtlb = t.dtlb in
              let dset =
                let m = dtlb.Cache.set_mask in
                if m >= 0 then page land m else page mod dtlb.Cache.sets
              in
              if page = Array.unsafe_get dtlb.Cache.last_line dset then begin
                dtlb.Cache.hit_count <- dtlb.Cache.hit_count + 1;
                (match dtlb.Cache.on_access with
                | None -> ()
                | Some f -> f ~hit:true);
                now
              end
              else if Cache.access dtlb page then now
              else now +. translate_miss t ~now ~page
            end
          in
          let ready =
            let l1 = t.l1 in
            let lset =
              let m = l1.Cache.set_mask in
              if m >= 0 then first_line land m else first_line mod l1.Cache.sets
            in
            if first_line = Array.unsafe_get l1.Cache.last_line lset then begin
              l1.Cache.hit_count <- l1.Cache.hit_count + 1;
              (match l1.Cache.on_access with
              | None -> ()
              | Some f -> f ~hit:true);
              t.last_level <- L1;
              t.c_l1_hits <- t.c_l1_hits + 1;
              now +. float_of_int t.cfg.l1_latency_cycles
            end
            else if Cache.access l1 first_line then begin
              t.last_level <- L1;
              t.c_l1_hits <- t.c_l1_hits + 1;
              now +. float_of_int t.cfg.l1_latency_cycles
            end
            else begin
              let serving = lookup_beyond_l1 t first_line in
              t.last_level <- serving;
              (match serving with
              | L2 -> t.c_l2_hits <- t.c_l2_hits + 1
              | L3 -> t.c_l3_hits <- t.c_l3_hits + 1
              | Ram | L1 -> t.c_ram <- t.c_ram + 1);
              line_fill t ~now ~streamed:t.prefetcher_on ~write ~serving
            end
          in
          Array.unsafe_set t.st_addr (Array.unsafe_get t.memo_stream slot) addr;
          ready
        end
        else begin
          let r = single_access t ~now ~addr ~write in
          memo_try_establish t first_line;
          r
        end
      end
      else split_access t ~now ~addr ~write ~first_line
    end
    else begin
      (* Cross-array page-offset collisions only hurt when the memory
         system is under multi-core pressure (Section 5.2.2's alignment
         studies run 8- and 32-core saturated configurations); a lone
         core absorbs them (Fig. 4's <3% variation at 200x200). *)
      let alias = alias_conflict t addr in
      if alias then t.c_alias <- t.c_alias + 1;
      let alias_pen =
        if alias then t.cfg.page_4k_alias_penalty_cycles *. t.alias_scale
        else 0.
      in
      (* A conflicting access replays through the memory pipeline: the
         penalty is occupancy, not just latency, so saturated streams
         slow down (the Figures 15/16 alignment bands). *)
      if alias then
        t.bandwidth_free <- Float.max t.bandwidth_free now +. alias_pen;
      if first_line = last_line then
        single_access t ~now ~addr ~write +. alias_pen
      else split_access t ~now ~addr ~write ~first_line +. alias_pen
    end
  end

let access ?(nt = false) t ~now ~addr ~bytes ~write =
  access_nt t ~nt ~now ~addr ~bytes ~write

let access_batch ?(nt = false) t ~now ~addr ~stride ~count ~bytes ~write =
  let ready = ref now in
  let a = ref addr in
  for _ = 1 to count do
    ready := access_nt t ~nt ~now ~addr:!a ~bytes ~write;
    a := !a + stride
  done;
  !ready
