(** The per-core memory pipeline: L1/L2/L3 lookup on real addresses, a
    stride-limited stream prefetcher, a finite set of fill buffers
    (miss-level parallelism), fill-bandwidth serialization, and the
    cross-array 4 KiB aliasing penalty.

    Timing contract: {!access} is called with the core-clock time [now]
    at which the memory uop issues and returns the time at which the
    data is available.  All times are in core cycles (floats, so
    bandwidth fractions survive). *)

type level = L1 | L2 | L3 | Ram

type t = {
  cfg : Config.t;
  sharers : int;
  alias_scale : float;
      (** 4 KiB alias penalty scale, constant per pipeline: (sharers-1)/4
          when the feature is on, else 0. *)
  prefetcher_on : bool;
  tlb_on : bool;
  memo_line : int array;  (** -1 = empty slot *)
  memo_stream : int array;
  mutable memo_next : int;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  dtlb : Cache.t;
  stlb : Cache.t;
  mutable walker_free : float;
  ram_share : float;
  st_line : int array;
  st_stride : int array;
  st_addr : int array;
  mutable next_stream : int;
  fill_buffers : float array;
  mutable bandwidth_free : float;
  mutable c_accesses : int;
  mutable c_l1_hits : int;
  mutable c_l2_hits : int;
  mutable c_l3_hits : int;
  mutable c_ram : int;
  mutable c_splits : int;
  mutable c_alias : int;
  mutable c_prefetched : int;
  mutable c_tlb_misses : int;
  mutable c_page_walks : int;
  mutable c_nt_stores : int;
  mutable last_level : level;
  mutable last_split : bool;
}
(** Exposed concretely — like {!Exec.t} and {!Cache.t} — so
    {!Core.run}'s replay loop can open-code the steady-state access
    (single line, memo hit, repeat dTLB page, repeat L1 line) without
    a cross-module call or a boxed float return.  The inline path
    performs exactly the mutations {!access} would; every check it
    makes before deciding is pure, so any failure falls back to
    {!access_nt} with no state touched.  All other users must go
    through {!access}. *)

type counters = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  ram_accesses : int;
  split_accesses : int;
  alias_stalls : int;
  prefetched_fills : int;
  tlb_misses : int;  (** First-level TLB misses. *)
  page_walks : int;  (** Full misses that walked the page table. *)
  nt_stores : int;  (** Non-temporal stores streamed past the caches. *)
}

val create : ?ram_sharers:int -> Config.t -> t
(** [create cfg] builds a memory pipeline for one core of [cfg].
    [ram_sharers] (default 1) is the number of cores concurrently
    streaming from DRAM; it determines this core's share of controller
    bandwidth (Fig. 14's contention knee). *)

val access :
  ?nt:bool -> t -> now:float -> addr:int -> bytes:int -> write:bool -> float
(** Perform one data access and return the data-ready time.  Stores
    return the time their line is owned (write-allocate; misses charge
    double fill bandwidth for the read-for-ownership plus eventual
    writeback).  With [nt] (non-temporal), a store bypasses the caches
    through write-combining buffers: no allocation, no RFO, half the
    DRAM traffic — the [movntps] behaviour. *)

val access_nt :
  t -> nt:bool -> now:float -> addr:int -> bytes:int -> write:bool -> float
(** Exactly {!access}, with the non-temporal flag passed plainly.  The
    core's allocation-free path uses this so a dynamic [~nt] never
    constructs an option per access. *)

val access_batch :
  ?nt:bool ->
  t ->
  now:float ->
  addr:int ->
  stride:int ->
  count:int ->
  bytes:int ->
  write:bool ->
  float
(** [access_batch t ~now ~addr ~stride ~count ~bytes ~write] issues
    [count] accesses at [addr], [addr+stride], ... — all at time [now],
    the fill pipeline serializing internally — and returns the last
    access's data-ready time.  Observationally identical to folding
    {!access} over the addresses; the win is that a dense stream
    resolves its stream-table and translation bookkeeping once per
    line (the same-line accesses hit the repeat-access memo) instead
    of once per access, and the per-call overhead is paid once. *)

val config : t -> Config.t

val counters : t -> counters

val counters_to_alist : counters -> (string * int) list
(** Every counter as a [(name, value)] pair, in declaration order —
    the iteration telemetry and reporting layers use. *)

val reset_counters : t -> unit

val reset : t -> unit
(** Reset caches, prefetcher, buffers and counters (cold machine). *)

val drain : t -> unit
(** Complete all in-flight fills and rebase the pipeline clock to 0,
    keeping cache contents.  {!Core.run} calls this at the start of each
    run so warm caches survive between repetitions while stale busy
    times do not. *)

val level_of_last_access : t -> level
(** Which level served the most recent access (for tests). *)

val last_access_was_split : t -> bool
(** Whether the most recent access straddled a cache line (the core
    books a replay uop on the port when it did). *)

val set_access_hook : t -> (level -> hit:bool -> unit) option -> unit
(** Install (or clear) a per-lookup observer over the L1/L2/L3 data
    caches: fired once per level a lookup reaches, with that level's
    hit/miss outcome (so an L2 hit fires [L1 ~hit:false] then
    [L2 ~hit:true]; [Ram] is never passed — a RAM access is the
    [L3 ~hit:false] event).  The launcher's [--trace-detail] lanes use
    this; when no hook is installed each access costs one extra branch
    per level. *)

val ram_share_bytes_per_cycle : t -> float
(** The DRAM bandwidth share this pipeline was created with. *)
