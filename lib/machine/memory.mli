(** The per-core memory pipeline: L1/L2/L3 lookup on real addresses, a
    stride-limited stream prefetcher, a finite set of fill buffers
    (miss-level parallelism), fill-bandwidth serialization, and the
    cross-array 4 KiB aliasing penalty.

    Timing contract: {!access} is called with the core-clock time [now]
    at which the memory uop issues and returns the time at which the
    data is available.  All times are in core cycles (floats, so
    bandwidth fractions survive). *)

type t

type level = L1 | L2 | L3 | Ram

type counters = {
  accesses : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  ram_accesses : int;
  split_accesses : int;
  alias_stalls : int;
  prefetched_fills : int;
  tlb_misses : int;  (** First-level TLB misses. *)
  page_walks : int;  (** Full misses that walked the page table. *)
  nt_stores : int;  (** Non-temporal stores streamed past the caches. *)
}

val create : ?ram_sharers:int -> Config.t -> t
(** [create cfg] builds a memory pipeline for one core of [cfg].
    [ram_sharers] (default 1) is the number of cores concurrently
    streaming from DRAM; it determines this core's share of controller
    bandwidth (Fig. 14's contention knee). *)

val access :
  ?nt:bool -> t -> now:float -> addr:int -> bytes:int -> write:bool -> float
(** Perform one data access and return the data-ready time.  Stores
    return the time their line is owned (write-allocate; misses charge
    double fill bandwidth for the read-for-ownership plus eventual
    writeback).  With [nt] (non-temporal), a store bypasses the caches
    through write-combining buffers: no allocation, no RFO, half the
    DRAM traffic — the [movntps] behaviour. *)

val config : t -> Config.t

val counters : t -> counters

val counters_to_alist : counters -> (string * int) list
(** Every counter as a [(name, value)] pair, in declaration order —
    the iteration telemetry and reporting layers use. *)

val reset_counters : t -> unit

val reset : t -> unit
(** Reset caches, prefetcher, buffers and counters (cold machine). *)

val drain : t -> unit
(** Complete all in-flight fills and rebase the pipeline clock to 0,
    keeping cache contents.  {!Core.run} calls this at the start of each
    run so warm caches survive between repetitions while stale busy
    times do not. *)

val level_of_last_access : t -> level
(** Which level served the most recent access (for tests). *)

val last_access_was_split : t -> bool
(** Whether the most recent access straddled a cache line (the core
    books a replay uop on the port when it did). *)

val set_access_hook : t -> (level -> hit:bool -> unit) option -> unit
(** Install (or clear) a per-lookup observer over the L1/L2/L3 data
    caches: fired once per level a lookup reaches, with that level's
    hit/miss outcome (so an L2 hit fires [L1 ~hit:false] then
    [L2 ~hit:true]; [Ram] is never passed — a RAM access is the
    [L3 ~hit:false] event).  The launcher's [--trace-detail] lanes use
    this; when no hook is installed each access costs one extra branch
    per level. *)

val ram_share_bytes_per_cycle : t -> float
(** The DRAM bandwidth share this pipeline was created with. *)
