type env = { pinned : bool; interrupts_masked : bool; warmed : bool }

let stable_env = { pinned = true; interrupts_masked = true; warmed = true }

let hostile_env = { pinned = false; interrupts_masked = false; warmed = false }

type t = { mutable state : int64; amplitude : float }

let relative_amplitude env =
  let base = 0.002 in
  let base = if env.pinned then base else base +. 0.04 in
  let base = if env.interrupts_masked then base else base +. 0.015 in
  let base = if env.warmed then base else base +. 0.03 in
  base

let create ?(seed = 42) env =
  { state = Int64.of_int (seed lxor 0x9E3779B9); amplitude = relative_amplitude env }

(* SplitMix64: deterministic, no dependence on the global Random state. *)
let next_unit t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let perturb t cycles =
  (* Stall fraction in [0, amplitude), squared to bias toward small
     stalls with an occasional larger one — interrupt-like. *)
  let u = next_unit t in
  cycles *. (1. +. (t.amplitude *. u *. u))
