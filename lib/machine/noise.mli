(** Deterministic environmental-noise model.

    Real measurements jitter because of timer interrupts, core
    migrations and frequency transitions.  MicroLauncher's whole point
    (Section 4.7) is that pinning, interrupt masking, warm-up and
    repetition suppress this jitter.  We model the environment as a
    seeded PRNG whose amplitude depends on which stability features are
    enabled, so that (a) repeated runs with the same seed reproduce
    exactly, and (b) the launcher's stability claim is a testable
    property: spread with features on ≪ spread with features off. *)

type env = {
  pinned : bool;  (** Process pinned to a core (no migration spikes). *)
  interrupts_masked : bool;  (** Timer-tick perturbation suppressed. *)
  warmed : bool;  (** Caches warmed before measurement. *)
}

val stable_env : env
(** All stability features on — MicroLauncher's default. *)

val hostile_env : env
(** Nothing controlled — a bare `time ./a.out` style measurement. *)

type t

val create : ?seed:int -> env -> t
(** A noise source.  The same seed and env produce the same sequence. *)

val relative_amplitude : env -> float
(** The jitter amplitude implied by an environment (for tests):
    fraction of measured time, e.g. 0.002 for {!stable_env}. *)

val perturb : t -> float -> float
(** [perturb t cycles] returns the measured value of a true duration of
    [cycles]: the true value inflated by a non-negative random stall
    (noise only ever adds time). *)
