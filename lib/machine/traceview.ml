type event = { pc : int; text : string; issue : float; completion : float }

type t = {
  limit : int;
  mutable rev_events : event list;
  mutable count : int;
  mutable dropped : int;
}

let create ?(limit = 256) () = { limit; rev_events = []; count = 0; dropped = 0 }

let hook t pc insn ~issue ~completion =
  if t.count < t.limit then begin
    t.rev_events <-
      { pc; text = Mt_isa.Insn.to_string insn; issue; completion } :: t.rev_events;
    t.count <- t.count + 1
  end
  else t.dropped <- t.dropped + 1

let events t = t.count

let dropped t = t.dropped

let reset t =
  t.rev_events <- [];
  t.count <- 0;
  t.dropped <- 0

let render ?(width = 64) t =
  match List.rev t.rev_events with
  | [] -> "(no trace events collected)\n"
  | evts ->
    let t0 = List.fold_left (fun acc e -> Float.min acc e.issue) infinity evts in
    let t1 = List.fold_left (fun acc e -> Float.max acc e.completion) 0. evts in
    let span = Float.max 1. (t1 -. t0) in
    let col time =
      let c = int_of_float ((time -. t0) /. span *. float_of_int (width - 1)) in
      max 0 (min (width - 1) c)
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "cycles %.0f..%.0f, one column = %.1f cycles\n" t0 t1
         (span /. float_of_int width));
    (* Each instruction's bar runs from its issue to its completion;
       the bar is all '#' (the scoreboard reports issue time after all
       waits, so the wait shows as horizontal offset). *)
    List.iter
      (fun e ->
        let line = Bytes.make width ' ' in
        let a = col e.issue and b = col e.completion in
        for i = a to b do
          Bytes.set line i '#'
        done;
        Buffer.add_string buf
          (Printf.sprintf "%4d %-28s |%s|\n" e.pc
             (if String.length e.text > 28 then String.sub e.text 0 28 else e.text)
             (Bytes.to_string line)))
      evts;
    if t.dropped > 0 then
      Buffer.add_string buf
        (Printf.sprintf "(%d later event%s dropped at limit %d)\n" t.dropped
           (if t.dropped = 1 then "" else "s")
           t.limit);
    Buffer.contents buf
