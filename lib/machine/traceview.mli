(** ASCII pipeline-timeline rendering over {!Core.run}'s trace hook:
    one row per dynamic instruction, a bar from issue to completion.
    The visual counterpart of the scoreboard model — long bars are
    memory stalls, stacked short bars are port pressure, diagonal
    staircases are dependency chains. *)

type t

val create : ?limit:int -> unit -> t
(** A collector keeping at most [limit] events (default 256; later
    events are dropped). *)

val hook : t -> int -> Mt_isa.Insn.t -> issue:float -> completion:float -> unit
(** Pass [Traceview.hook t] as {!Core.run}'s [?trace] argument. *)

val events : t -> int
(** Events collected so far. *)

val dropped : t -> int
(** Events the hook discarded after the limit filled.  {!render}
    reports this in a footer line, so a truncated timeline is never
    mistaken for the whole run. *)

val render : ?width:int -> t -> string
(** Render the timeline, [width] columns wide (default 64).  Each row:
    {v   12 mulsd (%rdx), %xmm0      |      ====####          | v}
    where [=] spans dispatch-to-issue wait and [#] issue-to-completion
    execution.  Returns a note when nothing was collected. *)

val reset : t -> unit
