open Mt_machine

type comm = {
  ranks : int;
  cfg : Config.t;
  alpha_ns : float;
  beta_ns_per_byte : float;
}

let create ?(alpha_ns = 600.) ?(beta_ns_per_byte = 0.25) cfg ~ranks =
  if ranks < 1 then invalid_arg "Mt_mpi.create: ranks < 1";
  if ranks > Config.core_count cfg then
    invalid_arg
      (Printf.sprintf "Mt_mpi.create: %d ranks on a %d-core machine" ranks
         (Config.core_count cfg));
  { ranks; cfg; alpha_ns; beta_ns_per_byte }

let message_cycles c ~bytes =
  Config.cycles_of_ns c.cfg (c.alpha_ns +. (float_of_int bytes *. c.beta_ns_per_byte))

let send_cost c ~bytes = message_cycles c ~bytes

let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let barrier_cost c =
  if c.ranks <= 1 then 0.
  else float_of_int (log2_ceil c.ranks) *. message_cycles c ~bytes:0

let bcast_cost c ~bytes =
  if c.ranks <= 1 then 0.
  else float_of_int (log2_ceil c.ranks) *. message_cycles c ~bytes

let reduce_cost c ~bytes = bcast_cost c ~bytes

let allreduce_cost c ~bytes = reduce_cost c ~bytes +. bcast_cost c ~bytes

let alltoall_cost c ~bytes =
  if c.ranks <= 1 then 0.
  else float_of_int (c.ranks - 1) *. message_cycles c ~bytes

type communication =
  | No_comm
  | Halo_exchange of int
  | Allreduce of int
  | Barrier

let phase_comm_cost c = function
  | No_comm -> 0.
  | Halo_exchange bytes ->
    (* Exchange with both neighbours; sends overlap, receives serialize
       with the matching sends: two message times. *)
    2. *. message_cycles c ~bytes
  | Allreduce bytes -> allreduce_cost c ~bytes
  | Barrier -> barrier_cost c

let run_spmd c ~phases ~compute ~communication =
  let total = ref 0. in
  for phase = 0 to phases - 1 do
    let slowest = ref 0. in
    for rank = 0 to c.ranks - 1 do
      let t = compute ~rank ~phase ~sharers:c.ranks in
      if t > !slowest then slowest := t
    done;
    total := !total +. !slowest +. phase_comm_cost c (communication ~phase)
  done;
  !total

let efficiency c ~phases ~compute ~communication =
  let actual = run_spmd c ~phases ~compute ~communication in
  if actual <= 0. then 0.
  else begin
    (* Ideal: the same per-rank compute without contention, no
       communication, perfectly balanced. *)
    let ideal = ref 0. in
    for phase = 0 to phases - 1 do
      let sum = ref 0. in
      for rank = 0 to c.ranks - 1 do
        sum := !sum +. compute ~rank ~phase ~sharers:1
      done;
      ideal := !ideal +. (!sum /. float_of_int c.ranks)
    done;
    !ideal /. actual
  end
