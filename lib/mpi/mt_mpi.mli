(** An MPI runtime model — the paper's Section 7 future work ("fully
    supporting every OpenMP/MPI constructs") on top of the fork-mode
    execution model of Section 5.2.1 ("a typical HPC profile: one
    process on each core, each performing the same type of workload").

    Ranks are processes pinned one per core.  Communication uses the
    classic alpha-beta cost model: a message of [b] bytes between two
    ranks costs [alpha + b * beta]; collectives compose it along the
    usual logarithmic algorithms.  Intra-node defaults model
    shared-memory MPI transports of the paper's era. *)

type comm = {
  ranks : int;
  cfg : Mt_machine.Config.t;
  alpha_ns : float;  (** Per-message latency. *)
  beta_ns_per_byte : float;  (** Per-byte cost (inverse bandwidth). *)
}

val create : ?alpha_ns:float -> ?beta_ns_per_byte:float -> Mt_machine.Config.t -> ranks:int -> comm
(** Build a communicator of [ranks] processes on the machine.
    Defaults: 600 ns latency, 0.25 ns/byte (~4 GB/s shared-memory
    transport).
    @raise Invalid_argument if [ranks < 1] or exceeds the core count. *)

(** {1 Primitive costs, in core cycles} *)

val send_cost : comm -> bytes:int -> float
(** Point-to-point message. *)

val barrier_cost : comm -> float
(** Dissemination barrier: [ceil(log2 ranks)] message rounds. *)

val bcast_cost : comm -> bytes:int -> float
(** Binomial-tree broadcast. *)

val reduce_cost : comm -> bytes:int -> float
(** Binomial-tree reduction (same shape as broadcast). *)

val allreduce_cost : comm -> bytes:int -> float
(** Reduce + broadcast. *)

val alltoall_cost : comm -> bytes:int -> float
(** Pairwise exchange: [ranks - 1] rounds of [bytes] each. *)

(** {1 SPMD execution} *)

(** What a rank does in one phase, after its compute. *)
type communication =
  | No_comm
  | Halo_exchange of int  (** Send/receive [bytes] with both neighbours. *)
  | Allreduce of int
  | Barrier

val phase_comm_cost : comm -> communication -> float

val run_spmd :
  comm ->
  phases:int ->
  compute:(rank:int -> phase:int -> sharers:int -> float) ->
  communication:(phase:int -> communication) ->
  float
(** Model an SPMD job: in each phase every rank computes
    ([compute ~rank ~phase ~sharers] returns its core cycles, with
    [sharers = ranks] contending for DRAM) and then communicates; a
    phase ends when the slowest rank plus its communication completes
    (bulk-synchronous semantics).  Returns total core cycles. *)

val efficiency :
  comm ->
  phases:int ->
  compute:(rank:int -> phase:int -> sharers:int -> float) ->
  communication:(phase:int -> communication) ->
  float
(** Parallel efficiency: ideal time (total single-rank compute divided
    by ranks, undisturbed) over the modelled SPMD time. *)
