type verdict = Regression | Improvement | Unchanged | Added | Removed

let verdict_to_string = function
  | Regression -> "regression"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"
  | Added -> "added"
  | Removed -> "removed"

type quality_change =
  | Quality_unchanged
  | Quality_regression
  | Quality_improvement

let quality_change_to_string = function
  | Quality_unchanged -> "unchanged"
  | Quality_regression -> "regression"
  | Quality_improvement -> "improvement"

type bottleneck = {
  bn_category : string;
  bn_delta : float;  (* attributed-cycle growth of the category *)
  bn_fraction : float;  (* share of the median move it explains *)
}

type entry = {
  key : string;
  verdict : verdict;
  quality : quality_change;
  baseline : Snapshot.variant_stat option;
  current : Snapshot.variant_stat option;
  delta : float;
  band : float;
  bottleneck : bottleneck option;
}

type t = {
  threshold : float;
  min_band : float;
  entries : entry list;
  provenance_notes : string list;
}

let default_threshold = 3.0

let default_min_band = 0.001

(* The noise gate: a delta is only believed when it escapes the band
   spanned by both runs' own run-to-run variation (pooled CoV scaled by
   [threshold]).  The deterministic simulator often measures with
   stddev 0, so [min_band] keeps a floor under the gate — a 0.01 %
   wobble from a changed iteration count is not a regression. *)
let noise_band ~threshold ~min_band (a : Snapshot.variant_stat)
    (b : Snapshot.variant_stat) =
  let pooled =
    Mt_stats.pooled_cov
      [ (a.count, a.median, a.stddev); (b.count, b.median, b.stddev) ]
  in
  Float.max min_band (threshold *. pooled)

(* Orthogonal to the median gate: did the measurement itself get less
   trustworthy?  Judged on verdict rank, so Stable -> Noisy and
   Noisy -> Unstable both count — a faster median measured by an
   unstable series is not an improvement to trust. *)
(* Localize a believed median move to the bottleneck category whose
   attributed cycles grew (regression) or shrank (improvement) the
   most.  Profiles carry normalized shares, so each category's
   attributed value is share x median; the fraction reports how much of
   the whole move that one category explains.  Needs profiles on both
   sides — unprofiled runs diff exactly as before. *)
let localize (b : Snapshot.variant_stat) (c : Snapshot.variant_stat) verdict =
  let bp = b.Snapshot.profile and cp = c.Snapshot.profile in
  let dm = c.Snapshot.median -. b.Snapshot.median in
  if bp = [] || cp = [] || dm = 0. then None
  else
    match verdict with
    | Unchanged | Added | Removed -> None
    | Regression | Improvement ->
      let names =
        List.sort_uniq Stdlib.compare (List.map fst bp @ List.map fst cp)
      in
      let share p n = Option.value ~default:0. (List.assoc_opt n p) in
      let sign = if verdict = Regression then 1. else -1. in
      let best =
        List.fold_left
          (fun acc n ->
            let d =
              (share cp n *. c.Snapshot.median)
              -. (share bp n *. b.Snapshot.median)
            in
            match acc with
            | Some (_, bd) when bd *. sign >= d *. sign -> acc
            | _ -> Some (n, d))
          None names
      in
      Option.map
        (fun (n, d) ->
          { bn_category = n; bn_delta = d; bn_fraction = d /. dm })
        best

let quality_change_of (b : Snapshot.variant_stat) (c : Snapshot.variant_stat) =
  let rb = Mt_quality.verdict_rank b.Snapshot.verdict in
  let rc = Mt_quality.verdict_rank c.Snapshot.verdict in
  if rc > rb then Quality_regression
  else if rc < rb then Quality_improvement
  else Quality_unchanged

let compare ?(threshold = default_threshold) ?(min_band = default_min_band)
    ~baseline current =
  let open Snapshot in
  let notes = ref [] in
  let note field a b =
    if a <> b && a <> "" && b <> "" then
      notes :=
        Printf.sprintf "%s changed between runs: %s -> %s" field a b :: !notes
  in
  note "kernel hash" baseline.kernel_hash current.kernel_hash;
  note "machine hash" baseline.machine_hash current.machine_hash;
  note "kernel" baseline.kernel_name current.kernel_name;
  note "machine" baseline.machine_name current.machine_name;
  (* Quarantined variants carry no stats, so they surface as
     added/removed in the table; the note keeps the reader from
     mistaking a supervision casualty for a genuinely deleted variant. *)
  List.iter
    (fun k ->
      notes :=
        Printf.sprintf
          "variant %s was quarantined in the current run (its \"removed\" \
           verdict reflects the quarantine, not a deleted variant)"
          k
        :: !notes)
    current.quarantined;
  List.iter
    (fun k ->
      notes :=
        Printf.sprintf "variant %s was quarantined in the baseline run" k
        :: !notes)
    baseline.quarantined;
  let matched =
    List.map
      (fun (b : variant_stat) ->
        match
          List.find_opt (fun (c : variant_stat) -> c.key = b.key)
            current.variants
        with
        | None ->
          {
            key = b.key;
            verdict = Removed;
            quality = Quality_unchanged;
            baseline = Some b;
            current = None;
            delta = 0.;
            band = 0.;
            bottleneck = None;
          }
        | Some c ->
          let denom = if b.median = 0. then 1. else Float.abs b.median in
          let delta = (c.median -. b.median) /. denom in
          let band = noise_band ~threshold ~min_band b c in
          let verdict =
            if Float.abs delta <= band then Unchanged
            else if delta > 0. then Regression
            else Improvement
          in
          {
            key = b.key;
            verdict;
            quality = quality_change_of b c;
            baseline = Some b;
            current = Some c;
            delta;
            band;
            bottleneck = localize b c verdict;
          })
      baseline.variants
  in
  let added =
    List.filter_map
      (fun (c : variant_stat) ->
        if List.exists (fun (b : variant_stat) -> b.key = c.key) baseline.variants
        then None
        else
          Some
            {
              key = c.key;
              verdict = Added;
              quality = Quality_unchanged;
              baseline = None;
              current = Some c;
              delta = 0.;
              band = 0.;
              bottleneck = None;
            })
      current.variants
  in
  {
    threshold;
    min_band;
    entries = matched @ added;
    provenance_notes = List.rev !notes;
  }

let has_regressions t = List.exists (fun e -> e.verdict = Regression) t.entries

let has_quality_regressions t =
  List.exists (fun e -> e.quality = Quality_regression) t.entries

let count v t = List.length (List.filter (fun e -> e.verdict = v) t.entries)

let count_quality v t =
  List.length (List.filter (fun e -> e.quality = v) t.entries)

let render t =
  let buf = Buffer.create 1024 in
  let key_w =
    List.fold_left (fun acc e -> max acc (String.length e.key)) 7 t.entries
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %12s %12s %9s %8s  %s\n" key_w "variant" "baseline"
       "current" "delta" "band" "verdict");
  let med = function
    | Some (s : Snapshot.variant_stat) -> Printf.sprintf "%.4f" s.median
    | None -> "-"
  in
  let vkind = function
    | Some (s : Snapshot.variant_stat) ->
      Mt_quality.verdict_kind s.Snapshot.verdict
    | None -> "?"
  in
  List.iter
    (fun e ->
      let delta, band =
        match e.verdict with
        | Added | Removed -> ("-", "-")
        | _ ->
          ( Printf.sprintf "%+.2f%%" (100. *. e.delta),
            Printf.sprintf "%.2f%%" (100. *. e.band) )
      in
      let quality =
        match e.quality with
        | Quality_unchanged -> ""
        | Quality_regression ->
          Printf.sprintf "; quality %s->%s" (vkind e.baseline) (vkind e.current)
        | Quality_improvement ->
          Printf.sprintf "; quality %s->%s" (vkind e.baseline) (vkind e.current)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s %12s %12s %9s %8s  %s%s\n" key_w e.key
           (med e.baseline) (med e.current) delta band
           (verdict_to_string e.verdict) quality))
    t.entries;
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    t.provenance_notes;
  (* Believed moves with profiles on both sides carry an attribution
     note: the category whose attributed cycles moved most, and how
     much of the whole delta it explains. *)
  List.iter
    (fun e ->
      match e.bottleneck with
      | Some bn ->
        Buffer.add_string buf
          (Printf.sprintf
             "note: %s for %s: %+.1f%% cycles, %.0f%% attributable to %s %s\n"
             (verdict_to_string e.verdict) e.key (100. *. e.delta)
             (100. *. bn.bn_fraction) bn.bn_category
             (if bn.bn_delta >= 0. then "growth" else "shrinkage"))
      | None -> ())
    t.entries;
  (* Quality regressions get their own note line, distinct from the
     perf summary: a series that went unstable needs a different fix
     (environment, warm-up, budget) than a slower median. *)
  List.iter
    (fun e ->
      match e.quality with
      | Quality_regression ->
        Buffer.add_string buf
          (Printf.sprintf
             "note: measurement quality regressed for %s: %s -> %s\n" e.key
             (match e.baseline with
             | Some b -> Mt_quality.verdict_to_string b.Snapshot.verdict
             | None -> "?")
             (match e.current with
             | Some c -> Mt_quality.verdict_to_string c.Snapshot.verdict
             | None -> "?"))
      | Quality_unchanged | Quality_improvement -> ())
    t.entries;
  Buffer.add_string buf
    (Printf.sprintf
       "%d variant%s: %d regression%s, %d improvement%s, %d unchanged, %d \
        added, %d removed, %d quality regression%s (threshold %g, min band \
        %g)\n"
       (List.length t.entries)
       (if List.length t.entries = 1 then "" else "s")
       (count Regression t)
       (if count Regression t = 1 then "" else "s")
       (count Improvement t)
       (if count Improvement t = 1 then "" else "s")
       (count Unchanged t) (count Added t) (count Removed t)
       (count_quality Quality_regression t)
       (if count_quality Quality_regression t = 1 then "" else "s")
       t.threshold t.min_band);
  Buffer.contents buf

let entry_to_json e =
  let stat = function
    | None -> Json.Null
    | Some (s : Snapshot.variant_stat) ->
      Json.Obj
        [
          ("median", Json.Num s.median);
          ("stddev", Json.Num s.stddev);
          ("count", Json.Num (float_of_int s.count));
          ("rciw", Json.Num s.rciw);
          ("verdict", Json.Str (Mt_quality.verdict_to_string s.Snapshot.verdict));
        ]
  in
  Json.Obj
    [
      ("key", Json.Str e.key);
      ("verdict", Json.Str (verdict_to_string e.verdict));
      ("quality", Json.Str (quality_change_to_string e.quality));
      ("baseline", stat e.baseline);
      ("current", stat e.current);
      ("delta", Json.Num e.delta);
      ("band", Json.Num e.band);
      ( "bottleneck",
        match e.bottleneck with
        | None -> Json.Null
        | Some bn ->
          Json.Obj
            [
              ("category", Json.Str bn.bn_category);
              ("delta", Json.Num bn.bn_delta);
              ("fraction", Json.Num bn.bn_fraction);
            ] );
    ]

let to_json t =
  Json.Obj
    [
      ("threshold", Json.Num t.threshold);
      ("min_band", Json.Num t.min_band);
      ("regressions", Json.Bool (has_regressions t));
      ("quality_regressions", Json.Bool (has_quality_regressions t));
      ("entries", Json.List (List.map entry_to_json t.entries));
      ("notes", Json.List (List.map (fun n -> Json.Str n) t.provenance_notes));
    ]
