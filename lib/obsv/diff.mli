(** Compare two {!Snapshot}s with a CoV-based noise gate.

    A variant's median delta only counts as a regression or improvement
    when it escapes the noise band pooled from both runs' own
    coefficient of variation — a small delta inside the band is
    "unchanged", so CI gates do not flap on measurement noise. *)

type verdict = Regression | Improvement | Unchanged | Added | Removed

val verdict_to_string : verdict -> string

(** Whether the {e measurement quality} moved between the runs —
    orthogonal to the median verdict.  Judged on
    {!Mt_quality.verdict_rank}, so both Stable→Noisy and Noisy→Unstable
    are regressions: a faster median measured by a shakier series is
    not a win to trust. *)
type quality_change =
  | Quality_unchanged
  | Quality_regression
  | Quality_improvement

val quality_change_to_string : quality_change -> string
(** ["unchanged"] / ["regression"] / ["improvement"]. *)

(** Where a believed median move came from, computed from the two runs'
    bottleneck-attribution profiles (schema-4 snapshots recorded with
    [--profile]).  Each category's attributed cycles are share x median;
    the bottleneck is the category whose attributed cycles grew most
    (regression) or shrank most (improvement). *)
type bottleneck = {
  bn_category : string;  (** e.g. ["mem-L2"], ["port-alu"], ["dependency"] *)
  bn_delta : float;  (** attributed-cycle change of that category *)
  bn_fraction : float;
      (** [bn_delta / (current median - baseline median)] — the share of
          the whole move this one category explains *)
}

type entry = {
  key : string;
  verdict : verdict;
  quality : quality_change;
      (** [Quality_unchanged] for [Added]/[Removed] entries (nothing to
          compare). *)
  baseline : Snapshot.variant_stat option;  (** [None] when [Added] *)
  current : Snapshot.variant_stat option;  (** [None] when [Removed] *)
  delta : float;  (** relative median delta vs. baseline; larger = slower *)
  band : float;  (** the noise band the delta was judged against *)
  bottleneck : bottleneck option;
      (** [None] unless the verdict is a believed move and both runs
          carry attribution profiles *)
}

type t = {
  threshold : float;
  min_band : float;
  entries : entry list;
  provenance_notes : string list;
      (** kernel/machine hash mismatches — the runs may not be comparable *)
}

val default_threshold : float
(** 3.0 — a delta must exceed 3x the pooled CoV to be believed. *)

val default_min_band : float
(** 0.001 — floor under the band, since the deterministic simulator can
    measure with stddev 0. *)

val compare :
  ?threshold:float -> ?min_band:float -> baseline:Snapshot.t -> Snapshot.t -> t
(** Match variants by [key]; variants only in the current snapshot are
    [Added], only in the baseline [Removed] (neither affects the exit
    verdict). *)

val has_regressions : t -> bool

val has_quality_regressions : t -> bool
(** Any matched variant whose verdict rank worsened. *)

val render : t -> string
(** Terminal table: one row per variant plus a summary line and any
    provenance notes.  Believed moves with profiles on both sides add a
    per-variant attribution note ("regression for k: +9.8% cycles, 87%
    attributable to mem-L2 growth"); quality regressions add their own
    "measurement quality regressed" note line, distinct from the perf
    summary. *)

val to_json : t -> Json.t
