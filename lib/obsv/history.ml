(* The longitudinal snapshot archive: a directory of full snapshot
   documents plus an append-only JSON-lines manifest ordering them.

     DIR/
       manifest.jsonl          one line per archived run, seq-ordered
       snap-000007-1a2b3c4d5e6f.json   the schema-versioned snapshots

   Snapshot files are content-digest named and written staged-then-
   renamed (the Cache idiom), so a reader never sees a half-written
   document; the manifest is appended one flushed line at a time under
   the directory's advisory lock (the Cache eviction idiom), so
   concurrent appenders — several CLI runs plus an mt_serve daemon
   sharing one archive — get distinct sequence numbers and never
   interleave bytes.  A process killed mid-append leaves at worst one
   torn final line, which the loader drops and the next appender
   repairs with a newline (the Journal idiom). *)

type entry = {
  seq : int;
  label : string;
  created_at : float;
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  schema : int;
  file : string;
}

type t = {
  dir : string;
  entries : entry list;  (* ascending seq *)
  loaded : (int, (Snapshot.t, string) result) Hashtbl.t;
}

let manifest_name = "manifest.jsonl"

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* ------------------------------------------------------------------ *)
(* Manifest codec                                                      *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Json.Obj
    [
      ("seq", Json.Num (float_of_int e.seq));
      ("label", Json.Str e.label);
      ("created_at", Json.Num e.created_at);
      ( "kernel",
        Json.Obj [ ("name", Json.Str e.kernel_name); ("hash", Json.Str e.kernel_hash) ] );
      ( "machine",
        Json.Obj
          [ ("name", Json.Str e.machine_name); ("hash", Json.Str e.machine_hash) ] );
      ("schema", Json.Num (float_of_int e.schema));
      ("file", Json.Str e.file);
    ]

let entry_of_json json =
  let str name = Option.bind (Json.member name json) Json.to_str in
  let int name = Option.bind (Json.member name json) Json.to_int in
  let num name = Option.bind (Json.member name json) Json.to_float in
  let sub name part =
    Option.value ~default:""
      (Option.bind (Json.member name json) (fun v ->
           Option.bind (Json.member part v) Json.to_str))
  in
  match (int "seq", str "file") with
  | Some seq, Some file ->
    Some
      {
        seq;
        label = Option.value ~default:"" (str "label");
        created_at = Option.value ~default:0. (num "created_at");
        kernel_name = sub "kernel" "name";
        kernel_hash = sub "kernel" "hash";
        machine_name = sub "machine" "name";
        machine_hash = sub "machine" "hash";
        schema = Option.value ~default:0 (int "schema");
        file;
      }
  | _ -> None

let entry_of_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok json -> entry_of_json json

(* ------------------------------------------------------------------ *)
(* File safety                                                         *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ()
  end

(* Same advisory-lock shape as the shared cache's eviction scan: the
   lock file is dedicated so it never collides with archive content,
   and lockf releases on process death, so a crashed appender cannot
   wedge the archive.  An unlockable directory degrades to unguarded
   appends — sequence collisions become possible but each append is
   still one atomic rename plus one flushed write. *)
let with_dir_lock dir f =
  let lock_path = Filename.concat dir ".lock" in
  match Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error _ -> f ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Unix.lockf fd Unix.F_LOCK 0 with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        f ())

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | text -> Ok text
        | exception (End_of_file | Sys_error _) -> Error (path ^ ": short read"))

(* Torn or foreign manifest lines are skipped, not fatal: the archive
   survives a SIGKILL mid-append losing only that one record. *)
let read_manifest path =
  match read_file path with
  | Error _ -> []
  | Ok text ->
    List.fold_left
      (fun acc line ->
        if String.trim line = "" then acc
        else match entry_of_line line with Some e -> e :: acc | None -> acc)
      []
      (String.split_on_char '\n' text)
    |> List.sort (fun a b -> compare (a.seq, a.file) (b.seq, b.file))

let ends_mid_line path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        len > 0
        &&
        (seek_in ic (len - 1);
         input_char ic <> '\n'))

(* ------------------------------------------------------------------ *)
(* Append                                                              *)
(* ------------------------------------------------------------------ *)

let append ?label ~dir (snap : Snapshot.t) =
  mkdir_p dir;
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    err "history: cannot create archive directory %s" dir
  else
    with_dir_lock dir (fun () ->
        let manifest = Filename.concat dir manifest_name in
        let existing = read_manifest manifest in
        let seq =
          1 + List.fold_left (fun acc e -> max acc e.seq) 0 existing
        in
        let text = Snapshot.to_string snap in
        let digest = String.sub (Digest.to_hex (Digest.string text)) 0 12 in
        let file = Printf.sprintf "snap-%06d-%s.json" seq digest in
        let entry =
          {
            seq;
            label =
              (match label with
              | Some l -> l
              | None -> Printf.sprintf "run-%06d" seq);
            created_at = snap.Snapshot.created_at;
            kernel_name = snap.Snapshot.kernel_name;
            kernel_hash = snap.Snapshot.kernel_hash;
            machine_name = snap.Snapshot.machine_name;
            machine_hash = snap.Snapshot.machine_hash;
            schema = snap.Snapshot.schema;
            file;
          }
        in
        (* Stage-and-rename: the snapshot document appears atomically
           under its final name, never half-written.  The temp name
           carries the pid so concurrent appenders (should the lock be
           unavailable) cannot collide. *)
        let tmp =
          Filename.concat dir (Printf.sprintf ".tmp-%d-%06d" (Unix.getpid ()) seq)
        in
        match
          let oc = open_out_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc text)
        with
        | exception Sys_error msg ->
          (try Sys.remove tmp with Sys_error _ -> ());
          err "history: %s" msg
        | () -> (
          match Sys.rename tmp (Filename.concat dir file) with
          | exception Sys_error msg ->
            (try Sys.remove tmp with Sys_error _ -> ());
            err "history: %s" msg
          | () -> (
            let torn = ends_mid_line manifest in
            match
              open_out_gen
                [ Open_wronly; Open_creat; Open_append; Open_binary ]
                0o644 manifest
            with
            | exception Sys_error msg -> err "history: %s" msg
            | oc ->
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () ->
                  if torn then output_char oc '\n';
                  output_string oc (Json.to_string (entry_to_json entry));
                  output_char oc '\n';
                  flush oc);
              Mt_telemetry.incr (Mt_telemetry.global ()) "history.appends";
              Ok entry)))

(* ------------------------------------------------------------------ *)
(* Load and query                                                      *)
(* ------------------------------------------------------------------ *)

let load dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    err "history: no archive directory at %s" dir
  else
    let entries = read_manifest (Filename.concat dir manifest_name) in
    Ok { dir; entries; loaded = Hashtbl.create 16 }

let dir t = t.dir

let entries t = t.entries

let length t = List.length t.entries

let latest t =
  List.fold_left (fun _ e -> Some e) None t.entries

let snapshot t entry =
  match Hashtbl.find_opt t.loaded entry.seq with
  | Some r -> r
  | None ->
    let r =
      match read_file (Filename.concat t.dir entry.file) with
      | Error msg -> err "history: %s" msg
      | Ok text -> (
        match Snapshot.of_string text with
        | Error msg -> err "history: %s: %s" entry.file msg
        | Ok snap -> Ok snap)
    in
    Hashtbl.replace t.loaded entry.seq r;
    r

(* Only runs measuring the same content are comparable: the default
   query plane is "everything matching these hashes", which mt_report
   anchors at the newest entry, so an archive shared across kernels or
   machine upgrades analyses each lineage separately. *)
let matching ?kernel_hash ?machine_hash t =
  List.filter
    (fun e ->
      (match kernel_hash with None -> true | Some h -> e.kernel_hash = h)
      && match machine_hash with None -> true | Some h -> e.machine_hash = h)
    t.entries

let keys ?entries t =
  let entries = match entries with Some es -> es | None -> t.entries in
  let seen = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match snapshot t e with
      | Error _ -> ()  (* a vanished or corrupt document drops out *)
      | Ok snap ->
        List.iter
          (fun (v : Snapshot.variant_stat) ->
            if not (Hashtbl.mem seen v.Snapshot.key) then begin
              Hashtbl.replace seen v.Snapshot.key ();
              order := v.Snapshot.key :: !order
            end)
          snap.Snapshot.variants)
    entries;
  List.rev !order

let series ?entries t ~variant =
  let entries = match entries with Some es -> es | None -> t.entries in
  List.filter_map
    (fun e ->
      match snapshot t e with
      | Error _ -> None
      | Ok snap ->
        Option.map
          (fun v -> (e, v))
          (List.find_opt
             (fun (v : Snapshot.variant_stat) -> v.Snapshot.key = variant)
             snap.Snapshot.variants))
    entries

type lineage = {
  l_kernel_name : string;
  l_kernel_hash : string;
  l_machine_name : string;
  l_machine_hash : string;
  l_entries : entry list;
}

(* The archive's comparable sub-histories, grouped by (kernel hash,
   machine hash) in order of first appearance — the read-side accessor
   mt_report and mt_optimize share instead of re-filtering manifest
   entries themselves. *)
let lineages t =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = (e.kernel_hash, e.machine_hash) in
      match Hashtbl.find_opt tbl k with
      | Some es -> Hashtbl.replace tbl k (e :: es)
      | None ->
        Hashtbl.replace tbl k [ e ];
        order := (k, e) :: !order)
    t.entries;
  List.rev_map
    (fun ((k, first) : (string * string) * entry) ->
      {
        l_kernel_name = first.kernel_name;
        l_kernel_hash = first.kernel_hash;
        l_machine_name = first.machine_name;
        l_machine_hash = first.machine_hash;
        l_entries = List.rev (Hashtbl.find tbl k);
      })
    !order

(* The lineage a fresh run of "whatever was archived last" belongs to —
   what mt_report --history anchors its timeline on. *)
let latest_lineage t =
  match latest t with
  | None -> None
  | Some newest ->
    List.find_opt
      (fun l ->
        l.l_kernel_hash = newest.kernel_hash
        && l.l_machine_hash = newest.machine_hash)
      (lineages t)

(* The run-to-run noise the trend band is gated by: pooled CoV over
   every archived run's own (count, median, stddev) — within-run
   variability, which a genuine cross-run step does not inflate. *)
let pooled_noise points =
  Mt_stats.pooled_cov
    (List.map
       (fun (_, (v : Snapshot.variant_stat)) ->
         (v.Snapshot.count, v.Snapshot.median, v.Snapshot.stddev))
       points)

let trend ?threshold ?min_band points =
  let medians =
    Array.of_list
      (List.map (fun (_, (v : Snapshot.variant_stat)) -> v.Snapshot.median) points)
  in
  let noise = pooled_noise points in
  (* Deterministic archives (the simulator often measures with stddev
     0) would pool to a zero band and flag float dust; fall back to the
     successive-difference estimate, the larger of the two wins. *)
  let noise = Float.max noise (Mt_stats.Trend.successive_noise medians) in
  Mt_stats.Trend.analyze ?threshold ?min_band ~noise medians

(* ------------------------------------------------------------------ *)
(* Windowed baseline                                                   *)
(* ------------------------------------------------------------------ *)

let default_window = 5

(* The gate baseline mt_report --history diffs a fresh snapshot
   against: per variant, the last [window] runs of the current stable
   regime — everything after the latest changepoint, so a step that
   already landed (and was presumably triaged) does not poison the
   baseline forever — collapsed to the median of their medians with a
   pooled stddev.  A variant absent from the selected runs is simply
   absent from the baseline (it will surface as "added"). *)
let baseline ?(window = default_window) ?threshold ?min_band t entries =
  match List.rev entries with
  | [] -> Error "history: no archived runs to build a baseline from"
  | newest :: _ -> (
    match snapshot t newest with
    | Error _ as e -> e |> Result.map_error (fun m -> m)
    | Ok newest_snap ->
      let window = max 1 window in
      let stats =
        List.filter_map
          (fun key ->
            let points = series ~entries t ~variant:key in
            if points = [] then None
            else begin
              let tr = trend ?threshold ?min_band points in
              let regime =
                match tr.Mt_stats.Trend.changepoint with
                | Some k -> List.filteri (fun i _ -> i >= k) points
                | None -> points
              in
              let len = List.length regime in
              let windowed =
                List.filteri (fun i _ -> i >= len - window) regime
              in
              let stats = List.map snd windowed in
              let medians =
                Array.of_list
                  (List.map (fun (v : Snapshot.variant_stat) -> v.Snapshot.median) stats)
              in
              let median = Mt_stats.median medians in
              let stddev =
                Mt_stats.pooled_stddev
                  (List.map
                     (fun (v : Snapshot.variant_stat) ->
                       (v.Snapshot.count, v.Snapshot.stddev))
                     stats)
              in
              let count =
                List.fold_left
                  (fun acc (v : Snapshot.variant_stat) -> acc + v.Snapshot.count)
                  0 stats
              in
              let template = List.nth stats (List.length stats - 1) in
              Some
                {
                  template with
                  Snapshot.median;
                  mean = median;
                  stddev;
                  count;
                  cov = (if median = 0. then 0. else stddev /. abs_float median);
                  minimum = Mt_stats.min_of medians;
                  maximum = Mt_stats.max_of medians;
                }
            end)
          (keys ~entries t)
      in
      Ok
        (Snapshot.make ~tool:"mt_history-baseline"
           ~created_at:newest.created_at
           ~kernel:(newest.kernel_name, newest.kernel_hash)
           ~machine:(newest.machine_name, newest.machine_hash)
           ~options:newest_snap.Snapshot.options
           ~seed:newest_snap.Snapshot.seed stats))
