(** The longitudinal snapshot archive behind continuous benchmarking:
    an append-only directory of {!Snapshot} documents plus a JSON-lines
    manifest ordering them, safe to share between concurrent CLI runs
    and a live [mt_serve] daemon.

    Layout: [DIR/manifest.jsonl] holds one compact JSON record per
    archived run (sequence number, label, creation time, kernel and
    machine content hashes, schema version, file name); the snapshots
    themselves live alongside as [snap-<seq>-<digest>.json], named by
    the content digest of the document.  Appends take the directory's
    advisory lock, write the snapshot staged-then-renamed, and add one
    flushed manifest line — so a crash mid-append costs at most one
    torn manifest line, which loading skips and the next append
    repairs.

    On top of the store sit the analysis helpers [mt_report --history]
    is built from: per-variant time-series extraction, noise-pooled
    {!Mt_stats.Trend} classification, and the windowed {!baseline}
    a fresh snapshot is gated against. *)

type entry = {
  seq : int;  (** monotonically increasing archive position *)
  label : string;  (** caller-supplied run label, or ["run-<seq>"] *)
  created_at : float;  (** the snapshot's wall-clock stamp *)
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  schema : int;  (** the archived document's snapshot schema *)
  file : string;  (** snapshot file name relative to the archive dir *)
}

type t
(** A loaded archive: the manifest plus a lazy snapshot cache. *)

val manifest_name : string
(** ["manifest.jsonl"]. *)

val append : ?label:string -> dir:string -> Snapshot.t -> (entry, string) result
(** Archive one snapshot, creating [dir] (and parents) on first use.
    Returns the manifest entry it was recorded under.  Concurrent
    appenders serialise on [dir/.lock]; each gets a distinct [seq]. *)

val load : string -> (t, string) result
(** Load an archive's manifest (snapshot documents load lazily on
    demand).  Torn or foreign manifest lines are skipped.  An existing
    but empty directory loads as an empty archive; a missing directory
    is an error. *)

val dir : t -> string

val entries : t -> entry list
(** All manifest entries in ascending [seq] order. *)

val length : t -> int

val latest : t -> entry option

val snapshot : t -> entry -> (Snapshot.t, string) result
(** The archived document behind [entry] (cached after first read). *)

val matching : ?kernel_hash:string -> ?machine_hash:string -> t -> entry list
(** Entries whose hashes equal the given ones (either filter may be
    omitted) — the comparable lineage of one kernel on one machine
    configuration within a shared archive. *)

val keys : ?entries:entry list -> t -> string list
(** Union of variant keys across the given entries (default: all), in
    order of first appearance. *)

val series : ?entries:entry list -> t -> variant:string -> (entry * Snapshot.variant_stat) list
(** The per-run time series of one variant: every given entry whose
    snapshot contains [variant], oldest first.  Runs missing the
    variant (or with unreadable documents) simply drop out. *)

(** {1 Lineages}

    A shared archive interleaves runs of different kernels and
    machines; a {e lineage} is the comparable sub-history of one
    (kernel hash, machine hash) pair.  [mt_report --history] and
    [mt_optimize] both read the archive through this accessor instead
    of re-filtering manifest entries themselves. *)

type lineage = {
  l_kernel_name : string;
  l_kernel_hash : string;
  l_machine_name : string;
  l_machine_hash : string;
  l_entries : entry list;  (** ascending [seq] order *)
}

val lineages : t -> lineage list
(** The archive partitioned into lineages, in order of each lineage's
    first appearance.  Names are taken from the lineage's oldest entry
    (hashes, not names, define identity). *)

val latest_lineage : t -> lineage option
(** The lineage the newest archived run belongs to — what a fresh run
    of "whatever was measured last" compares against.  [None] only for
    an empty archive. *)

val pooled_noise : (entry * Snapshot.variant_stat) list -> float
(** Pooled within-run coefficient of variation across the series —
    the measurement-noise scale cross-run shifts are judged against
    (same pooling as the two-run diff gate). *)

val trend :
  ?threshold:float -> ?min_band:float ->
  (entry * Snapshot.variant_stat) list -> Mt_stats.Trend.result
(** Classify a variant's median series with {!Mt_stats.Trend.analyze},
    gated by the larger of {!pooled_noise} and the series' own
    successive-difference estimate (so deterministic, zero-stddev
    archives still get a non-degenerate band). *)

val default_window : int
(** Runs per windowed baseline (5). *)

val baseline :
  ?window:int -> ?threshold:float -> ?min_band:float ->
  t -> entry list -> (Snapshot.t, string) result
(** The synthetic baseline snapshot a fresh run is diffed against:
    per variant, the last [window] runs of the current stable regime
    (everything after the latest changepoint, so an already-landed step
    does not poison the baseline) collapsed to the median of their
    medians with a pooled stddev and summed sample count.  Identity
    (kernel, machine, options, seed) is taken from the newest given
    entry; the tool field is ["mt_history-baseline"].  Errors when
    [entries] is empty or the newest document is unreadable. *)
