type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape str =
  let b = Buffer.create (String.length str + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str;
  Buffer.contents b

(* Shortest decimal form that parses back to the same float: snapshots
   must round-trip exactly (save → load → diff is empty). *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec write b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num x ->
    if Float.is_nan x || Float.is_integer (x /. 0.) then Buffer.add_string b "null"
    else Buffer.add_string b (float_str x)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        write b ~indent ~level:(level + 1) x)
      xs;
    newline ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj members ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        if indent then Buffer.add_char b ' ';
        write b ~indent ~level:(level + 1) x)
      members;
    newline ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(indent = false) v =
  let b = Buffer.create 1024 in
  write b ~indent ~level:0 v;
  if indent then Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let fail i fmt = Printf.ksprintf (fun msg -> raise (Parse_error (i, msg))) fmt

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let rec ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r')
    then ws (i + 1)
    else i
  in
  let lit word v i =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then (v, i + l)
    else fail i "expected %s" word
  in
  let number i =
    let j = ref i in
    if !j < n && s.[!j] = '-' then Stdlib.incr j;
    let digit c = c >= '0' && c <= '9' in
    while
      !j < n
      && (digit s.[!j] || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = 'E'
         || s.[!j] = '+' || s.[!j] = '-')
    do
      Stdlib.incr j
    done;
    if !j = i then fail i "expected a number";
    match float_of_string_opt (String.sub s i (!j - i)) with
    | Some v -> (Num v, !j)
    | None -> fail i "malformed number %s" (String.sub s i (!j - i))
  in
  let string_lit i =
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match s.[i] with
        | '"' -> (Buffer.contents b, i + 1)
        | '\\' ->
          if i + 1 >= n then fail i "truncated escape"
          else (
            match s.[i + 1] with
            | '"' -> Buffer.add_char b '"'; go (i + 2)
            | '\\' -> Buffer.add_char b '\\'; go (i + 2)
            | '/' -> Buffer.add_char b '/'; go (i + 2)
            | 'b' -> Buffer.add_char b '\b'; go (i + 2)
            | 'f' -> Buffer.add_char b '\012'; go (i + 2)
            | 'n' -> Buffer.add_char b '\n'; go (i + 2)
            | 'r' -> Buffer.add_char b '\r'; go (i + 2)
            | 't' -> Buffer.add_char b '\t'; go (i + 2)
            | 'u' ->
              if i + 5 >= n then fail i "truncated \\u escape"
              else begin
                (match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                | Some code -> utf8_of_code b code
                | None -> fail i "malformed \\u escape");
                go (i + 6)
              end
            | c -> fail i "unknown escape \\%c" c)
        | c when Char.code c < 0x20 -> fail i "raw control byte in string"
        | c ->
          Buffer.add_char b c;
          go (i + 1)
    in
    go i
  in
  let rec value i =
    let i = ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | '{' -> obj (ws (i + 1)) []
      | '[' -> arr (ws (i + 1)) []
      | '"' ->
        let str, j = string_lit (i + 1) in
        (Str str, j)
      | 't' -> lit "true" (Bool true) i
      | 'f' -> lit "false" (Bool false) i
      | 'n' -> lit "null" Null i
      | '-' | '0' .. '9' -> number i
      | c -> fail i "unexpected character %C" c
  and obj i acc =
    (* the early '}' applies only to "{}" — after a comma a member is
       required, so "{"a":1,}" is rejected *)
    if acc = [] && i < n && s.[i] = '}' then (Obj [], i + 1)
    else begin
      let i = ws i in
      if i >= n || s.[i] <> '"' then fail i "expected an object key";
      let key, i = string_lit (i + 1) in
      let i = ws i in
      if i >= n || s.[i] <> ':' then fail i "expected ':'";
      let v, i = value (i + 1) in
      let i = ws i in
      if i < n && s.[i] = ',' then obj (ws (i + 1)) ((key, v) :: acc)
      else if i < n && s.[i] = '}' then (Obj (List.rev ((key, v) :: acc)), i + 1)
      else fail i "expected ',' or '}'"
    end
  and arr i acc =
    if acc = [] && i < n && s.[i] = ']' then (List [], i + 1)
    else begin
      let v, i = value i in
      let i = ws i in
      if i < n && s.[i] = ',' then arr (ws (i + 1)) (v :: acc)
      else if i < n && s.[i] = ']' then (List (List.rev (v :: acc)), i + 1)
      else fail i "expected ',' or ']'"
    end
  in
  match value 0 with
  | v, i ->
    let i = ws i in
    if i <> n then Error (Printf.sprintf "trailing bytes at offset %d" i) else Ok v
  | exception Parse_error (i, msg) ->
    Error (Printf.sprintf "offset %d: %s" i msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj ms -> List.assoc_opt key ms | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str v -> Some v | _ -> None

let to_bool = function Bool v -> Some v | _ -> None

let to_list = function List v -> Some v | _ -> None

let to_obj = function Obj v -> Some v | _ -> None
