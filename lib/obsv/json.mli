(** A minimal JSON tree, printer and parser — just enough for run
    snapshots and regression reports, with no external dependency.
    Numbers are floats (like JSON itself); {!to_string} prints them in
    the shortest form that parses back to the same value, so documents
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Render; [indent] pretty-prints with two-space indentation (and a
    trailing newline) for committed snapshot files.  NaN and infinite
    numbers render as [null] (JSON has no spelling for them). *)

val of_string : string -> (t, string) result
(** Parse a complete document; the error names the byte offset. *)

(** {1 Accessors} ([None] on shape mismatch) *)

val member : string -> t -> t option

val to_float : t -> float option

val to_int : t -> int option
(** Integral numbers only. *)

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option

val to_obj : t -> (string * t) list option
