(* 2: per-variant measurement-quality block (rciw, outliers,
   warmup_trend, verdict).  Schema-1 documents load with quality
   defaults (no signal: Stable, all metrics 0).
   3: top-level "quarantined" key list — variants the resilience
   supervisor gave up on (they carry no stats).  Older documents load
   with an empty list.
   4: per-variant "profile" object — normalized bottleneck-category
   cycle shares from the attribution profiler.  Older documents load
   with an empty profile. *)
let schema_version = 4

type variant_stat = {
  key : string;
  unroll : int;
  median : float;
  mean : float;
  stddev : float;
  cov : float;
  count : int;
  minimum : float;
  maximum : float;
  unit_label : string;
  per_label : string;
  rciw : float;
  outliers : int;
  warmup_trend : bool;
  verdict : Mt_quality.verdict;
  profile : (string * float) list;
}

type t = {
  schema : int;
  tool : string;
  created_at : float;
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  options : (string * string) list;
  seed : int;
  variant_count : int;
  variants : variant_stat list;
  quarantined : string list;
  counters : (string * int) list;
}

let of_values ~key ?(unroll = 0) ?(unit_label = "value") ?(per_label = "point")
    ?thresholds ?seed ?(profile = []) values =
  let s = Mt_stats.summarize values in
  let q = Mt_quality.assess ?thresholds ?seed values in
  {
    key;
    unroll;
    median = s.Mt_stats.median;
    mean = s.Mt_stats.mean;
    stddev = s.Mt_stats.stddev;
    cov = q.Mt_quality.cov;
    count = s.Mt_stats.count;
    minimum = s.Mt_stats.minimum;
    maximum = s.Mt_stats.maximum;
    unit_label;
    per_label;
    rciw = q.Mt_quality.rciw;
    outliers = q.Mt_quality.outliers;
    warmup_trend = q.Mt_quality.warmup_trend;
    verdict = q.Mt_quality.verdict;
    profile;
  }

let point_stat ~key value = of_values ~key [| value |]

let make ?(tool = "microtools") ?created_at ~kernel:(kernel_name, kernel_hash)
    ~machine:(machine_name, machine_hash) ?(options = []) ?(seed = 0)
    ?variant_count ?(quarantined = []) ?(counters = []) variants =
  {
    schema = schema_version;
    tool;
    created_at =
      (match created_at with Some t -> t | None -> Unix.gettimeofday ());
    kernel_name;
    kernel_hash;
    machine_name;
    machine_hash;
    options;
    seed;
    variant_count =
      (match variant_count with Some n -> n | None -> List.length variants);
    variants;
    quarantined;
    counters;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let variant_to_json v =
  Json.Obj
    ([
      ("key", Json.Str v.key);
      ("unroll", Json.Num (float_of_int v.unroll));
      ("median", Json.Num v.median);
      ("mean", Json.Num v.mean);
      ("stddev", Json.Num v.stddev);
      ("cov", Json.Num v.cov);
      ("count", Json.Num (float_of_int v.count));
      ("min", Json.Num v.minimum);
      ("max", Json.Num v.maximum);
      ("unit", Json.Str v.unit_label);
      ("per", Json.Str v.per_label);
      ("rciw", Json.Num v.rciw);
      ("outliers", Json.Num (float_of_int v.outliers));
      ("warmup_trend", Json.Bool v.warmup_trend);
      ("verdict", Json.Str (Mt_quality.verdict_to_string v.verdict));
    ]
    (* The profile object is emitted only when the run was profiled, so
       unprofiled schema-4 documents stay byte-compatible with their
       schema-3 shape apart from the version number. *)
    @
    if v.profile = [] then []
    else
      [
        ( "profile",
          Json.Obj (List.map (fun (k, s) -> (k, Json.Num s)) v.profile) );
      ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Num (float_of_int t.schema));
      ("tool", Json.Str t.tool);
      ("created_at", Json.Num t.created_at);
      ( "kernel",
        Json.Obj [ ("name", Json.Str t.kernel_name); ("hash", Json.Str t.kernel_hash) ]
      );
      ( "machine",
        Json.Obj
          [ ("name", Json.Str t.machine_name); ("hash", Json.Str t.machine_hash) ] );
      ("options", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.options));
      ("seed", Json.Num (float_of_int t.seed));
      ("variant_count", Json.Num (float_of_int t.variant_count));
      ("variants", Json.List (List.map variant_to_json t.variants));
      ("quarantined", Json.List (List.map (fun k -> Json.Str k) t.quarantined));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) t.counters) );
    ]

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name decode json =
  match Option.bind (Json.member name json) decode with
  | Some v -> Ok v
  | None -> err "snapshot: missing or malformed field %S" name

let opt_field name decode ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some v -> (
    match decode v with
    | Some v -> Ok v
    | None -> err "snapshot: malformed field %S" name)

let variant_of_json json =
  let ( let* ) = Result.bind in
  let* key = field "key" Json.to_str json in
  let* unroll = opt_field "unroll" Json.to_int ~default:0 json in
  let* median = field "median" Json.to_float json in
  let* mean = opt_field "mean" Json.to_float ~default:median json in
  let* stddev = opt_field "stddev" Json.to_float ~default:0. json in
  let* cov = opt_field "cov" Json.to_float ~default:0. json in
  let* count = opt_field "count" Json.to_int ~default:1 json in
  let* minimum = opt_field "min" Json.to_float ~default:median json in
  let* maximum = opt_field "max" Json.to_float ~default:median json in
  let* unit_label = opt_field "unit" Json.to_str ~default:"value" json in
  let* per_label = opt_field "per" Json.to_str ~default:"point" json in
  (* Quality block: absent in schema-1 documents, which predate the
     verdicts — load them as "no signal", not "bad signal". *)
  let* rciw = opt_field "rciw" Json.to_float ~default:0. json in
  let* outliers = opt_field "outliers" Json.to_int ~default:0 json in
  let* warmup_trend = opt_field "warmup_trend" Json.to_bool ~default:false json in
  (* Profile vector: absent before schema 4 and in unprofiled runs —
     an empty profile simply means "no attribution recorded". *)
  let* profile =
    opt_field "profile"
      (fun v ->
        Option.map
          (List.filter_map (fun (k, v) ->
               Option.map (fun n -> (k, n)) (Json.to_float v)))
          (Json.to_obj v))
      ~default:[] json
  in
  let* verdict =
    match Json.member "verdict" json with
    | None -> Ok Mt_quality.Stable
    | Some v -> (
      match Json.to_str v with
      | None -> err "snapshot: malformed field %S" "verdict"
      | Some s -> (
        match Mt_quality.verdict_of_string s with
        | Ok v -> Ok v
        | Error msg -> err "snapshot: %s" msg))
  in
  Ok
    {
      key;
      unroll;
      median;
      mean;
      stddev;
      cov;
      count;
      minimum;
      maximum;
      unit_label;
      per_label;
      rciw;
      outliers;
      warmup_trend;
      verdict;
      profile;
    }

let str_alist name json =
  opt_field name
    (fun v ->
      Option.map
        (List.filter_map (fun (k, v) ->
             Option.map (fun s -> (k, s)) (Json.to_str v)))
        (Json.to_obj v))
    ~default:[] json

(* Forward as well as backward compatible: documents written by a
   *newer* schema load too — unknown fields (top-level and per-variant)
   are simply ignored, so an older binary can still read history
   archives a newer one has been appending to.  Fields this version
   knows keep their usual malformed-field errors; only genuinely
   unknown keys are skipped. *)
let of_json json =
  let ( let* ) = Result.bind in
  let* schema = field "schema" Json.to_int json in
  begin
    let* tool = opt_field "tool" Json.to_str ~default:"unknown" json in
    let* created_at = opt_field "created_at" Json.to_float ~default:0. json in
    let sub name part =
      opt_field name (fun v -> Option.bind (Json.member part v) Json.to_str)
        ~default:"" json
    in
    let* kernel_name = sub "kernel" "name" in
    let* kernel_hash = sub "kernel" "hash" in
    let* machine_name = sub "machine" "name" in
    let* machine_hash = sub "machine" "hash" in
    let* options = str_alist "options" json in
    let* seed = opt_field "seed" Json.to_int ~default:0 json in
    let* variant_json = field "variants" Json.to_list json in
    let* variants =
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* v = variant_of_json v in
          Ok (v :: acc))
        (Ok []) variant_json
    in
    let variants = List.rev variants in
    let* variant_count =
      opt_field "variant_count" Json.to_int ~default:(List.length variants) json
    in
    let* quarantined =
      opt_field "quarantined"
        (fun v -> Option.map (List.filter_map Json.to_str) (Json.to_list v))
        ~default:[] json
    in
    let* counters =
      opt_field "counters"
        (fun v ->
          Option.map
            (List.filter_map (fun (k, v) ->
                 Option.map (fun n -> (k, n)) (Json.to_int v)))
            (Json.to_obj v))
        ~default:[] json
    in
    Ok
      {
        schema;
        tool;
        created_at;
        kernel_name;
        kernel_hash;
        machine_name;
        machine_hash;
        options;
        seed;
        variant_count;
        variants;
        quarantined;
        counters;
      }
  end

let to_string t = Json.to_string ~indent:true (to_json t)

let of_string s =
  match Json.of_string s with
  | Error msg -> err "snapshot: %s" msg
  | Ok json -> of_json json

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> err "%s" msg
  | text -> (
    match of_string text with
    | Error msg -> err "%s: %s" path msg
    | Ok t -> Ok t)
