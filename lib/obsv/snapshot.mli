(** A run manifest: everything needed to compare two study runs —
    content hashes identifying what was measured (kernel description,
    machine configuration), the launcher options and seed that shaped
    the run, and a per-variant statistical summary of the primary
    metric.  Serialised as stable, pretty-printed JSON so snapshots can
    be committed as CI baselines and diffed by {!Diff}. *)

val schema_version : int
(** Current on-disk schema (4: adds the per-variant [profile] object of
    normalized bottleneck-category cycle shares; 3 added the top-level
    [quarantined] key list; 2 the per-variant quality block).  {!of_json} is
    compatible in both directions: older documents load with defaults
    for fields they predate — a schema-1 snapshot loads with a [Stable]
    verdict and zeroed quality metrics, a schema-2 one with no
    quarantined variants, a schema-3 one with empty profiles — and
    documents written by a {e newer} schema
    load with their unknown fields ignored, so an older binary can
    still read a history archive a newer one appends to.  The loaded
    [schema] field preserves the document's own version. *)

type variant_stat = {
  key : string;  (** stable identity for cross-run matching *)
  unroll : int;
  median : float;
  mean : float;
  stddev : float;
  cov : float;  (** coefficient of variation of the samples *)
  count : int;
  minimum : float;
  maximum : float;
  unit_label : string;
  per_label : string;
  rciw : float;  (** bootstrap RCIW of the median ({!Mt_quality.rciw}) *)
  outliers : int;  (** samples beyond the MAD fence *)
  warmup_trend : bool;  (** head of the series exceeded the warm-up band *)
  verdict : Mt_quality.verdict;
  profile : (string * float) list;
      (** normalized bottleneck-category cycle shares
          ([Mt_profile.vector]); empty when the run was not profiled *)
}

type t = {
  schema : int;
  tool : string;
  created_at : float;  (** wall-clock seconds since the epoch *)
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  options : (string * string) list;
  seed : int;
  variant_count : int;
  variants : variant_stat list;
  quarantined : string list;
      (** keys of variants the resilience supervisor quarantined —
          counted in [variant_count] but absent from [variants] *)
  counters : (string * int) list;  (** telemetry counters at save time *)
}

val of_values :
  key:string ->
  ?unroll:int ->
  ?unit_label:string ->
  ?per_label:string ->
  ?thresholds:Mt_quality.thresholds ->
  ?seed:int ->
  ?profile:(string * float) list ->
  float array ->
  variant_stat
(** Summarise raw per-experiment samples into a [variant_stat],
    including its {!Mt_quality.assess} quality block ([thresholds] and
    [seed] feed the assessment; defaults as documented there). *)

val point_stat : key:string -> float -> variant_stat
(** A single-observation stat (stddev and cov are 0) — used for
    experiment-table cells, which report one value per cell. *)

val make :
  ?tool:string ->
  ?created_at:float ->
  kernel:string * string ->
  machine:string * string ->
  ?options:(string * string) list ->
  ?seed:int ->
  ?variant_count:int ->
  ?quarantined:string list ->
  ?counters:(string * int) list ->
  variant_stat list ->
  t
(** [make ~kernel:(name, hash) ~machine:(name, hash) variants] stamps
    [created_at] with the current wall clock unless given. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val to_string : t -> string
(** Pretty-printed JSON document (ends in a newline). *)

val of_string : string -> (t, string) result

val save : t -> string -> unit

val load : string -> (t, string) result
