open Mt_machine

type schedule = Static | Static_chunk of int | Dynamic of int | Guided of int

type runtime = {
  threads : int;
  schedule : schedule;
  fork_overhead_ns : float;
  join_overhead_ns : float;
  per_thread_overhead_ns : float;
}

let default_runtime ~threads =
  if threads < 1 then invalid_arg "Mt_openmp.default_runtime: threads < 1";
  {
    threads;
    schedule = Static;
    fork_overhead_ns = 1500.;
    join_overhead_ns = 1000.;
    per_thread_overhead_ns = 150.;
  }

let region_overhead_cycles cfg rt =
  let ns =
    rt.fork_overhead_ns +. rt.join_overhead_ns
    +. (rt.per_thread_overhead_ns *. float_of_int (max 0 (rt.threads - 1)))
  in
  Config.cycles_of_ns cfg ns

type chunk = { thread : int; start_iteration : int; iterations : int }

let dispatch_overhead_ns = 80.

(* Round-robin chunks of explicit sizes. *)
let round_robin rt sizes =
  let rec go index start acc = function
    | [] -> List.rev acc
    | size :: rest ->
      let c = { thread = index mod rt.threads; start_iteration = start; iterations = size } in
      go (index + 1) (start + size) (c :: acc) rest
  in
  go 0 0 [] sizes

let chunks_of rt ~total =
  if total <= 0 then []
  else begin
    match rt.schedule with
    | Static ->
      (* libgomp static: ceil-sized contiguous blocks, earlier threads
         get the larger ones. *)
      let base = total / rt.threads in
      let extra = total mod rt.threads in
      let rec go thread start acc =
        if thread >= rt.threads || start >= total then List.rev acc
        else begin
          let size = base + (if thread < extra then 1 else 0) in
          if size = 0 then List.rev acc
          else go (thread + 1) (start + size)
              ({ thread; start_iteration = start; iterations = size } :: acc)
        end
      in
      go 0 0 []
    | Static_chunk chunk_size | Dynamic chunk_size ->
      if chunk_size <= 0 then invalid_arg "Mt_openmp.chunks_of: chunk size <= 0";
      let rec sizes start acc =
        if start >= total then List.rev acc
        else begin
          let size = min chunk_size (total - start) in
          sizes (start + size) (size :: acc)
        end
      in
      round_robin rt (sizes 0 [])
    | Guided min_chunk ->
      if min_chunk <= 0 then invalid_arg "Mt_openmp.chunks_of: guided minimum <= 0";
      let rec sizes remaining acc =
        if remaining <= 0 then List.rev acc
        else begin
          let size = min remaining (max min_chunk (remaining / rt.threads)) in
          sizes (remaining - size) (size :: acc)
        end
      in
      round_robin rt (sizes total [])
  end

let is_dynamic rt =
  match rt.schedule with
  | Dynamic _ | Guided _ -> true
  | Static | Static_chunk _ -> false

let parallel_for cfg rt ~total ~run_chunk =
  let chunks = chunks_of rt ~total in
  let active_threads =
    List.sort_uniq compare (List.map (fun c -> c.thread) chunks) |> List.length
  in
  let sharers = max 1 active_threads in
  let slowest =
    if is_dynamic rt then begin
      (* Greedy dispatch: each chunk goes to the thread that frees up
         first, plus a bookkeeping cost per dispatch. *)
      let dispatch = Config.cycles_of_ns cfg dispatch_overhead_ns in
      let clocks = Array.make rt.threads 0. in
      List.iter
        (fun c ->
          let thread = ref 0 in
          for i = 1 to rt.threads - 1 do
            if clocks.(i) < clocks.(!thread) then thread := i
          done;
          let c = { c with thread = !thread } in
          clocks.(!thread) <-
            clocks.(!thread) +. dispatch +. run_chunk c ~sharers)
        chunks;
      Array.fold_left Float.max 0. clocks
    end
    else begin
      (* Per-thread time is the sum of its chunks; the region waits for
         the slowest thread. *)
      let per_thread = Hashtbl.create 8 in
      List.iter
        (fun c ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt per_thread c.thread) in
          Hashtbl.replace per_thread c.thread (prev +. run_chunk c ~sharers))
        chunks;
      Hashtbl.fold (fun _ v acc -> Float.max v acc) per_thread 0.
    end
  in
  slowest +. region_overhead_cycles cfg rt

let pin_map cfg rt =
  Array.init rt.threads (fun i -> i mod Config.core_count cfg)
