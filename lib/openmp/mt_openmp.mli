(** A model of the OpenMP runtime behaviour MicroLauncher exercises in
    Section 5.2.3: a fork-join [parallel for] with static scheduling,
    per-thread core pinning, and a fixed region overhead.

    The paper's observation (Table 2) is that the OpenMP version's time
    is flat across unroll factors because the threads saturate memory
    bandwidth, while the sequential version keeps improving; the model
    reproduces exactly that: per-thread work runs on the machine model
    with a DRAM share for [threads] sharers, plus fork/join overhead. *)

type schedule =
  | Static  (** Contiguous equal chunks, one per thread. *)
  | Static_chunk of int  (** Round-robin chunks of the given size. *)
  | Dynamic of int
      (** First-come-first-served chunks of the given size; chunk
          dispatch costs a small bookkeeping overhead per chunk. *)
  | Guided of int
      (** Decreasing chunk sizes, [remaining/threads] floored at the
          given minimum. *)

type runtime = {
  threads : int;
  schedule : schedule;
  fork_overhead_ns : float;
      (** Cost of entering a parallel region (thread wake-up). *)
  join_overhead_ns : float;  (** Barrier at region end. *)
  per_thread_overhead_ns : float;
      (** Additional wake/barrier cost per extra thread. *)
}

val default_runtime : threads:int -> runtime
(** libgomp-flavoured defaults: 1.5 µs fork, 1 µs join, 150 ns per
    extra thread, static schedule. *)

val region_overhead_cycles : Mt_machine.Config.t -> runtime -> float
(** Total fork+join overhead of one parallel region, in core cycles. *)

(** How a [parallel for]'s iteration space lands on threads. *)
type chunk = { thread : int; start_iteration : int; iterations : int }

val chunks_of : runtime -> total:int -> chunk list
(** The schedule's chunking: every iteration is covered exactly once;
    threads with no work get no chunk.  For {!Dynamic} and {!Guided}
    the [thread] fields are provisional (round-robin) — the real
    assignment happens greedily in {!parallel_for} as threads free
    up. *)

val dispatch_overhead_ns : float
(** Bookkeeping cost per dynamically dispatched chunk. *)

val parallel_for :
  Mt_machine.Config.t ->
  runtime ->
  total:int ->
  run_chunk:(chunk -> sharers:int -> float) ->
  float
(** [parallel_for cfg rt ~total ~run_chunk] models one parallel region:
    [run_chunk] returns the core cycles one thread needs for its chunk
    when [sharers] threads stream concurrently; the region costs the
    slowest thread plus fork/join overhead. *)

val pin_map : Mt_machine.Config.t -> runtime -> int array
(** Thread-to-core pinning: thread [i] runs on core [i] (compact
    pinning, filling socket 0 first), as MicroLauncher pins it. *)
