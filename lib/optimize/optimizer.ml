module History = Mt_obsv.History
module Snapshot = Mt_obsv.Snapshot

let default_knobs =
  {
    Plan.min_runs = 4;
    corr_threshold = 0.95;
    cov_stable = 0.01;
    rciw_stable = 0.02;
    min_experiments = 2;
  }

(* Everything the greedy pass needs about one variant, computed in a
   single sweep over its archived series. *)
type scored = {
  s_key : string;
  s_seqs : int list;  (** which lineage runs the series covers *)
  s_medians : float array;
  s_cov : float;
  s_rciw : float;
  s_trend : Mt_stats.Trend.result;
  s_stable : bool;
}

let score ~knobs ~runs hist entries key =
  let series = History.series ~entries hist ~variant:key in
  let s_seqs = List.map (fun ((e : History.entry), _) -> e.History.seq) series in
  let s_medians =
    Array.of_list
      (List.map
         (fun (_, (v : Snapshot.variant_stat)) -> v.Snapshot.median)
         series)
  in
  let s_cov = History.pooled_noise series in
  let s_rciw =
    List.fold_left
      (fun acc (_, (v : Snapshot.variant_stat)) -> Float.max acc v.Snapshot.rciw)
      0. series
  in
  let s_trend = History.trend series in
  (* Stability demands the full picture: present in every run of the
     lineage, stationary across runs, quiet within them.  A variant
     that misses runs (quarantine, kernel churn) is not a pruning
     candidate — we cannot show its series co-moves with anything. *)
  let s_stable =
    runs >= knobs.Plan.min_runs
    && List.length series = runs
    && s_trend.Mt_stats.Trend.classification = Mt_stats.Trend.Stationary
    && s_cov <= knobs.Plan.cov_stable
    && s_rciw <= knobs.Plan.rciw_stable
  in
  { s_key = key; s_seqs; s_medians; s_cov; s_rciw; s_trend; s_stable }

let optimize ?(knobs = default_knobs) ?created_at hist
    (lineage : History.lineage) =
  let entries = lineage.History.l_entries in
  if entries = [] then Error "optimize: empty lineage"
  else begin
    let runs = List.length entries in
    let keys = History.keys ~entries hist in
    let scored = List.map (score ~knobs ~runs hist entries) keys in
    (* Greedy canary assignment in key order: drop a stable variant
       onto the first kept stable one it co-moves with; otherwise it
       is kept at the floor and may canary later variants itself. *)
    let canaries = ref [] in
    let keep = ref [] and drop = ref [] in
    List.iter
      (fun s ->
        let redundant_with =
          if not s.s_stable then None
          else
            List.find_map
              (fun c ->
                if c.s_seqs <> s.s_seqs then None
                else
                  let rho = Mt_stats.spearman c.s_medians s.s_medians in
                  if Float.abs rho >= knobs.Plan.corr_threshold then
                    Some (c.s_key, rho)
                  else None)
              (List.rev !canaries)
        in
        match redundant_with with
        | Some (canary, correlation) ->
          drop :=
            { Plan.variant = s.s_key; canary; correlation } :: !drop
        | None ->
          if s.s_stable then canaries := s :: !canaries;
          keep :=
            {
              Plan.variant = s.s_key;
              experiments =
                (if s.s_stable then Some knobs.Plan.min_experiments else None);
              stable = s.s_stable;
              cov = s.s_cov;
              rciw = s.s_rciw;
              trend =
                Mt_stats.Trend.classification_to_string
                  s.s_trend.Mt_stats.Trend.classification;
            }
            :: !keep)
      scored;
    let created_at =
      match created_at with Some t -> t | None -> Unix.gettimeofday ()
    in
    Ok
      {
        Plan.schema = Plan.schema_version;
        created_at;
        history_dir = History.dir hist;
        runs;
        kernel_name = lineage.History.l_kernel_name;
        kernel_hash = lineage.History.l_kernel_hash;
        machine_name = lineage.History.l_machine_name;
        machine_hash = lineage.History.l_machine_hash;
        knobs;
        keep = List.rev !keep;
        drop = List.rev !drop;
      }
  end

let render (plan : Plan.t) =
  let buf = Buffer.create 1024 in
  let rows =
    List.map
      (fun (k : Plan.keep) ->
        ( k.Plan.variant,
          (if k.Plan.experiments <> None then "floor" else "keep"),
          (match k.Plan.experiments with
          | Some n -> string_of_int n
          | None -> "adaptive"),
          Printf.sprintf "%.4f" k.Plan.cov,
          Printf.sprintf "%.4f" k.Plan.rciw,
          k.Plan.trend,
          "" ))
      plan.Plan.keep
    @ List.map
        (fun (d : Plan.drop) ->
          ( d.Plan.variant,
            "drop",
            "0",
            "-",
            "-",
            "-",
            Printf.sprintf "canary %s (%.3f)" d.Plan.canary d.Plan.correlation
          ))
        plan.Plan.drop
  in
  let key_w =
    List.fold_left (fun acc (k, _, _, _, _, _, _) -> max acc (String.length k))
      7 rows
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %-6s %9s %8s %8s  %-16s %s\n" key_w "variant"
       "action" "exps" "cov" "rciw" "trend" "");
  List.iter
    (fun (key, action, exps, cov, rciw, trend, note) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %-6s %9s %8s %8s  %-16s %s\n" key_w key action
           exps cov rciw trend note))
    rows;
  Buffer.add_string buf ("\n" ^ Plan.summary plan ^ "\n");
  Buffer.contents buf
