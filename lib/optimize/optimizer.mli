(** Derive a pruned {!Plan} from a history lineage — the μOpTime move:
    per-variant stability metrics (pooled CoV, worst-run RCIW,
    {!Mt_stats.Trend} classification over the archived medians) decide
    which variants can drop to a floor experiment count, and Spearman
    rank correlation between median series decides which variants are
    redundant with a kept canary and need not be measured at all.

    Safety posture: only {e stable} variants are ever floored or
    dropped; anything noisy, drifting, stepping, or simply absent from
    part of the lineage keeps its full adaptive budget.  Lineages
    shorter than [knobs.min_runs] produce a plan that keeps everything
    unchanged — too little history to prune on. *)

val default_knobs : Plan.knobs
(** [min_runs] 4, [corr_threshold] 0.95, [cov_stable] 0.01,
    [rciw_stable] 0.02, [min_experiments] 2. *)

val optimize :
  ?knobs:Plan.knobs ->
  ?created_at:float ->
  Mt_obsv.History.t ->
  Mt_obsv.History.lineage ->
  (Plan.t, string) result
(** Score every variant of the lineage and emit the plan.  Canary
    assignment is greedy in variant-key first-appearance order: each
    stable variant is dropped onto the first already-kept stable
    variant whose series covers the same runs and whose |Spearman|
    clears [corr_threshold]; otherwise it is kept (floored) and becomes
    a candidate canary itself.  Errors on an empty lineage.
    [created_at] defaults to the current wall clock. *)

val render : Plan.t -> string
(** Terminal table: one row per variant (kept, floored or dropped, with
    its metrics and canary), then the plan's {!Plan.summary} line. *)
