module Json = Mt_obsv.Json
module Snapshot = Mt_obsv.Snapshot
module Diff = Mt_obsv.Diff

type knobs = {
  min_runs : int;
  corr_threshold : float;
  cov_stable : float;
  rciw_stable : float;
  min_experiments : int;
}

type keep = {
  variant : string;
  experiments : int option;
  stable : bool;
  cov : float;
  rciw : float;
  trend : string;
}

type drop = { variant : string; canary : string; correlation : float }

type t = {
  schema : int;
  created_at : float;
  history_dir : string;
  runs : int;
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  knobs : knobs;
  keep : keep list;
  drop : drop list;
}

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let find_keep t key =
  List.find_opt (fun (k : keep) -> k.variant = key) t.keep

let find_drop t key =
  List.find_opt (fun (d : drop) -> d.variant = key) t.drop

(* Unknown variants are measured, not skipped: a kernel revision that
   grows new variants after the plan was derived must not leave them
   invisible until someone regenerates the plan. *)
let selects t key = find_drop t key = None

let experiments_override t key =
  Option.bind (find_keep t key) (fun k -> k.experiments)

let covered_by t ~canary =
  List.filter (fun (d : drop) -> d.canary = canary) t.drop

let summary t =
  let floored =
    List.length (List.filter (fun (k : keep) -> k.experiments <> None) t.keep)
  in
  Printf.sprintf
    "plan: keep %d variant%s (%d floored to %d experiments), drop %d as \
     redundant (derived from %d runs of %s)"
    (List.length t.keep)
    (if List.length t.keep = 1 then "" else "s")
    floored t.knobs.min_experiments (List.length t.drop) t.runs t.kernel_name

(* ------------------------------------------------------------------ *)
(* Applying a plan to reports                                          *)
(* ------------------------------------------------------------------ *)

let filter_snapshot t (snap : Snapshot.t) =
  let variants =
    List.filter
      (fun (v : Snapshot.variant_stat) -> selects t v.Snapshot.key)
      snap.Snapshot.variants
  in
  {
    snap with
    Snapshot.variants;
    variant_count =
      List.length variants + List.length snap.Snapshot.quarantined;
  }

let expand_diff t (diff : Diff.t) =
  let synthesized = ref [] in
  let notes = ref [] in
  List.iter
    (fun (e : Diff.entry) ->
      match e.Diff.verdict with
      | Diff.Regression | Diff.Improvement ->
        List.iter
          (fun d ->
            synthesized :=
              {
                e with
                Diff.key = d.variant;
                quality = Diff.Quality_unchanged;
                baseline = None;
                current = None;
                bottleneck = None;
              }
              :: !synthesized;
            notes :=
              Printf.sprintf
                "plan: %s not measured; %s inherited from canary %s \
                 (correlation %.3f)"
                d.variant
                (Diff.verdict_to_string e.Diff.verdict)
                d.canary d.correlation
              :: !notes)
          (covered_by t ~canary:e.Diff.key)
      | Diff.Unchanged | Diff.Added | Diff.Removed -> ())
    diff.Diff.entries;
  {
    diff with
    Diff.entries = diff.Diff.entries @ List.rev !synthesized;
    provenance_notes = diff.Diff.provenance_notes @ List.rev !notes;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let knobs_to_json (k : knobs) =
  Json.Obj
    [
      ("min_runs", Json.Num (float_of_int k.min_runs));
      ("corr_threshold", Json.Num k.corr_threshold);
      ("cov_stable", Json.Num k.cov_stable);
      ("rciw_stable", Json.Num k.rciw_stable);
      ("min_experiments", Json.Num (float_of_int k.min_experiments));
    ]

let keep_to_json (k : keep) =
  Json.Obj
    [
      ("variant", Json.Str k.variant);
      ( "experiments",
        match k.experiments with
        | Some n -> Json.Num (float_of_int n)
        | None -> Json.Null );
      ("stable", Json.Bool k.stable);
      ("cov", Json.Num k.cov);
      ("rciw", Json.Num k.rciw);
      ("trend", Json.Str k.trend);
    ]

let drop_to_json (d : drop) =
  Json.Obj
    [
      ("variant", Json.Str d.variant);
      ("canary", Json.Str d.canary);
      ("correlation", Json.Num d.correlation);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Num (float_of_int t.schema));
      ("tool", Json.Str "mt_optimize");
      ("created_at", Json.Num t.created_at);
      ("history_dir", Json.Str t.history_dir);
      ("runs", Json.Num (float_of_int t.runs));
      ( "kernel",
        Json.Obj
          [ ("name", Json.Str t.kernel_name); ("hash", Json.Str t.kernel_hash) ]
      );
      ( "machine",
        Json.Obj
          [
            ("name", Json.Str t.machine_name);
            ("hash", Json.Str t.machine_hash);
          ] );
      ("knobs", knobs_to_json t.knobs);
      ("keep", Json.List (List.map keep_to_json t.keep));
      ("drop", Json.List (List.map drop_to_json t.drop));
    ]

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let field name decode json =
  match Option.bind (Json.member name json) decode with
  | Some v -> Ok v
  | None -> err "plan: missing or malformed field %S" name

let opt_field name decode ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some v -> (
    match decode v with
    | Some v -> Ok v
    | None -> err "plan: malformed field %S" name)

let ( let* ) = Result.bind

let knobs_of_json json =
  let* min_runs = field "min_runs" Json.to_int json in
  let* corr_threshold = field "corr_threshold" Json.to_float json in
  let* cov_stable = field "cov_stable" Json.to_float json in
  let* rciw_stable = field "rciw_stable" Json.to_float json in
  let* min_experiments = field "min_experiments" Json.to_int json in
  Ok { min_runs; corr_threshold; cov_stable; rciw_stable; min_experiments }

let keep_of_json json =
  let* variant = field "variant" Json.to_str json in
  let* experiments =
    match Json.member "experiments" json with
    | None | Some Json.Null -> Ok None
    | Some v -> (
      match Json.to_int v with
      | Some n -> Ok (Some n)
      | None -> err "plan: malformed field %S" "experiments")
  in
  let* stable = opt_field "stable" Json.to_bool ~default:false json in
  let* cov = opt_field "cov" Json.to_float ~default:0. json in
  let* rciw = opt_field "rciw" Json.to_float ~default:0. json in
  let* trend = opt_field "trend" Json.to_str ~default:"" json in
  Ok { variant; experiments; stable; cov; rciw; trend }

let drop_of_json json =
  let* variant = field "variant" Json.to_str json in
  let* canary = field "canary" Json.to_str json in
  let* correlation = opt_field "correlation" Json.to_float ~default:0. json in
  Ok { variant; canary; correlation }

let decode_list name decode json =
  let* items = field name Json.to_list json in
  let* rev =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        let* v = decode v in
        Ok (v :: acc))
      (Ok []) items
  in
  Ok (List.rev rev)

(* Same compatibility posture as snapshots: unknown fields are ignored,
   so an older binary can still load a plan a newer one wrote. *)
let of_json json =
  let* schema = field "schema" Json.to_int json in
  let* created_at = opt_field "created_at" Json.to_float ~default:0. json in
  let* history_dir = opt_field "history_dir" Json.to_str ~default:"" json in
  let* runs = opt_field "runs" Json.to_int ~default:0 json in
  let sub name part =
    opt_field name
      (fun v -> Option.bind (Json.member part v) Json.to_str)
      ~default:"" json
  in
  let* kernel_name = sub "kernel" "name" in
  let* kernel_hash = sub "kernel" "hash" in
  let* machine_name = sub "machine" "name" in
  let* machine_hash = sub "machine" "hash" in
  let* knobs =
    match Json.member "knobs" json with
    | None -> err "plan: missing or malformed field %S" "knobs"
    | Some k -> knobs_of_json k
  in
  let* keep = decode_list "keep" keep_of_json json in
  let* drop = decode_list "drop" drop_of_json json in
  Ok
    {
      schema;
      created_at;
      history_dir;
      runs;
      kernel_name;
      kernel_hash;
      machine_name;
      machine_hash;
      knobs;
      keep;
      drop;
    }

let to_string t = Json.to_string ~indent:true (to_json t)

let of_string s =
  match Json.of_string s with
  | Error msg -> err "plan: %s" msg
  | Ok json -> of_json json

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> err "%s" msg
  | text -> (
    match of_string text with
    | Error msg -> err "%s: %s" path msg
    | Ok t -> Ok t)
