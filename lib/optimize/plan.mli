(** The study plan: the one canonical answer to "which variants, with
    how many experiments each".

    A plan is what {!Optimizer.optimize} emits after scoring a history
    lineage, and what every execution path consumes — [Study.run]
    filters its variant list and overrides per-variant experiment
    counts through it, [mt_report --plan] uses it to judge a pruned run
    against a full-suite baseline, and [mt_serve] ships it inside
    daemon submissions.  It replaces the ad-hoc trio of [Options.limit]
    filters, adaptive-controller knobs and per-binary variant selection
    that each binary previously wired up separately.

    Serialised as stable pretty-printed JSON (via {!Mt_obsv.Json}) so
    plans can be committed next to CI baselines and diffed in review. *)

(** The scoring thresholds a plan was derived under — recorded in the
    document so a reviewer can tell {e why} a variant was floored or
    dropped without re-running the optimizer. *)
type knobs = {
  min_runs : int;
      (** lineage length below which nothing is pruned or floored *)
  corr_threshold : float;
      (** |Spearman| at or above which two stable series are redundant *)
  cov_stable : float;  (** pooled CoV at or below which a series is stable *)
  rciw_stable : float;  (** worst-run RCIW at or below which it stays stable *)
  min_experiments : int;  (** the μOpTime-style floor for stable variants *)
}

(** One variant the plan keeps measuring. *)
type keep = {
  variant : string;
  experiments : int option;
      (** [Some n]: measure with exactly [n] experiments (the stable
          floor; under the adaptive controller it acts as the minimum).
          [None]: keep the run's default / adaptive budget. *)
  stable : bool;
  cov : float;  (** pooled within-run CoV across the lineage *)
  rciw : float;  (** worst per-run RCIW across the lineage *)
  trend : string;  (** {!Mt_stats.Trend.classification_to_string} *)
}

(** One variant the plan stops measuring, and who answers for it. *)
type drop = {
  variant : string;
  canary : string;
      (** the kept variant whose verdict this one inherits *)
  correlation : float;  (** Spearman between the two median series *)
}

type t = {
  schema : int;
  created_at : float;
  history_dir : string;  (** the archive the plan was derived from *)
  runs : int;  (** lineage length scored *)
  kernel_name : string;
  kernel_hash : string;
  machine_name : string;
  machine_hash : string;
  knobs : knobs;
  keep : keep list;
  drop : drop list;
}

val schema_version : int
(** Current on-disk plan schema (1). *)

(** {1 Queries} *)

val selects : t -> string -> bool
(** [selects t key]: should this variant be measured?  True for kept
    variants {e and} for variants the plan has never seen (a variant
    added after the plan was derived is measured at the default budget
    rather than silently skipped); false only for dropped ones. *)

val experiments_override : t -> string -> int option
(** The planned experiment count for [key], when the plan floors it. *)

val covered_by : t -> canary:string -> drop list
(** The dropped variants answering to [canary]. *)

val find_keep : t -> string -> keep option

val summary : t -> string
(** One line: kept/floored/dropped counts for banners and logs. *)

(** {1 Applying a plan to reports} *)

val filter_snapshot : t -> Mt_obsv.Snapshot.t -> Mt_obsv.Snapshot.t
(** Restrict a snapshot to the variants the plan selects, so a
    full-suite baseline diffs cleanly against a pruned run (dropped
    variants would otherwise show as [Removed]). *)

val expand_diff : t -> Mt_obsv.Diff.t -> Mt_obsv.Diff.t
(** Re-expand a pruned diff to full-suite coverage: every dropped
    variant whose canary's verdict is a believed move ([Regression] or
    [Improvement]) gains a synthesized entry inheriting that verdict,
    delta and band, plus a provenance note naming the canary — so
    [mt_report --plan]'s flagged-variant set matches what the full
    suite would have flagged. *)

(** {1 Serialisation} *)

val to_json : t -> Mt_obsv.Json.t
val of_json : Mt_obsv.Json.t -> (t, string) result

val to_string : t -> string
(** Pretty-printed JSON document (ends in a newline). *)

val of_string : string -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
