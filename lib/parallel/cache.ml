(* Bumped whenever the serialized value layout changes: the version is
   folded into every digest, so old on-disk entries simply never hit. *)
(* v2: Report.t and Options.t grew measurement-quality fields. *)
let format_version = "microtools-cache-v2"

type t = {
  table : (string, string) Hashtbl.t;
  lock : Mutex.t;
  dir : string option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  decode_failures : int Atomic.t;
}

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "microtools"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" ->
      Filename.concat (Filename.concat h ".cache") "microtools"
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "microtools-cache")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?dir () =
  Option.iter mkdir_p dir;
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    decode_failures = Atomic.make 0;
  }

let dir t = t.dir

let digest_key parts =
  (* Length-prefixing makes the concatenation injective: ["ab"; "c"]
     and ["a"; "bc"] digest differently. *)
  let b = Buffer.create 256 in
  Buffer.add_string b format_version;
  List.iter
    (fun part ->
      Buffer.add_string b (string_of_int (String.length part));
      Buffer.add_char b ':';
      Buffer.add_string b part)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let entry_path dir key = Filename.concat dir (key ^ ".bin")

let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let data =
      try Some (really_input_string ic (in_channel_length ic))
      with End_of_file | Sys_error _ -> None
    in
    close_in_noerr ic;
    data

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  let in_memory = locked t (fun () -> Hashtbl.find_opt t.table key) in
  let result =
    match in_memory, t.dir with
    | (Some _ as hit), _ -> hit
    | None, None -> None
    | None, Some dir -> (
      match read_entry (entry_path dir key) with
      | Some data ->
        locked t (fun () -> Hashtbl.replace t.table key data);
        Some data
      | None -> None)
  in
  (match result with
  | Some _ ->
    Atomic.incr t.hits;
    Mt_telemetry.incr (Mt_telemetry.global ()) "cache.hits"
  | None ->
    Atomic.incr t.misses;
    Mt_telemetry.incr (Mt_telemetry.global ()) "cache.misses");
  result

let store t key data =
  Mt_telemetry.incr (Mt_telemetry.global ()) "cache.stores";
  locked t (fun () -> Hashtbl.replace t.table key data);
  match t.dir with
  | None -> ()
  | Some dir -> (
    (* Write to a unique temp file in the same directory, then rename:
       a concurrent reader sees either no entry or a complete one. *)
    let path = entry_path dir key in
    let tmp = Printf.sprintf "%s.%d.tmp" path (Domain.self () :> int) in
    try
      let oc = open_out_bin tmp in
      output_string oc data;
      close_out oc;
      Sys.rename tmp path
    with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))

let with_cache c ~key compute ~encode ~decode =
  match c with
  | None -> compute ()
  | Some t -> (
    let k = key () in
    match find t k with
    | Some data -> (
      match decode data with
      | v -> v
      | exception _ ->
        (* A corrupt or stale entry (truncated write, foreign bytes at
           our key) must degrade to a recompute, never to a crash: the
           cache is an accelerator, not a source of truth.  The fresh
           value overwrites the bad entry. *)
        Atomic.incr t.decode_failures;
        Mt_telemetry.incr (Mt_telemetry.global ()) "cache.decode_failures";
        let v = compute () in
        store t k (encode v);
        v)
    | None ->
      let v = compute () in
      store t k (encode v);
      v)

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let decode_failures t = Atomic.get t.decode_failures

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)
