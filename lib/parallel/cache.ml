(* Bumped whenever the serialized value layout changes: the version is
   folded into every digest, so old on-disk entries simply never hit. *)
(* v2: Report.t and Options.t grew measurement-quality fields. *)
(* v3: Report.t gained the bottleneck-profile breakdown and Options.t
   the profile flag. *)
let format_version = "microtools-cache-v3"

type t = {
  table : (string, string) Hashtbl.t;
  lock : Mutex.t;
  dir : string option;
  max_bytes : int option;
  evict_lock : Mutex.t;  (* serialises in-process evictions *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  decode_failures : int Atomic.t;
  evictions : int Atomic.t;
}

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "microtools"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" ->
      Filename.concat (Filename.concat h ".cache") "microtools"
    | _ -> Filename.concat (Filename.get_temp_dir_name ()) "microtools-cache")

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?dir ?max_bytes () =
  Option.iter mkdir_p dir;
  {
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    dir;
    max_bytes;
    evict_lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    decode_failures = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let dir t = t.dir

let digest_key parts =
  (* Length-prefixing makes the concatenation injective: ["ab"; "c"]
     and ["a"; "bc"] digest differently. *)
  let b = Buffer.create 256 in
  Buffer.add_string b format_version;
  List.iter
    (fun part ->
      Buffer.add_string b (string_of_int (String.length part));
      Buffer.add_char b ':';
      Buffer.add_string b part)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let entry_path dir key = Filename.concat dir (key ^ ".bin")

(* ------------------------------------------------------------------ *)
(* Multi-process coordination                                          *)
(* ------------------------------------------------------------------ *)

(* A cache directory may be shared by several processes at once (the
   mt_serve daemon plus any number of one-shot CLI runs).  Entry writes
   need no lock — they are rename-into-place atomic — but the eviction
   scan does: two processes trimming the same directory concurrently
   would double-count sizes and could race each other below the budget.
   The advisory lock lives in a dedicated [.lock] file so it never
   collides with an entry; it is released on close (also on process
   death, so a crashed evictor cannot wedge the directory). *)
let with_dir_lock dir f =
  let lock_path = Filename.concat dir ".lock" in
  match Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error _ ->
    (* Unlockable directory (read-only, exotic FS): run unguarded — the
       worst case is a redundant eviction pass, not corruption. *)
    f ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        (match Unix.lockf fd Unix.F_LOCK 0 with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        f ())

(* Best-effort mtime bump: disk hits refresh an entry's LRU recency so
   a hot entry shared between processes is the last to be evicted. *)
let touch path = try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ()

let read_entry path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let data =
      try Some (really_input_string ic (in_channel_length ic))
      with End_of_file | Sys_error _ -> None
    in
    close_in_noerr ic;
    data

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t key =
  let in_memory = locked t (fun () -> Hashtbl.find_opt t.table key) in
  let result =
    match in_memory, t.dir with
    | (Some _ as hit), _ -> hit
    | None, None -> None
    | None, Some dir -> (
      let path = entry_path dir key in
      match read_entry path with
      | Some data ->
        touch path;
        locked t (fun () -> Hashtbl.replace t.table key data);
        Some data
      | None -> None)
  in
  (match result with
  | Some _ ->
    Atomic.incr t.hits;
    Mt_telemetry.incr (Mt_telemetry.global ()) "cache.hits"
  | None ->
    Atomic.incr t.misses;
    Mt_telemetry.incr (Mt_telemetry.global ()) "cache.misses");
  result

(* ------------------------------------------------------------------ *)
(* Size-bounded LRU eviction                                           *)
(* ------------------------------------------------------------------ *)

let is_entry name = Filename.check_suffix name ".bin"

(* Trim the directory to [max_bytes], oldest mtime first ([touch] on
   every disk hit makes mtime a recency stamp).  [keep] — the entry the
   caller just wrote — is never removed, so a store always survives its
   own eviction pass even when it alone exceeds the budget. *)
let evict_to_budget t dir ~max_bytes ~keep =
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | names -> names
  in
  let stats =
    Array.to_list entries
    |> List.filter_map (fun name ->
           if not (is_entry name) then None
           else
             let path = Filename.concat dir name in
             match Unix.stat path with
             | { Unix.st_mtime; st_size; _ } -> Some (path, st_mtime, st_size)
             | exception Unix.Unix_error _ ->
               None (* raced with another process's eviction *))
  in
  let total = List.fold_left (fun acc (_, _, size) -> acc + size) 0 stats in
  if total > max_bytes then begin
    let by_age =
      List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) stats
    in
    let remaining = ref total in
    List.iter
      (fun (path, _, size) ->
        if !remaining > max_bytes && path <> keep then begin
          match Sys.remove path with
          | () ->
            remaining := !remaining - size;
            Atomic.incr t.evictions;
            Mt_telemetry.incr (Mt_telemetry.global ()) "cache.evictions"
          | exception Sys_error _ -> ()
        end)
      by_age
  end

let maybe_evict t dir ~keep =
  match t.max_bytes with
  | None -> ()
  | Some max_bytes ->
    Mutex.lock t.evict_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.evict_lock)
      (fun () ->
        with_dir_lock dir (fun () -> evict_to_budget t dir ~max_bytes ~keep))

(* Open a fresh temp file no other writer can hold.  The name carries
   pid + domain id, so two processes sharing the directory (the daemon
   and a CLI run, or two daemons) can never open the same [.tmp] and
   interleave writes before the rename; [O_EXCL] turns any residual
   collision (pid reuse after a crash left a stale file) into a retry
   under a new suffix instead of a silent truncation. *)
let open_exclusive_tmp path =
  let pid = Unix.getpid () in
  let domain = (Domain.self () :> int) in
  let rec attempt n =
    if n > 1000 then None
    else
      let tmp = Printf.sprintf "%s.%d.%d.%d.tmp" path pid domain n in
      match
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
      with
      | fd -> Some (tmp, fd)
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> attempt (n + 1)
      | exception Unix.Unix_error _ -> None
  in
  attempt 0

let store t key data =
  Mt_telemetry.incr (Mt_telemetry.global ()) "cache.stores";
  locked t (fun () -> Hashtbl.replace t.table key data);
  match t.dir with
  | None -> ()
  | Some dir -> (
    (* Write to a unique temp file in the same directory, then rename:
       a concurrent reader sees either no entry or a complete one. *)
    let path = entry_path dir key in
    match open_exclusive_tmp path with
    | None -> () (* unwritable dir: degrade to memory-only *)
    | Some (tmp, fd) -> (
      match
        let oc = Unix.out_channel_of_descr fd in
        output_string oc data;
        close_out oc;
        Sys.rename tmp path
      with
      | () -> maybe_evict t dir ~keep:path
      | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
        (try Sys.remove tmp with Sys_error _ -> ())))

let with_cache c ~key compute ~encode ~decode =
  match c with
  | None -> compute ()
  | Some t -> (
    let k = key () in
    match find t k with
    | Some data -> (
      match decode data with
      | v -> v
      | exception _ ->
        (* A corrupt or stale entry (truncated write, foreign bytes at
           our key) must degrade to a recompute, never to a crash: the
           cache is an accelerator, not a source of truth.  The fresh
           value overwrites the bad entry. *)
        Atomic.incr t.decode_failures;
        Mt_telemetry.incr (Mt_telemetry.global ()) "cache.decode_failures";
        let v = compute () in
        store t k (encode v);
        v)
    | None ->
      let v = compute () in
      store t k (encode v);
      v)

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let decode_failures t = Atomic.get t.decode_failures

let evictions t = Atomic.get t.evictions

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)
