(** A content-addressed result cache for simulator measurements.

    The μOpTime observation (PAPERS.md) applied to the launcher: most of
    a suite re-run measures variants whose program text, launcher
    options and machine model have not changed, so their reports can be
    replayed instead of re-simulated.  A cache entry is keyed by a
    digest of exactly those inputs ({!digest_key}; callers compose the
    key, e.g. {!Study.cache_key} hashes variant fingerprint + options +
    machine config) and stores an opaque serialized value.

    Lookups go to an in-memory table first, then — when the cache was
    created with a directory — to an on-disk store with one file per
    key, so results survive across processes ([~/.cache/microtools] by
    default, [--cache-dir] to relocate).  Disk hits are promoted into
    the memory table.

    All operations are safe to call concurrently from multiple domains
    (the table is mutex-protected, counters are atomic, and disk writes
    are atomic rename-into-place), which is what lets {!Pool.map}
    workers share one cache.

    A disk-backed cache directory is furthermore safe to share between
    {e processes} — the mt_serve daemon plus any number of one-shot CLI
    runs: temp files are opened [O_EXCL] under pid- and domain-unique
    names (two writers can never interleave into the same temp file),
    entry installation is an atomic rename, and the optional
    size-bounded LRU eviction pass is serialised through an advisory
    file lock on [DIR/.lock].  Disk hits bump the entry's mtime, which
    is the LRU recency stamp shared by every process. *)

type t

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/microtools], falling back to
    [$HOME/.cache/microtools], falling back to a directory under the
    system temp dir when neither variable is set. *)

val create : ?dir:string -> ?max_bytes:int -> unit -> t
(** [create ()] is a process-local in-memory cache.  [create ~dir ()]
    additionally persists every entry under [dir] (created, with
    parents, if missing).  [max_bytes] bounds the on-disk size: after
    each store the directory is trimmed back under the bound by
    removing entries oldest-mtime-first (LRU; reads refresh mtime),
    never including the entry just written.  Evictions only affect the
    disk store — values already promoted into a process's memory table
    stay replayable there. *)

val dir : t -> string option

val digest_key : string list -> string
(** Digest a list of key components (order-sensitive, injectively
    concatenated) into a fixed-length hex key.  The digest is salted
    with a cache-format version so stale on-disk entries from older
    layouts can never be replayed. *)

val find : t -> string -> string option
(** Look a key up, memory first, then disk.  Counts one hit or one
    miss. *)

val store : t -> string -> string -> unit
(** [store t key data] records [data] in the memory table and, for
    disk-backed caches, atomically writes it to disk.  Disk write
    failures (read-only dir, quota) are swallowed: the cache degrades
    to memory-only rather than failing the run. *)

val with_cache :
  t option -> key:(unit -> string) -> (unit -> 'a) -> encode:('a -> string) ->
  decode:(string -> 'a) -> 'a
(** [with_cache c ~key compute ~encode ~decode] is [compute ()] routed
    through the cache when [c] is [Some _]: replay the stored value on
    a hit, otherwise compute, store and return.  With [None], just
    [compute ()] (and no counter moves).

    A hit whose [decode] raises (a corrupt or truncated entry) degrades
    to the compute path: the failure is counted
    ({!decode_failures}, telemetry [cache.decode_failures]), the value
    is recomputed, and the bad entry is overwritten. *)

(** {1 Counters}

    Monotonic per-cache-handle counters, exposed so tests and the
    binaries can assert cache effectiveness ("second run re-simulates 0
    variants"). *)

val hits : t -> int

val misses : t -> int
(** Lookups that found nothing (each followed by a {!store} on the
    compute path). *)

val hit_rate : t -> float
(** [hits / (hits + misses)], 0 when no lookup happened yet. *)

val decode_failures : t -> int
(** Hits whose stored bytes failed to decode and were recomputed. *)

val evictions : t -> int
(** Disk entries this handle removed enforcing [max_bytes] (telemetry
    [cache.evictions]).  Always 0 without a size bound. *)
