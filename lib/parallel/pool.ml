let available_domains () = max 1 (Domain.recommended_domain_count ())

(* Each worker owns the index stride [d, d + domains, d + 2*domains, ...]
   — its shard of the queue.  Writing results.(i) from exactly one
   domain per index keeps the array race-free under the OCaml 5 memory
   model without any locking. *)
let map ~domains f items =
  let tel = Mt_telemetry.global () in
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains <= 1 then begin
    if Mt_telemetry.enabled tel then begin
      Mt_telemetry.add tel "pool.items" n;
      Mt_telemetry.incr tel "pool.shards"
    end;
    Array.map f items
  end
  else begin
    let results = Array.make n None in
    let failures = Array.make domains None in
    let worker d () =
      Mt_telemetry.span tel (Printf.sprintf "pool.shard.%d" d) (fun () ->
          let i = ref d in
          let processed = ref 0 in
          (try
             while !i < n do
               results.(!i) <- Some (f items.(!i));
               incr processed;
               i := !i + domains
             done
           with e -> failures.(d) <- Some (e, Printexc.get_raw_backtrace ()));
          if Mt_telemetry.enabled tel then begin
            Mt_telemetry.add tel "pool.items" !processed;
            Mt_telemetry.add tel (Printf.sprintf "pool.shard.%d.items" d) !processed;
            Mt_telemetry.incr tel "pool.shards"
          end)
    in
    let spawned = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    (match List.filter_map Fun.id (Array.to_list failures) with
    | [] -> ()
    | [ (e, bt) ] ->
      (* A single failing shard re-raises its exception as-is, carrying
         the worker's backtrace to the caller's domain. *)
      Printexc.raise_with_backtrace e bt
    | (e, bt) :: _ as failed ->
      Printexc.raise_with_backtrace
        (Failure
           (Printf.sprintf "Mt_parallel.Pool.map: %d of %d shards failed; first: %s"
              (List.length failed) domains (Printexc.to_string e)))
        bt);
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Mt_parallel.Pool.map: missing result")
      results
  end

let map_list ~domains f items =
  Array.to_list (map ~domains f (Array.of_list items))
