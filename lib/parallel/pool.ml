let available_domains () = max 1 (Domain.recommended_domain_count ())

(* Each worker owns the index stride [d, d + domains, d + 2*domains, ...]
   — its shard of the queue.  Writing results.(i) from exactly one
   domain per index keeps the array race-free under the OCaml 5 memory
   model without any locking. *)
let map ~domains f items =
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let failures = Array.make domains None in
    let worker d () =
      let i = ref d in
      (try
         while !i < n do
           results.(!i) <- Some (f items.(!i));
           i := !i + domains
         done
       with e -> failures.(d) <- Some e)
    in
    let spawned = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Mt_parallel.Pool.map: missing result")
      results
  end

let map_list ~domains f items =
  Array.to_list (map ~domains f (Array.of_list items))
