let available_domains () = max 1 (Domain.recommended_domain_count ())

(* Each worker owns the index stride [d, d + domains, d + 2*domains, ...]
   — its shard of the queue.  Writing results.(i) from exactly one
   domain per index keeps the array race-free under the OCaml 5 memory
   model without any locking. *)

(* The failure-tolerant primitive: every item's fate is materialised,
   so one raising item no longer takes its shard's siblings down — the
   shard records the failure and keeps draining.  [map] and the
   resilience supervisor are both built on this. *)
let try_map ~domains f items =
  let tel = Mt_telemetry.global () in
  let wrap x =
    match f x with
    | v -> Ok v
    | exception e -> Error (e, Printexc.get_raw_backtrace ())
  in
  let n = Array.length items in
  let domains = max 1 (min domains n) in
  if domains <= 1 then begin
    if Mt_telemetry.enabled tel then begin
      Mt_telemetry.add tel "pool.items" n;
      Mt_telemetry.incr tel "pool.shards"
    end;
    Array.map wrap items
  end
  else begin
    let results = Array.make n None in
    let worker d () =
      Mt_telemetry.span tel (Printf.sprintf "pool.shard.%d" d) (fun () ->
          let i = ref d in
          let processed = ref 0 in
          while !i < n do
            results.(!i) <- Some (wrap items.(!i));
            incr processed;
            i := !i + domains
          done;
          if Mt_telemetry.enabled tel then begin
            Mt_telemetry.add tel "pool.items" !processed;
            Mt_telemetry.add tel (Printf.sprintf "pool.shard.%d.items" d) !processed;
            Mt_telemetry.incr tel "pool.shards"
          end)
    in
    let spawned = List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Mt_parallel.Pool.try_map: missing result")
      results
  end

let try_map_list ~domains f items =
  Array.to_list (try_map ~domains f (Array.of_list items))

let map ~domains f items =
  let n = Array.length items in
  let clamped = max 1 (min domains n) in
  let results = try_map ~domains f items in
  let failures = ref [] in
  Array.iteri
    (fun i r ->
      match r with
      | Error (e, bt) -> failures := (i, e, bt) :: !failures
      | Ok _ -> ())
    results;
  (match List.rev !failures with
  | [] -> ()
  | [ (_, e, bt) ] ->
    (* A single failing item re-raises its exception as-is, carrying
       the worker's backtrace to the caller's domain. *)
    Printexc.raise_with_backtrace e bt
  | ((_, e, bt) :: _) as failed ->
    let shards =
      List.sort_uniq Int.compare (List.map (fun (i, _, _) -> i mod clamped) failed)
    in
    (match shards with
    | [ _ ] -> Printexc.raise_with_backtrace e bt
    | _ ->
      Printexc.raise_with_backtrace
        (Failure
           (Printf.sprintf "Mt_parallel.Pool.map: %d of %d shards failed; first: %s"
              (List.length shards) clamped (Printexc.to_string e)))
        bt));
  Array.map
    (function
      | Ok v -> v
      | Error _ -> invalid_arg "Mt_parallel.Pool.map: missing result")
    results

let map_list ~domains f items =
  Array.to_list (map ~domains f (Array.of_list items))
