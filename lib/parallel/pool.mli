(** A Domain-based worker pool for embarrassingly parallel study
    evaluation.

    The work distribution is a {e sharded queue}: item [i] of the input
    belongs to shard [i mod domains], and each domain drains exactly its
    own shard — there is no stealing, no shared cursor and therefore no
    contention on the hot path.  Because the simulator's cost is roughly
    uniform across a study's variants, round-robin sharding balances the
    shards to within one item.

    Results are written into a pre-sized array at the item's original
    index, so the output order is the input order regardless of how the
    domains interleave: a parallel run is observably identical to a
    sequential one (the property {!Study.run} relies on for
    byte-identical CSVs). *)

val available_domains : unit -> int
(** The runtime's recommended domain count for this machine (at least
    1).  Binaries use it for [--jobs 0] ("auto"). *)

val try_map :
  domains:int ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** [try_map ~domains f items] applies [f] to every item, spreading the
    work over [min domains (Array.length items)] domains (clamped to at
    least 1), and returns every item's fate in input order: [Ok] with
    the result, or [Error] with the exception and the worker's
    backtrace.  A raising item never takes its shard's siblings down —
    the shard records the failure and keeps draining, so a study with
    one crashing variant still measures the other N-1.  This is the
    primitive the resilience supervisor routes shard failures through.

    With [domains <= 1] no domain is spawned and the items are mapped
    in place — the degenerate case costs nothing over [Array.map].

    [f] must be safe to run from multiple domains at once (the
    simulator is: every launch builds its own state).

    When the global {!Mt_telemetry} handle is enabled, each shard is a
    timed span ([pool.shard.<d>]) and per-shard item counts are
    recorded ([pool.items], [pool.shard.<d>.items], [pool.shards]). *)

val try_map_list :
  domains:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn * Printexc.raw_backtrace) result list
(** {!try_map} over lists, preserving order. *)

val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** {!try_map} for callers that want failures to propagate: returns the
    unwrapped results in input order, and if any application of [f]
    raised, re-raises after all shards have completed.  A single
    failing shard re-raises its first exception as-is in the caller's
    domain with the worker's backtrace preserved
    ({!Printexc.raise_with_backtrace}); when several shards fail, a
    [Failure] naming the failed-shard count (and the first exception)
    is raised instead, again with the first worker's backtrace. *)

val map_list : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)
