(* Bottleneck profiles: the user-facing shape of the simulator's
   attribution data.  [Mt_machine.Attribution] accumulates raw
   per-category cycle sums, port pressure and the RAW chain ring; this
   module freezes them into a [breakdown] — a plain record that can be
   attached to launcher reports, rendered as a table or folded stacks,
   and reduced to the share vector snapshots carry. *)

type category = {
  cat_name : string;
  cat_cycles : float;
  cat_insns : int;  (* dynamic instructions attributed to the category *)
}

type chain_entry = {
  ce_pc : int;
  ce_name : string;  (* disassembly of the instruction at [ce_pc] *)
  ce_count : int;  (* dynamic occurrences on the walked chain *)
  ce_edge : float;  (* summed chain-link latency across occurrences *)
}

type breakdown = {
  total_cycles : float;  (* sum of every category, = attributed cycles *)
  cats : category list;  (* all 13 categories, fixed order *)
  ports : (string * int) list;  (* uops booked per execution port *)
  chain : chain_entry list;  (* critical path, aggregated per pc *)
  chain_hops : int;  (* dynamic length of the walked chain *)
}

let category_names =
  Array.init Mt_machine.Attribution.categories
    Mt_machine.Attribution.category_name

(* Aggregate the dynamic chain per static pc: a steady-state loop
   walks the same instructions once per iteration, so the per-pc view
   ("this FP add contributes 4 cycles x 38 iterations") is the
   readable one. Entries keep first-appearance (program) order. *)
let aggregate_chain name links =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (pc, _completion, edge) ->
      match Hashtbl.find_opt tbl pc with
      | Some (count, total) -> Hashtbl.replace tbl pc (count + 1, total +. edge)
      | None ->
        Hashtbl.add tbl pc (1, edge);
        order := pc :: !order)
    links;
  List.rev_map
    (fun pc ->
      let count, edge = Hashtbl.find tbl pc in
      { ce_pc = pc; ce_name = name pc; ce_count = count; ce_edge = edge })
    !order

let of_attribution ?(max_hops = 4096) ~name attr =
  let cycles = Mt_machine.Attribution.category_cycles attr in
  let insns = Mt_machine.Attribution.category_insns attr in
  let links = Mt_machine.Attribution.critical_path ~max_hops attr in
  {
    total_cycles = Mt_machine.Attribution.total attr;
    cats =
      List.init (Array.length cycles) (fun i ->
          {
            cat_name = category_names.(i);
            cat_cycles = cycles.(i);
            cat_insns = insns.(i);
          });
    ports =
      (let pressure = Mt_machine.Attribution.port_pressure attr in
       List.init Mt_machine.Attribution.port_count (fun i ->
           (Mt_machine.Attribution.port_name i, pressure.(i))));
    chain = aggregate_chain name links;
    chain_hops = List.length links;
  }

(* The share vector carried by snapshots: (category, fraction of total
   cycles), all categories present, zeros included so vectors from
   different runs align positionally. *)
let vector b =
  let total = if b.total_cycles > 0. then b.total_cycles else 1. in
  List.map (fun c -> (c.cat_name, c.cat_cycles /. total)) b.cats

let dominant b =
  match b.cats with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc c -> if c.cat_cycles > acc.cat_cycles then c else acc)
        first rest
    in
    if best.cat_cycles > 0. then Some (best.cat_name, best.cat_cycles)
    else None

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render ?(label = "") b =
  let buf = Buffer.create 512 in
  if label <> "" then
    Buffer.add_string buf (Printf.sprintf "bottleneck profile: %s\n" label);
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %14s %7s %9s\n" "category" "cycles" "share"
       "insns");
  let total = if b.total_cycles > 0. then b.total_cycles else 1. in
  List.iter
    (fun c ->
      if c.cat_cycles > 0. || c.cat_insns > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-12s %14.1f %6.1f%% %9d\n" c.cat_name
             c.cat_cycles
             (100. *. c.cat_cycles /. total)
             c.cat_insns))
    b.cats;
  Buffer.add_string buf
    (Printf.sprintf "  %-12s %14.1f %6.1f%%\n" "total" b.total_cycles 100.);
  let pressure =
    List.filter_map
      (fun (p, n) -> if n > 0 then Some (Printf.sprintf "%s:%d" p n) else None)
      b.ports
  in
  if pressure <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  port pressure (uops): %s\n"
         (String.concat " " pressure));
  if b.chain <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  critical path (%d dynamic hops):\n" b.chain_hops);
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "    pc %-3d %-32s x%-6d %10.1f cyc\n" e.ce_pc
             e.ce_name e.ce_count e.ce_edge))
      b.chain
  end;
  Buffer.contents buf

(* A folded-stack frame must contain neither the [;] separator nor
   the count-separating space, so disassembly text is mangled. *)
let frame s =
  String.map (fun ch -> if ch = ';' || ch = ' ' || ch = '\t' then '_' else ch) s

(* Folded-stack (flamegraph collapsed) output: one "frame;frame N"
   line per category with a positive integer cycle weight, rooted at
   [root] (typically the variant id), plus the critical path as a
   deepening stack so the chain renders as a flame tower. *)
let folded ~root b =
  let root = frame root in
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      let n = int_of_float (Float.round c.cat_cycles) in
      if n > 0 then
        Buffer.add_string buf (Printf.sprintf "%s;%s %d\n" root c.cat_name n))
    b.cats;
  let stack = ref [ "critical_path"; root ] in
  List.iter
    (fun e ->
      stack := frame (Printf.sprintf "pc%d:%s" e.ce_pc e.ce_name) :: !stack;
      let n = int_of_float (Float.round e.ce_edge) in
      if n > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (String.concat ";" (List.rev !stack)) n))
    b.chain;
  Buffer.contents buf
