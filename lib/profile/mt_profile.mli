(** Bottleneck profiles: the user-facing shape of the simulator's
    cycle attribution (see [Mt_machine.Attribution]).

    A {!breakdown} freezes one measured variant's attribution into a
    plain record: the top-down cycle accounting over the 13 categories
    (frontend / window / dependency / six execution ports / four
    memory levels, summing to the attributed cycles), the per-port
    uop pressure, and the critical path — the longest RAW chain,
    aggregated per static instruction and named by disassembly. *)

type category = {
  cat_name : string;
  cat_cycles : float;
  cat_insns : int;  (** dynamic instructions attributed to the category *)
}

type chain_entry = {
  ce_pc : int;
  ce_name : string;  (** disassembly of the instruction at [ce_pc] *)
  ce_count : int;  (** dynamic occurrences on the walked chain *)
  ce_edge : float;  (** summed chain-link latency across occurrences *)
}

type breakdown = {
  total_cycles : float;
  cats : category list;  (** all 13 categories, fixed order *)
  ports : (string * int) list;  (** uops booked per execution port *)
  chain : chain_entry list;  (** critical path, aggregated per pc *)
  chain_hops : int;  (** dynamic length of the walked chain *)
}

(** The 13 category display names, in category-index order. *)
val category_names : string array

(** Freeze an attribution sink.  [name] renders a static pc to its
    disassembly (typically [Core.disassemble]); [max_hops] bounds the
    critical-path walk (default 4096 dynamic links). *)
val of_attribution :
  ?max_hops:int -> name:(int -> string) -> Mt_machine.Attribution.t -> breakdown

(** Normalized category shares, every category present (zeros kept) so
    vectors from different runs align positionally. *)
val vector : breakdown -> (string * float) list

(** The category with the largest attributed cycle count, when any
    cycles were attributed. *)
val dominant : breakdown -> (string * float) option

(** Human-readable table: per-category cycles/share/instructions, port
    pressure, and the critical path. *)
val render : ?label:string -> breakdown -> string

(** Flamegraph-compatible collapsed-stack lines rooted at [root]
    (e.g. the variant id): one line per category plus the critical
    path as a deepening stack, integer cycle weights. *)
val folded : root:string -> breakdown -> string
