type verdict = Stable | Noisy of string | Unstable of string

let verdict_rank = function Stable -> 0 | Noisy _ -> 1 | Unstable _ -> 2

let verdict_kind = function
  | Stable -> "stable"
  | Noisy _ -> "noisy"
  | Unstable _ -> "unstable"

let verdict_to_string = function
  | Stable -> "stable"
  | Noisy reason -> "noisy: " ^ reason
  | Unstable reason -> "unstable: " ^ reason

let verdict_of_string s =
  let with_reason prefix make =
    let p = prefix ^ ": " in
    if s = prefix then Some (make "")
    else if String.length s >= String.length p
            && String.sub s 0 (String.length p) = p then
      Some (make (String.sub s (String.length p) (String.length s - String.length p)))
    else None
  in
  if s = "stable" then Ok Stable
  else
    match with_reason "noisy" (fun r -> Noisy r) with
    | Some v -> Ok v
    | None -> (
      match with_reason "unstable" (fun r -> Unstable r) with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unknown verdict %S" s))

type thresholds = {
  cov_noisy : float;
  cov_unstable : float;
  rciw_noisy : float;
  rciw_unstable : float;
  outlier_mads : float;
  outlier_fraction : float;
  warmup_band : float;
  resamples : int;
  confidence : float;
}

let default_thresholds =
  {
    cov_noisy = 0.02;
    cov_unstable = 0.10;
    rciw_noisy = 0.08;
    rciw_unstable = 0.25;
    outlier_mads = 5.0;
    outlier_fraction = 0.20;
    warmup_band = 0.10;
    resamples = 200;
    confidence = 0.95;
  }

let thresholds_summary t =
  Printf.sprintf
    "cov %g/%g, rciw %g/%g, outliers %g mads (budget %g), warmup %g, %d \
     resamples at %g"
    t.cov_noisy t.cov_unstable t.rciw_noisy t.rciw_unstable t.outlier_mads
    t.outlier_fraction t.warmup_band t.resamples t.confidence

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let mad xs =
  if Array.length xs = 0 then invalid_arg "Mt_quality.mad: empty array";
  let m = Mt_stats.median xs in
  Mt_stats.median (Array.map (fun x -> Float.abs (x -. m)) xs)

(* 1.4826 ≈ 1 / Φ⁻¹(3/4): scales the MAD to estimate the stddev of a
   normal sample, so [outlier_mads] fences are comparable to z-scores. *)
let mad_scale = 1.4826

let outlier_count ?(mads = default_thresholds.outlier_mads) xs =
  if Array.length xs = 0 then 0
  else begin
    let m = Mt_stats.median xs in
    let fence = mads *. mad_scale *. mad xs in
    if fence <= 0. then 0
    else
      Array.fold_left
        (fun acc x -> if Float.abs (x -. m) > fence then acc + 1 else acc)
        0 xs
  end

(* SplitMix64, same construction as Mt_machine.Noise: deterministic and
   independent of the global [Random] state, so an RCIW computed today
   matches the one in yesterday's snapshot bit for bit. *)
type rng = { mutable state : int64 }

let rng_of_seed seed = { state = Int64.of_int (seed lxor 0x51D7A3C5) }

let next_unit r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let next_index r n = min (n - 1) (int_of_float (next_unit r *. float_of_int n))

let rciw ?(resamples = default_thresholds.resamples)
    ?(confidence = default_thresholds.confidence) ~seed xs =
  let n = Array.length xs in
  let m = if n = 0 then 0. else Mt_stats.median xs in
  if n < 2 || m = 0. || resamples < 2 then 0.
  else begin
    let rng = rng_of_seed seed in
    let resample = Array.make n 0. in
    let medians =
      Array.init resamples (fun _ ->
          for i = 0 to n - 1 do
            resample.(i) <- xs.(next_index rng n)
          done;
          Mt_stats.median resample)
    in
    Array.sort Float.compare medians;
    let tail = (1. -. confidence) /. 2. *. 100. in
    let lo = Mt_stats.percentile_sorted medians tail in
    let hi = Mt_stats.percentile_sorted medians (100. -. tail) in
    (hi -. lo) /. Float.abs m
  end

let warmup_excess xs =
  let n = Array.length xs in
  if n < 3 then 0.
  else begin
    let tail = Array.sub xs 1 (n - 1) in
    let tm = Mt_stats.median tail in
    if tm = 0. then 0. else (xs.(0) -. tm) /. tm
  end

(* ------------------------------------------------------------------ *)
(* Assessment                                                          *)
(* ------------------------------------------------------------------ *)

type assessment = {
  verdict : verdict;
  cov : float;
  spread : float;
  rciw : float;
  outliers : int;
  warmup_trend : bool;
}

let pct x = Printf.sprintf "%.1f%%" (100. *. x)

let assess ?(thresholds = default_thresholds) ?(seed = 42) xs =
  if Array.length xs = 0 then invalid_arg "Mt_quality.assess: empty array";
  let t = thresholds in
  let n = Array.length xs in
  let cov = Mt_stats.coefficient_of_variation xs in
  let spread = Mt_stats.relative_spread xs in
  let rciw = rciw ~resamples:t.resamples ~confidence:t.confidence ~seed xs in
  let outliers = outlier_count ~mads:t.outlier_mads xs in
  let excess = warmup_excess xs in
  let warmup_trend = excess > t.warmup_band in
  let verdict =
    if n < 2 then Stable
    else if cov >= t.cov_unstable then
      Unstable (Printf.sprintf "cov %s >= %s" (pct cov) (pct t.cov_unstable))
    else if rciw >= t.rciw_unstable then
      Unstable (Printf.sprintf "rciw %s >= %s" (pct rciw) (pct t.rciw_unstable))
    else if cov >= t.cov_noisy then
      Noisy (Printf.sprintf "cov %s >= %s" (pct cov) (pct t.cov_noisy))
    else if rciw >= t.rciw_noisy then
      Noisy (Printf.sprintf "rciw %s >= %s" (pct rciw) (pct t.rciw_noisy))
    else if
      float_of_int outliers > t.outlier_fraction *. float_of_int n
    then
      Noisy (Printf.sprintf "%d/%d outliers beyond %g mads" outliers n t.outlier_mads)
    else if warmup_trend then
      Noisy
        (Printf.sprintf "warm-up drift: first experiment %s above the rest"
           (pct excess))
    else Stable
  in
  { verdict; cov; spread; rciw; outliers; warmup_trend }

let stable a = a.verdict = Stable
