(** Measurement-quality scoring for MicroLauncher series.

    The launcher's whole protocol — warm-up, repetition, overhead
    subtraction — exists to produce {e stable} cycles-per-iteration
    numbers, yet a median alone never says whether the series behind it
    was trustworthy.  This module scores a per-experiment series the
    way μOpTime scores benchmark configurations: dispersion metrics
    (CoV, relative spread), robust outlier detection (scaled MAD), a
    deterministic seeded-bootstrap relative confidence-interval width
    (RCIW) around the median, and a warm-up-convergence check on the
    head of the series.  The result is a {!verdict} that flows through
    reports, snapshots and the regression gate, and drives the adaptive
    experiment controller (stop measuring once the RCIW target is met).

    Everything here is deterministic: the bootstrap runs on an explicit
    SplitMix64 seed, never the global [Random] state, so two runs with
    the same seed produce bit-identical assessments — snapshots and
    [mt_report] diffs are reproducible. *)

(** How trustworthy a measurement series is.  Ordered: [Stable] beats
    [Noisy] beats [Unstable]; the regression gate treats any rank
    increase between runs as a quality regression. *)
type verdict =
  | Stable  (** Every metric inside its stable band. *)
  | Noisy of string
      (** Usable but wide: a metric crossed its noisy threshold, an
          outlier burst was detected, or the head of the series trends
          downward (insufficient cache heating).  The payload names the
          offending signal. *)
  | Unstable of string
      (** Dispersion so large the median is not trustworthy. *)

val verdict_rank : verdict -> int
(** [Stable] → 0, [Noisy _] → 1, [Unstable _] → 2. *)

val verdict_to_string : verdict -> string
(** ["stable"], ["noisy: <reason>"], ["unstable: <reason>"]. *)

val verdict_of_string : string -> (verdict, string) result
(** Inverse of {!verdict_to_string} (reasons round-trip verbatim). *)

val verdict_kind : verdict -> string
(** Just the constructor: ["stable"] / ["noisy"] / ["unstable"]. *)

(** Classification thresholds.  All relative metrics are fractions
    (0.02 = 2%). *)
type thresholds = {
  cov_noisy : float;  (** CoV at or above this → at least [Noisy]. *)
  cov_unstable : float;  (** CoV at or above this → [Unstable]. *)
  rciw_noisy : float;  (** RCIW at or above this → at least [Noisy]. *)
  rciw_unstable : float;  (** RCIW at or above this → [Unstable]. *)
  outlier_mads : float;
      (** A sample is an outlier when it sits more than this many
          scaled MADs from the median. *)
  outlier_fraction : float;
      (** Outlier share of the series above which it is [Noisy]. *)
  warmup_band : float;
      (** The first experiment must not exceed the median of the rest
          by more than this relative excess, else the series shows
          warm-up drift (insufficient cache heating). *)
  resamples : int;  (** Bootstrap resamples for the RCIW. *)
  confidence : float;  (** Bootstrap confidence level, e.g. 0.95. *)
}

val default_thresholds : thresholds
(** cov 2%/10%, rciw 8%/25%, 5 scaled MADs with a 20% outlier budget,
    10% warm-up band, 200 resamples at 95% confidence. *)

val thresholds_summary : thresholds -> string
(** One-line rendering for option provenance (snapshots). *)

(** {1 Metrics} *)

val mad : float array -> float
(** Median absolute deviation from the median (unscaled).
    @raise Invalid_argument on an empty array. *)

val outlier_count : ?mads:float -> float array -> int
(** Samples further than [mads] (default 5) scaled MADs
    (MAD × 1.4826, the normal-consistency constant) from the median.
    0 when the MAD itself is 0 — a majority-constant series has no
    robust yardstick to call anything an outlier with. *)

val rciw :
  ?resamples:int -> ?confidence:float -> seed:int -> float array -> float
(** Relative confidence-interval width of the median: bootstrap the
    series [resamples] times (default 200) with a SplitMix64 generator
    seeded by [seed], take the central [confidence] (default 0.95)
    interval of the resampled medians, and divide its width by the
    series median.  0 for series shorter than 2 or a zero median.
    Deterministic: same seed, same series → same value. *)

val warmup_excess : float array -> float
(** How far the first experiment sits above the median of the rest,
    relative: [(head − tail_median) / tail_median].  Negative or zero
    when the head is not slower; 0 for series shorter than 3 (too short
    to call a trend) or a zero tail median.  A positive value beyond
    the configured band means the caches were still heating when
    measurement began — the series median is biased upward. *)

(** {1 Assessment} *)

type assessment = {
  verdict : verdict;
  cov : float;  (** Coefficient of variation of the series. *)
  spread : float;  (** Relative spread (max − min) / min. *)
  rciw : float;  (** Bootstrap RCIW of the median. *)
  outliers : int;  (** Samples beyond the MAD fence. *)
  warmup_trend : bool;
      (** The head of the series exceeded the warm-up band. *)
}

val assess :
  ?thresholds:thresholds -> ?seed:int -> float array -> assessment
(** Score a series.  [seed] (default 42) drives the bootstrap only.
    Verdict logic, worst signal wins: [Unstable] when CoV or RCIW
    crosses its unstable limit; otherwise [Noisy] when CoV, RCIW, the
    outlier fraction or warm-up drift crosses its noisy limit;
    otherwise [Stable].  A singleton series is [Stable] by definition
    (no dispersion to judge).
    @raise Invalid_argument on an empty array. *)

val stable : assessment -> bool
(** [verdict = Stable]. *)
