type kind = Raise | Timeout | Corrupt_cache_entry

exception Injected of string

let kind_to_string = function
  | Raise -> "raise"
  | Timeout -> "timeout"
  | Corrupt_cache_entry -> "corrupt-cache-entry"

let kind_of_string = function
  | "raise" -> Ok Raise
  | "timeout" | "hang" -> Ok Timeout
  | "corrupt-cache-entry" | "corrupt-cache" -> Ok Corrupt_cache_entry
  | s -> Error (Printf.sprintf "unknown fault kind %S (raise|timeout|corrupt-cache-entry)" s)

type t = { index : int; kind : kind; times : int option }

let make ?times ~index kind = { index; kind; times }

(* Spec syntax: variant=K:kind[@N] — fault the K-th unit of work (its
   position in the study's variant list) with [kind], on its first N
   attempts only (default: every attempt, so retries cannot mask the
   fault). *)
let of_spec s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt s '=' with
  | None -> err "bad fault spec %S (expected variant=K:kind[@N])" s
  | Some eq ->
    if String.sub s 0 eq <> "variant" then
      err "bad fault spec %S: only variant=... selectors are supported" s
    else begin
      let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
      match String.index_opt rest ':' with
      | None -> err "bad fault spec %S (expected variant=K:kind[@N])" s
      | Some colon ->
        let index_str = String.sub rest 0 colon in
        let kind_str = String.sub rest (colon + 1) (String.length rest - colon - 1) in
        let* index =
          match int_of_string_opt index_str with
          | Some i when i >= 0 -> Ok i
          | _ -> err "bad fault spec %S: %S is not a variant index" s index_str
        in
        let kind_str, times =
          match String.index_opt kind_str '@' with
          | None -> (kind_str, Ok None)
          | Some at ->
            let n = String.sub kind_str (at + 1) (String.length kind_str - at - 1) in
            ( String.sub kind_str 0 at,
              match int_of_string_opt n with
              | Some n when n >= 1 -> Ok (Some n)
              | _ -> err "bad fault spec %S: %S is not an attempt count" s n )
        in
        let* times = times in
        let* kind = kind_of_string kind_str in
        Ok { index; kind; times }
    end

let to_spec t =
  Printf.sprintf "variant=%d:%s%s" t.index (kind_to_string t.kind)
    (match t.times with None -> "" | Some n -> Printf.sprintf "@%d" n)

let find faults ~index = List.find_opt (fun f -> f.index = index) faults

let fires t ~attempt =
  match t.times with None -> true | Some n -> attempt <= n
