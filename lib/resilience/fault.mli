(** Deterministic fault injection: a declarative "break the K-th unit
    of work in this way" that tests and the CI chaos-smoke job use to
    prove the supervisor degrades gracefully instead of aborting.

    Faults are injected at the supervision layer, not inside the
    simulator, so an injected run exercises exactly the retry /
    quarantine / cache-recovery paths a real crash would. *)

type kind =
  | Raise  (** the attempt raises {!Injected} *)
  | Timeout  (** the attempt is treated as having blown its wall budget *)
  | Corrupt_cache_entry
      (** garbage is stored at the work unit's cache key before the
          first attempt, exercising {!Mt_parallel.Cache} decode
          recovery (a no-op when the run has no cache) *)

exception Injected of string
(** What {!Raise} faults throw. *)

type t = {
  index : int;  (** position of the faulted unit in the work list *)
  kind : kind;
  times : int option;
      (** inject on the first [times] attempts only ([None] = every
          attempt, so retries cannot mask the fault) *)
}

val make : ?times:int -> index:int -> kind -> t

val of_spec : string -> (t, string) result
(** Parse the CLI syntax [variant=K:kind[@N]], e.g. [variant=0:raise],
    [variant=3:timeout@1] (fault the first attempt only; a retry then
    succeeds), [variant=2:corrupt-cache-entry]. *)

val to_spec : t -> string
(** Inverse of {!of_spec} (canonical kind spelling). *)

val kind_to_string : kind -> string

val kind_of_string : string -> (kind, string) result

val find : t list -> index:int -> t option
(** The fault targeting work-unit [index], if any. *)

val fires : t -> attempt:int -> bool
(** Does this fault inject on the given 1-based attempt? *)
