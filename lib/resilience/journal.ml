open Mt_obsv

(* One JSON object per line, flushed per record: after a SIGKILL the
   file is a valid journal up to (at worst) one torn final line, which
   the loader drops.  Values are hex-encoded so arbitrary Marshal bytes
   survive the JSON string round-trip. *)

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length s / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with Failure _ | Invalid_argument _ -> None

type entry = { key : string; id : string; data : string }

type writer = { oc : out_channel; lock : Mutex.t; path : string }

(* Does the file end mid-line (crash during the final write)?  Appending
   straight after would glue the first new record onto the torn line and
   lose it too, so the writer starts with a newline in that case. *)
let ends_mid_line path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        len > 0
        &&
        (seek_in ic (len - 1);
         input_char ic <> '\n'))

let create ?(append = false) path =
  let torn = append && ends_mid_line path in
  let flags =
    [ Open_wronly; Open_creat; Open_binary; (if append then Open_append else Open_trunc) ]
  in
  let oc = open_out_gen flags 0o644 path in
  if torn then (
    output_char oc '\n';
    flush oc);
  { oc; lock = Mutex.create (); path }

let path w = w.path

let record w ~key ~id ~data =
  let line =
    Json.to_string
      (Json.Obj
         [ ("key", Json.Str key); ("id", Json.Str id); ("data", Json.Str (to_hex data)) ])
  in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc);
  Mt_telemetry.incr (Mt_telemetry.global ()) "resilience.resume.recorded"

let close w = close_out_noerr w.oc

let entry_of_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok json ->
    let str name = Option.bind (Json.member name json) Json.to_str in
    (match (str "key", str "id", str "data") with
    | Some key, Some id, Some hex ->
      Option.map (fun data -> { key; id; data }) (of_hex hex)
    | _ -> None)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text ->
    let lines = String.split_on_char '\n' text in
    (* Later lines win: a recovered entry re-recorded on resume simply
       shadows the earlier one. *)
    let entries =
      List.fold_left
        (fun acc line ->
          if String.trim line = "" then acc
          else
            match entry_of_line line with
            | Some e -> e :: acc
            | None -> acc (* torn or foreign line: skip, don't fail *))
        [] lines
    in
    Ok (List.rev entries)

let find entries ~key =
  (* Last record wins, matching the append-only write order. *)
  List.fold_left (fun acc e -> if e.key = key then Some e else acc) None entries
