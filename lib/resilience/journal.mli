(** The crash-safe checkpoint journal: an append-only JSON-lines file
    recording each completed unit of work as
    [{"key": <digest>, "id": <name>, "data": <hex payload>}].

    Every record is written under a mutex and flushed before {!record}
    returns, so a run killed at any point leaves a journal that is
    valid up to at most one torn final line — which {!load} silently
    drops.  [key] is the unit's content digest (studies reuse
    {!Mt_parallel.Cache.digest_key}), [data] an opaque payload
    (hex-encoded so Marshal bytes survive JSON).

    A resumed run loads the journal, skips every unit whose key is
    present, and appends the units it completes to the same file. *)

type entry = { key : string; id : string; data : string }

type writer

val create : ?append:bool -> string -> writer
(** Open a journal for writing.  [append] (default false: truncate)
    continues an existing journal — what [--resume] does so the file
    ends up covering the whole study. *)

val path : writer -> string

val record : writer -> key:string -> id:string -> data:string -> unit
(** Append one completed unit and flush.  Thread-safe.  Bumps the
    [resilience.resume.recorded] telemetry counter. *)

val close : writer -> unit

val load : string -> (entry list, string) result
(** All well-formed entries, in file order; torn or foreign lines are
    skipped rather than failing the load.  [Error] only for I/O
    failures (e.g. the file does not exist). *)

val find : entry list -> key:string -> entry option
(** The entry for [key]; when a key was recorded twice the later record
    wins. *)
