type t = {
  retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  backoff_jitter : float;
  backoff_seed : int;
  wall_budget_s : float option;
  sim_budget : int option;
}

let default =
  {
    retries = 1;
    backoff_base_s = 0.002;
    backoff_max_s = 0.25;
    backoff_jitter = 0.5;
    backoff_seed = 42;
    wall_budget_s = None;
    sim_budget = None;
  }

let make ?(retries = default.retries) ?(backoff_base_s = default.backoff_base_s)
    ?(backoff_max_s = default.backoff_max_s)
    ?(backoff_jitter = default.backoff_jitter)
    ?(backoff_seed = default.backoff_seed) ?wall_budget_s ?sim_budget () =
  {
    retries = max 0 retries;
    backoff_base_s = Float.max 0. backoff_base_s;
    backoff_max_s = Float.max 0. backoff_max_s;
    backoff_jitter = Float.max 0. backoff_jitter;
    backoff_seed;
    wall_budget_s;
    sim_budget;
  }

(* SplitMix64, the same construction as Mt_quality's bootstrap and
   Mt_machine.Noise: the jitter stream is a pure function of (seed, key,
   attempt), never the global [Random] state, so a rerun backs off by
   exactly the same delays. *)
let splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

(* One uniform draw in [0, 1) from (seed, key, attempt).  The string key
   is folded through its MD5 digest so similar keys (variant ids differ
   in one digit) land far apart in the stream. *)
let uniform ~seed ~key ~attempt =
  let digest = Digest.string (Printf.sprintf "%d:%s:%d" seed key attempt) in
  let fold acc i = Int64.add (Int64.mul acc 257L) (Int64.of_int (Char.code digest.[i])) in
  let state = List.fold_left fold (Int64.of_int seed) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let _, bits = splitmix64 state in
  let mantissa = Int64.to_float (Int64.shift_right_logical bits 11) in
  mantissa /. 9007199254740992. (* 2^53 *)

let delay t ~key ~attempt =
  if attempt < 1 then 0.
  else begin
    let base = t.backoff_base_s *. Float.pow 2. (float_of_int (attempt - 1)) in
    let u = uniform ~seed:t.backoff_seed ~key ~attempt in
    Float.min t.backoff_max_s (base *. (1. +. (t.backoff_jitter *. u)))
  end

let summary t =
  Printf.sprintf "retries=%d backoff=%gs..%gs jitter=%g seed=%d wall=%s sim=%s"
    t.retries t.backoff_base_s t.backoff_max_s t.backoff_jitter t.backoff_seed
    (match t.wall_budget_s with Some s -> Printf.sprintf "%gs" s | None -> "-")
    (match t.sim_budget with Some n -> string_of_int n | None -> "-")
