(** The supervision policy: how many times a failing unit of work is
    retried, how long to back off between attempts, and the budgets
    past which an attempt counts as hung.

    Everything here is deterministic.  Backoff delays are a pure
    function of [(backoff_seed, key, attempt)] — no global [Random],
    no wall clock — so two runs of the same study back off identically
    and a test can predict every delay. *)

type t = {
  retries : int;  (** retry attempts after the first failure (>= 0) *)
  backoff_base_s : float;  (** delay before retry 1; doubles per retry *)
  backoff_max_s : float;  (** hard cap on any single delay *)
  backoff_jitter : float;
      (** jitter fraction: the delay is scaled by a deterministic
          uniform draw in [1, 1 + jitter] *)
  backoff_seed : int;  (** seed of the jitter stream *)
  wall_budget_s : float option;
      (** wall-clock budget per attempt; an attempt that finishes
          later is treated as hung and quarantined/retried *)
  sim_budget : int option;
      (** simulated-instruction budget per attempt (mapped onto
          [Options.max_instructions] by the caller) *)
}

val default : t
(** 1 retry, 2 ms base, 250 ms cap, 0.5 jitter, seed 42, no budgets. *)

val make :
  ?retries:int ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?backoff_jitter:float ->
  ?backoff_seed:int ->
  ?wall_budget_s:float ->
  ?sim_budget:int ->
  unit ->
  t
(** {!default} with overrides; negative numeric fields are clamped
    to 0. *)

val delay : t -> key:string -> attempt:int -> float
(** The backoff delay in seconds slept after failing [attempt]
    (1-based): [backoff_base_s * 2^(attempt-1)] scaled by the
    deterministic jitter draw for [(backoff_seed, key, attempt)],
    capped at [backoff_max_s].  Deterministic: same policy, key and
    attempt always yield the same delay. *)

val summary : t -> string
(** One-line human-readable rendering. *)
