type quarantine = { kind : string; detail : string; attempts : int }

type 'a outcome = Done of 'a * int | Quarantined of quarantine

let quarantine_to_string q =
  Printf.sprintf "quarantined (%s) after %d attempt%s: %s" q.kind q.attempts
    (if q.attempts = 1 then "" else "s")
    q.detail

(* The simulator is pure OCaml running in this domain, so a hung
   attempt cannot be preempted; the wall budget is checked after the
   attempt returns ("post-hoc").  That still quarantines variants whose
   simulation cost exploded — the production failure mode here — and
   injected Timeout faults short-circuit deterministically without
   sleeping at all. *)
let attempt_result ?fault ~(policy : Policy.t) f ~attempt =
  let tel = Mt_telemetry.global () in
  let run () =
    let t0 = Unix.gettimeofday () in
    match f () with
    | v -> (
      let elapsed = Unix.gettimeofday () -. t0 in
      match policy.Policy.wall_budget_s with
      | Some budget when elapsed > budget ->
        Error
          ( "timeout",
            Printf.sprintf "wall budget %gs exceeded (attempt took %.3fs)"
              budget elapsed )
      | _ -> Ok v)
    | exception e -> Error ("raise", Printexc.to_string e)
  in
  let inject kind =
    Mt_telemetry.incr tel "resilience.fault.injected";
    match (kind : Fault.kind) with
    | Fault.Raise ->
      Error ("raise", Printexc.to_string (Fault.Injected "injected raise"))
    | Fault.Timeout ->
      Error
        ( "timeout",
          Printf.sprintf "injected timeout (wall budget %s exceeded)"
            (match policy.Policy.wall_budget_s with
            | Some s -> Printf.sprintf "%gs" s
            | None -> "0s") )
    | Fault.Corrupt_cache_entry ->
      (* Corruption is planted by the caller before supervision starts
         (it needs the cache handle); at this layer it is a plain run. *)
      run ()
  in
  match fault with
  | Some fl when Fault.fires fl ~attempt -> inject fl.Fault.kind
  | _ -> run ()

let supervise ?fault ?(policy = Policy.default) ~key f =
  let tel = Mt_telemetry.global () in
  let rec go attempt =
    let result =
      Mt_telemetry.span tel "resilience.attempt"
        ~args:[ ("key", key); ("attempt", string_of_int attempt) ]
        (fun () -> attempt_result ?fault ~policy f ~attempt)
    in
    match result with
    | Ok v -> Done (v, attempt)
    | Error (kind, detail) ->
      if kind = "timeout" then Mt_telemetry.incr tel "resilience.timeout";
      if attempt > policy.Policy.retries then begin
        Mt_telemetry.incr tel "resilience.quarantine";
        Quarantined { kind; detail; attempts = attempt }
      end
      else begin
        Mt_telemetry.incr tel "resilience.retry";
        let d = Policy.delay policy ~key ~attempt in
        if d > 0. then Unix.sleepf d;
        go (attempt + 1)
      end
  in
  go 1
