(** Per-unit-of-work supervision: run a thunk under a {!Policy},
    retrying failures with deterministic backoff and degrading a unit
    that keeps crashing or hanging to a {e quarantine} verdict instead
    of letting the exception kill the whole study.

    Failure modes covered:
    - the thunk raises ("raise" quarantine kind);
    - the thunk finishes but blew its wall-clock budget ("timeout").
      The simulator is pure OCaml in the calling domain, so a hung
      attempt cannot be preempted mid-flight — the budget is enforced
      {e post hoc}, after the attempt returns.  Simulated-cycle budgets
      ([Policy.sim_budget]) are the preemptive complement: the caller
      maps them onto [Options.max_instructions] so a runaway variant
      stops inside the simulator.

    An [Error _] {e value} returned by the thunk is not a supervision
    failure — it flows through untouched.  Supervision is about crashes
    and hangs, not about measurements that report their own errors.

    Telemetry (on the global {!Mt_telemetry} handle): one
    [resilience.attempt] span per attempt (args: key, attempt), and
    [resilience.retry] / [resilience.timeout] / [resilience.quarantine]
    / [resilience.fault.injected] counters. *)

type quarantine = {
  kind : string;  (** "raise" or "timeout" *)
  detail : string;  (** the exception text or budget diagnostic *)
  attempts : int;  (** total attempts spent (1 + retries) *)
}

type 'a outcome =
  | Done of 'a * int  (** the value and the attempt that produced it *)
  | Quarantined of quarantine

val quarantine_to_string : quarantine -> string
(** ["quarantined (kind) after N attempts: detail"]. *)

val supervise :
  ?fault:Fault.t -> ?policy:Policy.t -> key:string -> (unit -> 'a) -> 'a outcome
(** [supervise ~key f] runs [f] up to [1 + policy.retries] times,
    sleeping [Policy.delay policy ~key ~attempt] between attempts.
    [key] names the unit of work (variant id, experiment id) in
    telemetry and seeds its jitter stream.  [fault] deterministically
    injects the given failure on the attempts it {!Fault.fires} on
    ({!Fault.Corrupt_cache_entry} is a no-op at this layer — the caller
    plants the corruption before supervising). *)
