(* The client side of the protocol: connect, send one request, fold the
   response stream.  [mt_study --submit] and the serve tests sit on
   this. *)

type summary = {
  job : int;
  csv : Mt_stats.Csv.t option;
  snapshot : Mt_obsv.Json.t option;
  quarantined : int;
  cache_hit_rate : float;
}

let with_connection ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot reach daemon at %s: %s" socket
         (Unix.error_message err))
  | () ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        f ic oc)

let submit ~socket ?(on_response = fun (_ : Protocol.response) -> ()) s =
  with_connection ~socket (fun ic oc ->
      Protocol.send_request oc (Protocol.Submit s);
      let rec drain acc =
        match Protocol.read_response ic with
        | None -> Error "daemon closed the connection mid-stream"
        | Some (Error msg) -> Error ("protocol error: " ^ msg)
        | Some (Ok resp) -> (
          on_response resp;
          match resp with
          | Protocol.Accepted { job; _ } -> drain { acc with job }
          | Protocol.Header cells ->
            drain { acc with csv = Some (Mt_stats.Csv.create ~header:cells) }
          | Protocol.Row cells -> (
            match acc.csv with
            | None -> Error "protocol error: row before header"
            | Some doc ->
              Mt_stats.Csv.add_row doc cells;
              drain acc)
          | Protocol.Snapshot doc -> drain { acc with snapshot = Some doc }
          | Protocol.Done { job; quarantined; cache_hit_rate } ->
            Ok { acc with job; quarantined; cache_hit_rate }
          | Protocol.Failed { message; _ } -> Error message
          | Protocol.Rejected reason ->
            Error (Protocol.reject_to_string reason)
          | Protocol.Pong | Protocol.Stats_reply _ | Protocol.Metrics_reply _
          | Protocol.Metrics_text _ | Protocol.Bye ->
            Error "protocol error: unexpected response to a submission")
      in
      drain
        { job = 0; csv = None; snapshot = None; quarantined = 0;
          cache_hit_rate = 0. })

(* One-shot request/response exchanges. *)
let roundtrip ~socket request expected =
  with_connection ~socket (fun ic oc ->
      Protocol.send_request oc request;
      match Protocol.read_response ic with
      | None -> Error "daemon closed the connection"
      | Some (Error msg) -> Error ("protocol error: " ^ msg)
      | Some (Ok resp) -> expected resp)

let ping ~socket =
  roundtrip ~socket Protocol.Ping (function
    | Protocol.Pong -> Ok ()
    | _ -> Error "protocol error: expected pong")

let stats ~socket =
  roundtrip ~socket Protocol.Stats (function
    | Protocol.Stats_reply counters -> Ok counters
    | _ -> Error "protocol error: expected stats")

let metrics ~socket =
  roundtrip ~socket (Protocol.Metrics Protocol.Metrics_json) (function
    | Protocol.Metrics_reply m -> Ok m
    | _ -> Error "protocol error: expected metrics")

let metrics_text ~socket =
  roundtrip ~socket (Protocol.Metrics Protocol.Metrics_prometheus) (function
    | Protocol.Metrics_text text -> Ok text
    | _ -> Error "protocol error: expected metrics text")

let shutdown ~socket =
  roundtrip ~socket Protocol.Shutdown (function
    | Protocol.Bye -> Ok ()
    | _ -> Error "protocol error: expected bye")
