(** Client side of the mt_serve protocol. *)

type summary = {
  job : int;
  csv : Mt_stats.Csv.t option;
      (** header + every streamed row, rebuilt with the same
          {!Mt_stats.Csv} renderer the one-shot path uses — saving it
          reproduces [mt_study --csv] byte for byte *)
  snapshot : Mt_obsv.Json.t option;
  quarantined : int;
  cache_hit_rate : float;
}

val submit :
  socket:string ->
  ?on_response:(Protocol.response -> unit) ->
  Protocol.submission ->
  (summary, string) result
(** Submit one study and drain the response stream ([on_response] sees
    every message as it arrives, e.g. to print rows live).  Errors are
    rejections ({!Protocol.reject_to_string}), job failures, or a dead
    daemon. *)

val ping : socket:string -> (unit, string) result

val stats : socket:string -> ((string * int) list, string) result

val metrics : socket:string -> (Protocol.metrics, string) result
(** The daemon's live metrics dump (counters, gauges, latency
    summaries) as structured data. *)

val metrics_text : socket:string -> (string, string) result
(** The same dump rendered by the daemon as Prometheus text exposition
    format — pipe it straight to a scrape file. *)

val shutdown : socket:string -> (unit, string) result
(** Ask the daemon to stop accepting, finish queued jobs, and exit. *)
