(* The mt_serve daemon: accept study submissions over a Unix-domain
   socket, hold them in a bounded job queue, and execute them through
   the existing Run_config/Supervisor/Journal engine.

   Thread layout: the caller's thread runs the accept loop; each
   connection gets a short-lived handler thread (it parses and
   validates the request, enqueues, and waits); a fixed pool of worker
   threads pulls jobs off the shared queue as they free up — idle
   workers steal whatever is next, so one slow study never convoys the
   queue behind a busy worker.  Each job's simulation work still fans
   out across [Mt_parallel.Pool] domains per the base run config. *)

(* NB: no [open Mt_launcher] — its [Protocol] (the measurement
   protocol) would shadow this library's wire [Protocol]. *)
module Options = Mt_launcher.Options
module Run_config = Microtools.Study.Run_config

type config = {
  socket_path : string;
  queue_capacity : int;
  workers : int;
  state_dir : string option;
  history_dir : string option;
  log_json : bool;
  base : Run_config.t;
}

let default_config ?(base = Run_config.default) socket_path =
  {
    socket_path;
    queue_capacity = 64;
    workers = 2;
    state_dir = None;
    history_dir = None;
    log_json = false;
    base;
  }

type job = {
  id : int;
  submission : Protocol.submission;
  oc : out_channel;
  lock : Mutex.t;
  finished : Condition.t;
  mutable done_ : bool;
  submitted_at : float;  (* wall clock at enqueue, for queue-wait *)
}

type t = {
  config : config;
  queue : job Jobq.t;
  listener : Unix.file_descr;
  stopping : bool Atomic.t;
  next_id : int Atomic.t;
  inflight : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  started_at : float;
}

let tel () = Mt_telemetry.global ()

(* The two live latency histograms a scraper reads quantiles from. *)
let queue_wait_metric = "serve.job.queue_wait.us"

let exec_metric = "serve.job.exec.us"

(* Structured per-job log lines (--log-json): one JSON object per
   event on stdout, flushed per line so `mt_serve | jq` tails live.
   Guarded by config so the default human banner stays byte-identical.
   stdout is shared with job execution output; the single print is
   atomic enough (one write of one line) for line-oriented consumers. *)
let log_json d event fields =
  if d.config.log_json then begin
    let doc =
      Mt_obsv.Json.Obj
        (("ts", Mt_obsv.Json.Num (Unix.gettimeofday ()))
        :: ("event", Mt_obsv.Json.Str event)
        :: fields)
    in
    print_string (Mt_obsv.Json.to_string doc);
    print_newline ();
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* Submission -> study                                                 *)
(* ------------------------------------------------------------------ *)

let options_of_submission (s : Protocol.submission) =
  let ( let* ) = Result.bind in
  let* machine =
    match s.Protocol.machine with
    | Protocol.Preset name -> (
      match Mt_machine.Config.find_preset name with
      | Some cfg -> Ok cfg
      | None ->
        Error
          (Printf.sprintf "unknown machine %s (known: %s)" name
             (String.concat ", " (List.map fst Mt_machine.Config.presets))))
    | Protocol.Inline_xml text -> Mt_machine.Config_io.of_string text
  in
  let* per =
    match s.Protocol.per with
    | "pass" -> Ok Options.Per_pass
    | "instruction" -> Ok Options.Per_instruction
    | "element" -> Ok Options.Per_element
    | "call" -> Ok Options.Per_call
    | p -> Error (Printf.sprintf "unknown per unit %S" p)
  in
  if s.Protocol.array_kb < 1 then Error "array_kb must be >= 1"
  else if s.Protocol.repetitions < 1 then Error "repetitions must be >= 1"
  else if s.Protocol.experiments < 1 then Error "experiments must be >= 1"
  else
    Ok
      {
        (Options.default machine) with
        Options.array_bytes = s.Protocol.array_kb * 1024;
        per;
        repetitions = s.Protocol.repetitions;
        experiments = s.Protocol.experiments;
      }

(* Validate as much as possible on the connection thread, before the
   job takes a queue slot: a submission that can never run is a
   [Bad_request], not a wasted worker dispatch. *)
let study_of_submission (s : Protocol.submission) =
  match options_of_submission s with
  | Error _ as e -> e
  | Ok opts -> Microtools.Study.of_description s.Protocol.kernel_xml opts

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let job_run_config d job =
  let config = Protocol.config_into_base job.submission.Protocol.run d.config.base in
  match d.config.state_dir with
  | None -> config
  | Some dir ->
    (* Per-job crash journal: a daemon killed mid-job leaves a resumable
       checkpoint behind; the file is removed once the job completes. *)
    Run_config.with_journal
      (Some (Filename.concat dir (Printf.sprintf "job-%d.journal" job.id)))
      config

let stream_outcomes d job outcomes =
  let doc = Microtools.Study.csv outcomes in
  Protocol.send_response job.oc (Protocol.Header (Mt_stats.Csv.header doc));
  List.iter
    (fun row -> Protocol.send_response job.oc (Protocol.Row row))
    (Mt_stats.Csv.rows doc);
  let quarantined = List.length (Microtools.Study.quarantined outcomes) in
  let cache_hit_rate =
    match d.config.base.Run_config.cache with
    | Some c -> Mt_parallel.Cache.hit_rate c
    | None -> 0.
  in
  (quarantined, cache_hit_rate)

(* Runs the study and streams everything EXCEPT the terminal
   Done/Failed message, which the worker sends only after all
   bookkeeping (counters, latency histograms, the history archive) has
   landed — so a client that reads stats, metrics or the archive the
   moment its submission returns is guaranteed to see its own job. *)
let execute d job =
  match study_of_submission job.submission with
  | Error msg ->
    (* Validation re-runs here for jobs enqueued through a raw socket
       client that skipped the handler's early check. *)
    Atomic.incr d.failed;
    Mt_telemetry.incr (tel ()) "serve.jobs.failed";
    `Failed msg
  | Ok study -> (
    let config = job_run_config d job in
    match Microtools.Study.run ~config study with
    | exception e ->
      Atomic.incr d.failed;
      Mt_telemetry.incr (tel ()) "serve.jobs.failed";
      `Failed (Printexc.to_string e)
    | outcomes ->
      let quarantined, cache_hit_rate = stream_outcomes d job outcomes in
      let snap = Microtools.Study.snapshot ~tool:"mt_serve" study outcomes in
      Protocol.send_response job.oc
        (Protocol.Snapshot (Mt_obsv.Snapshot.to_json snap));
      Option.iter
        (fun path -> try Sys.remove path with Sys_error _ -> ())
        config.Run_config.journal_out;
      (* Continuous benchmarking: every completed job lands in the
         shared archive, so a long-lived daemon accumulates the
         timeline mt_report --history analyses.  Best-effort — an
         unwritable archive must not fail the job that just streamed
         its results. *)
      Option.iter
        (fun dir ->
          match
            Mt_obsv.History.append
              ~label:(Printf.sprintf "job-%d" job.id)
              ~dir snap
          with
          | Ok _ -> ()
          | Error msg -> Printf.eprintf "mt_serve: %s\n%!" msg)
        d.config.history_dir;
      Atomic.incr d.completed;
      Mt_telemetry.incr (tel ()) "serve.jobs.completed";
      `Completed (quarantined, cache_hit_rate))

let worker d () =
  let rec loop () =
    match Jobq.pop d.queue with
    | None -> ()
    | Some job ->
      Atomic.incr d.inflight;
      Mt_telemetry.incr (tel ()) "serve.jobs.started";
      let popped_at = Unix.gettimeofday () in
      let queue_wait_us = 1e6 *. (popped_at -. job.submitted_at) in
      Mt_telemetry.observe (tel ()) queue_wait_metric queue_wait_us;
      let status =
        try execute d job
        with _ ->
          (* The socket died mid-stream (client hung up): the job is
             finished either way; never take the worker down. *)
          `Failed "connection lost"
      in
      let exec_us = 1e6 *. (Unix.gettimeofday () -. popped_at) in
      Mt_telemetry.observe (tel ()) exec_metric exec_us;
      log_json d
        (match status with
        | `Completed _ -> "job.done"
        | `Failed _ -> "job.failed")
        ([
           ("job", Mt_obsv.Json.Num (float_of_int job.id));
           ("queue_wait_us", Mt_obsv.Json.Num queue_wait_us);
           ("exec_us", Mt_obsv.Json.Num exec_us);
         ]
        @
        match status with
        | `Completed (quarantined, _) ->
          [ ("quarantined", Mt_obsv.Json.Num (float_of_int quarantined)) ]
        | `Failed msg -> [ ("message", Mt_obsv.Json.Str msg) ]);
      (* The terminal message, last: it unblocks the waiting client. *)
      (try
         match status with
         | `Completed (quarantined, cache_hit_rate) ->
           Protocol.send_response job.oc
             (Protocol.Done { job = job.id; quarantined; cache_hit_rate })
         | `Failed message ->
           Protocol.send_response job.oc
             (Protocol.Failed { job = job.id; message })
       with _ -> () (* client hung up: the job is finished either way *));
      Atomic.decr d.inflight;
      Mutex.lock job.lock;
      job.done_ <- true;
      Condition.signal job.finished;
      Mutex.unlock job.lock;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let uptime_s d = Unix.gettimeofday () -. d.started_at

(* Live latency quantiles, as integer microseconds so they slot into
   the (string * int) stats counters unchanged.  Empty histograms (no
   jobs yet, or telemetry disabled) simply omit the keys, so older
   clients and the codec round-trip are unaffected. *)
let latency_quantiles () =
  List.concat_map
    (fun metric ->
      List.filter_map
        (fun (label, p) ->
          Option.map
            (fun v -> (Printf.sprintf "%s.%s" metric label, int_of_float v))
            (Mt_telemetry.quantile (tel ()) metric p))
        [ ("p50", 50.); ("p90", 90.); ("p99", 99.) ])
    [ queue_wait_metric; exec_metric ]

let stats d =
  let cache_counters =
    match d.config.base.Run_config.cache with
    | None -> []
    | Some c ->
      [
        ("cache.hits", Mt_parallel.Cache.hits c);
        ("cache.misses", Mt_parallel.Cache.misses c);
        ("cache.decode_failures", Mt_parallel.Cache.decode_failures c);
        ("cache.evictions", Mt_parallel.Cache.evictions c);
      ]
  in
  [
    ("serve.uptime.s", int_of_float (uptime_s d));
    ("serve.queue.capacity", Jobq.capacity d.queue);
    ("serve.queue.depth", Jobq.depth d.queue);
    ("serve.jobs.inflight", Atomic.get d.inflight);
    ("serve.jobs.completed", Atomic.get d.completed);
    ("serve.jobs.failed", Atomic.get d.failed);
  ]
  @ latency_quantiles () @ cache_counters

(* The scrape endpoint's payload: the stats counters plus every
   telemetry counter, uptime as a proper float gauge, and the latency
   histograms as quantile summaries. *)
let metrics d =
  let summaries =
    List.filter_map
      (fun (name, h) ->
        if h.Mt_telemetry.count = 0 then None
        else
          Some
            ( name,
              {
                Protocol.m_count = h.Mt_telemetry.count;
                m_sum = h.Mt_telemetry.sum;
                m_quantiles =
                  List.filter_map
                    (fun q ->
                      Option.map
                        (fun v -> (q /. 100., v))
                        (Mt_telemetry.quantile (tel ()) name q))
                    [ 50.; 90.; 99. ];
              } ))
      (Mt_telemetry.histograms (tel ()))
  in
  let stat_counters =
    List.filter (fun (k, _) -> k <> "serve.uptime.s") (stats d)
  in
  let tel_counters =
    (* Telemetry counters the stats list doesn't already carry
       (pool/sim/resilience internals recorded during jobs). *)
    List.filter
      (fun (k, _) -> not (List.mem_assoc k stat_counters))
      (Mt_telemetry.counters (tel ()))
  in
  {
    Protocol.m_counters = stat_counters @ tel_counters;
    m_gauges = [ ("serve.uptime.s", uptime_s d) ];
    m_summaries = summaries;
  }

let trigger_stop d =
  if not (Atomic.exchange d.stopping true) then begin
    (* Closing the fd would NOT wake a thread blocked in accept(2);
       shutting the listener down does (accept fails with EINVAL), and
       a throwaway connection covers any platform where shutdown on a
       listening socket is a no-op.  In-queue and in-flight jobs still
       run to completion. *)
    (try Unix.shutdown d.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect fd (Unix.ADDR_UNIX d.config.socket_path))
    with Unix.Unix_error _ -> ()
  end

let handle_submit d oc s =
  Mt_telemetry.incr (tel ()) "serve.submissions";
  match study_of_submission s with
  | Error msg ->
    Mt_telemetry.incr (tel ()) "serve.rejected.bad_request";
    Protocol.send_response oc (Protocol.Rejected (Protocol.Bad_request msg))
  | Ok _ -> (
    let job =
      {
        id = Atomic.fetch_and_add d.next_id 1;
        submission = s;
        oc;
        lock = Mutex.create ();
        finished = Condition.create ();
        done_ = false;
        submitted_at = Unix.gettimeofday ();
      }
    in
    match Jobq.push d.queue job with
    | Error (`Queue_full | `Closed) ->
      (* A closing daemon has no capacity either: same typed error. *)
      Mt_telemetry.incr (tel ()) "serve.rejected.queue_full";
      Protocol.send_response oc (Protocol.Rejected Protocol.Queue_full)
    | Ok () ->
      Mt_telemetry.incr (tel ()) "serve.accepted";
      log_json d "job.accepted"
        [
          ("job", Mt_obsv.Json.Num (float_of_int job.id));
          ("queue_depth", Mt_obsv.Json.Num (float_of_int (Jobq.depth d.queue)));
        ];
      Protocol.send_response oc
        (Protocol.Accepted { job = job.id; queue_depth = Jobq.depth d.queue });
      Mutex.lock job.lock;
      while not job.done_ do
        Condition.wait job.finished job.lock
      done;
      Mutex.unlock job.lock)

let handle_connection d fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     match Protocol.read_request ic with
     | None -> ()
     | Some (Error msg) ->
       Protocol.send_response oc (Protocol.Rejected (Protocol.Bad_request msg))
     | Some (Ok Protocol.Ping) -> Protocol.send_response oc Protocol.Pong
     | Some (Ok Protocol.Stats) ->
       Protocol.send_response oc (Protocol.Stats_reply (stats d))
     | Some (Ok (Protocol.Metrics Protocol.Metrics_json)) ->
       Protocol.send_response oc (Protocol.Metrics_reply (metrics d))
     | Some (Ok (Protocol.Metrics Protocol.Metrics_prometheus)) ->
       Protocol.send_response oc
         (Protocol.Metrics_text (Protocol.prometheus_of_metrics (metrics d)))
     | Some (Ok Protocol.Shutdown) ->
       Protocol.send_response oc Protocol.Bye;
       trigger_stop d
     | Some (Ok (Protocol.Submit s)) -> handle_submit d oc s
   with _ -> () (* peer hung up mid-exchange *));
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ()
  end

let create config =
  Option.iter mkdir_p config.state_dir;
  mkdir_p (Filename.dirname config.socket_path);
  (* A stale socket file from a dead daemon blocks bind; a live daemon
     on the same path is a configuration error we surface via bind. *)
  (match Unix.lstat config.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX config.socket_path) with
    | () ->
      Unix.close probe;
      failwith
        (Printf.sprintf "mt_serve: %s already has a live daemon"
           config.socket_path)
    | exception Unix.Unix_error _ ->
      Unix.close probe;
      (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ()))
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listener 64;
  {
    config;
    queue = Jobq.create ~capacity:config.queue_capacity;
    listener;
    stopping = Atomic.make false;
    next_id = Atomic.make 1;
    inflight = Atomic.make 0;
    completed = Atomic.make 0;
    failed = Atomic.make 0;
    started_at = Unix.gettimeofday ();
  }

let serve d =
  let workers =
    List.init
      (max 1 d.config.workers)
      (fun _ -> Thread.create (worker d) ())
  in
  let rec accept_loop () =
    match Unix.accept d.listener with
    | fd, _ ->
      if Atomic.get d.stopping then
        (* The wake-up connection from trigger_stop, or a client racing
           the shutdown: either way, no new work. *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        ignore (Thread.create (handle_connection d) fd);
        accept_loop ()
      end
    | exception
        Unix.Unix_error
          ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when Atomic.get d.stopping ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (try Unix.close d.listener with Unix.Unix_error _ -> ());
  (* Drain: pending jobs still execute, their connection handlers are
     still waiting on them; then the workers see the close and exit. *)
  Jobq.close d.queue;
  List.iter Thread.join workers;
  try Unix.unlink d.config.socket_path with Unix.Unix_error _ -> ()

let stop = trigger_stop

let run config = serve (create config)
