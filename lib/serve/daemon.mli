(** The persistent study daemon behind [mt_serve]: a Unix-domain
    listener, a bounded job queue, and a pool of worker threads that
    execute submissions through the {!Microtools.Study.Run_config}
    engine (each job still fans its variants out across the
    [Mt_parallel.Pool] domains the base config allows).

    Lifecycle: {!create} binds the socket (refusing a path with a live
    daemon, silently replacing a stale socket file), {!serve} blocks
    running the accept loop until a [shutdown] protocol message (or
    {!stop}) arrives, then drains the queue — every accepted job
    completes and streams its results before [serve] returns and the
    socket file is removed.

    Failure semantics: a malformed or unrunnable submission is rejected
    before it takes a queue slot; a full queue rejects with a typed
    [queue-full]; a job whose study raises streams a [failed] message
    but never takes the daemon down; a client that hangs up mid-stream
    only loses its own results.  With a [state_dir], each running job
    keeps a crash journal — a daemon killed mid-job leaves a
    [job-N.journal] checkpoint a later one-shot run can [--resume]. *)

type config = {
  socket_path : string;
  queue_capacity : int;  (** submissions held beyond the running ones *)
  workers : int;  (** concurrent jobs (each with [base]'s domains) *)
  state_dir : string option;  (** per-job crash journals live here *)
  history_dir : string option;
      (** archive every completed job's snapshot into this
          {!Mt_obsv.History} directory (best-effort; an unwritable
          archive never fails the job) *)
  log_json : bool;
      (** emit one structured JSON log line per job event
          ([job.accepted], [job.done], [job.failed], with queue-wait
          and execution latency) on stdout *)
  base : Microtools.Study.Run_config.t;
      (** domains, shared cache, trace routing for every job; the
          per-submission wire options overlay seed/adaptive/policy/
          faults on top ({!Protocol.config_into_base}) *)
}

val default_config :
  ?base:Microtools.Study.Run_config.t -> string -> config
(** [default_config socket_path]: queue of 64, 2 workers, no state
    dir, no history archive, human log lines. *)

type t

val create : config -> t
(** Bind and listen.  Raises [Failure] when the socket path already
    hosts a live daemon, [Unix.Unix_error] when it cannot bind. *)

val serve : t -> unit
(** Run the accept loop until shutdown; drains the queue before
    returning. *)

val run : config -> unit
(** [serve (create config)]. *)

val stop : t -> unit
(** Initiate shutdown from another thread (also triggered by the
    protocol [shutdown] message). *)

val stats : t -> (string * int) list
(** The counters served to a [stats] request: uptime (whole seconds),
    queue depth/capacity, jobs in flight/completed/failed, live
    p50/p90/p99 job queue-wait and execution latency (integer
    microseconds, present once at least one job has run under an
    enabled telemetry handle), and the shared cache's
    hits/misses/decode-failures/evictions when one is configured. *)

val metrics : t -> Protocol.metrics
(** The payload served to a [metrics] request: the {!stats} counters
    plus every telemetry counter, uptime as a float gauge, and each
    telemetry histogram as a quantile summary (p50/p90/p99 over the
    live window).  Render with {!Protocol.metrics_to_json} or
    {!Protocol.prometheus_of_metrics}. *)
