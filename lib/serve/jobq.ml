(* A bounded multi-producer/multi-consumer job queue: the back-pressure
   point of the daemon.  Producers never block — a full queue is a typed
   rejection the protocol reports back to the client, not a dropped or
   silently parked submission.  Consumers (the worker threads) block
   until work arrives or the queue is closed and drained. *)

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mt_serve.Jobq.create: capacity < 1";
  {
    capacity;
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  locked t (fun () ->
      if t.closed then Error `Closed
      else if Queue.length t.items >= t.capacity then Error `Queue_full
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        Ok ()
      end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        match Queue.take_opt t.items with
        | Some x -> Some x
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.nonempty t.lock;
            wait ()
          end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      (* Every blocked consumer must wake to observe the close. *)
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)

let capacity t = t.capacity
