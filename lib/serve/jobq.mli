(** A bounded multi-producer/multi-consumer job queue — the daemon's
    back-pressure point.  Thread-safe (mutex + condition). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val push : 'a t -> 'a -> (unit, [ `Queue_full | `Closed ]) result
(** Non-blocking enqueue.  A full queue is a typed error — the protocol
    turns it into {!Protocol.Queue_full} — never a silent drop. *)

val pop : 'a t -> 'a option
(** Blocking dequeue; [None] once the queue is closed {e and} drained
    (pending jobs are still served after {!close}). *)

val close : 'a t -> unit
(** Reject further pushes and wake every blocked consumer. *)

val depth : 'a t -> int
(** Jobs currently queued (excludes jobs already claimed by a worker). *)

val capacity : 'a t -> int
