(* The mt_serve wire protocol: line-delimited JSON over a Unix-domain
   stream socket, built on Mt_obsv.Json (which escapes every control
   character, so one message is always exactly one line). *)

module J = Mt_obsv.Json

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type machine = Preset of string | Inline_xml of string

(* The serializable slice of Study.Run_config: everything that shapes
   how a submitted study measures (seed, adaptive stopping, the whole
   resilience policy, injected faults).  The non-serializable rest —
   domains, the cache handle, journal/trace paths — is the daemon's to
   provide, so a submission can never point the server at arbitrary
   files. *)
type run_options = {
  seed : int option;
  adaptive : (float * int) option;  (* rciw_target, max_experiments *)
  retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  backoff_jitter : float;
  backoff_seed : int;
  wall_budget_s : float option;
  sim_budget : int option;
  faults : Mt_resilience.Fault.t list;
  profile : bool;
  plan : Mt_optimize.Plan.t option;
}

type submission = {
  kernel_xml : string;
  machine : machine;
  array_kb : int;
  per : string;  (* pass | instruction | element | call *)
  repetitions : int;
  experiments : int;
  run : run_options;
}

(* The live metrics dump: what a scraper sees.  Counters are the
   monotonic ints of the stats reply; gauges carry the float-valued
   instantaneous readings (uptime); summaries are the latency
   histograms with live quantiles.  [Prometheus] asks the daemon to
   render the same data as text exposition format, so a curl-equivalent
   client needs no JSON handling at all. *)
type metrics_format = Metrics_json | Metrics_prometheus

type summary_metric = {
  m_count : int;
  m_sum : float;
  m_quantiles : (float * float) list;  (* (quantile in [0,1], value) *)
}

type metrics = {
  m_counters : (string * int) list;
  m_gauges : (string * float) list;
  m_summaries : (string * summary_metric) list;
}

type request = Submit of submission | Ping | Stats | Metrics of metrics_format | Shutdown

type reject_reason = Queue_full | Bad_request of string

type response =
  | Accepted of { job : int; queue_depth : int }
  | Rejected of reject_reason
  | Header of string list
  | Row of string list
  | Snapshot of J.t
  | Done of { job : int; quarantined : int; cache_hit_rate : float }
  | Failed of { job : int; message : string }
  | Pong
  | Stats_reply of (string * int) list
  | Metrics_reply of metrics
  | Metrics_text of string  (* Prometheus text exposition *)
  | Bye

let reject_to_string = function
  | Queue_full -> "queue-full"
  | Bad_request msg -> "bad-request: " ^ msg

(* ------------------------------------------------------------------ *)
(* Run_config <-> run_options                                          *)
(* ------------------------------------------------------------------ *)

let default_run_options =
  let p = Mt_resilience.Policy.default in
  {
    seed = None;
    adaptive = None;
    retries = p.Mt_resilience.Policy.retries;
    backoff_base_s = p.Mt_resilience.Policy.backoff_base_s;
    backoff_max_s = p.Mt_resilience.Policy.backoff_max_s;
    backoff_jitter = p.Mt_resilience.Policy.backoff_jitter;
    backoff_seed = p.Mt_resilience.Policy.backoff_seed;
    wall_budget_s = None;
    sim_budget = None;
    faults = [];
    profile = false;
    plan = None;
  }

module Run_config = Microtools.Study.Run_config

let run_options_of_config (c : Run_config.t) =
  let p = c.Run_config.policy in
  {
    seed = c.Run_config.seed;
    adaptive = c.Run_config.adaptive;
    retries = p.Mt_resilience.Policy.retries;
    backoff_base_s = p.Mt_resilience.Policy.backoff_base_s;
    backoff_max_s = p.Mt_resilience.Policy.backoff_max_s;
    backoff_jitter = p.Mt_resilience.Policy.backoff_jitter;
    backoff_seed = p.Mt_resilience.Policy.backoff_seed;
    wall_budget_s = p.Mt_resilience.Policy.wall_budget_s;
    sim_budget = p.Mt_resilience.Policy.sim_budget;
    faults = c.Run_config.faults;
    profile = c.Run_config.profile;
    plan = c.Run_config.plan;
  }

(* Overlay the wire options onto the daemon's base config.  The base
   keeps its domains, cache and output routing; the submission decides
   seed, adaptive stopping, policy and faults. *)
let config_into_base run (base : Run_config.t) =
  let policy =
    Mt_resilience.Policy.make ~retries:run.retries
      ~backoff_base_s:run.backoff_base_s ~backoff_max_s:run.backoff_max_s
      ~backoff_jitter:run.backoff_jitter ~backoff_seed:run.backoff_seed
      ?wall_budget_s:run.wall_budget_s ?sim_budget:run.sim_budget ()
  in
  base
  |> Run_config.with_seed run.seed
  |> Run_config.with_adaptive run.adaptive
  |> Run_config.with_policy policy
  |> Run_config.with_faults run.faults
  |> Run_config.with_profile run.profile
  (* A submitted plan wins; a plan-less submission keeps whatever plan
     the daemon itself was started with. *)
  |> fun cfg ->
  match run.plan with
  | None -> cfg
  | Some _ -> Run_config.with_plan run.plan cfg

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let num_opt = function None -> J.Null | Some v -> J.Num v

let int_opt = function None -> J.Null | Some v -> J.Num (float_of_int v)

let machine_to_json = function
  | Preset name -> J.Obj [ ("preset", J.Str name) ]
  | Inline_xml xml -> J.Obj [ ("xml", J.Str xml) ]

let run_options_to_json r =
  J.Obj
    [
      ("seed", int_opt r.seed);
      ( "adaptive",
        match r.adaptive with
        | None -> J.Null
        | Some (target, budget) ->
          J.Obj
            [
              ("rciw_target", J.Num target);
              ("max_experiments", J.Num (float_of_int budget));
            ] );
      ("retries", J.Num (float_of_int r.retries));
      ("backoff_base_s", J.Num r.backoff_base_s);
      ("backoff_max_s", J.Num r.backoff_max_s);
      ("backoff_jitter", J.Num r.backoff_jitter);
      ("backoff_seed", J.Num (float_of_int r.backoff_seed));
      ("wall_budget_s", num_opt r.wall_budget_s);
      ("sim_budget", int_opt r.sim_budget);
      ( "faults",
        J.List
          (List.map (fun f -> J.Str (Mt_resilience.Fault.to_spec f)) r.faults)
      );
      ("profile", J.Bool r.profile);
      ( "plan",
        match r.plan with
        | None -> J.Null
        | Some p -> Mt_optimize.Plan.to_json p );
    ]

let submission_to_json s =
  J.Obj
    [
      ("kernel_xml", J.Str s.kernel_xml);
      ("machine", machine_to_json s.machine);
      ("array_kb", J.Num (float_of_int s.array_kb));
      ("per", J.Str s.per);
      ("repetitions", J.Num (float_of_int s.repetitions));
      ("experiments", J.Num (float_of_int s.experiments));
      ("run", run_options_to_json s.run);
    ]

let metrics_format_to_string = function
  | Metrics_json -> "json"
  | Metrics_prometheus -> "prometheus"

let metrics_format_of_string = function
  | "json" -> Ok Metrics_json
  | "prometheus" -> Ok Metrics_prometheus
  | f -> Error (Printf.sprintf "unknown metrics format %S" f)

let summary_to_json s =
  J.Obj
    [
      ("count", J.Num (float_of_int s.m_count));
      ("sum", J.Num s.m_sum);
      ( "quantiles",
        J.Obj
          (List.map
             (fun (q, v) -> (Printf.sprintf "%g" q, J.Num v))
             s.m_quantiles) );
    ]

let metrics_to_json m =
  J.Obj
    [
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) m.m_counters)
      );
      ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) m.m_gauges));
      ( "summaries",
        J.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) m.m_summaries) );
    ]

(* Prometheus text exposition: the generic encoder lives in
   Mt_telemetry (the one-shot binaries' --metrics-out FILE.prom uses it
   too); this wrapper just reshapes the wire metrics record. *)
let prometheus_of_metrics m =
  Mt_telemetry.prometheus_exposition ~gauges:m.m_gauges
    ~summaries:
      (List.map
         (fun (k, s) -> (k, (s.m_count, s.m_sum, s.m_quantiles)))
         m.m_summaries)
    m.m_counters

let request_to_json = function
  | Submit s -> J.Obj [ ("type", J.Str "submit"); ("job", submission_to_json s) ]
  | Ping -> J.Obj [ ("type", J.Str "ping") ]
  | Stats -> J.Obj [ ("type", J.Str "stats") ]
  | Metrics fmt ->
    J.Obj
      [
        ("type", J.Str "metrics");
        ("format", J.Str (metrics_format_to_string fmt));
      ]
  | Shutdown -> J.Obj [ ("type", J.Str "shutdown") ]

let cells_to_json cells = J.List (List.map (fun c -> J.Str c) cells)

let response_to_json = function
  | Accepted { job; queue_depth } ->
    J.Obj
      [
        ("type", J.Str "accepted");
        ("job", J.Num (float_of_int job));
        ("queue_depth", J.Num (float_of_int queue_depth));
      ]
  | Rejected Queue_full ->
    J.Obj [ ("type", J.Str "rejected"); ("reason", J.Str "queue-full") ]
  | Rejected (Bad_request msg) ->
    J.Obj
      [
        ("type", J.Str "rejected");
        ("reason", J.Str "bad-request");
        ("detail", J.Str msg);
      ]
  | Header cells -> J.Obj [ ("type", J.Str "header"); ("cells", cells_to_json cells) ]
  | Row cells -> J.Obj [ ("type", J.Str "row"); ("cells", cells_to_json cells) ]
  | Snapshot doc -> J.Obj [ ("type", J.Str "snapshot"); ("data", doc) ]
  | Done { job; quarantined; cache_hit_rate } ->
    J.Obj
      [
        ("type", J.Str "done");
        ("job", J.Num (float_of_int job));
        ("quarantined", J.Num (float_of_int quarantined));
        ("cache_hit_rate", J.Num cache_hit_rate);
      ]
  | Failed { job; message } ->
    J.Obj
      [
        ("type", J.Str "failed");
        ("job", J.Num (float_of_int job));
        ("message", J.Str message);
      ]
  | Pong -> J.Obj [ ("type", J.Str "pong") ]
  | Stats_reply counters ->
    J.Obj
      [
        ("type", J.Str "stats");
        ( "counters",
          J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) counters)
        );
      ]
  | Metrics_reply m ->
    J.Obj (("type", J.Str "metrics") :: (match metrics_to_json m with
      | J.Obj fields -> fields
      | _ -> []))
  | Metrics_text text ->
    J.Obj [ ("type", J.Str "metrics_text"); ("text", J.Str text) ]
  | Bye -> J.Obj [ ("type", J.Str "bye") ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name doc =
  match J.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str name doc =
  let* v = field name doc in
  match J.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name doc =
  let* v = field name doc in
  match J.to_int v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let float_field name doc =
  let* v = field name doc in
  match J.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let opt_of name conv doc =
  match J.member name doc with
  | None | Some J.Null -> Ok None
  | Some v -> (
    match conv v with
    | Some x -> Ok (Some x)
    | None -> Error (Printf.sprintf "field %S: bad value" name))

let cells_of doc =
  let* v = field "cells" doc in
  match J.to_list v with
  | None -> Error "field \"cells\": expected a list"
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match J.to_str item with
        | Some s -> Ok (s :: acc)
        | None -> Error "field \"cells\": expected strings")
      (Ok []) items
    |> Result.map List.rev

let machine_of_json doc =
  match (J.member "preset" doc, J.member "xml" doc) with
  | Some (J.Str name), _ -> Ok (Preset name)
  | _, Some (J.Str xml) -> Ok (Inline_xml xml)
  | _ -> Error "machine: expected {\"preset\": name} or {\"xml\": text}"

let run_options_of_json doc =
  let* seed = opt_of "seed" J.to_int doc in
  let* adaptive =
    match J.member "adaptive" doc with
    | None | Some J.Null -> Ok None
    | Some a ->
      let* target = float_field "rciw_target" a in
      let* budget = int_field "max_experiments" a in
      Ok (Some (target, budget))
  in
  let* retries = int_field "retries" doc in
  let* backoff_base_s = float_field "backoff_base_s" doc in
  let* backoff_max_s = float_field "backoff_max_s" doc in
  let* backoff_jitter = float_field "backoff_jitter" doc in
  let* backoff_seed = int_field "backoff_seed" doc in
  let* wall_budget_s = opt_of "wall_budget_s" J.to_float doc in
  let* sim_budget = opt_of "sim_budget" J.to_int doc in
  let* faults =
    let* v = field "faults" doc in
    match J.to_list v with
    | None -> Error "field \"faults\": expected a list"
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | J.Str spec ->
            let* f = Mt_resilience.Fault.of_spec spec in
            Ok (f :: acc)
          | _ -> Error "field \"faults\": expected fault spec strings")
        (Ok []) items
      |> Result.map List.rev
  in
  (* Absent in pre-profile clients: default off, never an error. *)
  let profile =
    match Option.bind (J.member "profile" doc) J.to_bool with
    | Some b -> b
    | None -> false
  in
  (* Same posture for pre-plan clients: no plan travels, the daemon's
     base config (which may carry its own --plan) stays in force. *)
  let* plan =
    match J.member "plan" doc with
    | None | Some J.Null -> Ok None
    | Some p -> (
      match Mt_optimize.Plan.of_json p with
      | Ok plan -> Ok (Some plan)
      | Error msg -> Error (Printf.sprintf "field \"plan\": %s" msg))
  in
  Ok
    {
      seed;
      adaptive;
      retries;
      backoff_base_s;
      backoff_max_s;
      backoff_jitter;
      backoff_seed;
      wall_budget_s;
      sim_budget;
      faults;
      profile;
      plan;
    }

let submission_of_json doc =
  let* kernel_xml = str "kernel_xml" doc in
  let* machine_doc = field "machine" doc in
  let* machine = machine_of_json machine_doc in
  let* array_kb = int_field "array_kb" doc in
  let* per = str "per" doc in
  let* repetitions = int_field "repetitions" doc in
  let* experiments = int_field "experiments" doc in
  let* run_doc = field "run" doc in
  let* run = run_options_of_json run_doc in
  Ok { kernel_xml; machine; array_kb; per; repetitions; experiments; run }

let request_of_json doc =
  let* kind = str "type" doc in
  match kind with
  | "submit" ->
    let* job = field "job" doc in
    let* s = submission_of_json job in
    Ok (Submit s)
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "metrics" -> (
    match J.member "format" doc with
    | None -> Ok (Metrics Metrics_json)
    | Some v -> (
      match J.to_str v with
      | None -> Error "field \"format\": expected a string"
      | Some f ->
        let* fmt = metrics_format_of_string f in
        Ok (Metrics fmt)))
  | "shutdown" -> Ok Shutdown
  | k -> Error (Printf.sprintf "unknown request type %S" k)

let response_of_json doc =
  let* kind = str "type" doc in
  match kind with
  | "accepted" ->
    let* job = int_field "job" doc in
    let* queue_depth = int_field "queue_depth" doc in
    Ok (Accepted { job; queue_depth })
  | "rejected" -> (
    let* reason = str "reason" doc in
    match reason with
    | "queue-full" -> Ok (Rejected Queue_full)
    | "bad-request" ->
      let detail =
        Option.value ~default:"" (Option.bind (J.member "detail" doc) J.to_str)
      in
      Ok (Rejected (Bad_request detail))
    | r -> Error (Printf.sprintf "unknown rejection reason %S" r))
  | "header" ->
    let* cells = cells_of doc in
    Ok (Header cells)
  | "row" ->
    let* cells = cells_of doc in
    Ok (Row cells)
  | "snapshot" ->
    let* data = field "data" doc in
    Ok (Snapshot data)
  | "done" ->
    let* job = int_field "job" doc in
    let* quarantined = int_field "quarantined" doc in
    let* cache_hit_rate = float_field "cache_hit_rate" doc in
    Ok (Done { job; quarantined; cache_hit_rate })
  | "failed" ->
    let* job = int_field "job" doc in
    let* message = str "message" doc in
    Ok (Failed { job; message })
  | "pong" -> Ok Pong
  | "stats" ->
    let* v = field "counters" doc in
    (match J.to_obj v with
    | None -> Error "field \"counters\": expected an object"
    | Some kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match J.to_int v with
          | Some n -> Ok ((k, n) :: acc)
          | None -> Error "field \"counters\": expected integers")
        (Ok []) kvs
      |> Result.map List.rev)
    |> Result.map (fun counters -> Stats_reply counters)
  | "metrics" ->
    let int_obj name =
      match J.member name doc with
      | None -> Ok []
      | Some v -> (
        match J.to_obj v with
        | None -> Error (Printf.sprintf "field %S: expected an object" name)
        | Some kvs ->
          Ok (List.filter_map (fun (k, v) ->
                Option.map (fun n -> (k, n)) (J.to_int v)) kvs))
    in
    let float_obj name =
      match J.member name doc with
      | None -> Ok []
      | Some v -> (
        match J.to_obj v with
        | None -> Error (Printf.sprintf "field %S: expected an object" name)
        | Some kvs ->
          Ok (List.filter_map (fun (k, v) ->
                Option.map (fun f -> (k, f)) (J.to_float v)) kvs))
    in
    let* m_counters = int_obj "counters" in
    let* m_gauges = float_obj "gauges" in
    let* m_summaries =
      match J.member "summaries" doc with
      | None -> Ok []
      | Some v -> (
        match J.to_obj v with
        | None -> Error "field \"summaries\": expected an object"
        | Some kvs ->
          List.fold_left
            (fun acc (k, s) ->
              let* acc = acc in
              let* m_count = int_field "count" s in
              let* m_sum = float_field "sum" s in
              let m_quantiles =
                match Option.bind (J.member "quantiles" s) J.to_obj with
                | None -> []
                | Some qs ->
                  List.filter_map
                    (fun (q, v) ->
                      match (float_of_string_opt q, J.to_float v) with
                      | Some q, Some v -> Some (q, v)
                      | _ -> None)
                    qs
              in
              Ok ((k, { m_count; m_sum; m_quantiles }) :: acc))
            (Ok []) kvs
          |> Result.map List.rev)
    in
    Ok (Metrics_reply { m_counters; m_gauges; m_summaries })
  | "metrics_text" ->
    let* text = str "text" doc in
    Ok (Metrics_text text)
  | "bye" -> Ok Bye
  | k -> Error (Printf.sprintf "unknown response type %S" k)

(* ------------------------------------------------------------------ *)
(* Line framing                                                        *)
(* ------------------------------------------------------------------ *)

let write_line oc json =
  output_string oc (J.to_string json);
  output_char oc '\n';
  flush oc

let send_request oc r = write_line oc (request_to_json r)

let send_response oc r = write_line oc (response_to_json r)

let read_json ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
    match J.of_string line with
    | Ok doc -> Some (Ok doc)
    | Error msg -> Some (Error msg))

let read_request ic =
  Option.map (fun r -> Result.bind r request_of_json) (read_json ic)

let read_response ic =
  Option.map (fun r -> Result.bind r response_of_json) (read_json ic)
