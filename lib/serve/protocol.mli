(** The mt_serve wire protocol: line-delimited JSON over a Unix-domain
    stream socket.

    Every message is one {!Mt_obsv.Json} document on one line (the
    printer escapes all control characters, so embedded kernel XML or
    CSV cells can never break the framing).  A client sends one
    {!request} and reads {!response} lines until a terminal one
    ([Rejected], [Done], [Failed], [Pong], [Stats_reply],
    [Metrics_reply], [Metrics_text] or [Bye]).

    A study submission carries the kernel description XML, the machine
    (preset name or inline machine XML) and the serializable slice of
    {!Microtools.Study.Run_config} ({!run_options}); the daemon's own
    domains, shared cache and journal directory are deliberately not
    client-controllable. *)

module J = Mt_obsv.Json

type machine =
  | Preset of string  (** a {!Mt_machine.Config.presets} name *)
  | Inline_xml of string  (** a machine description document *)

type run_options = {
  seed : int option;
  adaptive : (float * int) option;  (** (rciw_target, max_experiments) *)
  retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  backoff_jitter : float;
  backoff_seed : int;
  wall_budget_s : float option;
  sim_budget : int option;
  faults : Mt_resilience.Fault.t list;
  profile : bool;
      (** record bottleneck attribution during the daemon's measured
          calls; the streamed snapshot then carries per-variant profile
          vectors.  Absent on the wire means off, so pre-profile
          clients keep working. *)
  plan : Mt_optimize.Plan.t option;
      (** study plan shaping the daemon-side run ([mt_study --submit
          --plan] embeds the whole plan document in the submission).
          Absent on the wire means none, and the daemon's own [--plan]
          base stays in force — pre-plan clients keep working. *)
}

type submission = {
  kernel_xml : string;
  machine : machine;
  array_kb : int;
  per : string;  (** pass | instruction | element | call *)
  repetitions : int;
  experiments : int;
  run : run_options;
}

(** The live metrics dump behind the [metrics] request: the stats
    counters, float-valued gauges (uptime), and the per-job latency
    histograms with live quantiles.  [Metrics_prometheus] asks the
    daemon to render the same data in Prometheus text exposition
    format, so a scrape-style client needs no JSON handling. *)
type metrics_format = Metrics_json | Metrics_prometheus

type summary_metric = {
  m_count : int;
  m_sum : float;
  m_quantiles : (float * float) list;
      (** [(quantile in [0,1], value)] pairs, e.g. [(0.5, v)] for p50 *)
}

type metrics = {
  m_counters : (string * int) list;
  m_gauges : (string * float) list;
  m_summaries : (string * summary_metric) list;
}

type request = Submit of submission | Ping | Stats | Metrics of metrics_format | Shutdown

type reject_reason =
  | Queue_full  (** back-pressure: the bounded job queue is at capacity *)
  | Bad_request of string

type response =
  | Accepted of { job : int; queue_depth : int }
  | Rejected of reject_reason
  | Header of string list  (** the CSV header, once, before any [Row] *)
  | Row of string list  (** one CSV row per variant, in variant order *)
  | Snapshot of J.t  (** the run-provenance snapshot document *)
  | Done of { job : int; quarantined : int; cache_hit_rate : float }
  | Failed of { job : int; message : string }
  | Pong
  | Stats_reply of (string * int) list
  | Metrics_reply of metrics  (** answers [Metrics Metrics_json] *)
  | Metrics_text of string
      (** answers [Metrics Metrics_prometheus]: the exposition document *)
  | Bye

val reject_to_string : reject_reason -> string

val metrics_format_to_string : metrics_format -> string

val metrics_format_of_string : string -> (metrics_format, string) result

val metrics_to_json : metrics -> J.t

val prometheus_of_metrics : metrics -> string
(** Render as Prometheus text exposition (version 0.0.4): counters and
    gauges as single samples, summaries as quantile-labelled samples
    plus [_sum]/[_count].  Dotted metric names are sanitised to
    underscores ([serve.jobs.completed] → [serve_jobs_completed]). *)

val default_run_options : run_options
(** {!Mt_resilience.Policy.default} with no seed, no adaptive stopping
    and no faults. *)

val run_options_of_config : Microtools.Study.Run_config.t -> run_options
(** Project the serializable slice out of a full run config — how
    [mt_study --submit] turns its parsed Mt_cli flags into wire
    options. *)

val config_into_base :
  run_options -> Microtools.Study.Run_config.t -> Microtools.Study.Run_config.t
(** [config_into_base run base] overlays the wire options onto the
    daemon's base config, keeping [base]'s domains, cache and output
    routing.  A submitted plan replaces the base's; a plan-less
    submission keeps the daemon's own.  Right inverse of
    {!run_options_of_config} on the serializable fields. *)

(** {1 JSON codecs} *)

val submission_to_json : submission -> J.t

val submission_of_json : J.t -> (submission, string) result

val request_to_json : request -> J.t

val request_of_json : J.t -> (request, string) result

val response_to_json : response -> J.t

val response_of_json : J.t -> (response, string) result

(** {1 Line framing} *)

val send_request : out_channel -> request -> unit
(** Write one request line and flush. *)

val send_response : out_channel -> response -> unit

val read_request : in_channel -> (request, string) result option
(** [None] on a closed peer; [Some (Error _)] on a malformed line. *)

val read_response : in_channel -> (response, string) result option
