type summary = {
  count : int;
  minimum : float;
  maximum : float;
  mean : float;
  median : float;
  stddev : float;
}

let check_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

(* Float-specialised throughout: [summarize] sits on the hot path of
   every measurement, and polymorphic compare both costs a C call per
   element and orders NaN inconsistently with IEEE expectations. *)
let min_of xs =
  check_non_empty "Mt_stats.min_of" xs;
  Array.fold_left Float.min xs.(0) xs

let max_of xs =
  check_non_empty "Mt_stats.max_of" xs;
  Array.fold_left Float.max xs.(0) xs

let mean xs =
  check_non_empty "Mt_stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let sorted xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let sorted_copy = sorted

(* Median of an already-sorted array: the primitive the quality hot
   path calls repeatedly (one sort, many order statistics). *)
let median_sorted ys =
  check_non_empty "Mt_stats.median_sorted" ys;
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.

let median xs =
  check_non_empty "Mt_stats.median" xs;
  median_sorted (sorted xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (sq /. float_of_int (n - 1))
  end

(* CoV and its relatives are dispersion measures: they must stay
   non-negative for negative-mean series (energy deltas, diffs), or a
   downstream noise band computed from them flips sign and every
   comparison clears it.  Hence the [abs_float] on each denominator. *)
let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0. then 0. else stddev xs /. abs_float m

let relative_spread xs =
  let lo = min_of xs and hi = max_of xs in
  if lo = 0. then 0. else (hi -. lo) /. abs_float lo

let percentile_sorted ys p =
  check_non_empty "Mt_stats.percentile_sorted" ys;
  if p < 0. || p > 100. then
    invalid_arg "Mt_stats.percentile: p out of [0,100]";
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let percentile xs p = percentile_sorted (sorted xs) p

(* Pooled variability across measurement groups (μOpTime-style): the
   noise band two benchmark results must clear before their medians are
   considered different.  Groups with fewer than 2 samples contribute no
   degrees of freedom (their stddev is 0 by convention anyway). *)
let pooled_stddev groups =
  let dof = List.fold_left (fun acc (n, _) -> acc + max 0 (n - 1)) 0 groups in
  if dof = 0 then 0.
  else
    sqrt
      (List.fold_left
         (fun acc (n, s) -> acc +. (float_of_int (max 0 (n - 1)) *. s *. s))
         0. groups
      /. float_of_int dof)

let pooled_cov groups =
  let total = List.fold_left (fun acc (n, _, _) -> acc + max 0 n) 0 groups in
  if total = 0 then 0.
  else begin
    let grand_mean =
      List.fold_left (fun acc (n, m, _) -> acc +. (float_of_int (max 0 n) *. m)) 0. groups
      /. float_of_int total
    in
    if grand_mean = 0. then 0.
    else
      pooled_stddev (List.map (fun (n, _, s) -> (n, s)) groups)
      /. abs_float grand_mean
  end

(* Average-rank assignment for rank correlation: sort positions by
   value, then give every member of a tie group the mean of the rank
   positions the group spans.  The tie-break is what makes the result
   deterministic and invariant under permuting the input — a requirement
   for the redundancy scoring built on it (two variants must correlate
   identically however the archive happens to order their runs). *)
let average_ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare xs.(a) xs.(b) in
      if c <> 0 then c else Int.compare a b)
    idx;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && Float.compare xs.(idx.(!j + 1)) xs.(idx.(!i)) = 0
    do
      incr j
    done;
    (* Ranks are 1-based; a group spanning positions i..j all get the
       average (i + j) / 2 + 1. *)
    let avg = (float_of_int (!i + !j) /. 2.) +. 1. in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Mt_stats.spearman: length mismatch";
  if n < 2 then 0.
  else begin
    let rx = average_ranks xs and ry = average_ranks ys in
    let mx = mean rx and my = mean ry in
    let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy);
      sxy := !sxy +. (dx *. dy)
    done;
    (* Degenerate rank variance: two flat series trivially co-move
       (either can stand in for the other), while flat-vs-moving carries
       no rank information at all.  Both conventions keep self-
       correlation at exactly 1. *)
    if !sxx = 0. && !syy = 0. then 1.
    else if !sxx = 0. || !syy = 0. then 0.
    else !sxy /. sqrt (!sxx *. !syy)
  end

(* One sort serves minimum, maximum and median; callers needing more
   order statistics take [sorted_copy] once and use the [_sorted]
   variants rather than re-sorting per percentile. *)
let summarize xs =
  check_non_empty "Mt_stats.summarize" xs;
  let ys = sorted xs in
  let n = Array.length ys in
  {
    count = n;
    minimum = ys.(0);
    maximum = ys.(n - 1);
    mean = mean xs;
    median = median_sorted ys;
    stddev = stddev xs;
  }

(* ------------------------------------------------------------------ *)
(* Longitudinal trend analysis                                         *)
(* ------------------------------------------------------------------ *)

module Trend = struct
  type classification =
    | Stationary
    | Drifting
    | Step_regression
    | Step_improvement

  let classification_to_string = function
    | Stationary -> "stationary"
    | Drifting -> "drifting"
    | Step_regression -> "step-regression"
    | Step_improvement -> "step-improvement"

  type result = {
    classification : classification;
    changepoint : int option;
    shift : float;
    drift : float;
    band : float;
    noise : float;
  }

  let default_threshold = 3.0

  let default_min_band = 0.002

  let default_min_segment = 2

  (* Robust local-noise estimate: the scaled median absolute successive
     difference.  Successive differences straddle a step change at only
     one index, so — unlike the series' own stddev — a genuine regime
     shift barely inflates the estimate, and the band it feeds stays a
     measure of run-to-run wobble, not of the effect being detected.
     The sqrt 2 removes the variance doubling of differencing; 1.4826
     scales MAD to a Gaussian sigma. *)
  let successive_noise xs =
    let n = Array.length xs in
    if n < 3 then 0.
    else begin
      let diffs = Array.init (n - 1) (fun i -> abs_float (xs.(i + 1) -. xs.(i))) in
      let m = median xs in
      if m = 0. then 0.
      else 1.4826 *. median diffs /. (sqrt 2. *. abs_float m)
    end

  (* Rolling median with an odd window clamped to the series length —
     the drift estimator reads its endpoints, so single-run spikes at
     either end of the series cannot fake a drift. *)
  let rolling_median ?(window = 3) xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let w = max 1 (min window n) in
      let w = if w mod 2 = 0 then w - 1 else w in
      let half = w / 2 in
      Array.init n (fun i ->
          let lo = max 0 (i - half) in
          let hi = min (n - 1) (i + half) in
          median (Array.sub xs lo (hi - lo + 1)))
    end

  let analyze ?(threshold = default_threshold) ?(min_band = default_min_band)
      ?(min_segment = default_min_segment) ?noise xs =
    let n = Array.length xs in
    let noise =
      match noise with Some v -> abs_float v | None -> successive_noise xs
    in
    let band = Float.max min_band (threshold *. noise) in
    if n < 2 * min_segment then
      { classification = Stationary; changepoint = None; shift = 0.;
        drift = 0.; band; noise }
    else begin
      (* Median-shift changepoint: the split maximising the relative
         shift between the two segment medians.  Medians, not means, so
         one outlier run cannot manufacture a step.  On a clean step
         the shift ties across every split that keeps each segment's
         majority on its own side, so ties break towards the split with
         the least within-segment absolute deviation — which is the
         actual regime boundary (both segments internally flat). *)
      let best_k = ref min_segment
      and best_shift = ref 0.
      and best_cost = ref infinity in
      for k = min_segment to n - min_segment do
        let left = Array.sub xs 0 k in
        let right = Array.sub xs k (n - k) in
        let ml = median left in
        let mr = median right in
        let denom = if ml = 0. then 1. else abs_float ml in
        let shift = (mr -. ml) /. denom in
        let deviation m acc x = acc +. abs_float (x -. m) in
        let cost =
          Array.fold_left (deviation ml) 0. left
          +. Array.fold_left (deviation mr) 0. right
        in
        let eps = 1e-12 *. (1. +. abs_float !best_shift) in
        if
          abs_float shift > abs_float !best_shift +. eps
          || (abs_float shift >= abs_float !best_shift -. eps
              && cost < !best_cost)
        then begin
          best_shift := shift;
          best_k := k;
          best_cost := cost
        end
      done;
      if abs_float !best_shift > band then
        {
          classification =
            (if !best_shift > 0. then Step_regression else Step_improvement);
          changepoint = Some !best_k;
          shift = !best_shift;
          drift = 0.;
          band;
          noise;
        }
      else begin
        let rm = rolling_median ~window:(min 5 n) xs in
        let first = rm.(0) in
        let denom = if first = 0. then 1. else abs_float first in
        let drift = (rm.(Array.length rm - 1) -. first) /. denom in
        if abs_float drift > band then
          { classification = Drifting; changepoint = None;
            shift = !best_shift; drift; band; noise }
        else
          { classification = Stationary; changepoint = None;
            shift = !best_shift; drift; band; noise }
      end
    end
end

module Csv = struct
  type t = { header : string list; mutable rows : string list list }

  let create ~header = { header; rows = [] }

  let add_row t row =
    if List.length row <> List.length t.header then
      invalid_arg
        (Printf.sprintf "Mt_stats.Csv.add_row: row width %d, header width %d"
           (List.length row) (List.length t.header));
    t.rows <- row :: t.rows

  let add_floats t row = add_row t (List.map (Printf.sprintf "%.6g") row)

  let needs_quoting s =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

  let quote_cell s =
    if needs_quoting s then begin
      let b = Buffer.create (String.length s + 2) in
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
        s;
      Buffer.add_char b '"';
      Buffer.contents b
    end
    else s

  let render_row row = String.concat "," (List.map quote_cell row)

  let to_string t =
    let b = Buffer.create 256 in
    Buffer.add_string b (render_row t.header);
    Buffer.add_char b '\n';
    List.iter
      (fun row ->
        Buffer.add_string b (render_row row);
        Buffer.add_char b '\n')
      (List.rev t.rows);
    Buffer.contents b

  let save t path =
    let oc = open_out path in
    output_string oc (to_string t);
    close_out oc

  let row_count t = List.length t.rows

  let header t = t.header

  let rows t = List.rev t.rows

  (* RFC-4180 reader matching [to_string]: quoted cells may contain
     commas, doubled quotes and newlines; CRLF and a missing final
     newline are tolerated. *)
  let parse_string s =
    let n = String.length s in
    let cell = Buffer.create 16 in
    let cells = ref [] in
    let records = ref [] in
    let finish_cell () =
      cells := Buffer.contents cell :: !cells;
      Buffer.clear cell
    in
    let finish_record () =
      finish_cell ();
      records := List.rev !cells :: !records;
      cells := []
    in
    let rec unquoted i =
      if i >= n then begin
        if Buffer.length cell > 0 || !cells <> [] then finish_record ();
        Ok (List.rev !records)
      end
      else
        match s.[i] with
        | ',' -> finish_cell (); unquoted (i + 1)
        | '\n' -> finish_record (); unquoted (i + 1)
        | '\r' when i + 1 < n && s.[i + 1] = '\n' ->
          finish_record (); unquoted (i + 2)
        | '\r' ->
          (* A bare CR (old-Mac line ending, or a file-final [\r]) is a
             record terminator too — never cell data. *)
          finish_record (); unquoted (i + 1)
        | '"' when Buffer.length cell = 0 -> quoted (i + 1)
        | c -> Buffer.add_char cell c; unquoted (i + 1)
    and quoted i =
      if i >= n then Error "unterminated quoted cell"
      else
        match s.[i] with
        | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char cell '"';
          quoted (i + 2)
        | '"' -> unquoted (i + 1)
        | c -> Buffer.add_char cell c; quoted (i + 1)
    in
    unquoted 0

  let of_string s =
    match parse_string s with
    | Error _ as e -> e
    | Ok [] -> Error "empty CSV document"
    | Ok (header :: data) ->
      let width = List.length header in
      let rec check = function
        | [] -> Ok ()
        | row :: rest ->
          if List.length row <> width then
            Error
              (Printf.sprintf "row width %d differs from header width %d"
                 (List.length row) width)
          else check rest
      in
      (match check data with
      | Error _ as e -> e
      | Ok () ->
        let t = create ~header in
        List.iter (add_row t) data;
        Ok t)
end
