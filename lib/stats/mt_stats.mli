(** Descriptive statistics, stability metrics and CSV rendering for
    MicroLauncher measurement series. *)

(** Summary of a measurement series. *)
type summary = {
  count : int;
  minimum : float;
  maximum : float;
  mean : float;
  median : float;
  stddev : float;  (** Sample standard deviation (n-1 denominator). *)
}

val summarize : float array -> summary
(** [summarize xs] computes a {!summary} of [xs].
    @raise Invalid_argument if [xs] is empty. *)

val min_of : float array -> float
(** Minimum of a non-empty array. *)

val max_of : float array -> float
(** Maximum of a non-empty array. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty array. *)

val median : float array -> float
(** Median (average of middle pair for even lengths). *)

val stddev : float array -> float
(** Sample standard deviation; 0 for arrays of length < 2. *)

val coefficient_of_variation : float array -> float
(** [stddev / |mean|]; the launcher's stability metric.  0 when the
    mean is 0.  Always non-negative — dispersion has no sign, even for
    negative-mean series. *)

val relative_spread : float array -> float
(** [(max - min) / |min|]; the paper's "variation is less than 3%"
    style metric.  0 when the minimum is 0; non-negative always. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation. *)

(** {1 Sorted-array variants}

    {!summarize} sorts exactly once; callers on the quality hot path
    that need several order statistics from one series sort once with
    {!sorted_copy} and use these instead of re-sorting per call. *)

val sorted_copy : float array -> float array
(** A sorted copy ({!Float.compare} order); the input is untouched. *)

val median_sorted : float array -> float
(** {!median} of an array the caller has already sorted. *)

val percentile_sorted : float array -> float -> float
(** {!percentile} of an array the caller has already sorted. *)

val pooled_stddev : (int * float) list -> float
(** [pooled_stddev [(n1, s1); (n2, s2); ...]] combines per-group sample
    standard deviations into one, weighting each group by its degrees of
    freedom [(n-1)].  0 when no group has 2 or more samples. *)

val pooled_cov : (int * float * float) list -> float
(** [pooled_cov [(n1, m1, s1); ...]] over [(count, mean, stddev)]
    groups: {!pooled_stddev} divided by the absolute count-weighted
    grand mean — the μOpTime-style noise band used by regression gating
    (a median delta inside a multiple of this band is indistinguishable
    from run-to-run noise).  0 when the grand mean is 0 or no samples;
    non-negative always, so the derived band never flips sign. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation of two equal-length series, with ties
    assigned their deterministic average rank — the redundancy metric
    behind [mt_optimize] (two variants whose medians always move
    together need only one canary).  In [[-1, 1]]; symmetric in its
    arguments and invariant under applying one permutation to both
    series.  Degenerate cases: a series correlates with itself at
    exactly [1.0] (even when constant); two constant series correlate at
    [1.0] (either can stand in for the other); a constant series against
    a moving one correlates at [0.0]; series shorter than 2 correlate at
    [0.0].
    @raise Invalid_argument on a length mismatch. *)

(** {1 Trend analysis}

    Noise-aware classification of a per-variant measurement timeline
    (one value per archived run, oldest first) — the longitudinal
    counterpart of {!pooled_cov}'s two-run noise band.  Detects median
    step changes (a regression landed or was fixed between two runs)
    and slow drift (the rolling median walked away), and calls
    everything inside the noise band stationary, so a CI gate built on
    it does not flap on run-to-run wobble. *)

module Trend : sig
  type classification =
    | Stationary  (** inside the noise band end to end *)
    | Drifting  (** the rolling median moved beyond the band, gradually *)
    | Step_regression  (** a median step up (slower) escaped the band *)
    | Step_improvement  (** a median step down (faster) escaped the band *)

  val classification_to_string : classification -> string

  type result = {
    classification : classification;
    changepoint : int option;
        (** first index of the new regime, for step classifications *)
    shift : float;
        (** largest relative median shift between the two segments of
            any split (signed; positive = later segment is slower) *)
    drift : float;
        (** relative endpoint-to-endpoint move of the rolling median
            (signed), when no step escaped the band *)
    band : float;  (** the noise band the effects were judged against *)
    noise : float;  (** the noise estimate the band was built from *)
  }

  val default_threshold : float
  (** 3.0 — same multiplier as the two-run diff gate in [mt_report]. *)

  val default_min_band : float
  (** 0.002 — floor under the band (deterministic series measure with
      zero successive noise). *)

  val default_min_segment : int
  (** 2 — shortest segment a changepoint split may produce. *)

  val successive_noise : float array -> float
  (** Scaled median absolute successive difference relative to the
      series median: a robust run-to-run noise estimate that a genuine
      step change barely inflates.  0 for series shorter than 3. *)

  val rolling_median : ?window:int -> float array -> float array
  (** Centred rolling median (odd [window], default 3, clamped at the
      edges); same length as the input. *)

  val analyze :
    ?threshold:float ->
    ?min_band:float ->
    ?min_segment:int ->
    ?noise:float ->
    float array ->
    result
  (** [analyze xs] classifies the series, oldest value first.  The
      noise band is [max min_band (threshold * noise)]; [noise]
      defaults to {!successive_noise} but callers holding per-run
      within-run variability (e.g. {!pooled_cov} over the archived
      runs' stats) should pass it explicitly.  Steps are tested first
      (largest median shift over all splits leaving [min_segment]
      points per side), drift only when no step escapes the band.
      Series shorter than [2 * min_segment] are stationary. *)
end

(** {1 CSV} *)

module Csv : sig
  type t
  (** A CSV document under construction. *)

  val create : header:string list -> t
  (** Create a document with the given column names. *)

  val add_row : t -> string list -> unit
  (** Append a row.  Cells are quoted as needed.
      @raise Invalid_argument if the row width differs from the header. *)

  val add_floats : t -> float list -> unit
  (** Append a row of numeric cells rendered with [%.6g]. *)

  val to_string : t -> string
  (** Render the document, RFC-4180-style quoting. *)

  val save : t -> string -> unit
  (** [save t path] writes the document to [path]. *)

  val row_count : t -> int
  (** Number of data rows added so far. *)

  val header : t -> string list

  val rows : t -> string list list
  (** Data rows in insertion order (header excluded). *)

  val parse_string : string -> (string list list, string) result
  (** Parse RFC-4180 text into records (header row included).  Inverse
      of {!to_string}'s quoting: cells may contain commas, doubled
      quotes and embedded newlines.  Tolerant reader: LF, CRLF and bare
      CR (including a file-final [\r]) all terminate a record. *)

  val of_string : string -> (t, string) result
  (** Parse a document: first record is the header, remaining records
      must match its width.  [of_string (to_string t)] round-trips
      header and rows exactly. *)
end
