type hist = { count : int; sum : float; minimum : float; maximum : float }

type event = {
  name : string;
  args : (string * string) list;
  tid : int;
  start_us : float;
  dur_us : float;
  depth : int;
}

type sample = {
  series_name : string;
  sample_tid : int;
  ts_us : float;
  values : (string * float) list;
}

(* A bounded ring of the most recent observations per histogram, so
   quantiles reflect the live window of a long-running daemon rather
   than its whole lifetime.  2048 values bounds memory per histogram
   regardless of uptime. *)
type reservoir = { buf : float array; mutable len : int; mutable pos : int }

let reservoir_capacity = 2048

type state = {
  mutable events : event list;  (* newest first *)
  mutable samples : sample list;  (* newest first *)
  counters : (string, int) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  reservoirs : (string, reservoir) Hashtbl.t;
  lock : Mutex.t;
  epoch : float;
  depth : int ref Domain.DLS.key;
}

(* [None] is the disabled handle: every operation dispatches on it with
   a single match, so instrumented code costs one branch when telemetry
   is off. *)
type t = state option

let disabled : t = None

(* Span durations come from the monotonic clock (an NTP step or manual
   clock change mid-run must not skew them); [Unix.gettimeofday] is only
   used for wall-clock provenance stamps elsewhere. *)
let mono_us () = Int64.to_float (Monotonic_clock.now ()) /. 1e3

let create () : t =
  Some
    {
      events = [];
      samples = [];
      counters = Hashtbl.create 64;
      histograms = Hashtbl.create 16;
      reservoirs = Hashtbl.create 16;
      lock = Mutex.create ();
      epoch = mono_us ();
      depth = Domain.DLS.new_key (fun () -> ref 0);
    }

let enabled = Option.is_some

(* ------------------------------------------------------------------ *)
(* The process-wide handle                                             *)
(* ------------------------------------------------------------------ *)

let global_handle : t Atomic.t = Atomic.make disabled

let global () = Atomic.get global_handle

let set_global t = Atomic.set global_handle t

(* ------------------------------------------------------------------ *)
(* Trace detail                                                        *)
(* ------------------------------------------------------------------ *)

type detail = Off | Sampled | Full

let detail_level : detail Atomic.t = Atomic.make Off

let detail () = Atomic.get detail_level

let set_detail d = Atomic.set detail_level d

let detail_to_string = function Off -> "off" | Sampled -> "sampled" | Full -> "full"

let detail_of_string = function
  | "off" -> Ok Off
  | "sampled" -> Ok Sampled
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown trace detail %S (off, sampled, full)" s)

let sample_stride = function Off -> 0 | Sampled -> 64 | Full -> 1

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let add t name n =
  match t with
  | None -> ()
  | Some s ->
    locked s (fun () ->
        Hashtbl.replace s.counters name
          (n + Option.value ~default:0 (Hashtbl.find_opt s.counters name)))

let incr t name = add t name 1

let counter t name =
  match t with
  | None -> 0
  | Some s ->
    locked s (fun () -> Option.value ~default:0 (Hashtbl.find_opt s.counters name))

let sorted_bindings table =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let counters t =
  match t with None -> [] | Some s -> locked s (fun () -> sorted_bindings s.counters)

let observe_locked s name v =
  let h =
    match Hashtbl.find_opt s.histograms name with
    | None -> { count = 1; sum = v; minimum = v; maximum = v }
    | Some h ->
      {
        count = h.count + 1;
        sum = h.sum +. v;
        minimum = Float.min h.minimum v;
        maximum = Float.max h.maximum v;
      }
  in
  Hashtbl.replace s.histograms name h;
  let r =
    match Hashtbl.find_opt s.reservoirs name with
    | Some r -> r
    | None ->
      let r = { buf = Array.make reservoir_capacity 0.; len = 0; pos = 0 } in
      Hashtbl.replace s.reservoirs name r;
      r
  in
  r.buf.(r.pos) <- v;
  r.pos <- (r.pos + 1) mod reservoir_capacity;
  if r.len < reservoir_capacity then r.len <- r.len + 1

let observe t name v =
  match t with None -> () | Some s -> locked s (fun () -> observe_locked s name v)

let histograms t =
  match t with
  | None -> []
  | Some s -> locked s (fun () -> sorted_bindings s.histograms)

let quantile t name p =
  match t with
  | None -> None
  | Some s ->
    let snapshot =
      locked s (fun () ->
          match Hashtbl.find_opt s.reservoirs name with
          | None -> None
          | Some r when r.len = 0 -> None
          | Some r -> Some (Array.sub r.buf 0 r.len))
    in
    Option.map
      (fun values ->
        Array.sort Float.compare values;
        Mt_stats.percentile_sorted values p)
      snapshot

let now_us s = mono_us () -. s.epoch

let span ?(args = []) t name f =
  match t with
  | None -> f ()
  | Some s ->
    let d = Domain.DLS.get s.depth in
    let depth = !d in
    d := depth + 1;
    let start_us = now_us s in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = now_us s -. start_us in
        d := depth;
        let e =
          { name; args; tid = (Domain.self () :> int); start_us; dur_us; depth }
        in
        locked s (fun () ->
            s.events <- e :: s.events;
            observe_locked s ("span." ^ name ^ ".us") dur_us))
      f

let emit ?(args = []) ?tid t name ~start_us ~dur_us =
  match t with
  | None -> ()
  | Some s ->
    let tid = match tid with Some tid -> tid | None -> (Domain.self () :> int) in
    let e = { name; args; tid; start_us; dur_us; depth = 0 } in
    locked s (fun () -> s.events <- e :: s.events)

let series ?ts_us ?tid t name values =
  match t with
  | None -> ()
  | Some s ->
    let ts_us = match ts_us with Some ts -> ts | None -> now_us s in
    let tid = match tid with Some tid -> tid | None -> (Domain.self () :> int) in
    let p = { series_name = name; sample_tid = tid; ts_us; values } in
    locked s (fun () -> s.samples <- p :: s.samples)

let events t =
  match t with None -> [] | Some s -> locked s (fun () -> List.rev s.events)

let samples t =
  match t with None -> [] | Some s -> locked s (fun () -> List.rev s.samples)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape str =
  let b = Buffer.create (String.length str + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str;
  Buffer.contents b

let chrome_trace t =
  let b = Buffer.create 4096 in
  let pid = Unix.getpid () in
  let sep = ref false in
  let next () = if !sep then Buffer.add_char b ',' else sep := true in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iter
    (fun e ->
      next ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"microtools\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape e.name) pid e.tid e.start_us e.dur_us);
      (match e.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          args;
        Buffer.add_char b '}');
      Buffer.add_char b '}')
    (events t);
  (* Counter samples become Chrome "C" events: one track per series
     name, one stacked sub-series per value key. *)
  List.iter
    (fun p ->
      next ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"microtools\",\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"args\":{"
           (json_escape p.series_name) pid p.sample_tid p.ts_us);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":%.6g" (json_escape k) v))
        p.values;
      Buffer.add_string b "}}")
    (samples t);
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let metrics_csv t =
  let doc = Mt_stats.Csv.create ~header:[ "key"; "value" ] in
  List.iter
    (fun (k, v) -> Mt_stats.Csv.add_row doc [ k; string_of_int v ])
    (counters t);
  List.iter
    (fun (k, h) ->
      let row suffix v = Mt_stats.Csv.add_row doc [ k ^ suffix; v ] in
      row ".count" (string_of_int h.count);
      row ".sum" (Printf.sprintf "%.6g" h.sum);
      row ".min" (Printf.sprintf "%.6g" h.minimum);
      row ".max" (Printf.sprintf "%.6g" h.maximum);
      row ".mean" (Printf.sprintf "%.6g" (h.sum /. float_of_int (max 1 h.count))))
    (histograms t);
  Mt_stats.Csv.to_string doc

(* Prometheus text exposition (version 0.0.4), shared by the mt_serve
   metrics endpoint and the one-shot binaries' --metrics-out FILE.prom
   path: dotted metric names become underscore-separated (these are
   internal dashboards, not a public contract), counters keep their
   name verbatim, summaries expand to quantile-labelled samples plus
   _sum/_count. *)
let prometheus_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prometheus_exposition ?(gauges = []) ?(summaries = []) counters =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      let n = prometheus_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    counters;
  List.iter
    (fun (k, v) ->
      let n = prometheus_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %g\n" n n v))
    gauges;
  List.iter
    (fun (k, (count, sum, quantiles)) ->
      let n = prometheus_name k in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%g\"} %g\n" n q v))
        quantiles;
      Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" n sum);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n count))
    summaries;
  Buffer.contents buf

(* A handle's histograms expose as summaries: quantiles from the live
   reservoir, sum/count from the lifetime totals. *)
let metrics_prometheus t =
  let summaries =
    List.map
      (fun (k, h) ->
        let quantiles =
          List.filter_map
            (fun p -> Option.map (fun v -> (p /. 100., v)) (quantile t k p))
            [ 50.; 90.; 99. ]
        in
        (k, (h.count, h.sum, quantiles)))
      (histograms t)
  in
  prometheus_exposition ~summaries (counters t)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc data)

let write_chrome_trace t path = write_file path (chrome_trace t)

let write_metrics_csv t path = write_file path (metrics_csv t)

let write_metrics_prometheus t path = write_file path (metrics_prometheus t)
