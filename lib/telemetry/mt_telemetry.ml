type hist = { count : int; sum : float; minimum : float; maximum : float }

type event = {
  name : string;
  args : (string * string) list;
  tid : int;
  start_us : float;
  dur_us : float;
  depth : int;
}

type state = {
  mutable events : event list;  (* newest first *)
  counters : (string, int) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  lock : Mutex.t;
  epoch : float;
  depth : int ref Domain.DLS.key;
}

(* [None] is the disabled handle: every operation dispatches on it with
   a single match, so instrumented code costs one branch when telemetry
   is off. *)
type t = state option

let disabled : t = None

let create () : t =
  Some
    {
      events = [];
      counters = Hashtbl.create 64;
      histograms = Hashtbl.create 16;
      lock = Mutex.create ();
      epoch = Unix.gettimeofday ();
      depth = Domain.DLS.new_key (fun () -> ref 0);
    }

let enabled = Option.is_some

(* ------------------------------------------------------------------ *)
(* The process-wide handle                                             *)
(* ------------------------------------------------------------------ *)

let global_handle : t Atomic.t = Atomic.make disabled

let global () = Atomic.get global_handle

let set_global t = Atomic.set global_handle t

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let add t name n =
  match t with
  | None -> ()
  | Some s ->
    locked s (fun () ->
        Hashtbl.replace s.counters name
          (n + Option.value ~default:0 (Hashtbl.find_opt s.counters name)))

let incr t name = add t name 1

let counter t name =
  match t with
  | None -> 0
  | Some s ->
    locked s (fun () -> Option.value ~default:0 (Hashtbl.find_opt s.counters name))

let sorted_bindings table =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let counters t =
  match t with None -> [] | Some s -> locked s (fun () -> sorted_bindings s.counters)

let observe_locked s name v =
  let h =
    match Hashtbl.find_opt s.histograms name with
    | None -> { count = 1; sum = v; minimum = v; maximum = v }
    | Some h ->
      {
        count = h.count + 1;
        sum = h.sum +. v;
        minimum = Float.min h.minimum v;
        maximum = Float.max h.maximum v;
      }
  in
  Hashtbl.replace s.histograms name h

let observe t name v =
  match t with None -> () | Some s -> locked s (fun () -> observe_locked s name v)

let histograms t =
  match t with
  | None -> []
  | Some s -> locked s (fun () -> sorted_bindings s.histograms)

let now_us s = (Unix.gettimeofday () -. s.epoch) *. 1e6

let span ?(args = []) t name f =
  match t with
  | None -> f ()
  | Some s ->
    let d = Domain.DLS.get s.depth in
    let depth = !d in
    d := depth + 1;
    let start_us = now_us s in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = now_us s -. start_us in
        d := depth;
        let e =
          { name; args; tid = (Domain.self () :> int); start_us; dur_us; depth }
        in
        locked s (fun () ->
            s.events <- e :: s.events;
            observe_locked s ("span." ^ name ^ ".us") dur_us))
      f

let events t =
  match t with None -> [] | Some s -> locked s (fun () -> List.rev s.events)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let json_escape str =
  let b = Buffer.create (String.length str + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str;
  Buffer.contents b

let chrome_trace t =
  let b = Buffer.create 4096 in
  let pid = Unix.getpid () in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"microtools\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (json_escape e.name) pid e.tid e.start_us e.dur_us);
      (match e.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          args;
        Buffer.add_char b '}');
      Buffer.add_char b '}')
    (events t);
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let metrics_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "key,value\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s,%d\n" k v))
    (counters t);
  List.iter
    (fun (k, h) ->
      Buffer.add_string b (Printf.sprintf "%s.count,%d\n" k h.count);
      Buffer.add_string b (Printf.sprintf "%s.sum,%.6g\n" k h.sum);
      Buffer.add_string b (Printf.sprintf "%s.min,%.6g\n" k h.minimum);
      Buffer.add_string b (Printf.sprintf "%s.max,%.6g\n" k h.maximum);
      Buffer.add_string b
        (Printf.sprintf "%s.mean,%.6g\n" k (h.sum /. float_of_int (max 1 h.count))))
    (histograms t);
  Buffer.contents b

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc data)

let write_chrome_trace t path = write_file path (chrome_trace t)

let write_metrics_csv t path = write_file path (metrics_csv t)
