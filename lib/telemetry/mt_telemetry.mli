(** Low-overhead observability for the MicroTools pipeline: named
    monotonic counters, value histograms, nestable timed spans and
    counter-series samples, exported as a Chrome [trace_event] JSON
    (open in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    and a flat [key,value] metrics CSV.

    A handle is either {!disabled} — every operation is a no-op costing
    one branch, so instrumented hot paths pay nothing by default — or
    created with {!create}, in which case all recording is Domain-safe:
    counters and events may be updated concurrently from every worker of
    {!Mt_parallel.Pool}.

    Span timestamps come from the process monotonic clock, so an NTP
    step during a run cannot skew durations.

    The pipeline reads one process-wide handle ({!global}, default
    {!disabled}); binaries enable it from [--trace-out]/[--metrics-out]
    via {!set_global}. *)

type t
(** A telemetry sink (or the disabled no-op). *)

val disabled : t
(** The no-op handle: records nothing, exports empty documents. *)

val create : unit -> t
(** A fresh enabled handle with its own clock epoch. *)

val enabled : t -> bool
(** [false] exactly for {!disabled}.  Instrumentation sites guard
    non-trivial bookkeeping (e.g. [List.length]) behind this. *)

(** {1 The process-wide handle} *)

val global : unit -> t
(** The handle the instrumented pipeline records into (one atomic
    load).  Defaults to {!disabled}. *)

val set_global : t -> unit
(** Install [t] as the process-wide handle.  Call before spawning
    worker domains; typically once at binary start-up. *)

(** {1 Trace detail}

    How much instruction/cache-level detail the simulator's deep trace
    lanes record.  [Off] (the default) keeps the simulate path
    completely free of lane bookkeeping; [Sampled] records every
    {!sample_stride}-th dynamic instruction plus the cache counter
    series at those points; [Full] records every instruction (intended
    for small kernels — event volume grows with the dynamic instruction
    count).  Binaries set this from [--trace-detail]. *)

type detail = Off | Sampled | Full

val detail : unit -> detail
(** The process-wide detail level (one atomic load, default [Off]). *)

val set_detail : detail -> unit

val detail_to_string : detail -> string

val detail_of_string : string -> (detail, string) result

val sample_stride : detail -> int
(** Dynamic instructions per recorded lane event: [Off] → 0 (record
    nothing), [Sampled] → 64, [Full] → 1. *)

(** {1 Counters} *)

val incr : t -> string -> unit
(** Add 1 to the named monotonic counter (created at 0 on first use). *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val counter : t -> string -> int
(** Current value ([0] for unknown names and disabled handles). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

type hist = { count : int; sum : float; minimum : float; maximum : float }

val observe : t -> string -> float -> unit
(** Record one value into the named histogram. *)

val histograms : t -> (string * hist) list
(** All histograms, sorted by name.  Every completed span also feeds a
    ["span.<name>.us"] histogram with its duration. *)

val quantile : t -> string -> float -> float option
(** [quantile t name p] with [p] in [0, 100]: the [p]-th percentile of
    the named histogram's most recent observations (a bounded window of
    the last 2048 values, so a long-lived daemon reports live latency
    quantiles, not lifetime ones).  [None] for unknown names, empty
    histograms and disabled handles. *)

(** {1 Spans} *)

type event = {
  name : string;
  args : (string * string) list;
  tid : int;  (** The recording domain's id (or an explicit lane). *)
  start_us : float;  (** Microseconds since the handle's epoch. *)
  dur_us : float;
  depth : int;  (** Nesting depth within the recording domain. *)
}

val span : ?args:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()], recording one event on completion
    (also when [f] raises; the exception is re-raised).  Spans nest:
    the per-domain depth is recorded with each event, and Chrome's
    viewer reconstructs the hierarchy from the timestamps. *)

val emit :
  ?args:(string * string) list -> ?tid:int -> t -> string ->
  start_us:float -> dur_us:float -> unit
(** Record one complete event with explicit timestamps, without timing
    anything.  This is how simulated-time lanes are built: the
    launcher's deep trace emits per-instruction spans whose "ts" axis
    is core cycles rather than wall-clock microseconds, on a [tid] far
    away from the wall-clock domain tracks. *)

val events : t -> event list
(** All completed spans, in completion order. *)

(** {1 Counter series} *)

type sample = {
  series_name : string;
  sample_tid : int;
  ts_us : float;
  values : (string * float) list;
}

val series :
  ?ts_us:float -> ?tid:int -> t -> string -> (string * float) list -> unit
(** [series t name values] records one point of a named counter series
    (exported as a Chrome ["ph":"C"] counter event; each key of
    [values] becomes a stacked sub-series).  [ts_us] defaults to the
    handle's monotonic now; simulated-time lanes pass the core-cycle
    timestamp explicitly. *)

val samples : t -> sample list
(** All recorded series points, in recording order. *)

(** {1 Export} *)

val chrome_trace : t -> string
(** The Chrome [trace_event] JSON document: an object with a
    [traceEvents] array of ["ph":"X"] complete events (spans) followed
    by ["ph":"C"] counter events (series samples). *)

val metrics_csv : t -> string
(** A [key,value] CSV (RFC-4180-quoted): one row per counter, five rows
    ([.count]/[.sum]/[.min]/[.max]/[.mean]) per histogram. *)

val prometheus_name : string -> string
(** Sanitize a dotted metric name for Prometheus: every character
    outside [[a-zA-Z0-9_]] becomes an underscore. *)

val prometheus_exposition :
  ?gauges:(string * float) list ->
  ?summaries:(string * (int * float * (float * float) list)) list ->
  (string * int) list ->
  string
(** Render counters (and optionally gauges and summaries, the latter as
    [(count, sum, (quantile, value) list)]) as Prometheus text
    exposition format 0.0.4, with [# TYPE] comments.  The generic
    encoder behind both the mt_serve metrics endpoint and
    {!metrics_prometheus}. *)

val metrics_prometheus : t -> string
(** A handle's counters and histograms (as summaries with live
    p50/p90/p99 quantiles) in Prometheus text exposition format. *)

val write_chrome_trace : t -> string -> unit

val write_metrics_csv : t -> string -> unit

val write_metrics_prometheus : t -> string -> unit
