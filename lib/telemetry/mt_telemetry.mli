(** Low-overhead observability for the MicroTools pipeline: named
    monotonic counters, value histograms and nestable timed spans,
    exported as a Chrome [trace_event] JSON (open in [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}) and a flat [key,value]
    metrics CSV.

    A handle is either {!disabled} — every operation is a no-op costing
    one branch, so instrumented hot paths pay nothing by default — or
    created with {!create}, in which case all recording is Domain-safe:
    counters and events may be updated concurrently from every worker of
    {!Mt_parallel.Pool}.

    The pipeline reads one process-wide handle ({!global}, default
    {!disabled}); binaries enable it from [--trace-out]/[--metrics-out]
    via {!set_global}. *)

type t
(** A telemetry sink (or the disabled no-op). *)

val disabled : t
(** The no-op handle: records nothing, exports empty documents. *)

val create : unit -> t
(** A fresh enabled handle with its own clock epoch. *)

val enabled : t -> bool
(** [false] exactly for {!disabled}.  Instrumentation sites guard
    non-trivial bookkeeping (e.g. [List.length]) behind this. *)

(** {1 The process-wide handle} *)

val global : unit -> t
(** The handle the instrumented pipeline records into (one atomic
    load).  Defaults to {!disabled}. *)

val set_global : t -> unit
(** Install [t] as the process-wide handle.  Call before spawning
    worker domains; typically once at binary start-up. *)

(** {1 Counters} *)

val incr : t -> string -> unit
(** Add 1 to the named monotonic counter (created at 0 on first use). *)

val add : t -> string -> int -> unit
(** Add [n] to the named counter. *)

val counter : t -> string -> int
(** Current value ([0] for unknown names and disabled handles). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

type hist = { count : int; sum : float; minimum : float; maximum : float }

val observe : t -> string -> float -> unit
(** Record one value into the named histogram. *)

val histograms : t -> (string * hist) list
(** All histograms, sorted by name.  Every completed span also feeds a
    ["span.<name>.us"] histogram with its duration. *)

(** {1 Spans} *)

type event = {
  name : string;
  args : (string * string) list;
  tid : int;  (** The recording domain's id. *)
  start_us : float;  (** Microseconds since the handle's epoch. *)
  dur_us : float;
  depth : int;  (** Nesting depth within the recording domain. *)
}

val span : ?args:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()], recording one event on completion
    (also when [f] raises; the exception is re-raised).  Spans nest:
    the per-domain depth is recorded with each event, and Chrome's
    viewer reconstructs the hierarchy from the timestamps. *)

val events : t -> event list
(** All completed spans, in completion order. *)

(** {1 Export} *)

val chrome_trace : t -> string
(** The Chrome [trace_event] JSON document (an object with a
    [traceEvents] array of ["ph":"X"] complete events). *)

val metrics_csv : t -> string
(** A [key,value] CSV: one row per counter, five rows
    ([.count]/[.sum]/[.min]/[.max]/[.mean]) per histogram. *)

val write_chrome_trace : t -> string -> unit

val write_metrics_csv : t -> string -> unit
