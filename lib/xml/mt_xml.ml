type node = Element of element | Text of string

and element = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
}

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Lexing state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let make_state src = { src; pos = 0; line = 1; bol = 0 }

let error st msg =
  let col = st.pos - st.bol + 1 in
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" st.line col msg))

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let skip_ws st =
  while (not (eof st)) && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do advance st done
  else error st (Printf.sprintf "expected %S" s)

let skip_until st s =
  let n = String.length s in
  let rec loop () =
    if eof st then error st (Printf.sprintf "unterminated construct, expected %S" s)
    else if looking_at st s then for _ = 1 to n do advance st done
    else begin advance st; loop () end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Entities                                                            *)
(* ------------------------------------------------------------------ *)

let decode_entity st =
  (* Called with [pos] just after '&'.  Returns the decoded string. *)
  let start = st.pos in
  let rec find_semi () =
    if eof st then error st "unterminated entity"
    else if peek st = ';' then ()
    else begin advance st; find_semi () end
  in
  find_semi ();
  let name = String.sub st.src start (st.pos - start) in
  advance st;
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    if String.length name > 1 && name.[0] = '#' then begin
      (* Malformed references (&#xZZ;, &#-5;, &#x110000;) must surface
         as positioned parse errors, never as an escaping Failure or
         Invalid_argument from int_of_string/Char.chr. *)
      let digits =
        if name.[1] = 'x' || name.[1] = 'X' then
          "0x" ^ String.sub name 2 (String.length name - 2)
        else String.sub name 1 (String.length name - 1)
      in
      let code =
        match int_of_string_opt digits with
        | Some c when c >= 0 && c <= 0x10FFFF -> c
        | Some _ | None ->
          error st (Printf.sprintf "bad character reference &%s;" name)
      in
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* UTF-8 encode. *)
        let b = Buffer.create 4 in
        if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents b
      end
    end
    else error st (Printf.sprintf "unknown entity &%s;" name)

(* ------------------------------------------------------------------ *)
(* Names, attributes                                                   *)
(* ------------------------------------------------------------------ *)

let is_name_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let parse_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do advance st done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st "expected quoted attribute value";
  advance st;
  let b = Buffer.create 16 in
  let rec loop () =
    if eof st then error st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string b (decode_entity st);
      loop ()
    end
    else begin
      Buffer.add_char b (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents b

let parse_attributes st =
  let rec loop acc =
    skip_ws st;
    match peek st with
    | '>' | '/' | '?' -> List.rev acc
    | _ ->
      let name = parse_name st in
      skip_ws st;
      expect st "=";
      skip_ws st;
      let value = parse_attr_value st in
      loop ((name, value) :: acc)
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Elements                                                            *)
(* ------------------------------------------------------------------ *)

let rec skip_misc st =
  skip_ws st;
  if looking_at st "<?" then begin
    skip_until st "?>";
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    skip_until st "-->";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    skip_until st ">";
    skip_misc st
  end

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let attributes = parse_attributes st in
  skip_ws st;
  if looking_at st "/>" then begin
    expect st "/>";
    { tag; attributes; children = [] }
  end
  else begin
    expect st ">";
    let children = parse_children st tag in
    { tag; attributes; children }
  end

and parse_children st tag =
  let buf = Buffer.create 16 in
  let flush_text acc =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    (* Keep only text with non-whitespace content. *)
    if String.trim s = "" then acc else Text s :: acc
  in
  let rec loop acc =
    if eof st then error st (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at st "</" then begin
      let acc = flush_text acc in
      expect st "</";
      let close = parse_name st in
      skip_ws st;
      expect st ">";
      if close <> tag then
        error st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close tag);
      List.rev acc
    end
    else if looking_at st "<!--" then begin
      skip_until st "-->";
      loop acc
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      let start = st.pos in
      let rec find () =
        if eof st then error st "unterminated CDATA section"
        else if looking_at st "]]>" then ()
        else begin advance st; find () end
      in
      find ();
      Buffer.add_string buf (String.sub st.src start (st.pos - start));
      expect st "]]>";
      loop acc
    end
    else if peek st = '<' then begin
      let acc = flush_text acc in
      let child = parse_element st in
      loop (Element child :: acc)
    end
    else if peek st = '&' then begin
      advance st;
      Buffer.add_string buf (decode_entity st);
      loop acc
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop acc
    end
  in
  loop []

let parse_string s =
  let st = make_state s in
  skip_misc st;
  if eof st then error st "empty document";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then error st "trailing content after root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&apos;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ?(indent = 2) root =
  let b = Buffer.create 256 in
  let pad depth = Buffer.add_string b (String.make (depth * indent) ' ') in
  let add_attrs attrs =
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=\"%s\"" k (escape v)))
      attrs
  in
  let rec go depth e =
    pad depth;
    Buffer.add_char b '<';
    Buffer.add_string b e.tag;
    add_attrs e.attributes;
    match e.children with
    | [] -> Buffer.add_string b "/>\n"
    | [ Text t ] ->
      Buffer.add_char b '>';
      Buffer.add_string b (escape t);
      Buffer.add_string b (Printf.sprintf "</%s>\n" e.tag)
    | children ->
      Buffer.add_string b ">\n";
      List.iter
        (function
          | Element child -> go (depth + 1) child
          | Text t ->
            pad (depth + 1);
            Buffer.add_string b (escape (String.trim t));
            Buffer.add_char b '\n')
        children;
      pad depth;
      Buffer.add_string b (Printf.sprintf "</%s>\n" e.tag)
  in
  go 0 root;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let children_elements e =
  List.filter_map (function Element c -> Some c | Text _ -> None) e.children

let find_children e tag = List.filter (fun c -> c.tag = tag) (children_elements e)

let find_child e tag =
  match find_children e tag with [] -> None | c :: _ -> Some c

let text_content e =
  let b = Buffer.create 16 in
  List.iter (function Text t -> Buffer.add_string b t | Element _ -> ()) e.children;
  String.trim (Buffer.contents b)

let attribute e name = List.assoc_opt name e.attributes

let child_text e tag = Option.map text_content (find_child e tag)

let child_int e tag =
  match child_text e tag with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> Some n
    | None ->
      raise (Parse_error (Printf.sprintf "element <%s> inside <%s>: %S is not an integer" tag e.tag s)))

let has_child e tag = find_child e tag <> None

let elem ?(attrs = []) tag children = { tag; attributes = attrs; children }

let text s = Text s

let elem_text tag s = { tag; attributes = []; children = [ Text s ] }
