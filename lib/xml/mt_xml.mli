(** Minimal XML subset parser used for MicroCreator kernel descriptions.

    Supports elements, attributes, text nodes, comments, CDATA, numeric
    and the five predefined character entities.  Does not support
    namespaces, DTDs, or processing instructions beyond the [<?xml?>]
    prolog (which is skipped). *)

(** A parsed XML node. *)
type node =
  | Element of element
  | Text of string  (** Raw character data, entities already decoded. *)

and element = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
}

(** Raised by parsing functions with a human-readable message that
    includes the 1-based line and column of the offending input. *)
exception Parse_error of string

(** {1 Parsing} *)

val parse_string : string -> element
(** [parse_string s] parses [s] and returns the root element.
    @raise Parse_error on malformed input. *)

val parse_file : string -> element
(** [parse_file path] reads and parses the file at [path].
    @raise Parse_error on malformed input.
    @raise Sys_error if the file cannot be read. *)

(** {1 Printing} *)

val to_string : ?indent:int -> element -> string
(** [to_string e] renders [e] as XML text.  [indent] is the number of
    spaces per nesting level (default 2). *)

val escape : string -> string
(** Escape the five XML special characters for inclusion in XML text. *)

(** {1 Accessors}

    These are the navigation helpers MicroCreator's description reader
    is built on. *)

val children_elements : element -> element list
(** Child nodes that are elements, in document order. *)

val find_child : element -> string -> element option
(** [find_child e tag] is the first child element of [e] named [tag]. *)

val find_children : element -> string -> element list
(** All child elements of [e] named [tag], in document order. *)

val text_content : element -> string
(** Concatenation of all text nodes directly under [e], trimmed. *)

val attribute : element -> string -> string option
(** [attribute e name] is the value of attribute [name] on [e]. *)

val child_text : element -> string -> string option
(** [child_text e tag] is [text_content] of the first child named [tag]. *)

val child_int : element -> string -> int option
(** Like {!child_text} but parsed as an integer.
    @raise Parse_error if the child exists but is not an integer. *)

val has_child : element -> string -> bool
(** [has_child e tag] is [true] iff [e] has a child element named [tag].
    Used for flag-style nodes such as [<swap_after_unroll/>]. *)

(** {1 Construction} *)

val elem : ?attrs:(string * string) list -> string -> node list -> element
(** [elem tag children] builds an element. *)

val text : string -> node
(** [text s] builds a text node. *)

val elem_text : string -> string -> element
(** [elem_text tag s] is an element containing a single text node. *)
