(* Tests for the C kernel subset compiler (Section 4.1: MicroLauncher
   "compiles the kernel code"). *)

open Mt_isa
open Mt_machine
open Mt_cc

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let x5650 = Config.nehalem_x5650_2s

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse_expr s =
  match Parse.expr_of_string s with
  | Ok e -> e
  | Error msg -> Alcotest.fail msg

let test_expr_precedence () =
  check_bool "a + b * c" true
    (parse_expr "a + b * c"
    = Ast.Bin (Ast.Add, Ast.Var "a", Ast.Bin (Ast.Mul, Ast.Var "b", Ast.Var "c")));
  check_bool "(a + b) * c" true
    (parse_expr "(a + b) * c"
    = Ast.Bin (Ast.Mul, Ast.Bin (Ast.Add, Ast.Var "a", Ast.Var "b"), Ast.Var "c"))

let test_expr_left_associative () =
  check_bool "a - b - c" true
    (parse_expr "a - b - c"
    = Ast.Bin (Ast.Sub, Ast.Bin (Ast.Sub, Ast.Var "a", Ast.Var "b"), Ast.Var "c"))

let test_expr_subscripts () =
  check_bool "a[i + 1]" true
    (parse_expr "a[i + 1]" = Ast.Index ("a", Ast.Bin (Ast.Add, Ast.Var "i", Ast.Int_lit 1)));
  check_bool "negative literal" true (parse_expr "-3" = Ast.Int_lit (-3));
  check_bool "float literal" true (parse_expr "0.0" = Ast.Float_lit 0.)

let test_parse_function_shape () =
  let src =
    {|int f(int n, double *a) {
        int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; }
        return n;
      }|}
  in
  match Parse.func_of_string src with
  | Error msg -> Alcotest.fail msg
  | Ok f ->
    Alcotest.(check string) "name" "f" f.Ast.fname;
    check_int "two params" 2 (List.length f.Ast.params);
    check_bool "pointer param" true (List.nth f.Ast.params 1 = (Ast.Tptr Ast.Tdouble, "a"));
    check_int "three statements" 3 (List.length f.Ast.body)

let test_parse_comments_and_step () =
  let src =
    {|/* block
        comment */
      int f(int n, float *a) {
        int i; // line comment
        for (i = 0; i <= n; i += 4) { a[i] = 0.0; }
        return n;
      }|}
  in
  match Parse.func_of_string src with
  | Error msg -> Alcotest.fail msg
  | Ok f -> (
    match f.Ast.body with
    | [ _; Ast.For { cond = Ast.Le _; step = 4; _ }; Ast.Return _ ] -> ()
    | _ -> Alcotest.fail "unexpected body shape")

let test_parse_errors () =
  let bad src =
    match Parse.func_of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected a syntax error: " ^ src)
  in
  bad "int f(int n) { return n; ";
  bad "int f(int n) { for (i = 0; j < n; i++) {} return n; }";
  bad "int f(int n) { for (i = 0; i > n; i++) {} return n; }";
  bad "int f(int n) { n ** 2; }";
  bad "double f(int n) { return n; }"

(* ------------------------------------------------------------------ *)
(* Codegen                                                             *)
(* ------------------------------------------------------------------ *)

let compile_ok src =
  match Codegen.compile src with
  | Ok (program, abi) -> (program, abi)
  | Error msg -> Alcotest.fail msg

let copy_src =
  {|int copy(int n, double *a, double *b) {
      int i;
      for (i = 0; i < n; i++) {
        b[i] = a[i];
      }
      return n;
    }|}

let test_codegen_copy_shape () =
  let program, abi = compile_ok copy_src in
  let insns = Insn.insns program in
  check_bool "has a movsd load" true
    (List.exists (fun i -> i.Insn.op = Insn.MOVSD && Mt_isa.Semantics.is_load i) insns);
  check_bool "has a movsd store" true
    (List.exists (fun i -> i.Insn.op = Insn.MOVSD && Mt_isa.Semantics.is_store i) insns);
  check_bool "counter is rdi" true (Reg.equal abi.Mt_creator.Abi.counter (Reg.gpr64 Reg.RDI));
  check_int "two arrays" 2 (List.length abi.Mt_creator.Abi.pointers);
  check_bool "arrays advance 8 bytes/pass" true
    (List.for_all (fun (_, s) -> s = 8) abi.Mt_creator.Abi.pointers);
  check_bool "pass counter" true (abi.Mt_creator.Abi.pass_counter <> None)

let run_compiled ?(n = 100) src =
  let program, _ = compile_ok src in
  let memory = Memory.create x5650 in
  let init =
    [
      (Reg.gpr64 Reg.RDI, n);
      (Reg.gpr64 Reg.RSI, 1 lsl 24);
      (Reg.gpr64 Reg.RDX, 1 lsl 25);
      (Reg.gpr64 Reg.RCX, 1 lsl 26);
    ]
  in
  match Core.run_program ~init x5650 memory program with
  | Ok r -> r
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_codegen_copy_runs () =
  let r = run_compiled ~n:64 copy_src in
  check_int "rax = n" 64 r.Core.rax;
  check_int "64 loads" 64 r.Core.loads;
  check_int "64 stores" 64 r.Core.stores

let test_codegen_dot_product () =
  let src =
    {|int dot(int n, double *a, double *b) {
        int i;
        double acc = 0.0;
        for (i = 0; i < n; i++) {
          acc += a[i] * b[i];
        }
        return n;
      }|}
  in
  let r = run_compiled ~n:50 src in
  check_int "rax" 50 r.Core.rax;
  (* One pure load plus one folded load per iteration. *)
  check_int "loads" 100 r.Core.loads;
  check_bool "fp work happened" true (r.Core.fp_ops >= 100)

let test_codegen_float_kernel () =
  let src =
    {|int scalef(int n, float *a, float *b) {
        int i;
        for (i = 0; i < n; i++) {
          b[i] = a[i];
        }
        return n;
      }|}
  in
  let program, _ = compile_ok src in
  let insns = Insn.insns program in
  check_bool "uses movss" true (List.exists (fun i -> i.Insn.op = Insn.MOVSS) insns);
  check_bool "no movsd" true (List.for_all (fun i -> i.Insn.op <> Insn.MOVSD) insns)

let test_codegen_le_loop () =
  let src =
    {|int f(int n, double *a) {
        int i;
        for (i = 0; i <= n; i++) { a[i] = 0.0; }
        return n;
      }|}
  in
  let r = run_compiled ~n:10 src in
  (* i = 0..10 inclusive: 11 stores. *)
  check_int "inclusive bound" 11 r.Core.stores

let test_codegen_step_loop () =
  let src =
    {|int f(int n, double *a) {
        int i;
        for (i = 0; i < n; i += 4) { a[i] = 0.0; }
        return n;
      }|}
  in
  let r = run_compiled ~n:16 src in
  check_int "stepped stores" 4 r.Core.stores

let test_codegen_matmul_figure1 () =
  let src =
    {|int matmul(int n, double *A, double *B, double *C) {
        int i;
        int j;
        int k;
        for (i = 0; i < n; i++) {
          for (j = 0; j < n; j++) {
            double acc = 0.0;
            for (k = 0; k < n; k++) {
              acc += B[i * n + k] * C[k * n + j];
            }
            A[i * n + j] = acc;
          }
        }
        return n;
      }|}
  in
  let n = 12 in
  let r = run_compiled ~n src in
  check_int "rax = n" n r.Core.rax;
  (* n^3 iterations, 2 loads each (one folded), plus n^2 stores. *)
  check_int "loads" (2 * n * n * n) r.Core.loads;
  check_int "stores" (n * n) r.Core.stores

let test_codegen_store_op () =
  let src =
    {|int acc(int n, double *a, double *b) {
        int i;
        for (i = 0; i < n; i++) {
          a[i] += b[i];
        }
        return n;
      }|}
  in
  let r = run_compiled ~n:20 src in
  (* Per pass: load a[i], folded load b[i], store a[i]. *)
  check_int "loads" 40 r.Core.loads;
  check_int "stores" 20 r.Core.stores

let test_codegen_errors () =
  let bad src =
    match Codegen.compile src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected a codegen error: " ^ src)
  in
  (* Non-zero fp literal. *)
  bad "int f(int n, double *a) { int i; for (i = 0; i < n; i++) { a[i] = 1.5; } return n; }";
  (* float/double mixing. *)
  bad
    "int f(int n, double *a, float *b) { int i; for (i = 0; i < n; i++) { a[i] = b[i]; } return n; }";
  (* Returning a double. *)
  bad "int f(int n, double *a) { double x = 0.0; return x; }";
  (* Undeclared identifier. *)
  bad "int f(int n, double *a) { a[z] = 0.0; return n; }";
  (* First parameter must be the trip count. *)
  bad "int f(double *a) { return a; }";
  (* Integer division. *)
  bad "int f(int n) { int x = n / 2; return n; }"

let test_compiled_c_through_launcher () =
  (* Full path: .c file on disk -> Source.From_file -> measurement. *)
  let path = Filename.temp_file "mtcc" ".c" in
  let oc = open_out path in
  output_string oc
    {|int stream(int n, double *a) {
        int i;
        double acc = 0.0;
        for (i = 0; i < n; i++) {
          acc += a[i];
        }
        return n;
      }|};
  close_out oc;
  let opts =
    {
      (Mt_launcher.Options.default x5650) with
      Mt_launcher.Options.array_bytes = 32 * 1024;
      repetitions = 1;
      experiments = 3;
    }
  in
  let result = Mt_launcher.Launcher.launch opts (Mt_launcher.Source.From_file path) in
  Sys.remove path;
  match result with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    check_bool "positive cycles/pass" true (report.Mt_launcher.Report.value > 0.);
    (* One pass per element: at most a handful of cycles each. *)
    check_bool "sane magnitude" true (report.Mt_launcher.Report.value < 20.)

let test_compiled_matches_handwritten_shape () =
  (* The compiled dot-product kernel is load-port bound like its
     generated equivalent. *)
  let src =
    {|int dot(int n, double *a, double *b) {
        int i;
        double acc = 0.0;
        for (i = 0; i < n; i++) {
          acc += a[i] * b[i];
        }
        return n;
      }|}
  in
  let program, abi = compile_ok src in
  let opts =
    {
      (Mt_launcher.Options.default x5650) with
      Mt_launcher.Options.array_bytes = 16 * 1024;
      repetitions = 1;
      experiments = 2;
    }
  in
  match Mt_launcher.Protocol.prepare opts program abi with
  | Error msg -> Alcotest.fail msg
  | Ok prepared -> (
    ignore (Mt_launcher.Protocol.run_once prepared);
    match Mt_launcher.Protocol.run_once prepared with
    | Error msg -> Alcotest.fail msg
    | Ok o ->
      let cpp = o.Core.cycles /. float_of_int o.Core.rax in
      (* The naive codegen reuses one temp register, so the pass period
         is the load-to-multiply chain plus a rename slot: ~5 cycles. *)
      check_bool "within [2.5, 6] cycles/pass" true (cpp >= 2.5 && cpp <= 6.))

(* Property: the compiler never emits an instruction the machine
   rejects, across a family of generated kernels. *)
let prop_compiled_kernels_validate =
  let gen =
    QCheck.Gen.(
      let* arrays = 1 -- 3 in
      let* step = oneofl [ 1; 2; 4 ] in
      let* le = bool in
      let* op = oneofl [ "+"; "-"; "*" ] in
      return (arrays, step, le, op))
  in
  QCheck.Test.make ~count:60 ~name:"cc: generated kernels always compile and run"
    (QCheck.make gen) (fun (arrays, step, le, op) ->
      let params =
        String.concat ""
          (List.init arrays (fun i -> Printf.sprintf ", double *a%d" i))
      in
      let rhs =
        match arrays with
        | 1 -> "a0[i]"
        | 2 -> Printf.sprintf "a0[i] %s a1[i]" op
        | _ -> Printf.sprintf "a0[i] %s a1[i] %s a2[i + 1]" op op
      in
      let src =
        Printf.sprintf
          {|int k(int n%s) {
              int i;
              double acc = 0.0;
              for (i = 0; i %s n; i += %d) {
                acc += %s;
              }
              return n;
            }|}
          params
          (if le then "<=" else "<")
          step rhs
      in
      match Codegen.compile src with
      | Error _ -> false
      | Ok (program, _) -> (
        let memory = Memory.create x5650 in
        let init =
          [
            (Reg.gpr64 Reg.RDI, 32);
            (Reg.gpr64 Reg.RSI, 1 lsl 24);
            (Reg.gpr64 Reg.RDX, 1 lsl 25);
            (Reg.gpr64 Reg.RCX, 1 lsl 26);
          ]
        in
        match Core.run_program ~init x5650 memory program with
        | Ok r -> r.Core.rax = 32
        | Error _ -> false))

let tests =
  [
    Alcotest.test_case "expr precedence" `Quick test_expr_precedence;
    Alcotest.test_case "expr left associativity" `Quick test_expr_left_associative;
    Alcotest.test_case "expr subscripts and literals" `Quick test_expr_subscripts;
    Alcotest.test_case "parse function shape" `Quick test_parse_function_shape;
    Alcotest.test_case "parse comments and step" `Quick test_parse_comments_and_step;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "codegen copy shape" `Quick test_codegen_copy_shape;
    Alcotest.test_case "codegen copy runs" `Quick test_codegen_copy_runs;
    Alcotest.test_case "codegen dot product" `Quick test_codegen_dot_product;
    Alcotest.test_case "codegen float kernel" `Quick test_codegen_float_kernel;
    Alcotest.test_case "codegen <= loop" `Quick test_codegen_le_loop;
    Alcotest.test_case "codegen stepped loop" `Quick test_codegen_step_loop;
    Alcotest.test_case "codegen Figure-1 matmul" `Quick test_codegen_matmul_figure1;
    Alcotest.test_case "codegen a[i] += b[i]" `Quick test_codegen_store_op;
    Alcotest.test_case "codegen errors" `Quick test_codegen_errors;
    Alcotest.test_case "launcher measures a .c kernel" `Quick test_compiled_c_through_launcher;
    Alcotest.test_case "compiled kernel matches expectations" `Quick test_compiled_matches_handwritten_shape;
    QCheck_alcotest.to_alcotest prop_compiled_kernels_validate;
  ]
