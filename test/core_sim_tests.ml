(* Tests for the scoreboard core simulator. *)

open Mt_machine
open Mt_isa

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let cfg = Config.nehalem_x5650_2s

let rsi = Reg.gpr64 Reg.RSI

let rdi = Reg.gpr64 Reg.RDI

let eax = Reg.gpr32 Reg.RAX

let i op ops = Insn.Insn (Insn.make op ops)

(* A counting loop of [body] instructions per pass, the Section 4.4
   shape: %eax counts passes, %rdi is the trip counter. *)
let loop ?(step = 1) body =
  [ Insn.Label "L" ] @ body
  @ [
      i Insn.ADD [ Operand.imm 1; Operand.reg eax ];
      i Insn.SUB [ Operand.imm step; Operand.reg rdi ];
      i (Insn.Jcc Insn.GE) [ Operand.label "L" ];
      i Insn.RET [];
    ]

let run ?(init = []) ?memory ?max_instructions program =
  let memory = match memory with Some m -> m | None -> Memory.create cfg in
  Core.run_program ~init ?max_instructions cfg memory program

let run_ok ?init ?memory ?max_instructions program =
  match run ?init ?memory ?max_instructions program with
  | Ok r -> r
  | Error e -> Alcotest.fail (Core.error_to_string e)

let test_empty_program () =
  let r = run_ok [ i Insn.RET [] ] in
  check_int "one instruction" 1 r.Core.instructions;
  check_bool "cheap" true (r.Core.cycles < 5.)

let test_rax_returns_pass_count () =
  let r = run_ok ~init:[ (rdi, 9) ] (loop []) in
  (* jge: passes while rdi >= 0 after the decrement: 10 passes. *)
  check_int "pass count" 10 r.Core.rax

let test_trip_count_scaling () =
  let r4 = run_ok ~init:[ (rdi, 39) ] (loop ~step:4 []) in
  check_int "unrolled counting" 10 r4.Core.rax

let test_instructions_counted () =
  let r = run_ok ~init:[ (rdi, 4) ] (loop []) in
  (* 5 passes x 3 loop instructions + final ret. *)
  check_int "instructions" 16 r.Core.instructions

let test_loop_exit_mispredicts_once () =
  let r = run_ok ~init:[ (rdi, 99) ] (loop []) in
  check_int "one mispredict" 1 r.Core.mispredicts;
  check_int "branches" 100 r.Core.branches

let test_jmp_skips () =
  let program =
    [
      i Insn.JMP [ Operand.label "after" ];
      i Insn.MOV [ Operand.imm 42; Operand.reg rsi ];
      Insn.Label "after";
      i Insn.RET [];
    ]
  in
  let r = run_ok program in
  check_int "skipped the mov" 2 r.Core.instructions

let test_compile_unknown_label () =
  match Core.compile [ i Insn.JMP [ Operand.label "nowhere" ] ] with
  | Error (Core.Unknown_label "nowhere") -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Unknown_label"

let test_compile_logical_register () =
  match
    Core.compile
      [ i Insn.ADD [ Operand.imm 1; Operand.reg (Reg.logical "r1") ] ]
  with
  | Error (Core.Unallocated_register "r1") -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Unallocated_register"

let test_compile_invalid_instruction () =
  match Core.compile [ i Insn.ADD [ Operand.imm 1 ] ] with
  | Error (Core.Invalid_instruction _) -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Invalid_instruction"

let test_fuel_exhaustion () =
  let forever = [ Insn.Label "L"; i Insn.JMP [ Operand.label "L" ] ] in
  match run ~max_instructions:1000 forever with
  | Error (Core.Fuel_exhausted 1000) -> ()
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Fuel_exhausted"

let test_alignment_fault () =
  let program =
    [ i Insn.MOVAPS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]; i Insn.RET [] ]
  in
  (match run ~init:[ (rsi, 4096 + 4) ] program with
  | Error (Core.Alignment_fault { addr; required; _ }) ->
    check_int "addr" 4100 addr;
    check_int "required" 16 required
  | Error e -> Alcotest.fail (Core.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Alignment_fault");
  (* The same access via movups is legal. *)
  let unaligned =
    [ i Insn.MOVUPS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ]; i Insn.RET [] ]
  in
  ignore (run_ok ~init:[ (rsi, 4096 + 4) ] unaligned)

let cycles_per_pass ?memory ~passes program =
  let memory = match memory with Some m -> m | None -> Memory.create cfg in
  (* Warm run then measured run, like the launcher. *)
  let init = [ (rdi, passes - 1); (rsi, 1 lsl 20) ] in
  ignore (run_ok ~init ~memory program);
  let r = run_ok ~init ~memory program in
  r.Core.cycles /. float_of_int r.Core.rax

let test_load_port_throughput () =
  (* 8 independent warm loads per pass on a 1-load-port machine: at
     least 8 cycles per pass. *)
  let body =
    List.init 8 (fun k ->
        i Insn.MOVSS [ Operand.mem ~base:rsi ~disp:(k * 4) (); Operand.reg (Reg.xmm k) ])
  in
  let c = cycles_per_pass ~passes:200 (loop body) in
  check_bool "load port binds (>= 8)" true (c >= 7.9);
  check_bool "but pipelines (< 11)" true (c < 11.)

let test_dependency_chain_latency () =
  (* A serial addsd chain runs at its 3-cycle latency per pass. *)
  let body = [ i Insn.ADDSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ] ] in
  let c = cycles_per_pass ~passes:300 (loop body) in
  check_bool "~3 cycles" true (c >= 2.9 && c <= 3.5)

let test_independent_fp_pipelines () =
  (* Two independent addsd chains still run at 3 cycles per pass (one
     fp-add port, pipelined). *)
  let body =
    [
      i Insn.ADDSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ];
      i Insn.ADDSD [ Operand.reg (Reg.xmm 2); Operand.reg (Reg.xmm 3) ];
    ]
  in
  let c = cycles_per_pass ~passes:300 (loop body) in
  check_bool "pipelined chains" true (c >= 2.9 && c <= 3.6)

let test_divsd_not_pipelined () =
  (* divsd occupies its port for its full latency: ~22 cycles each. *)
  let body = [ i Insn.DIVSD [ Operand.reg (Reg.xmm 0); Operand.reg (Reg.xmm 1) ] ] in
  let c = cycles_per_pass ~passes:100 (loop body) in
  check_bool "div-bound" true (c >= 20.)

let test_unrolling_amortizes_overhead () =
  let kernel unroll =
    let body =
      List.init unroll (fun k ->
          i Insn.MOVSS [ Operand.mem ~base:rsi ~disp:(k * 4) (); Operand.reg (Reg.xmm (k mod 8)) ])
    in
    loop body
  in
  let per_load u =
    let c = cycles_per_pass ~passes:(512 / u) (kernel u) in
    c /. float_of_int u
  in
  check_bool "unroll 8 beats unroll 1" true (per_load 8 < per_load 1)

let test_issue_width_bound () =
  (* 12 single-cycle ALU instructions per pass on a 4-wide machine
     cannot beat 3 cycles per pass. *)
  let body =
    List.init 12 (fun k ->
        let regs = Reg.[ RBX; RCX; RDX; R8 ] in
        i Insn.ADD [ Operand.imm 1; Operand.reg (Reg.gpr64 (List.nth regs (k mod 4))) ])
  in
  let c = cycles_per_pass ~passes:200 (loop body) in
  check_bool "front-end bound" true (c >= 3.)

let test_taken_branch_ends_fetch_group () =
  (* A 2-instruction loop still costs >= 1 cycle per pass: one taken
     branch per cycle at most. *)
  let c = cycles_per_pass ~passes:400 (loop []) in
  check_bool "at least one cycle per iteration" true (c >= 1.)

let test_ram_latency_visible () =
  (* Dependent pointer-stride loads from cold memory feel RAM latency;
     use a stride too large for the prefetcher. *)
  let body =
    [
      i Insn.MOVSD [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ];
      i Insn.ADD [ Operand.imm 4096; Operand.reg rsi ];
    ]
  in
  let memory = Memory.create cfg in
  let r =
    run_ok ~memory ~init:[ (rdi, 199); (rsi, 1 lsl 24) ] (loop body)
  in
  let per_pass = r.Core.cycles /. float_of_int r.Core.rax in
  check_bool "RAM-latency bound (> 20 cycles/pass)" true (per_pass > 20.)

let test_trace_hook () =
  let seen = ref 0 in
  let memory = Memory.create cfg in
  let compiled =
    match Core.compile (loop []) with Ok c -> c | Error e -> Alcotest.fail (Core.error_to_string e)
  in
  let trace _pc _insn ~issue ~completion =
    incr seen;
    check_bool "completion after issue" true (completion >= issue)
  in
  (match Core.run ~init:[ (rdi, 9) ] ~trace cfg memory compiled with
  | Ok r -> check_int "trace saw every instruction" r.Core.instructions !seen
  | Error e -> Alcotest.fail (Core.error_to_string e))

let test_warm_cache_faster () =
  (* One fresh line per pass: cold passes pay the DRAM fill rate, warm
     passes hit the L1 (the 300-line footprint fits). *)
  let body =
    [ i Insn.MOVSS [ Operand.mem ~base:rsi (); Operand.reg (Reg.xmm 0) ];
      i Insn.ADD [ Operand.imm 64; Operand.reg rsi ] ]
  in
  let memory = Memory.create cfg in
  let init = [ (rdi, 299); (rsi, 1 lsl 22) ] in
  let cold = run_ok ~memory ~init (loop body) in
  let warm = run_ok ~memory ~init (loop body) in
  check_bool "warm run clearly faster" true (warm.Core.cycles *. 2. < cold.Core.cycles)

let prop_cycles_positive_and_monotone_in_trips =
  QCheck.Test.make ~count:50 ~name:"core: more passes never cost fewer cycles"
    QCheck.(int_range 1 50)
    (fun n ->
      let memory = Memory.create cfg in
      let r1 = run_ok ~memory ~init:[ (rdi, n - 1) ] (loop []) in
      let r2 = run_ok ~memory ~init:[ (rdi, (2 * n) - 1) ] (loop []) in
      r1.Core.cycles > 0. && r2.Core.cycles >= r1.Core.cycles)

let prop_rax_equals_requested_passes =
  QCheck.Test.make ~count:50 ~name:"core: %eax counts exactly the requested passes"
    QCheck.(int_range 1 500)
    (fun n ->
      let r = run_ok ~init:[ (rdi, n - 1) ] (loop []) in
      r.Core.rax = n)

let tests =
  [
    Alcotest.test_case "empty program" `Quick test_empty_program;
    Alcotest.test_case "rax returns pass count" `Quick test_rax_returns_pass_count;
    Alcotest.test_case "trip count scaling" `Quick test_trip_count_scaling;
    Alcotest.test_case "instructions counted" `Quick test_instructions_counted;
    Alcotest.test_case "loop exit mispredicts once" `Quick test_loop_exit_mispredicts_once;
    Alcotest.test_case "jmp skips" `Quick test_jmp_skips;
    Alcotest.test_case "compile: unknown label" `Quick test_compile_unknown_label;
    Alcotest.test_case "compile: logical register" `Quick test_compile_logical_register;
    Alcotest.test_case "compile: invalid instruction" `Quick test_compile_invalid_instruction;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "alignment fault" `Quick test_alignment_fault;
    Alcotest.test_case "load port throughput" `Quick test_load_port_throughput;
    Alcotest.test_case "dependency chain latency" `Quick test_dependency_chain_latency;
    Alcotest.test_case "independent fp chains pipeline" `Quick test_independent_fp_pipelines;
    Alcotest.test_case "divsd not pipelined" `Quick test_divsd_not_pipelined;
    Alcotest.test_case "unrolling amortizes overhead" `Quick test_unrolling_amortizes_overhead;
    Alcotest.test_case "issue width bound" `Quick test_issue_width_bound;
    Alcotest.test_case "taken branch bounds tiny loops" `Quick test_taken_branch_ends_fetch_group;
    Alcotest.test_case "RAM latency visible to dependent loads" `Quick test_ram_latency_visible;
    Alcotest.test_case "trace hook" `Quick test_trace_hook;
    Alcotest.test_case "warm cache faster" `Quick test_warm_cache_faster;
    QCheck_alcotest.to_alcotest prop_cycles_positive_and_monotone_in_trips;
    QCheck_alcotest.to_alcotest prop_rax_equals_requested_passes;
  ]
